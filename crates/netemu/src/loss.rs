//! Packet-loss models.
//!
//! The paper measured loss alongside RTT and chose its probe parameters so
//! that "packet loss rates and measured round-trip times" stayed stable.
//! Radio links lose packets in bursts, not independently; the standard
//! two-state Gilbert-Elliott chain captures that, and a short extra burst
//! around each 15-second reallocation models the handover gap.

use rand::rngs::StdRng;
use rand::Rng;

/// Two-state Gilbert-Elliott loss chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// P(Good → Bad) per packet.
    pub p_good_to_bad: f64,
    /// P(Bad → Good) per packet.
    pub p_bad_to_good: f64,
    /// Loss probability in the Good state.
    pub loss_good: f64,
    /// Loss probability in the Bad state.
    pub loss_bad: f64,
    in_bad: bool,
}

impl GilbertElliott {
    /// Creates a chain starting in the Good state.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(p_good_to_bad: f64, p_bad_to_good: f64, loss_good: f64, loss_bad: f64) -> Self {
        for p in [p_good_to_bad, p_bad_to_good, loss_good, loss_bad] {
            assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        }
        GilbertElliott { p_good_to_bad, p_bad_to_good, loss_good, loss_bad, in_bad: false }
    }

    /// Default parameters for a healthy Starlink link: ~1–2% average loss,
    /// bursty.
    pub fn starlink_nominal() -> Self {
        GilbertElliott::new(0.004, 0.25, 0.002, 0.45)
    }

    /// Advances one packet; returns `true` when that packet is lost.
    pub fn step(&mut self, rng: &mut StdRng) -> bool {
        if self.in_bad {
            if rng.random_range(0.0..1.0) < self.p_bad_to_good {
                self.in_bad = false;
            }
        } else if rng.random_range(0.0..1.0) < self.p_good_to_bad {
            self.in_bad = true;
        }
        let p = if self.in_bad { self.loss_bad } else { self.loss_good };
        rng.random_range(0.0..1.0) < p
    }

    /// Steady-state expected loss rate.
    pub fn expected_loss(&self) -> f64 {
        // Transition probabilities are non-negative, so their sum is zero
        // exactly when both are; `<=` avoids an exact float `==`.
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom <= 0.0 {
            return self.loss_good;
        }
        let p_bad = self.p_good_to_bad / denom;
        p_bad * self.loss_bad + (1.0 - p_bad) * self.loss_good
    }

    /// Whether the chain currently sits in the Bad state.
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn empirical_loss_matches_expectation() {
        let mut ge = GilbertElliott::starlink_nominal();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let lost = (0..n).filter(|_| ge.step(&mut rng)).count();
        let rate = lost as f64 / n as f64;
        let expect = ge.expected_loss();
        assert!((rate - expect).abs() < 0.01, "empirical {rate:.4} vs expected {expect:.4}");
    }

    #[test]
    fn losses_are_bursty() {
        // Consecutive-loss runs should be far more common than under
        // independent Bernoulli loss at the same mean rate.
        let mut ge = GilbertElliott::starlink_nominal();
        let mut rng = StdRng::seed_from_u64(2);
        let outcomes: Vec<bool> = (0..100_000).map(|_| ge.step(&mut rng)).collect();
        let losses = outcomes.iter().filter(|&&l| l).count() as f64;
        let pairs = outcomes.windows(2).filter(|w| w[0] && w[1]).count() as f64;
        let rate = losses / outcomes.len() as f64;
        let pair_rate = pairs / (outcomes.len() - 1) as f64;
        assert!(
            pair_rate > 3.0 * rate * rate,
            "pair rate {pair_rate:.6} vs independent {:.6}",
            rate * rate
        );
    }

    #[test]
    fn zero_loss_chain_never_loses() {
        let mut ge = GilbertElliott::new(0.1, 0.1, 0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..10_000).all(|_| !ge.step(&mut rng)));
    }

    #[test]
    fn expected_loss_degenerate_chain() {
        let ge = GilbertElliott::new(0.0, 0.0, 0.05, 0.9);
        assert_eq!(ge.expected_loss(), 0.05);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_probability_panics() {
        let _ = GilbertElliott::new(1.5, 0.1, 0.0, 0.0);
    }

    #[test]
    fn certain_loss_chain_loses_every_packet() {
        // p = 1 everywhere: both states always lose, expected loss is
        // exactly 1, and every step says lost.
        let mut ge = GilbertElliott::new(1.0, 1.0, 1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(ge.expected_loss(), 1.0);
        assert!((0..10_000).all(|_| ge.step(&mut rng)));
    }

    #[test]
    fn boundary_transition_probabilities_are_accepted() {
        // The degenerate corners of [0, 1] are legal parameters, not
        // panics: p=0 pins the chain in Good, p=1 makes it alternate.
        let mut stuck = GilbertElliott::new(0.0, 1.0, 0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            assert!(!stuck.step(&mut rng), "chain left the Good state at p_g2b = 0");
            assert!(!stuck.in_bad_state());
        }
        assert_eq!(stuck.expected_loss(), 0.0);

        // p_g2b = 1, p_b2g = 0: first step enters Bad and never leaves.
        let mut sink = GilbertElliott::new(1.0, 0.0, 0.0, 1.0);
        let _ = sink.step(&mut rng);
        assert!(sink.in_bad_state());
        assert!((0..1_000).all(|_| sink.step(&mut rng)));
        assert_eq!(sink.expected_loss(), 1.0);
    }
}
