//! Clock-offset model.
//!
//! The paper's vantage points "were routinely synchronized using NTP":
//! residual offset between prober and server clocks is sub-millisecond but
//! not zero, and it wanders slowly between synchronizations. The RTT
//! measurements themselves are one-clock quantities, but iRTT also reports
//! one-way delays, which the offset contaminates — so the emulator applies
//! it the same way.

use starsense_astro::time::JulianDate;

/// A slowly wandering residual clock offset: a sum of two incommensurate
/// sinusoids (thermal drift + NTP correction sawtooth smoothed), bounded by
/// `amplitude_ms`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockModel {
    /// Peak offset magnitude, ms.
    pub amplitude_ms: f64,
    /// Primary wander period, seconds.
    pub period_s: f64,
    phase: f64,
}

impl ClockModel {
    /// Creates a clock model; `phase_seed` decorrelates terminals.
    pub fn new(amplitude_ms: f64, period_s: f64, phase_seed: u64) -> ClockModel {
        assert!(amplitude_ms >= 0.0 && period_s > 0.0);
        let phase = (phase_seed % 10_007) as f64 / 10_007.0 * std::f64::consts::TAU;
        ClockModel { amplitude_ms, period_s, phase }
    }

    /// Typical NTP-disciplined residual: ±0.4 ms over ~17 minutes.
    pub fn ntp_nominal(phase_seed: u64) -> ClockModel {
        ClockModel::new(0.4, 1024.0, phase_seed)
    }

    /// Offset (prober clock − server clock) at `at`, in ms.
    pub fn offset_ms(&self, at: JulianDate) -> f64 {
        let t = at.0 * 86_400.0;
        let w1 = std::f64::consts::TAU / self.period_s;
        let w2 = w1 * std::f64::consts::E / 2.0; // incommensurate second tone
        self.amplitude_ms * (0.7 * (w1 * t + self.phase).sin() + 0.3 * (w2 * t).sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_is_bounded_by_amplitude() {
        let c = ClockModel::ntp_nominal(42);
        let t0 = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
        for k in 0..5_000 {
            let off = c.offset_ms(t0.plus_seconds(k as f64 * 1.7));
            assert!(off.abs() <= c.amplitude_ms + 1e-9, "offset {off}");
        }
    }

    #[test]
    fn offset_wanders_over_time() {
        let c = ClockModel::ntp_nominal(42);
        let t0 = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
        let a = c.offset_ms(t0);
        let b = c.offset_ms(t0.plus_seconds(300.0));
        assert_ne!(a, b);
    }

    #[test]
    fn offset_is_smooth_at_probe_cadence() {
        // Between consecutive 20 ms probes the offset moves by far less
        // than the RTT noise floor.
        let c = ClockModel::ntp_nominal(7);
        let t0 = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let d = (c.offset_ms(t0.plus_seconds(0.02)) - c.offset_ms(t0)).abs();
        assert!(d < 0.001, "per-probe drift {d} ms");
    }

    #[test]
    fn different_seeds_give_different_phases() {
        let t0 = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
        let a = ClockModel::ntp_nominal(1).offset_ms(t0);
        let b = ClockModel::ntp_nominal(2).offset_ms(t0);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_amplitude_is_a_perfect_clock() {
        let c = ClockModel::new(0.0, 100.0, 5);
        let t0 = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
        assert_eq!(c.offset_ms(t0), 0.0);
    }
}
