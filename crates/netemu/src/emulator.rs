//! The end-to-end emulator: hidden scheduler + MAC + bent pipe + loss.

use crate::clock::ClockModel;
use crate::groundstation::PopSite;
use crate::loss::GilbertElliott;
use crate::path::bent_pipe_rtt_ms;
use crate::trace::{LossCause, ProbeRecord, RttTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use starsense_astro::time::JulianDate;
use starsense_astro::vec3::Vec3;
use starsense_constellation::{Constellation, Satellite};
use starsense_faults::{BurstKind, FaultPlan};
use starsense_scheduler::slots::slot_index;
use starsense_scheduler::{Allocation, GlobalScheduler, MacScheduler};
use starsense_sgp4::Sgp4Batch;

/// Emulator tunables.
#[derive(Debug, Clone, PartialEq)]
pub struct EmulatorConfig {
    /// Probe period, ms (the paper: 1 packet / 20 ms).
    pub probe_period_ms: f64,
    /// MAC radio-frame length, ms.
    pub frame_ms: f64,
    /// Gaussian RTT jitter sigma, ms.
    pub jitter_ms: f64,
    /// Loss chain parameters.
    pub loss: GilbertElliott,
    /// Extra loss probability during the handover window at the start of
    /// each slot.
    pub handover_loss_prob: f64,
    /// Length of the handover window, ms.
    pub handover_window_ms: f64,
    /// Minimum satellite elevation from a ground station, degrees.
    pub min_gs_elevation_deg: f64,
    /// Largest number of terminals sharing a satellite's MAC cycle.
    pub max_mac_share: usize,
    /// Deterministic fault-injection plan. The default
    /// ([`FaultPlan::none`]) disables injection entirely and leaves probe
    /// traces bit-identical to a plan-less emulator: fault decisions come
    /// from counter-based hashes, never from the emulator's RNG stream.
    pub faults: FaultPlan,
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        EmulatorConfig {
            probe_period_ms: 20.0,
            frame_ms: 1.5,
            jitter_ms: 0.18,
            loss: GilbertElliott::starlink_nominal(),
            handover_loss_prob: 0.35,
            handover_window_ms: 120.0,
            min_gs_elevation_deg: 25.0,
            max_mac_share: 6,
            faults: FaultPlan::none(),
        }
    }
}

/// One slot of the iPerf-style capacity measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputRecord {
    /// Global slot index.
    pub slot: i64,
    /// Slot start.
    pub slot_start: JulianDate,
    /// Serving satellite (`None` = outage).
    pub serving_sat: Option<u32>,
    /// Capacity figures for the slot (`None` = outage).
    pub throughput: Option<crate::throughput::SlotThroughput>,
}

/// The measurement-path emulator.
///
/// Owns the hidden [`GlobalScheduler`] and drives it slot by slot while
/// generating probe traffic, exactly mirroring the paper's setup: the
/// prober cannot see the scheduler; it only sees RTTs.
pub struct Emulator<'a> {
    constellation: &'a Constellation,
    scheduler: GlobalScheduler,
    /// PoP (with ground stations) for each terminal, by terminal id.
    terminal_pops: Vec<PopSite>,
    config: EmulatorConfig,
    clocks: Vec<ClockModel>,
    rng: StdRng,
    loss_chains: Vec<GilbertElliott>,
}

impl<'a> Emulator<'a> {
    /// Creates an emulator. `terminal_pops[i]` must be the PoP serving
    /// `scheduler.terminals()[i]`.
    ///
    /// # Panics
    ///
    /// Panics when the PoP list length does not match the terminal count.
    pub fn new(
        constellation: &'a Constellation,
        scheduler: GlobalScheduler,
        terminal_pops: Vec<PopSite>,
        config: EmulatorConfig,
        seed: u64,
    ) -> Emulator<'a> {
        assert_eq!(terminal_pops.len(), scheduler.terminals().len(), "one PoP per terminal");
        let n = scheduler.terminals().len();
        let clocks = (0..n).map(|i| ClockModel::ntp_nominal(seed ^ i as u64)).collect();
        let loss_chains = (0..n).map(|_| config.loss).collect();
        Emulator {
            constellation,
            scheduler,
            terminal_pops,
            config,
            clocks,
            rng: StdRng::seed_from_u64(seed),
            loss_chains,
        }
    }

    /// Read access to the scheduler (for oracle analyses in tests/benches).
    pub fn scheduler(&self) -> &GlobalScheduler {
        &self.scheduler
    }

    /// Runs probes from every terminal simultaneously for `duration_s`
    /// seconds starting at `from`, returning one trace per terminal.
    ///
    /// The global scheduler fires exactly once per 15-second slot for all
    /// terminals together, matching the paper's key observation that
    /// reallocation is globally synchronized.
    ///
    /// Probes are driven as **slot cohorts**: everything a slot's probes
    /// share — the allocation, each terminal's MAC cycle, the resolved
    /// catalog entry of every distinct serving satellite — is computed once
    /// at the slot boundary, and each probe instant propagates a serving
    /// satellite once no matter how many terminals it carries. Only the
    /// per-terminal draws (loss chain, handover, jitter) stay in the inner
    /// loop, in the historical order, so traces are byte-identical to the
    /// old per-probe engine (pinned by the golden-fingerprint tests).
    pub fn probe_all(&mut self, from: JulianDate, duration_s: f64) -> Vec<RttTrace> {
        let n_terminals = self.scheduler.terminals().len();
        let mut traces: Vec<RttTrace> = (0..n_terminals)
            .map(|terminal_id| RttTrace { terminal_id, records: Vec::new() })
            .collect();

        let n_probes = (duration_s * 1_000.0 / self.config.probe_period_ms).floor() as u64;
        let mut current_slot: Option<i64> = None;
        let mut cohort = SlotCohort {
            allocations: Vec::new(),
            macs: Vec::new(),
            serving: Vec::new(),
            batch: Sgp4Batch::default(),
        };
        // Reusable per-probe buffer: this instant's TEME position of each
        // cohort satellite.
        let mut teme: Vec<Option<Vec3>> = Vec::new();

        for seq in 0..n_probes {
            let at = from.plus_seconds(seq as f64 * self.config.probe_period_ms / 1_000.0);
            let slot = slot_index(at);
            if current_slot != Some(slot) {
                cohort = self.build_cohort(at);
                current_slot = Some(slot);
            }

            // Serving satellites move ~150 km within a slot, so positions
            // are per-probe — but the cohort's distinct satellites are
            // propagated as one SoA batch per probe instant, bit-identical
            // to satellite-by-satellite [`Satellite::true_position`] calls.
            cohort.batch.positions_into(at, &mut teme);

            for t in 0..n_terminals {
                let record = self.probe_in_cohort(t, seq, at, &cohort, &teme);
                traces[t].records.push(record);
            }
        }
        traces
    }

    /// Runs the iPerf side of the measurement: per-slot uplink capacity for
    /// one terminal over `slots` consecutive slots. Capacity steps at every
    /// 15-second boundary are the throughput twin of Figure 2's RTT
    /// regimes: the serving satellite's elevation sets the link rate and
    /// the MAC share divides it.
    pub fn throughput_trace(
        &mut self,
        terminal_id: usize,
        from: JulianDate,
        slots: usize,
    ) -> Vec<ThroughputRecord> {
        let mut out = Vec::with_capacity(slots);
        let first_mid = starsense_scheduler::slots::slot_start(from)
            .plus_seconds(starsense_scheduler::slots::SLOT_PERIOD_SECONDS / 2.0);
        for k in 0..slots {
            let at =
                first_mid.plus_seconds(k as f64 * starsense_scheduler::slots::SLOT_PERIOD_SECONDS);
            let allocs = self.scheduler.allocate(self.constellation, at);
            let alloc = &allocs[terminal_id];
            let throughput = alloc.chosen.as_ref().map(|chosen| {
                crate::throughput::slot_throughput(
                    &chosen.look,
                    self.mac_share(chosen.norad_id, alloc.slot),
                )
            });
            out.push(ThroughputRecord {
                slot: alloc.slot,
                slot_start: alloc.slot_start,
                serving_sat: alloc.chosen_id(),
                throughput,
            });
        }
        out
    }

    /// Convenience wrapper returning a single terminal's trace (the whole
    /// system is still simulated — allocation is global).
    pub fn probe_trace(
        &mut self,
        terminal_id: usize,
        from: JulianDate,
        duration_s: f64,
    ) -> RttTrace {
        let mut traces = self.probe_all(from, duration_s);
        traces.swap_remove(terminal_id)
    }

    /// Number of terminals sharing the MAC cycle of satellite `sat_id`
    /// during `slot` (including the queried terminal), derived from the
    /// hidden background load.
    fn mac_share(&self, sat_id: u32, slot: i64) -> usize {
        let load = self.scheduler.load_model().utilization(sat_id, slot);
        1 + (load * (self.config.max_mac_share - 1) as f64).round() as usize
    }

    /// Builds the serving satellite's MAC cycle for one terminal's
    /// allocation: our terminal plus `share - 1` background terminals, at a
    /// deterministic position in the round-robin order. The share itself is
    /// resolved by the caller ([`Emulator::build_cohort`] memoizes it per
    /// distinct serving satellite).
    fn build_mac(&self, alloc: &Allocation, share: usize) -> Option<(MacScheduler, usize)> {
        let chosen = alloc.chosen.as_ref()?;
        let position = (mix(chosen.norad_id as u64, alloc.slot as u64) as usize) % share;

        let marker = usize::MAX - alloc.terminal_id; // avoid clashing with bg ids
        let mut attached: Vec<usize> = (0..share - 1).map(|k| 10_000 + k).collect();
        attached.insert(position, marker);
        let mut mac = MacScheduler::new(self.config.frame_ms);
        mac.set_attached(attached);
        Some((mac, marker))
    }

    /// Resolves everything a slot's probes share: the allocation, each
    /// terminal's MAC cycle, and — once, not per probe — the catalog entry
    /// of every distinct serving satellite. The per-probe
    /// `Constellation::get` linear scans this replaces dominated the old
    /// engine's probe loop at terminal scale.
    fn build_cohort(&mut self, at: JulianDate) -> SlotCohort {
        let allocations = self.scheduler.allocate(self.constellation, at);
        let mut macs = Vec::with_capacity(allocations.len());
        let mut serving = Vec::with_capacity(allocations.len());
        let mut sats: Vec<&'a Satellite> = Vec::new();
        // `mac_share` is a pure hash of (satellite, slot) and every
        // allocation in the cohort shares the slot, so the share is
        // memoized per distinct serving satellite rather than rehashed for
        // every terminal the satellite carries.
        let mut shares: Vec<(u32, usize)> = Vec::new();
        for alloc in &allocations {
            let share = alloc.chosen.as_ref().map(|chosen| {
                match shares.iter().find(|&&(id, _)| id == chosen.norad_id) {
                    Some(&(_, share)) => share,
                    None => {
                        let share = self.mac_share(chosen.norad_id, alloc.slot);
                        shares.push((chosen.norad_id, share));
                        share
                    }
                }
            });
            macs.push(share.and_then(|share| self.build_mac(alloc, share)));
            serving.push(alloc.chosen_id().and_then(|id| {
                match sats.iter().position(|s| s.norad_id == id) {
                    Some(k) => Some(k),
                    None => {
                        let sat = self.constellation.get(id)?;
                        sats.push(sat);
                        Some(sats.len() - 1)
                    }
                }
            }));
        }
        // Transpose the distinct serving set into an SoA batch once per
        // slot; every probe instant then propagates all cohort satellites
        // in one 3-pass sweep.
        let batch = Sgp4Batch::from_propagators(sats.iter().map(|s| s.truth_propagator()));
        SlotCohort { allocations, macs, serving, batch }
    }

    /// Emulates one probe from one terminal against its slot cohort.
    ///
    /// `teme[k]` must hold the position of `cohort.sats[k]` at `at`. The
    /// RNG-consuming steps (loss chain, handover draw, jitter) run in the
    /// exact order of the historical per-probe engine; only the pure
    /// lookups moved to the cohort.
    fn probe_in_cohort(
        &mut self,
        terminal_id: usize,
        seq: u64,
        at: JulianDate,
        cohort: &SlotCohort,
        teme: &[Option<Vec3>],
    ) -> ProbeRecord {
        let alloc = &cohort.allocations[terminal_id];
        let slot = alloc.slot;
        let serving_sat = alloc.chosen_id();
        let lost = |cause: LossCause| ProbeRecord {
            at,
            seq,
            rtt_ms: None,
            owd_up_ms: None,
            slot,
            serving_sat,
            loss: Some(cause),
        };

        // Outage: no satellite assigned.
        let (Some(_), Some((mac, marker))) =
            (alloc.chosen.as_ref(), cohort.macs[terminal_id].as_ref())
        else {
            return lost(LossCause::Outage);
        };

        // Loss chain + handover burst. These draws stay first and
        // unconditional so the RNG stream matches the historical engine
        // regardless of any fault plan.
        let in_handover =
            at.seconds_since(alloc.slot_start) * 1_000.0 < self.config.handover_window_ms;
        let chain_lost = self.loss_chains[terminal_id].step(&mut self.rng);
        let handover_lost =
            in_handover && self.rng.random_range(0.0..1.0) < self.config.handover_loss_prob;
        if chain_lost {
            return lost(LossCause::Chain);
        }
        if handover_lost {
            return lost(LossCause::Handover);
        }

        // Injected probe bursts: decisions come from counter-based hashes
        // keyed by (terminal, slot, seq), never from `self.rng`, so a
        // fault-free plan leaves the trace bit-identical.
        let slot_frac =
            at.seconds_since(alloc.slot_start) / starsense_scheduler::slots::SLOT_PERIOD_SECONDS;
        let burst = self.config.faults.probe_burst(terminal_id as u64, slot);
        if let Some(b) = &burst {
            if b.kind == BurstKind::Loss && b.covers(slot_frac) {
                return lost(LossCause::FaultBurst);
            }
        }

        // Current satellite position, propagated once per probe instant at
        // the cohort level.
        let Some(si) = cohort.serving[terminal_id] else { return lost(LossCause::Outage) };
        let Some(sat_teme) = teme[si] else { return lost(LossCause::Outage) };

        // Bent-pipe geometry through the best ground station.
        let pop = &self.terminal_pops[terminal_id];
        let Some((_gs, gs_range)) =
            pop.best_ground_station(sat_teme, at, self.config.min_gs_elevation_deg)
        else {
            // The satellite cannot reach any of the PoP's gateways.
            return lost(LossCause::NoGateway);
        };

        let terminal = &self.scheduler.terminals()[terminal_id];
        let base = bent_pipe_rtt_ms(terminal.location, sat_teme, gs_range, at);

        // MAC round-robin queueing for the uplink.
        let t_in_slot_ms = at.seconds_since(alloc.slot_start) * 1_000.0;
        let wait = mac.wait_ms(*marker, t_in_slot_ms).unwrap_or(0.0);

        let jitter = gauss(&mut self.rng) * self.config.jitter_ms;
        let fault_jitter = match &burst {
            Some(b) if b.kind == BurstKind::Jitter && b.covers(slot_frac) => {
                self.config.faults.burst_jitter_ms(b, terminal_id as u64, slot, seq)
            }
            _ => 0.0,
        };
        let rtt = (base + wait + jitter + fault_jitter).max(0.1);

        // One-way delay as iRTT reports it: uplink share plus clock offset.
        let owd = rtt * 0.55 + self.clocks[terminal_id].offset_ms(at);

        ProbeRecord {
            at,
            seq,
            rtt_ms: Some(rtt),
            owd_up_ms: Some(owd),
            slot,
            serving_sat,
            loss: None,
        }
    }
}

/// Per-slot cohort state: everything about a slot that is shared by all of
/// its probes, hoisted out of the per-probe loop.
struct SlotCohort {
    /// The slot's allocations, in terminal order.
    allocations: Vec<Allocation>,
    /// MAC cycle (and the terminal's marker in it) per terminal.
    macs: Vec<Option<(MacScheduler, usize)>>,
    /// For each terminal, lane in `batch` of its serving satellite
    /// (`None` = outage, or a catalog id the constellation does not know).
    serving: Vec<Option<usize>>,
    /// The slot's distinct serving satellites' truth propagators,
    /// catalog-resolved once and transposed to struct-of-arrays:
    /// `batch.positions_into(at, ..)` fills one lane per satellite,
    /// bit-identical to per-satellite propagation.
    batch: Sgp4Batch,
}

fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 31)
}

fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groundstation::paper_pops;
    use starsense_astro::frames::Geodetic;
    use starsense_constellation::ConstellationBuilder;
    use starsense_scheduler::{SchedulerPolicy, Terminal};
    use starsense_stats::mann_whitney_u;

    fn setup(constellation: &Constellation) -> Emulator<'_> {
        let terminals = vec![
            Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2)),
            Terminal::new(1, "Madrid", Geodetic::new(40.42, -3.70, 0.65)),
        ];
        let pops = paper_pops();
        let scheduler = GlobalScheduler::new(SchedulerPolicy::default(), terminals, 77);
        Emulator::new(
            constellation,
            scheduler,
            vec![pops[0].clone(), pops[2].clone()],
            EmulatorConfig::default(),
            77,
        )
    }

    #[test]
    fn traces_have_realistic_rtts_and_low_loss() {
        let c = ConstellationBuilder::starlink_gen1().seed(77).build();
        let mut emu = setup(&c);
        let from = JulianDate::from_ymd_hms(2023, 6, 1, 15, 0, 0.0);
        let traces = emu.probe_all(from, 45.0);
        assert_eq!(traces.len(), 2);
        for t in &traces {
            let rtts = t.rtts();
            assert!(rtts.len() > 1_500, "got {} samples", rtts.len());
            let mean = rtts.iter().sum::<f64>() / rtts.len() as f64;
            assert!((10.0..60.0).contains(&mean), "mean rtt {mean}");
            assert!(t.loss_rate() < 0.15, "loss {}", t.loss_rate());
        }
    }

    #[test]
    fn windows_change_every_15_seconds() {
        let c = ConstellationBuilder::starlink_gen1().seed(77).build();
        let mut emu = setup(&c);
        let from = JulianDate::from_ymd_hms(2023, 6, 1, 15, 0, 0.0);
        let trace = emu.probe_trace(0, from, 61.0);
        let windows = trace.windows();
        // 61 s spans 4-6 slot windows (first and last partial).
        assert!((4..=6).contains(&windows.len()), "{} windows", windows.len());
        // Full windows hold ~750 probes at 20 ms.
        let full = &windows[1];
        assert!(full.rtts.len() + full.lost > 700, "window size {}", full.rtts.len());
    }

    #[test]
    fn consecutive_windows_are_statistically_distinct() {
        // The §3 Mann-Whitney result, reproduced against the emulator.
        let c = ConstellationBuilder::starlink_gen1().seed(77).build();
        let mut emu = setup(&c);
        let from = JulianDate::from_ymd_hms(2023, 6, 1, 15, 0, 0.0);
        let trace = emu.probe_trace(0, from, 120.0);
        let windows = trace.windows();
        let mut significant = 0;
        let mut tested = 0;
        for pair in windows.windows(2) {
            if pair[0].rtts.len() > 100 && pair[1].rtts.len() > 100 {
                if pair[0].serving_sat == pair[1].serving_sat {
                    continue; // hysteresis kept the satellite: same regime
                }
                tested += 1;
                if let Some(t) = mann_whitney_u(&pair[0].rtts, &pair[1].rtts) {
                    if t.is_significant(0.05) {
                        significant += 1;
                    }
                }
            }
        }
        assert!(tested >= 3, "need several window pairs, got {tested}");
        assert!(
            significant * 10 >= tested * 8,
            "only {significant}/{tested} window pairs distinct"
        );
    }

    #[test]
    fn same_seed_reproduces_traces() {
        let c = ConstellationBuilder::starlink_gen1().seed(77).build();
        let from = JulianDate::from_ymd_hms(2023, 6, 1, 15, 0, 0.0);
        let a = setup(&c).probe_trace(0, from, 10.0);
        let b = setup(&c).probe_trace(0, from, 10.0);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.rtt_ms, y.rtt_ms);
            assert_eq!(x.serving_sat, y.serving_sat);
        }
    }

    #[test]
    fn throughput_trace_steps_with_the_scheduler() {
        let c = ConstellationBuilder::starlink_gen1().seed(77).build();
        let mut emu = setup(&c);
        let from = JulianDate::from_ymd_hms(2023, 6, 1, 15, 0, 0.0);
        let recs = emu.throughput_trace(0, from, 20);
        assert_eq!(recs.len(), 20);
        // Slots are consecutive and mostly served.
        for w in recs.windows(2) {
            assert_eq!(w[1].slot, w[0].slot + 1);
        }
        let served: Vec<&ThroughputRecord> =
            recs.iter().filter(|r| r.throughput.is_some()).collect();
        assert!(served.len() >= 18, "served {}", served.len());
        for r in &served {
            let t = r.throughput.unwrap();
            assert!(t.terminal_share_mbps > 0.0);
            assert!(t.terminal_share_mbps <= t.link_capacity_mbps);
            assert!((1..=6).contains(&t.mac_share));
        }
        // Capacity steps at reallocations: consecutive slots with different
        // satellites should usually change the share.
        let mut changes = 0;
        for w in served.windows(2) {
            if w[0].serving_sat != w[1].serving_sat
                && w[0].throughput.unwrap().terminal_share_mbps
                    != w[1].throughput.unwrap().terminal_share_mbps
            {
                changes += 1;
            }
        }
        assert!(changes >= 5, "capacity steps: {changes}");
    }

    #[test]
    fn zero_length_probe_windows_yield_empty_traces() {
        let c = ConstellationBuilder::starlink_mini().seed(42).build();
        let mut emu = setup(&c);
        let from = JulianDate::from_ymd_hms(2023, 6, 1, 15, 0, 0.0);
        for duration in [0.0, -5.0, 0.01] {
            let traces = emu.probe_all(from, duration);
            assert_eq!(traces.len(), 2);
            assert!(
                traces.iter().all(|t| t.records.is_empty()),
                "duration {duration} produced probes"
            );
        }
        // A window of exactly one probe period carries exactly one probe.
        let traces = emu.probe_all(from, EmulatorConfig::default().probe_period_ms / 1_000.0);
        assert!(traces.iter().all(|t| t.records.len() == 1));
    }

    fn setup_with_faults(constellation: &Constellation, plan: FaultPlan) -> Emulator<'_> {
        let terminals = vec![
            Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2)),
            Terminal::new(1, "Madrid", Geodetic::new(40.42, -3.70, 0.65)),
        ];
        let pops = paper_pops();
        let scheduler = GlobalScheduler::new(SchedulerPolicy::default(), terminals, 77);
        let config = EmulatorConfig { faults: plan, ..EmulatorConfig::default() };
        Emulator::new(constellation, scheduler, vec![pops[0].clone(), pops[2].clone()], config, 77)
    }

    #[test]
    fn fault_free_plan_is_bit_identical_to_no_plan() {
        use starsense_faults::FaultRates;
        let c = ConstellationBuilder::starlink_mini().seed(42).build();
        let from = JulianDate::from_ymd_hms(2023, 6, 1, 15, 0, 0.0);
        let plain = setup(&c).probe_all(from, 45.0);
        // A seeded plan whose rates are all zero must not perturb a single
        // bit: fault decisions never touch the emulator's RNG stream.
        let faulted =
            setup_with_faults(&c, FaultPlan::new(12345, FaultRates::none())).probe_all(from, 45.0);
        for (a, b) in plain.iter().zip(&faulted) {
            assert_eq!(a.records.len(), b.records.len());
            for (x, y) in a.records.iter().zip(&b.records) {
                assert_eq!(x.rtt_ms.map(f64::to_bits), y.rtt_ms.map(f64::to_bits));
                assert_eq!(x.owd_up_ms.map(f64::to_bits), y.owd_up_ms.map(f64::to_bits));
                assert_eq!(x.loss, y.loss);
            }
        }
    }

    #[test]
    fn probe_bursts_inject_marked_loss_and_jitter() {
        use starsense_faults::FaultRates;
        let c = ConstellationBuilder::starlink_mini().seed(42).build();
        let from = JulianDate::from_ymd_hms(2023, 6, 1, 15, 0, 0.0);
        let plan = FaultPlan::new(5, FaultRates { probe_burst: 1.0, ..FaultRates::none() });
        let baseline = setup(&c).probe_all(from, 90.0);
        let chaotic = setup_with_faults(&c, plan).probe_all(from, 90.0);

        // Every lost probe carries a cause; every answered probe none.
        let mut burst_losses = 0usize;
        for t in &chaotic {
            for r in &t.records {
                assert_eq!(r.loss.is_some(), r.rtt_ms.is_none());
            }
            burst_losses += t.losses_by_cause(LossCause::FaultBurst);
        }
        // Burst rate 1.0 puts a burst in every (terminal, slot); about
        // half are loss bursts, so injected losses must show up.
        assert!(burst_losses > 50, "only {burst_losses} fault-burst losses");

        // Aggregate loss strictly exceeds the organic baseline.
        let lossrate = |ts: &[RttTrace]| {
            let total: usize = ts.iter().map(|t| t.records.len()).sum();
            let lost: usize =
                ts.iter().map(|t| t.records.iter().filter(|r| r.rtt_ms.is_none()).count()).sum();
            lost as f64 / total as f64
        };
        assert!(lossrate(&chaotic) > lossrate(&baseline));

        // Jitter bursts inflate the upper tail without touching loss.
        let max_rtt = |ts: &[RttTrace]| ts.iter().flat_map(|t| t.rtts()).fold(0.0_f64, f64::max);
        assert!(max_rtt(&chaotic) > max_rtt(&baseline) + 10.0, "no jitter burst visible");

        // And the whole chaotic run reproduces bit for bit.
        let again = setup_with_faults(&c, plan).probe_all(from, 90.0);
        for (a, b) in chaotic.iter().zip(&again) {
            for (x, y) in a.records.iter().zip(&b.records) {
                assert_eq!(x.rtt_ms.map(f64::to_bits), y.rtt_ms.map(f64::to_bits));
                assert_eq!(x.loss, y.loss);
            }
        }
    }

    #[test]
    fn mac_bands_are_visible_within_a_window() {
        let c = ConstellationBuilder::starlink_gen1().seed(77).build();
        let mut emu = setup(&c);
        let from = JulianDate::from_ymd_hms(2023, 6, 1, 15, 0, 0.0);
        let trace = emu.probe_trace(0, from, 120.0);
        // Find a full window whose serving satellite has a shared MAC cycle
        // (RTT spread > one frame) and verify multimodality: the gaps
        // between sorted unique RTT levels should show steps ≈ frame size.
        let windows = trace.windows();
        let mut found_banded = false;
        for w in &windows {
            if w.rtts.len() < 300 {
                continue;
            }
            let mut sorted = w.rtts.clone();
            sorted.sort_by(f64::total_cmp);
            let spread = sorted[sorted.len() - 10] - sorted[10];
            if spread > 2.0 {
                found_banded = true;
            }
        }
        assert!(found_banded, "no window showed multi-band structure");
    }
}
