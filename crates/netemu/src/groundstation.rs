//! Ground stations and points of presence.
//!
//! §2: "Ground stations consist of a set of phased-array antennas that
//! receive traffic from satellites and send it through wired links to
//! Starlink's PoPs... Like user terminals, ground stations can communicate
//! with satellites at an angle of elevation higher than 25°." The paper's
//! destination servers sit at the PoP, so terrestrial latency beyond the
//! GS→PoP fiber hop is out of the measurement path.

use starsense_astro::frames::{look_angles, teme_to_ecef, Geodetic};
use starsense_astro::time::JulianDate;
use starsense_astro::vec3::Vec3;

/// A ground-station site.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundStation {
    /// Site name.
    pub name: String,
    /// Geodetic location.
    pub location: Geodetic,
}

/// A PoP with the ground stations that home to it.
#[derive(Debug, Clone, PartialEq)]
pub struct PopSite {
    /// PoP name (city).
    pub name: String,
    /// PoP location (where the measurement server sits).
    pub location: Geodetic,
    /// Ground stations wired to this PoP.
    pub ground_stations: Vec<GroundStation>,
}

impl PopSite {
    /// Builds a PoP with a ring of `n` ground stations placed
    /// `spread_deg` degrees of latitude/longitude around it — the pattern
    /// of real deployments, where several gateway sites within a few
    /// hundred kilometres feed one PoP.
    pub fn with_gs_ring(
        name: impl Into<String>,
        location: Geodetic,
        n: usize,
        spread_deg: f64,
    ) -> PopSite {
        let name = name.into();
        let ground_stations = (0..n)
            .map(|i| {
                let ang = std::f64::consts::TAU * i as f64 / n as f64;
                GroundStation {
                    name: format!("{name}-gs{i}"),
                    location: Geodetic::new(
                        location.lat_deg + spread_deg * ang.cos(),
                        location.lon_deg + spread_deg * ang.sin(),
                        location.alt_km,
                    ),
                }
            })
            .collect();
        PopSite { name, location, ground_stations }
    }

    /// Selects the ground station to relay through for a satellite at TEME
    /// position `sat_teme`: the visible (elevation ≥ `min_elevation_deg`)
    /// station with the shortest slant range. Returns `None` when no
    /// station sees the satellite (the bent pipe is broken — the emulator
    /// drops such packets).
    pub fn best_ground_station(
        &self,
        sat_teme: Vec3,
        at: JulianDate,
        min_elevation_deg: f64,
    ) -> Option<(&GroundStation, f64)> {
        let ecef = teme_to_ecef(sat_teme, at);
        self.ground_stations
            .iter()
            .filter_map(|gs| {
                let look = look_angles(gs.location, ecef);
                (look.elevation_deg >= min_elevation_deg).then_some((gs, look.range_km))
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// The paper's four measurement regions, with a PoP placed at the real
/// Starlink PoP city serving each (Chicago, New York, Madrid, Seattle) and
/// three gateway sites around it.
pub fn paper_pops() -> Vec<PopSite> {
    vec![
        PopSite::with_gs_ring("Chicago", Geodetic::new(41.88, -87.63, 0.18), 3, 2.0),
        PopSite::with_gs_ring("NewYork", Geodetic::new(40.71, -74.01, 0.01), 3, 2.0),
        PopSite::with_gs_ring("Madrid", Geodetic::new(40.42, -3.70, 0.65), 3, 2.0),
        PopSite::with_gs_ring("Seattle", Geodetic::new(47.61, -122.33, 0.05), 3, 2.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use starsense_astro::frames::{ecef_to_teme, geodetic_to_ecef};

    #[test]
    fn gs_ring_is_centred_on_the_pop() {
        let p = PopSite::with_gs_ring("X", Geodetic::new(40.0, -90.0, 0.1), 4, 1.5);
        assert_eq!(p.ground_stations.len(), 4);
        let mean_lat: f64 = p.ground_stations.iter().map(|g| g.location.lat_deg).sum::<f64>() / 4.0;
        let mean_lon: f64 = p.ground_stations.iter().map(|g| g.location.lon_deg).sum::<f64>() / 4.0;
        assert!((mean_lat - 40.0).abs() < 1e-9);
        assert!((mean_lon + 90.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_satellite_selects_a_station() {
        let p = PopSite::with_gs_ring("X", Geodetic::new(40.0, -90.0, 0.1), 3, 2.0);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
        // Satellite straight above the PoP at 550 km.
        let pop_ecef = geodetic_to_ecef(p.location);
        let sat_ecef = pop_ecef.unit() * (pop_ecef.norm() + 550.0);
        let sat_teme = ecef_to_teme(sat_ecef, at);
        let (gs, range) = p.best_ground_station(sat_teme, at, 25.0).expect("visible");
        assert!(range < 650.0, "range {range}");
        assert!(gs.name.starts_with("X-gs"));
    }

    #[test]
    fn satellite_over_the_horizon_selects_nothing() {
        let p = PopSite::with_gs_ring("X", Geodetic::new(40.0, -90.0, 0.1), 3, 2.0);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
        // Satellite above the antipode.
        let anti = geodetic_to_ecef(Geodetic::new(-40.0, 90.0, 550.0));
        let sat_teme = ecef_to_teme(anti, at);
        assert!(p.best_ground_station(sat_teme, at, 25.0).is_none());
    }

    #[test]
    fn paper_pops_cover_the_four_regions() {
        let pops = paper_pops();
        assert_eq!(pops.len(), 4);
        let names: Vec<&str> = pops.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["Chicago", "NewYork", "Madrid", "Seattle"]);
        for p in &pops {
            assert_eq!(p.ground_stations.len(), 3);
        }
    }

    #[test]
    fn closest_visible_station_wins() {
        let p = PopSite {
            name: "X".into(),
            location: Geodetic::new(40.0, -90.0, 0.0),
            ground_stations: vec![
                GroundStation { name: "near".into(), location: Geodetic::new(40.0, -90.0, 0.0) },
                GroundStation { name: "far".into(), location: Geodetic::new(43.0, -90.0, 0.0) },
            ],
        };
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
        let pop_ecef = geodetic_to_ecef(p.location);
        let sat_teme = ecef_to_teme(pop_ecef.unit() * (pop_ecef.norm() + 550.0), at);
        let (gs, _) = p.best_ground_station(sat_teme, at, 25.0).unwrap();
        assert_eq!(gs.name, "near");
    }
}
