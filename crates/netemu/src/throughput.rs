//! Uplink throughput model (the iPerf side of the measurement).
//!
//! §3: alongside the 20 ms iRTT probes, the paper ran "iPerf3 at a
//! bandwidth of 50% of the upstream connection" — enough load to exercise
//! the MAC scheduler without saturating it. This module models the
//! per-slot uplink capacity a terminal sees:
//!
//! * the radio's spectral efficiency follows the link budget, which
//!   improves with elevation (shorter slant range → higher SNR → denser
//!   modulation),
//! * the MAC round-robin divides air time across the attached terminals,
//! * the global scheduler's 15-second reallocations therefore produce
//!   visible capacity steps, the throughput twin of Figure 2's RTT
//!   regimes.

use starsense_astro::frames::LookAngles;

/// Channel bandwidth of one Starlink uplink carrier, MHz (public filings).
pub const CHANNEL_BANDWIDTH_MHZ: f64 = 62.5;

/// Spectral efficiency (bit/s/Hz) of the adaptive modulation at a given
/// elevation.
///
/// A piecewise-linear stand-in for the MODCOD ladder: ~0.8 bit/s/Hz at the
/// 25° rim rising to ~4.5 bit/s/Hz at zenith. The exact ladder is
/// proprietary; what the reproduction needs is the monotone
/// elevation-capacity coupling.
pub fn spectral_efficiency(elevation_deg: f64) -> f64 {
    let el = elevation_deg.clamp(25.0, 90.0);
    let t = (el - 25.0) / 65.0;
    0.8 + t * 3.7
}

/// Per-slot uplink throughput for one terminal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotThroughput {
    /// Raw link capacity at this elevation, Mbit/s (whole carrier).
    pub link_capacity_mbps: f64,
    /// This terminal's share after MAC round-robin division.
    pub terminal_share_mbps: f64,
    /// Terminals sharing the MAC cycle (including this one).
    pub mac_share: usize,
}

/// Computes the slot throughput for a terminal looking at its serving
/// satellite with `look`, sharing the satellite with `mac_share` terminals
/// in total.
///
/// # Panics
///
/// Panics when `mac_share` is zero (a satellite always serves at least the
/// terminal being asked about).
pub fn slot_throughput(look: &LookAngles, mac_share: usize) -> SlotThroughput {
    assert!(mac_share >= 1, "the querying terminal is always attached");
    let link = spectral_efficiency(look.elevation_deg) * CHANNEL_BANDWIDTH_MHZ;
    SlotThroughput {
        link_capacity_mbps: link,
        terminal_share_mbps: link / mac_share as f64,
        mac_share,
    }
}

/// An iPerf-style constant-rate sender: reports whether a target rate is
/// sustainable in a slot and what utilization it induces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IperfSender {
    /// Offered rate, Mbit/s.
    pub rate_mbps: f64,
}

impl IperfSender {
    /// The paper's configuration: 50% of a nominal upstream link.
    pub fn paper_nominal(upstream_mbps: f64) -> IperfSender {
        IperfSender { rate_mbps: 0.5 * upstream_mbps }
    }

    /// Utilization of the terminal's slot share in `[0, ∞)`; values above
    /// 1 mean the sender saturates the slot (queue growth and loss).
    pub fn utilization(&self, slot: &SlotThroughput) -> f64 {
        self.rate_mbps / slot.terminal_share_mbps.max(1e-9)
    }

    /// Whether the slot sustains the offered rate.
    pub fn sustainable(&self, slot: &SlotThroughput) -> bool {
        self.utilization(slot) <= 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn look(el: f64) -> LookAngles {
        LookAngles { elevation_deg: el, azimuth_deg: 0.0, range_km: 800.0 }
    }

    #[test]
    fn efficiency_rises_with_elevation() {
        assert!(spectral_efficiency(25.0) < spectral_efficiency(50.0));
        assert!(spectral_efficiency(50.0) < spectral_efficiency(90.0));
        assert!((spectral_efficiency(25.0) - 0.8).abs() < 1e-12);
        assert!((spectral_efficiency(90.0) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn efficiency_clamps_out_of_range() {
        assert_eq!(spectral_efficiency(10.0), spectral_efficiency(25.0));
        assert_eq!(spectral_efficiency(95.0), spectral_efficiency(90.0));
    }

    #[test]
    fn zenith_alone_beats_rim_shared() {
        let good = slot_throughput(&look(85.0), 1);
        let bad = slot_throughput(&look(30.0), 5);
        assert!(good.terminal_share_mbps > 4.0 * bad.terminal_share_mbps);
    }

    #[test]
    fn mac_share_divides_capacity_exactly() {
        let alone = slot_throughput(&look(60.0), 1);
        let shared = slot_throughput(&look(60.0), 4);
        assert!((alone.terminal_share_mbps / 4.0 - shared.terminal_share_mbps).abs() < 1e-9);
        assert_eq!(alone.link_capacity_mbps, shared.link_capacity_mbps);
    }

    #[test]
    #[should_panic(expected = "always attached")]
    fn zero_share_panics() {
        let _ = slot_throughput(&look(60.0), 0);
    }

    #[test]
    fn paper_nominal_iperf_is_half_upstream() {
        let sender = IperfSender::paper_nominal(40.0);
        assert_eq!(sender.rate_mbps, 20.0);
    }

    #[test]
    fn sustainability_threshold() {
        let slot = slot_throughput(&look(60.0), 2);
        let below = IperfSender { rate_mbps: slot.terminal_share_mbps * 0.9 };
        let above = IperfSender { rate_mbps: slot.terminal_share_mbps * 1.1 };
        assert!(below.sustainable(&slot));
        assert!(!above.sustainable(&slot));
        assert!((below.utilization(&slot) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn capacity_is_in_plausible_mbps_range() {
        // A whole carrier at mid elevation: tens to a couple hundred Mbit/s.
        let s = slot_throughput(&look(55.0), 1);
        assert!((50.0..300.0).contains(&s.link_capacity_mbps), "{}", s.link_capacity_mbps);
    }
}
