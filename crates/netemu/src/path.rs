//! Bent-pipe path latency.

use starsense_astro::frames::{geodetic_to_ecef, teme_to_ecef, Geodetic};
use starsense_astro::time::JulianDate;
use starsense_astro::vec3::Vec3;

/// Speed of light in vacuum, km/s.
pub const SPEED_OF_LIGHT_KM_S: f64 = 299_792.458;

/// Fixed one-way fiber + switching latency from ground station to PoP, ms.
pub const GS_TO_POP_MS: f64 = 0.9;

/// Fixed PoP server turnaround (kernel + application), ms.
pub const POP_TURNAROUND_MS: f64 = 0.4;

/// Fixed per-direction modem/phased-array processing latency, ms.
pub const MODEM_PROCESSING_MS: f64 = 1.8;

/// Propagation-only round-trip time over the bent pipe, in milliseconds:
/// terminal → satellite → ground station (and back), plus fixed wire and
/// processing terms. Excludes MAC queueing (the emulator adds it) and
/// excludes any terrestrial path beyond the PoP — the paper explicitly
/// co-located its servers at the PoP to cut that term out.
pub fn bent_pipe_rtt_ms(
    terminal: Geodetic,
    sat_teme: Vec3,
    gs_range_km: f64,
    at: JulianDate,
) -> f64 {
    let sat_ecef = teme_to_ecef(sat_teme, at);
    let terminal_ecef = geodetic_to_ecef(terminal);
    let up_km = terminal_ecef.distance(sat_ecef);
    let one_way_ms = (up_km + gs_range_km) / SPEED_OF_LIGHT_KM_S * 1_000.0;
    2.0 * (one_way_ms + GS_TO_POP_MS + MODEM_PROCESSING_MS) + POP_TURNAROUND_MS
}

#[cfg(test)]
mod tests {
    use super::*;
    use starsense_astro::frames::ecef_to_teme;

    #[test]
    fn overhead_satellite_gives_realistic_rtt() {
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
        let term = Geodetic::new(41.66, -91.53, 0.2);
        let term_ecef = geodetic_to_ecef(term);
        let sat_ecef = term_ecef.unit() * (term_ecef.norm() + 550.0);
        let sat_teme = ecef_to_teme(sat_ecef, at);
        // GS essentially co-located: range ≈ 560 km.
        let rtt = bent_pipe_rtt_ms(term, sat_teme, 560.0, at);
        // 2 × (1100 km / c ≈ 3.7 ms + 2.7 ms fixed) ≈ 13 ms.
        assert!((10.0..18.0).contains(&rtt), "rtt {rtt}");
    }

    #[test]
    fn lower_elevation_means_higher_rtt() {
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
        let term = Geodetic::new(41.66, -91.53, 0.2);
        let term_ecef = geodetic_to_ecef(term);
        let overhead = ecef_to_teme(term_ecef.unit() * (term_ecef.norm() + 550.0), at);
        // A satellite 1500 km away horizontally at the same altitude.
        let offset = geodetic_to_ecef(Geodetic::new(41.66, -110.0, 550.0));
        let slanted = ecef_to_teme(offset, at);
        let near = bent_pipe_rtt_ms(term, overhead, 560.0, at);
        let far = bent_pipe_rtt_ms(term, slanted, 1600.0, at);
        assert!(far > near + 3.0, "near {near}, far {far}");
    }

    #[test]
    fn rtt_scales_linearly_with_gs_range() {
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
        let term = Geodetic::new(41.66, -91.53, 0.2);
        let term_ecef = geodetic_to_ecef(term);
        let sat = ecef_to_teme(term_ecef.unit() * (term_ecef.norm() + 550.0), at);
        let a = bent_pipe_rtt_ms(term, sat, 600.0, at);
        let b = bent_pipe_rtt_ms(term, sat, 900.0, at);
        let expect = 2.0 * 300.0 / SPEED_OF_LIGHT_KM_S * 1000.0;
        assert!((b - a - expect).abs() < 1e-9);
    }
}
