//! Network emulation for the measurement side of the reproduction.
//!
//! The paper's §3 evidence comes from iRTT probes sent every 20 ms from a
//! Raspberry Pi behind each dish to a server co-located at the regional
//! Starlink PoP. This crate emulates that path end to end:
//!
//! ```text
//! terminal ──RF──▶ satellite ──RF──▶ ground station ──fiber──▶ PoP server
//! ```
//!
//! * [`PopSite`] — a PoP and its nearby ground stations,
//! * [`path`] — bent-pipe propagation latency from real geometry,
//! * [`Emulator`] — drives the hidden global scheduler slot by slot, builds
//!   the per-slot MAC round-robin, and produces [`RttTrace`]s with loss and
//!   clock effects,
//! * [`RttTrace`] — probe records with 15-second window segmentation, the
//!   exact shape the paper's Figure 2 and Mann-Whitney analyses consume.
//!
//! Everything is deterministic under a seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod emulator;
pub mod groundstation;
pub mod loss;
pub mod path;
pub mod throughput;
pub mod trace;

pub use clock::ClockModel;
pub use emulator::{Emulator, EmulatorConfig, ThroughputRecord};
pub use groundstation::{GroundStation, PopSite};
pub use loss::GilbertElliott;
pub use path::{bent_pipe_rtt_ms, SPEED_OF_LIGHT_KM_S};
pub use throughput::{slot_throughput, IperfSender, SlotThroughput};
pub use trace::{LossCause, ProbeRecord, RttTrace, SlotWindow};
