//! RTT traces and their 15-second window segmentation.

use starsense_astro::time::JulianDate;

/// Why a probe produced no RTT sample.
///
/// Real traces only show an unanswered probe; the emulator knows the
/// mechanism and records it so degradation analyses can tell organic loss
/// (bursty radio loss, handover gaps) apart from structural loss (no
/// serving satellite) and injected chaos ([`LossCause::FaultBurst`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossCause {
    /// The Gilbert-Elliott chain dropped the packet.
    Chain,
    /// The extra loss window around the slot boundary ate the packet.
    Handover,
    /// No usable serving satellite this slot (none allocated, the catalog
    /// did not know it, or propagation failed).
    Outage,
    /// The serving satellite could not reach any of the PoP's gateways.
    NoGateway,
    /// An injected [`starsense_faults::ProbeBurst`] covered the probe.
    FaultBurst,
}

/// One probe's outcome.
///
/// Invariant: `loss.is_some()` exactly when `rtt_ms.is_none()` — every
/// lost probe carries its cause, every answered probe carries none.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeRecord {
    /// Send time.
    pub at: JulianDate,
    /// Probe sequence number.
    pub seq: u64,
    /// Measured round-trip time in ms; `None` when the probe was lost.
    pub rtt_ms: Option<f64>,
    /// One-way uplink delay as iRTT would report it — contaminated by the
    /// residual clock offset between prober and server.
    pub owd_up_ms: Option<f64>,
    /// Global scheduler slot the probe was sent in.
    pub slot: i64,
    /// Serving satellite during that slot (ground truth; `None` = outage).
    pub serving_sat: Option<u32>,
    /// Why the probe was lost (`None` for answered probes).
    pub loss: Option<LossCause>,
}

/// A contiguous group of probes sharing one scheduler slot.
#[derive(Debug, Clone)]
pub struct SlotWindow {
    /// Global slot index.
    pub slot: i64,
    /// Serving satellite (ground truth).
    pub serving_sat: Option<u32>,
    /// Send time of the first probe in the window.
    pub start: JulianDate,
    /// Successful RTT samples in the window, in send order.
    pub rtts: Vec<f64>,
    /// Number of lost probes in the window.
    pub lost: usize,
}

impl SlotWindow {
    /// Loss rate within the window.
    pub fn loss_rate(&self) -> f64 {
        let total = self.rtts.len() + self.lost;
        if total == 0 {
            return 0.0;
        }
        self.lost as f64 / total as f64
    }
}

/// A full probe trace from one terminal.
#[derive(Debug, Clone)]
pub struct RttTrace {
    /// Terminal that sent the probes.
    pub terminal_id: usize,
    /// All probe records, in send order.
    pub records: Vec<ProbeRecord>,
}

impl RttTrace {
    /// Successful RTT samples, in send order.
    pub fn rtts(&self) -> Vec<f64> {
        self.records.iter().filter_map(|r| r.rtt_ms).collect()
    }

    /// Number of lost probes attributed to `cause`.
    pub fn losses_by_cause(&self, cause: LossCause) -> usize {
        self.records.iter().filter(|r| r.loss == Some(cause)).count()
    }

    /// Overall loss rate.
    pub fn loss_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let lost = self.records.iter().filter(|r| r.rtt_ms.is_none()).count();
        lost as f64 / self.records.len() as f64
    }

    /// Segments the trace into per-slot windows (the unit of the paper's
    /// Mann-Whitney analysis). Windows appear in time order.
    pub fn windows(&self) -> Vec<SlotWindow> {
        let mut out: Vec<SlotWindow> = Vec::new();
        for r in &self.records {
            let need_new = out.last().map(|w| w.slot != r.slot).unwrap_or(true);
            if need_new {
                out.push(SlotWindow {
                    slot: r.slot,
                    serving_sat: r.serving_sat,
                    start: r.at,
                    rtts: Vec::new(),
                    lost: 0,
                });
            }
            // `out` is non-empty here (pushed above when needed); stay
            // total rather than panicking on the impossible branch.
            if let Some(w) = out.last_mut() {
                match r.rtt_ms {
                    Some(v) => w.rtts.push(v),
                    None => w.lost += 1,
                }
            }
        }
        out
    }

    /// `(seconds since trace start, rtt_ms)` series for plotting Figure 2.
    pub fn series(&self) -> Vec<(f64, f64)> {
        let Some(first) = self.records.first() else { return Vec::new() };
        self.records
            .iter()
            .filter_map(|r| r.rtt_ms.map(|v| (r.at.seconds_since(first.at), v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(sec: f64, slot: i64, rtt: Option<f64>) -> ProbeRecord {
        ProbeRecord {
            at: JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0).plus_seconds(sec),
            seq: (sec * 50.0) as u64,
            rtt_ms: rtt,
            owd_up_ms: rtt.map(|r| r / 2.0),
            slot,
            serving_sat: Some(44_000 + slot as u32),
            loss: if rtt.is_none() { Some(LossCause::Chain) } else { None },
        }
    }

    #[test]
    fn windows_split_on_slot_change() {
        let t = RttTrace {
            terminal_id: 0,
            records: vec![
                record(0.0, 10, Some(25.0)),
                record(0.02, 10, Some(26.0)),
                record(0.04, 10, None),
                record(15.0, 11, Some(31.0)),
                record(15.02, 11, Some(32.0)),
            ],
        };
        let w = t.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].slot, 10);
        assert_eq!(w[0].rtts, vec![25.0, 26.0]);
        assert_eq!(w[0].lost, 1);
        assert!((w[0].loss_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(w[1].rtts.len(), 2);
        assert_eq!(w[1].serving_sat, Some(44_011));
    }

    #[test]
    fn loss_rate_counts_none_records() {
        let t = RttTrace {
            terminal_id: 0,
            records: vec![record(0.0, 1, Some(20.0)), record(0.02, 1, None)],
        };
        assert!((t.loss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(t.rtts(), vec![20.0]);
    }

    #[test]
    fn losses_by_cause_counts_only_matching_markers() {
        let mut outage = record(0.04, 1, None);
        outage.loss = Some(LossCause::Outage);
        let t = RttTrace {
            terminal_id: 0,
            records: vec![record(0.0, 1, Some(20.0)), record(0.02, 1, None), outage],
        };
        assert_eq!(t.losses_by_cause(LossCause::Chain), 1);
        assert_eq!(t.losses_by_cause(LossCause::Outage), 1);
        assert_eq!(t.losses_by_cause(LossCause::FaultBurst), 0);
        // The invariant: markers appear exactly on the lost records.
        for r in &t.records {
            assert_eq!(r.loss.is_some(), r.rtt_ms.is_none());
        }
    }

    #[test]
    fn empty_trace_is_well_behaved() {
        let t = RttTrace { terminal_id: 0, records: vec![] };
        assert_eq!(t.loss_rate(), 0.0);
        assert!(t.windows().is_empty());
        assert!(t.series().is_empty());
    }

    #[test]
    fn series_is_relative_to_first_probe() {
        let t = RttTrace {
            terminal_id: 0,
            records: vec![record(5.0, 1, Some(20.0)), record(5.02, 1, Some(21.0))],
        };
        let s = t.series();
        assert!((s[0].0 - 0.0).abs() < 1e-6);
        assert!((s[1].0 - 0.02).abs() < 1e-4);
    }

    #[test]
    fn interleaved_slot_revisit_starts_a_new_window() {
        // Windows are contiguous runs, not global groups.
        let t = RttTrace {
            terminal_id: 0,
            records: vec![
                record(0.0, 1, Some(20.0)),
                record(15.0, 2, Some(30.0)),
                record(30.0, 1, Some(20.0)), // same slot id reappearing
            ],
        };
        assert_eq!(t.windows().len(), 3);
    }
}
