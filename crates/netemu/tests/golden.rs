//! Golden-trace determinism tests for [`Emulator::probe_all`].
//!
//! The slot-cohort restructure of the probe loop promises *byte-identical*
//! traces — not "statistically equivalent" ones. These tests pin that
//! contract two ways:
//!
//! 1. **Run-to-run**: the same seed must reproduce every record bit for
//!    bit across two fresh emulators (fields compared by bit pattern).
//! 2. **Against a checked-in fingerprint**: an FNV-1a hash over the bit
//!    patterns of every record field, captured from the pre-restructure
//!    per-probe loop. Any change to RNG consumption order, geometry
//!    evaluation, or record layout shows up as a fingerprint mismatch.

use starsense_astro::frames::Geodetic;
use starsense_astro::time::JulianDate;
use starsense_constellation::{Constellation, ConstellationBuilder};
use starsense_netemu::groundstation::paper_pops;
use starsense_netemu::{Emulator, EmulatorConfig, RttTrace};
use starsense_scheduler::{GlobalScheduler, SchedulerPolicy, Terminal};

fn terminals() -> Vec<Terminal> {
    vec![
        Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2)),
        Terminal::new(1, "Seattle", Geodetic::new(47.61, -122.33, 0.1)),
        Terminal::new(2, "Madrid", Geodetic::new(40.42, -3.70, 0.65)),
    ]
}

fn emulator(constellation: &Constellation, seed: u64) -> Emulator<'_> {
    let pops = paper_pops();
    let scheduler = GlobalScheduler::new(SchedulerPolicy::default(), terminals(), seed);
    Emulator::new(
        constellation,
        scheduler,
        vec![pops[0].clone(), pops[3].clone(), pops[2].clone()],
        EmulatorConfig::default(),
        seed,
    )
}

fn start() -> JulianDate {
    JulianDate::from_ymd_hms(2023, 6, 1, 15, 0, 0.0)
}

/// FNV-1a over the bit patterns of every field of every record of every
/// trace, in trace order. Floats hash by `to_bits`, options by a presence
/// tag, so any bit-level divergence anywhere in the stream changes the
/// fingerprint.
fn fingerprint(traces: &[RttTrace]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let mix_opt_f64 = |mix: &mut dyn FnMut(u64), v: Option<f64>| match v {
        Some(x) => {
            mix(1);
            mix(x.to_bits());
        }
        None => mix(0),
    };
    for trace in traces {
        mix(trace.terminal_id as u64);
        mix(trace.records.len() as u64);
        for r in &trace.records {
            mix(r.at.0.to_bits());
            mix(r.seq);
            mix_opt_f64(&mut mix, r.rtt_ms);
            mix_opt_f64(&mut mix, r.owd_up_ms);
            mix(r.slot as u64);
            mix(r.serving_sat.map(|s| 1 + s as u64).unwrap_or(0));
        }
    }
    h
}

/// Fingerprint of the 3-terminal, 90-second, seed-77 workload, captured
/// from the serial per-satellite engine at the time the per-terminal RNG
/// streams landed. The batched slot-cohort engine must reproduce it
/// exactly.
const GOLDEN_MINI_SEED77: u64 = 0xf9ce_b828_7756_c463;

/// Same workload, different seed: a distinct RNG stream must change the
/// fingerprint (guards against a fingerprint that ignores its input).
const GOLDEN_MINI_SEED78: u64 = 0xb475_597d_8fc8_a805;

#[test]
fn probe_all_matches_checked_in_golden_fingerprint() {
    let c = ConstellationBuilder::starlink_mini().seed(42).build();
    let fp77 = fingerprint(&emulator(&c, 77).probe_all(start(), 90.0));
    let fp78 = fingerprint(&emulator(&c, 78).probe_all(start(), 90.0));
    assert_eq!(fp77, GOLDEN_MINI_SEED77, "seed-77 fingerprint {fp77:#018x}");
    assert_eq!(fp78, GOLDEN_MINI_SEED78, "seed-78 fingerprint {fp78:#018x}");
    assert_ne!(fp77, fp78, "different seeds must give different traces");
}

#[test]
fn probe_all_is_byte_identical_across_runs() {
    let c = ConstellationBuilder::starlink_mini().seed(42).build();
    let a = emulator(&c, 77).probe_all(start(), 45.0);
    let b = emulator(&c, 77).probe_all(start(), 45.0);
    assert_eq!(a.len(), b.len());
    for (ta, tb) in a.iter().zip(&b) {
        assert_eq!(ta.terminal_id, tb.terminal_id);
        assert_eq!(ta.records.len(), tb.records.len());
        for (x, y) in ta.records.iter().zip(&tb.records) {
            assert_eq!(x.at.0.to_bits(), y.at.0.to_bits());
            assert_eq!(x.seq, y.seq);
            assert_eq!(x.rtt_ms.map(f64::to_bits), y.rtt_ms.map(f64::to_bits));
            assert_eq!(x.owd_up_ms.map(f64::to_bits), y.owd_up_ms.map(f64::to_bits));
            assert_eq!(x.slot, y.slot);
            assert_eq!(x.serving_sat, y.serving_sat);
        }
    }
}
