//! Integration tests for the propagation schedule and catalog corruptor.

use proptest::prelude::*;
use starsense_faults::{FaultPlan, FaultRates, PropagationSchedule, TleFault};

fn ids(n: u32) -> Vec<u32> {
    (0..n).map(|i| 44000 + i).collect()
}

fn plan(seed: u64, p: f64) -> FaultPlan {
    FaultPlan::new(seed, FaultRates { propagation_fail: p, ..FaultRates::none() })
}

#[test]
fn schedule_masks_every_raw_fault() {
    let p = plan(11, 0.2);
    let sats = ids(40);
    let sched = PropagationSchedule::build(&p, &sats, 100, 64, 0);
    let mut raw = 0;
    for (s, &id) in sats.iter().enumerate() {
        for k in 0..64 {
            if p.propagation_fails(id, 100 + k as i64) {
                raw += 1;
                assert!(sched.masked(s, k), "raw fault at ({s}, {k}) not masked");
            } else {
                // quarantine_after == 0: no widening beyond raw faults.
                assert!(!sched.masked(s, k));
            }
        }
    }
    assert_eq!(sched.raw_fault_count(), raw);
    assert_eq!(sched.masked_slot_count(), raw);
    assert_eq!(sched.quarantined_count(), 0);
}

#[test]
fn quarantine_widens_the_mask_monotonically() {
    let p = plan(13, 0.35);
    let sats = ids(30);
    let loose = PropagationSchedule::build(&p, &sats, 0, 80, 0);
    let strict = PropagationSchedule::build(&p, &sats, 0, 80, 3);
    assert!(strict.masked_slot_count() >= loose.masked_slot_count());
    assert!(strict.quarantined_count() > 0, "rate 0.35 over 80 slots must quarantine someone");
    for (s, _) in sats.iter().enumerate() {
        // Once masked by quarantine, a satellite stays masked: the set of
        // masked slots from the first quarantine point is a suffix.
        let mut in_quarantine = false;
        for k in 0..80 {
            if loose.masked(s, k) {
                assert!(strict.masked(s, k));
            }
            let widened = strict.masked(s, k) && !loose.masked(s, k);
            if widened {
                in_quarantine = true;
            }
            if in_quarantine {
                assert!(strict.masked(s, k), "quarantine released sat {s} at slot {k}");
            }
        }
        if in_quarantine {
            assert!(strict.quarantined(s));
        }
    }
}

#[test]
fn full_rate_quarantines_everyone_immediately() {
    let p = plan(1, 1.0);
    let sats = ids(5);
    let sched = PropagationSchedule::build(&p, &sats, 0, 10, 1);
    assert_eq!(sched.quarantined_count(), 5);
    assert_eq!(sched.masked_slot_count(), 50);
    for s in 0..5 {
        for k in 0..10 {
            assert!(sched.masked(s, k));
        }
    }
}

#[test]
fn schedule_is_reproducible_and_bounds_safe() {
    let p = plan(77, 0.25);
    let sats = ids(20);
    let a = PropagationSchedule::build(&p, &sats, 500, 33, 2);
    let b = PropagationSchedule::build(&p, &sats, 500, 33, 2);
    for s in 0..20 {
        for k in 0..33 {
            assert_eq!(a.masked(s, k), b.masked(s, k));
        }
    }
    assert!(!a.masked(19, 33), "slot out of range must read false");
    assert!(!a.masked(20, 0), "sat out of range must read false");
    assert!(!a.quarantined(99));
}

#[test]
fn masked_count_is_monotone_in_rate() {
    let sats = ids(50);
    let mut prev = 0;
    for &rate in &[0.0, 0.1, 0.3, 0.7, 1.0] {
        let sched = PropagationSchedule::build(&plan(9, rate), &sats, 0, 40, 0);
        assert!(sched.masked_slot_count() >= prev, "masked count not monotone at rate {rate}");
        prev = sched.masked_slot_count();
    }
}

/// A structurally valid (if astronomically meaningless) TLE pair: 69
/// columns, correct line numbers, correct mod-10 checksums.
fn fake_record(norad: u32) -> (String, String) {
    fn with_checksum(body: &str) -> String {
        let sum: u32 = body
            .bytes()
            .map(|b| match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'-' => 1,
                _ => 0,
            })
            .sum();
        format!("{body}{}", sum % 10)
    }
    let l1 = with_checksum(&format!(
        "1 {norad:05}U 19074A   23152.50000000  .00001000  00000+0  70000-4 0  999"
    ));
    let l2 = with_checksum(&format!(
        "2 {norad:05}  53.0536 123.4567 0001450  90.1234 270.4321 15.0612345612345"
    ));
    (l1, l2)
}

fn fake_catalog(n: u32) -> String {
    let mut text = String::new();
    for i in 0..n {
        let (l1, l2) = fake_record(44000 + i);
        text.push_str(&format!("STARLINK-{i}\n{l1}\n{l2}\n"));
    }
    text
}

#[test]
fn fault_free_corruption_is_identity() {
    let text = fake_catalog(12);
    assert_eq!(FaultPlan::none().corrupt_catalog_text(&text), text);
    let zero = FaultPlan::new(5, FaultRates::none());
    assert_eq!(zero.corrupt_catalog_text(&text), text);
}

#[test]
fn full_rate_corruption_touches_every_record() {
    let p = FaultPlan::new(3, FaultRates { tle_corrupt: 1.0, ..FaultRates::none() });
    let text = fake_catalog(30);
    let out = p.corrupt_catalog_text(&text);
    assert_eq!(out.lines().count(), text.lines().count(), "line structure must survive");
    let mut kinds = [0usize; 3];
    for (rec, (orig, got)) in text.lines().zip(out.lines()).enumerate() {
        if rec % 3 == 0 {
            assert_eq!(orig, got, "title lines must pass through");
            continue;
        }
        match p.tle_fault((rec / 3) as u64) {
            TleFault::ChecksumFlip => {
                if rec % 3 == 1 {
                    assert_ne!(orig, got);
                    kinds[0] += 1;
                }
            }
            TleFault::Truncate { keep } => {
                if rec % 3 == 2 {
                    assert_eq!(got.len(), keep.min(orig.len()));
                    kinds[1] += 1;
                }
            }
            TleFault::NanField => {
                if rec % 3 == 2 {
                    assert!(got.contains("NaN"), "line 2 should carry the NaN field");
                    kinds[2] += 1;
                }
            }
            TleFault::None => panic!("rate 1.0 produced TleFault::None"),
        }
    }
    assert!(kinds.iter().all(|&k| k > 0), "30 records should hit every kind: {kinds:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any seed/rate: corruption preserves titles and the record count,
    /// and the same plan applied twice gives byte-identical output.
    #[test]
    fn corruption_is_structure_preserving_and_deterministic(
        seed in 0u64..10_000,
        millis in 0u64..=1000,
    ) {
        let rate = millis as f64 / 1000.0;
        let p = FaultPlan::new(seed, FaultRates { tle_corrupt: rate, ..FaultRates::none() });
        let text = fake_catalog(10);
        let a = p.corrupt_catalog_text(&text);
        let b = p.corrupt_catalog_text(&text);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.lines().count(), text.lines().count());
        for (orig, got) in text.lines().zip(a.lines()) {
            if !orig.starts_with("1 ") && !orig.starts_with("2 ") {
                prop_assert_eq!(orig, got);
            }
        }
    }
}
