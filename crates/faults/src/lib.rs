//! Deterministic, seed-reproducible fault injection for the starsense
//! measurement pipeline.
//!
//! Every fault decision is a *pure function* of `(seed, domain, integer
//! keys)` computed with a splitmix64-style avalanche hash — there is no
//! stateful RNG that must be consumed in order. This gives the two
//! properties the chaos harness relies on:
//!
//! - **Bit-reproducibility**: the same seed produces the identical fault
//!   schedule on every run, regardless of thread count or the order in
//!   which components ask about faults.
//! - **Isolation**: consulting the plan never perturbs any other RNG
//!   stream, so a fault-free plan leaves the host component's output
//!   bit-identical to a build without fault injection at all.
//!
//! The injectable fault channels mirror the messy inputs field
//! measurement campaigns actually see: dropped / stale / partially
//! corrupted obstruction-map frames from the dish gRPC endpoint, TLE
//! feed corruption (checksum flips, truncation, NaN-producing fields),
//! SGP4 propagation failures with quarantine of repeat offenders, and
//! probe loss / jitter bursts in the network emulator.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Hash-domain tags keeping the per-channel decision streams independent.
const DOMAIN_FRAME: u64 = 0x4652_414d_4500_0001;
const DOMAIN_TLE: u64 = 0x544c_4500_0000_0002;
const DOMAIN_PROP: u64 = 0x5052_4f50_0000_0003;
const DOMAIN_BURST: u64 = 0x4255_5253_5400_0004;
const DOMAIN_JITTER: u64 = 0x4a49_5454_4500_0005;
const DOMAIN_STREAM: u64 = 0x5354_5245_414d_0006;
const DOMAIN_WORKER: u64 = 0x574f_524b_4552_0007;

/// splitmix64 finalizer: a full-avalanche bijection on `u64`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fold a key into a running hash state.
fn fold(h: u64, k: u64) -> u64 {
    mix(h ^ k)
}

/// Map a hash to a uniform draw in `[0, 1)` using the top 53 bits.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Clamp a user-supplied probability into `[0, 1]`; NaN becomes 0.
fn clamp01(p: f64) -> f64 {
    if p.is_finite() {
        p.clamp(0.0, 1.0)
    } else {
        0.0
    }
}

/// Per-channel fault probabilities, each in `[0, 1]`.
///
/// The frame rates partition one draw: a frame is dropped with
/// probability `frame_drop`, stale with `frame_stale`, corrupted with
/// `frame_corrupt`, and clean otherwise, so their sum should stay at or
/// below 1 (the constructor clamps each individually; an oversubscribed
/// sum simply saturates toward the earlier outcomes).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Probability an obstruction-frame fetch attempt returns nothing.
    pub frame_drop: f64,
    /// Probability a frame fetch returns the previous slot's bitmap.
    pub frame_stale: f64,
    /// Probability a fetched frame has a burst of flipped pixels.
    pub frame_corrupt: f64,
    /// Probability a TLE record in a catalog feed is corrupted.
    pub tle_corrupt: f64,
    /// Probability SGP4 propagation of a satellite fails for one slot.
    pub propagation_fail: f64,
    /// Probability a probe slot carries a loss or jitter burst.
    pub probe_burst: f64,
    /// Probability a shard worker attempt panics mid-segment. Worker
    /// channels are **not** part of [`FaultRates::uniform`]: the chaos
    /// soak's golden fingerprints predate them, and worker faults only
    /// perturb the supervision layer, never the measurement stream.
    pub worker_panic: f64,
    /// Probability a shard worker attempt overruns its virtual deadline.
    pub worker_overrun: f64,
}

impl FaultRates {
    /// All channels at probability zero.
    pub const fn none() -> Self {
        FaultRates {
            frame_drop: 0.0,
            frame_stale: 0.0,
            frame_corrupt: 0.0,
            tle_corrupt: 0.0,
            propagation_fail: 0.0,
            probe_burst: 0.0,
            worker_panic: 0.0,
            worker_overrun: 0.0,
        }
    }

    /// Every *measurement* channel at the same probability `p` — the
    /// knob the chaos soak sweeps to escalate pressure uniformly. The
    /// three frame channels share the single per-frame draw, so each
    /// gets `p / 3` to keep the *total* frame-fault probability at `p`.
    /// The worker channels stay at zero: they must be opted into
    /// explicitly so the existing soak tiers keep their fingerprints.
    pub fn uniform(p: f64) -> Self {
        let p = clamp01(p);
        FaultRates {
            frame_drop: p / 3.0,
            frame_stale: p / 3.0,
            frame_corrupt: p / 3.0,
            tle_corrupt: p,
            propagation_fail: p,
            probe_burst: p,
            worker_panic: 0.0,
            worker_overrun: 0.0,
        }
    }

    fn clamped(self) -> Self {
        FaultRates {
            frame_drop: clamp01(self.frame_drop),
            frame_stale: clamp01(self.frame_stale),
            frame_corrupt: clamp01(self.frame_corrupt),
            tle_corrupt: clamp01(self.tle_corrupt),
            propagation_fail: clamp01(self.propagation_fail),
            probe_burst: clamp01(self.probe_burst),
            worker_panic: clamp01(self.worker_panic),
            worker_overrun: clamp01(self.worker_overrun),
        }
    }

    fn any(&self) -> bool {
        self.frame_drop > 0.0
            || self.frame_stale > 0.0
            || self.frame_corrupt > 0.0
            || self.tle_corrupt > 0.0
            || self.propagation_fail > 0.0
            || self.probe_burst > 0.0
            || self.worker_panic > 0.0
            || self.worker_overrun > 0.0
    }
}

/// Outcome of one obstruction-frame fetch attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// The fetch succeeded with a clean, current bitmap.
    None,
    /// The fetch returned nothing (the caller may retry).
    Dropped,
    /// The fetch returned the bitmap as it stood *before* this slot's
    /// trail was painted.
    Stale,
    /// The fetch succeeded but a burst of pixels is flipped; `salt`
    /// seeds the corruption stream so the flipped pixels are themselves
    /// reproducible.
    Corrupt {
        /// Seed for the [`FaultRng`] that picks the flipped pixels.
        salt: u64,
    },
}

/// Kind of corruption applied to one TLE record in a catalog feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TleFault {
    /// The record is left intact.
    None,
    /// The line-1 checksum digit is flipped (detectable: `BadChecksum`).
    ChecksumFlip,
    /// Line 2 is truncated to `keep` bytes (detectable: `LineTooShort`).
    Truncate {
        /// Number of leading bytes of line 2 that survive.
        keep: usize,
    },
    /// The line-2 mean-motion field is replaced by `NaN` *with the
    /// checksum recomputed to match*, so only semantic field validation
    /// can reject it.
    NanField,
}

/// Injected failure of one shard-worker execution attempt.
///
/// Both outcomes are aimed at the supervision layer of
/// `starsense-core`'s resumable campaign engine: a `Panic` is raised
/// *inside* the worker's `catch_unwind` boundary and an `Overrun` is
/// reported as a virtual deadline miss (no wall clock is consulted), so
/// either way the retry / quarantine state machine — not the
/// measurement stream — absorbs the fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// The attempt completes normally.
    None,
    /// The attempt panics mid-segment.
    Panic,
    /// The attempt exceeds its virtual deadline budget.
    Overrun,
}

/// Kind of probe-level burst injected into the network emulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurstKind {
    /// Probes inside the burst window are lost outright.
    Loss,
    /// Probes inside the burst window pick up extra latency.
    Jitter,
}

/// A contiguous burst covering part of one scheduling slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeBurst {
    /// Whether covered probes are lost or delayed.
    pub kind: BurstKind,
    /// Burst start as a fraction of the slot, in `[0, 1)`.
    pub start: f64,
    /// Burst end as a fraction of the slot, in `(start, 1]`.
    pub end: f64,
    /// Peak extra latency for jitter bursts, in milliseconds.
    pub magnitude_ms: f64,
}

impl ProbeBurst {
    /// Whether a probe at slot-fraction `frac` falls inside the burst.
    pub fn covers(&self, frac: f64) -> bool {
        frac >= self.start && frac < self.end
    }
}

/// A small deterministic generator for streams of derived values (for
/// example the pixel coordinates of a corrupted frame). Seeded from a
/// [`FrameFault::Corrupt`] salt or any other hash, it is a plain
/// splitmix64 sequence — cheap, reproducible, and independent of every
/// other RNG in the system.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Build a stream from a salt (already-mixed hash material).
    pub fn from_salt(salt: u64) -> Self {
        FaultRng { state: fold(DOMAIN_STREAM, salt) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }

    /// Next uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        unit(self.next_u64())
    }

    /// Next value in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A seeded, immutable fault schedule.
///
/// All decision methods are pure functions of the plan and their
/// integer keys; two plans built from the same `(seed, rates)` agree on
/// every decision, and a plan with all-zero rates reports no faults
/// anywhere (see [`FaultPlan::enabled`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// Build a plan from a seed and per-channel rates (clamped to
    /// `[0, 1]`; NaN rates become 0).
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        FaultPlan { seed, rates: rates.clamped() }
    }

    /// The fault-free plan: no channel ever fires.
    pub const fn none() -> Self {
        FaultPlan { seed: 0, rates: FaultRates::none() }
    }

    /// Whether any channel has a nonzero rate. Hosts use this to skip
    /// fault bookkeeping entirely on the fault-free path, which keeps
    /// that path bit-identical to a build without fault injection.
    pub fn enabled(&self) -> bool {
        self.rates.any()
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The (clamped) per-channel rates.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    fn draw(&self, domain: u64, k1: u64, k2: u64, k3: u64) -> u64 {
        fold(fold(fold(fold(self.seed, domain), k1), k2), k3)
    }

    /// Fault decision for one obstruction-frame fetch `attempt`
    /// (0-based; retries re-draw with a fresh attempt key) by terminal
    /// `terminal` at scheduling slot `slot`.
    pub fn frame_fault(&self, terminal: u64, slot: i64, attempt: u32) -> FrameFault {
        if !self.enabled() {
            return FrameFault::None;
        }
        let h = self.draw(DOMAIN_FRAME, terminal, slot as u64, u64::from(attempt));
        let u = unit(h);
        let r = &self.rates;
        if u < r.frame_drop {
            FrameFault::Dropped
        } else if u < r.frame_drop + r.frame_stale {
            FrameFault::Stale
        } else if u < r.frame_drop + r.frame_stale + r.frame_corrupt {
            FrameFault::Corrupt { salt: mix(h) }
        } else {
            FrameFault::None
        }
    }

    /// Fault decision for one shard-worker execution attempt
    /// (0-based; each retry re-draws with a fresh attempt key) of work
    /// unit `unit` whose segment starts at absolute slot `first_slot`.
    /// The two worker rates partition a single draw exactly like the
    /// frame channels, so a key that panics at a low `worker_panic`
    /// still panics when the rate rises.
    pub fn worker_fault(&self, unit_id: u64, first_slot: i64, attempt: u32) -> WorkerFault {
        if !self.enabled() {
            return WorkerFault::None;
        }
        let h = self.draw(DOMAIN_WORKER, unit_id, first_slot as u64, u64::from(attempt));
        let u = unit(h);
        let r = &self.rates;
        if u < r.worker_panic {
            WorkerFault::Panic
        } else if u < r.worker_panic + r.worker_overrun {
            WorkerFault::Overrun
        } else {
            WorkerFault::None
        }
    }

    /// Corruption decision for the `index`-th TLE record of a feed.
    pub fn tle_fault(&self, index: u64) -> TleFault {
        if !self.enabled() {
            return TleFault::None;
        }
        let h = self.draw(DOMAIN_TLE, index, 0, 0);
        if unit(h) >= self.rates.tle_corrupt {
            return TleFault::None;
        }
        match mix(h) % 3 {
            0 => TleFault::ChecksumFlip,
            1 => TleFault::Truncate { keep: 10 + (fold(h, 1) % 50) as usize },
            _ => TleFault::NanField,
        }
    }

    /// Whether SGP4 propagation of satellite `norad_id` fails at
    /// scheduling slot `slot`.
    pub fn propagation_fails(&self, norad_id: u32, slot: i64) -> bool {
        if !self.enabled() {
            return false;
        }
        let h = self.draw(DOMAIN_PROP, u64::from(norad_id), slot as u64, 0);
        unit(h) < self.rates.propagation_fail
    }

    /// The probe burst (if any) affecting terminal `terminal` during
    /// scheduling slot `slot`.
    pub fn probe_burst(&self, terminal: u64, slot: i64) -> Option<ProbeBurst> {
        if !self.enabled() {
            return None;
        }
        let h = self.draw(DOMAIN_BURST, terminal, slot as u64, 0);
        if unit(h) >= self.rates.probe_burst {
            return None;
        }
        let kind = if mix(h) & 1 == 0 { BurstKind::Loss } else { BurstKind::Jitter };
        let start = unit(fold(h, 1)) * 0.8;
        let dur = 0.05 + unit(fold(h, 2)) * 0.3;
        let end = (start + dur).min(1.0);
        let magnitude_ms = 20.0 + unit(fold(h, 3)) * 180.0;
        Some(ProbeBurst { kind, start, end, magnitude_ms })
    }

    /// Extra latency for probe `seq` inside a jitter burst: a per-probe
    /// wiggle in `[0.25, 1.0)` of the burst magnitude, so bursts are
    /// visibly bursty rather than a flat offset.
    pub fn burst_jitter_ms(&self, burst: &ProbeBurst, terminal: u64, slot: i64, seq: u64) -> f64 {
        let h = self.draw(DOMAIN_JITTER, terminal, slot as u64, seq);
        burst.magnitude_ms * (0.25 + 0.75 * unit(h))
    }

    /// Apply the plan's TLE channel to a whole catalog feed: each
    /// `line 1` / `line 2` record pair (title lines pass through
    /// untouched) is corrupted per [`FaultPlan::tle_fault`] of its
    /// 0-based record index. Returns the corrupted feed text.
    pub fn corrupt_catalog_text(&self, text: &str) -> String {
        if !self.enabled() {
            return text.to_string();
        }
        let lines: Vec<&str> = text.lines().collect();
        let mut out: Vec<String> = Vec::with_capacity(lines.len());
        let mut record = 0u64;
        let mut i = 0;
        while i < lines.len() {
            let line = lines[i];
            let is_pair =
                line.starts_with("1 ") && i + 1 < lines.len() && lines[i + 1].starts_with("2 ");
            if !is_pair {
                out.push(line.to_string());
                i += 1;
                continue;
            }
            let (l1, l2) = corrupt_record(line, lines[i + 1], self.tle_fault(record));
            out.push(l1);
            out.push(l2);
            record += 1;
            i += 2;
        }
        let mut joined = out.join("\n");
        if text.ends_with('\n') {
            joined.push('\n');
        }
        joined
    }
}

/// Produce a torn copy of a snapshot: the byte stream is cut at a
/// deterministic point drawn from `rng`, anywhere from the empty prefix
/// to one byte short of complete. Used by the crash harness to model a
/// writer killed mid-`write` (which the checkpoint layer's atomic
/// rename normally prevents, and its checksums must catch regardless).
pub fn truncated_copy(bytes: &[u8], rng: &mut FaultRng) -> Vec<u8> {
    if bytes.is_empty() {
        return Vec::new();
    }
    let keep = rng.below(bytes.len() as u64) as usize;
    bytes[..keep].to_vec()
}

/// Produce a copy of a snapshot with a single bit flipped at a
/// deterministic position drawn from `rng` — the classic torn-sector /
/// cosmic-ray model the checkpoint checksums must detect. An empty
/// input comes back empty.
pub fn bit_flipped_copy(bytes: &[u8], rng: &mut FaultRng) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if out.is_empty() {
        return out;
    }
    let bit = rng.below(out.len() as u64 * 8);
    out[(bit / 8) as usize] ^= 1u8 << (bit % 8);
    out
}

/// Mod-10 TLE checksum over the first 68 bytes: digits count their
/// value, `-` counts 1, everything else 0. Mirrors the wire format used
/// by `starsense-sgp4` (kept local so this crate stays dependency-free).
fn tle_checksum(line: &str) -> u32 {
    line.bytes()
        .take(68)
        .map(|b| match b {
            b'0'..=b'9' => u32::from(b - b'0'),
            b'-' => 1,
            _ => 0,
        })
        .sum::<u32>()
        % 10
}

/// Apply one [`TleFault`] to a record pair.
fn corrupt_record(l1: &str, l2: &str, fault: TleFault) -> (String, String) {
    match fault {
        TleFault::None => (l1.to_string(), l2.to_string()),
        TleFault::ChecksumFlip => {
            let mut bytes: Vec<u8> = l1.bytes().collect();
            if let Some(b) = bytes.get_mut(68) {
                *b = if b.is_ascii_digit() { b'0' + (*b - b'0' + 1) % 10 } else { b'0' };
            }
            (String::from_utf8_lossy(&bytes).into_owned(), l2.to_string())
        }
        TleFault::Truncate { keep } => {
            let cut = l2.get(..keep.min(l2.len())).unwrap_or(l2);
            (l1.to_string(), cut.to_string())
        }
        TleFault::NanField => {
            // Replace the line-2 mean-motion field (columns 52..63) with
            // NaN and recompute the checksum so only semantic field
            // validation can catch the defect.
            let mut bytes: Vec<u8> = l2.bytes().collect();
            if bytes.len() >= 69 {
                bytes[52..63].copy_from_slice(b"        NaN");
                let body = String::from_utf8_lossy(&bytes[..68]).into_owned();
                bytes[68] = b'0' + tle_checksum(&body) as u8;
            }
            (l1.to_string(), String::from_utf8_lossy(&bytes).into_owned())
        }
    }
}

/// Precomputed propagation-fault schedule for a whole campaign window,
/// including quarantine of satellites that fail repeatedly.
///
/// Built serially *before* any parallel phase runs, the schedule is a
/// pure function of `(plan, sat_ids, first_slot, slots)`, which is what
/// keeps fault-injected campaigns invariant under thread count: the
/// parallel visibility phase only ever *reads* the schedule.
#[derive(Debug, Clone)]
pub struct PropagationSchedule {
    slots: usize,
    words_per_sat: usize,
    masked: Vec<u64>,
    quarantined_from: Vec<usize>,
    raw_faults: usize,
}

impl PropagationSchedule {
    /// Build the schedule for `sat_ids` over `slots` slots starting at
    /// absolute slot number `first_slot`. A satellite accumulating
    /// `quarantine_after` propagation faults is masked for every later
    /// slot as well (`quarantine_after == 0` disables quarantine).
    pub fn build(
        plan: &FaultPlan,
        sat_ids: &[u32],
        first_slot: i64,
        slots: usize,
        quarantine_after: u32,
    ) -> Self {
        let words_per_sat = slots.div_ceil(64).max(1);
        let mut masked = vec![0u64; words_per_sat * sat_ids.len()];
        let mut quarantined_from = vec![slots; sat_ids.len()];
        let mut raw_faults = 0usize;
        for (s, &id) in sat_ids.iter().enumerate() {
            let words = &mut masked[s * words_per_sat..(s + 1) * words_per_sat];
            let mut fails = 0u32;
            for k in 0..slots {
                let mut hit = plan.propagation_fails(id, first_slot + k as i64);
                if hit {
                    raw_faults += 1;
                    fails += 1;
                    if quarantine_after > 0 && fails >= quarantine_after && quarantined_from[s] > k
                    {
                        quarantined_from[s] = k;
                    }
                }
                hit = hit || k >= quarantined_from[s];
                if hit {
                    words[k / 64] |= 1u64 << (k % 64);
                }
            }
        }
        PropagationSchedule { slots, words_per_sat, masked, quarantined_from, raw_faults }
    }

    /// Whether satellite index `sat` (position in the `sat_ids` slice
    /// the schedule was built from) is masked at relative slot `k`.
    /// Out-of-range queries report `false`.
    pub fn masked(&self, sat: usize, k: usize) -> bool {
        if k >= self.slots || sat >= self.quarantined_from.len() {
            return false;
        }
        let word = self.masked[sat * self.words_per_sat + k / 64];
        word >> (k % 64) & 1 == 1
    }

    /// Whether satellite index `sat` ever enters quarantine.
    pub fn quarantined(&self, sat: usize) -> bool {
        self.quarantined_from.get(sat).is_some_and(|&q| q < self.slots)
    }

    /// Number of satellites that entered quarantine.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined_from.iter().filter(|&&q| q < self.slots).count()
    }

    /// Number of raw propagation faults (before quarantine widening).
    pub fn raw_fault_count(&self) -> usize {
        self.raw_faults
    }

    /// Total masked `(satellite, slot)` pairs, quarantine included.
    pub fn masked_slot_count(&self) -> usize {
        self.masked.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64, p: f64) -> FaultPlan {
        FaultPlan::new(seed, FaultRates::uniform(p))
    }

    #[test]
    fn fault_free_plan_is_silent_everywhere() {
        let p = FaultPlan::none();
        assert!(!p.enabled());
        for t in 0..10u64 {
            for s in 0..50i64 {
                assert_eq!(p.frame_fault(t, s, 0), FrameFault::None);
                assert!(p.probe_burst(t, s).is_none());
            }
        }
        for i in 0..200u64 {
            assert_eq!(p.tle_fault(i), TleFault::None);
            assert!(!p.propagation_fails(44000 + i as u32, i as i64));
        }
    }

    #[test]
    fn decisions_are_reproducible_across_plan_instances() {
        let a = plan(99, 0.3);
        let b = plan(99, 0.3);
        for t in 0..8u64 {
            for s in -5..40i64 {
                for attempt in 0..3u32 {
                    assert_eq!(a.frame_fault(t, s, attempt), b.frame_fault(t, s, attempt));
                }
                assert_eq!(a.probe_burst(t, s), b.probe_burst(t, s));
            }
        }
        for i in 0..500u64 {
            assert_eq!(a.tle_fault(i), b.tle_fault(i));
        }
    }

    #[test]
    fn seed_changes_the_schedule() {
        let a = plan(1, 0.3);
        let b = plan(2, 0.3);
        let differs = (0..200u64).any(|t| a.frame_fault(t, 7, 0) != b.frame_fault(t, 7, 0));
        assert!(differs, "seeds 1 and 2 produced identical frame schedules");
    }

    #[test]
    fn decisions_are_thread_order_invariant() {
        let p = plan(1234, 0.25);
        let serial: Vec<FrameFault> = (0..64i64).map(|s| p.frame_fault(3, s, 0)).collect();
        let mut from_threads = vec![FrameFault::None; 64];
        std::thread::scope(|scope| {
            let chunks: Vec<(usize, &mut [FrameFault])> =
                from_threads.chunks_mut(16).enumerate().collect();
            for (c, chunk) in chunks {
                let p = &p;
                scope.spawn(move || {
                    // Walk the chunk backwards: order must not matter.
                    for (j, out) in chunk.iter_mut().enumerate().rev() {
                        *out = p.frame_fault(3, (c * 16 + j) as i64, 0);
                    }
                });
            }
        });
        assert_eq!(serial, from_threads);
    }

    #[test]
    fn empirical_rates_track_configured_rates() {
        let p = plan(7, 0.2);
        let n = 20_000u64;
        let prop = (0..n).filter(|&i| p.propagation_fails(i as u32, 11)).count();
        let got = prop as f64 / n as f64;
        assert!((got - 0.2).abs() < 0.02, "propagation rate {got} vs 0.2");
        let frame_faulty = (0..n).filter(|&t| p.frame_fault(t, 5, 0) != FrameFault::None).count();
        let got = frame_faulty as f64 / n as f64;
        assert!((got - 0.2).abs() < 0.02, "frame fault rate {got} vs 0.2");
    }

    #[test]
    fn fault_sets_are_monotone_in_rate() {
        // Same seed, higher rate: every key that faults at the low rate
        // also faults at the high rate (the unit draw per key is fixed).
        for &(lo, hi) in &[(0.05, 0.1), (0.1, 0.4), (0.3, 0.9)] {
            let a = plan(5, lo);
            let b = plan(5, hi);
            for id in 0..2000u32 {
                if a.propagation_fails(id, 3) {
                    assert!(b.propagation_fails(id, 3));
                }
                if a.probe_burst(u64::from(id), 3).is_some() {
                    assert!(b.probe_burst(u64::from(id), 3).is_some());
                }
            }
        }
    }

    #[test]
    fn rates_are_clamped() {
        let p = FaultPlan::new(
            1,
            FaultRates {
                frame_drop: 7.0,
                tle_corrupt: -3.0,
                propagation_fail: f64::NAN,
                ..FaultRates::none()
            },
        );
        assert_eq!(p.rates().frame_drop, 1.0);
        assert_eq!(p.rates().tle_corrupt, 0.0);
        assert_eq!(p.rates().propagation_fail, 0.0);
        // frame_drop == 1.0 ⇒ every fetch attempt drops.
        for t in 0..50u64 {
            assert_eq!(p.frame_fault(t, 0, 0), FrameFault::Dropped);
        }
    }

    #[test]
    fn burst_geometry_is_well_formed() {
        let p = plan(21, 1.0);
        let mut found = 0;
        for t in 0..100u64 {
            if let Some(b) = p.probe_burst(t, 9) {
                found += 1;
                assert!(b.start >= 0.0 && b.start < 1.0);
                assert!(b.end > b.start && b.end <= 1.0);
                assert!(b.magnitude_ms >= 20.0 && b.magnitude_ms <= 200.0);
                assert!(!b.covers(b.end));
                assert!(b.covers(b.start));
                let j = p.burst_jitter_ms(&b, t, 9, 17);
                assert!(j >= 0.25 * b.magnitude_ms && j < b.magnitude_ms);
            }
        }
        assert_eq!(found, 100, "probe_burst rate 1.0 must always fire");
    }

    #[test]
    fn worker_channels_are_opt_in_only() {
        // uniform() must never arm the worker channels: the chaos-soak
        // golden fingerprints were frozen before they existed.
        let u = FaultRates::uniform(0.9);
        assert_eq!(u.worker_panic, 0.0);
        assert_eq!(u.worker_overrun, 0.0);
        let p = FaultPlan::new(3, u);
        for unit_id in 0..200u64 {
            assert_eq!(p.worker_fault(unit_id, 5, 0), WorkerFault::None);
        }
    }

    #[test]
    fn worker_faults_are_deterministic_and_partitioned() {
        let rates = FaultRates { worker_panic: 0.3, worker_overrun: 0.3, ..FaultRates::none() };
        let a = FaultPlan::new(11, rates);
        let b = FaultPlan::new(11, rates);
        let mut panics = 0;
        let mut overruns = 0;
        for unit_id in 0..3000u64 {
            for attempt in 0..3u32 {
                let f = a.worker_fault(unit_id, 42, attempt);
                assert_eq!(f, b.worker_fault(unit_id, 42, attempt));
                match f {
                    WorkerFault::Panic => panics += 1,
                    WorkerFault::Overrun => overruns += 1,
                    WorkerFault::None => {}
                }
            }
        }
        let n = 9000.0;
        assert!((panics as f64 / n - 0.3).abs() < 0.03, "panic rate {}", panics as f64 / n);
        assert!((overruns as f64 / n - 0.3).abs() < 0.03, "overrun rate {}", overruns as f64 / n);
        // A plan armed only with worker faults still reports enabled().
        assert!(a.enabled());
        // Retries re-draw: some unit that panics at attempt 0 succeeds later.
        let recovers = (0..500u64).any(|unit_id| {
            a.worker_fault(unit_id, 42, 0) == WorkerFault::Panic
                && a.worker_fault(unit_id, 42, 1) == WorkerFault::None
        });
        assert!(recovers, "no panicking unit ever recovered on retry");
    }

    #[test]
    fn worker_faults_do_not_perturb_measurement_channels() {
        let quiet = FaultPlan::none();
        let armed = FaultPlan::new(
            0,
            FaultRates { worker_panic: 1.0, worker_overrun: 0.0, ..FaultRates::none() },
        );
        // Arming the worker channel flips enabled(), but every
        // measurement draw must still be fault-free because its own
        // rate is zero — the streams are domain-separated.
        for t in 0..50u64 {
            assert_eq!(armed.frame_fault(t, 3, 0), quiet.frame_fault(t, 3, 0));
            assert_eq!(armed.probe_burst(t, 3), quiet.probe_burst(t, 3));
            assert_eq!(armed.tle_fault(t), quiet.tle_fault(t));
            assert!(!armed.propagation_fails(44000 + t as u32, 3));
        }
    }

    #[test]
    fn snapshot_corruptors_are_deterministic_and_bounded() {
        let bytes: Vec<u8> = (0..257u32).map(|i| (i % 251) as u8).collect();
        let mut r1 = FaultRng::from_salt(9);
        let mut r2 = FaultRng::from_salt(9);
        let t1 = truncated_copy(&bytes, &mut r1);
        let t2 = truncated_copy(&bytes, &mut r2);
        assert_eq!(t1, t2);
        assert!(t1.len() < bytes.len(), "truncation must remove at least one byte");
        assert_eq!(t1[..], bytes[..t1.len()]);

        let f1 = bit_flipped_copy(&bytes, &mut r1);
        let f2 = bit_flipped_copy(&bytes, &mut r2);
        assert_eq!(f1, f2);
        assert_eq!(f1.len(), bytes.len());
        let flipped: usize =
            f1.iter().zip(&bytes).map(|(a, b)| (a ^ b).count_ones() as usize).sum();
        assert_eq!(flipped, 1, "exactly one bit must differ");

        assert!(truncated_copy(&[], &mut r1).is_empty());
        assert!(bit_flipped_copy(&[], &mut r1).is_empty());
    }

    #[test]
    fn fault_rng_streams_are_reproducible_and_uniform() {
        let mut a = FaultRng::from_salt(42);
        let mut b = FaultRng::from_salt(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = FaultRng::from_salt(43);
        let mut acc = 0.0;
        for _ in 0..1000 {
            let u = c.unit();
            assert!((0.0..1.0).contains(&u));
            acc += u;
        }
        assert!((acc / 1000.0 - 0.5).abs() < 0.05);
        assert_eq!(FaultRng::from_salt(1).below(0), 0);
        assert!(FaultRng::from_salt(1).below(7) < 7);
    }
}
