//! TLE handling and SGP4 propagation.
//!
//! The paper identifies the satellite serving a terminal by propagating
//! CelesTrak two-line-element sets with SGP4 and matching the resulting sky
//! tracks against obstruction-map trajectories (§4). This crate provides both
//! halves of that substrate:
//!
//! * [`Tle`] — parse and format standard two-line element sets, including the
//!   "implied decimal" fields and modulo-10 checksums,
//! * [`Sgp4`] — the near-earth SGP4 propagator (Vallado's reference
//!   algorithm, WGS-72 constants), producing TEME position/velocity.
//!
//! Only the near-earth branch is implemented: every satellite in a Starlink
//! shell has an orbital period around 95 minutes, far below the 225-minute
//! deep-space threshold. Constructing a propagator for a deep-space object
//! returns [`Sgp4Error::DeepSpace`] rather than silently wrong values.
//!
//! # Example
//!
//! ```
//! use starsense_sgp4::{Tle, Sgp4};
//!
//! let tle = Tle::parse_lines(
//!     "1 00005U 58002B   00179.78495062  .00000023  00000-0  28098-4 0  4753",
//!     "2 00005  34.2682 348.7242 1859667 331.7664  19.3264 10.82419157413667",
//! ).unwrap();
//! let sgp4 = Sgp4::new(&tle.elements()).unwrap();
//! let state = sgp4.propagate_minutes(0.0).unwrap();
//! assert!((state.position_km.x - 7022.46529).abs() < 1e-3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
mod elements;
mod error;
mod propagator;
mod tle;

pub use batch::{propagate_batch, Sgp4Batch};
pub use elements::Elements;
pub use error::Sgp4Error;
pub use propagator::{Sgp4, State};
pub use tle::{checksum, CatalogDefect, Tle, TleError};

/// WGS-72 gravitational and geometric constants used by SGP4.
///
/// SGP4 is defined against WGS-72; mixing in WGS-84 constants degrades
/// agreement with the distributed element sets, so these are kept separate
/// from the WGS-84 constants in `starsense-astro`.
pub mod wgs72 {
    /// Earth gravitational parameter, km³/s².
    pub const MU: f64 = 398_600.8;
    /// Earth equatorial radius, km.
    pub const EARTH_RADIUS_KM: f64 = 6378.135;
    /// Square root of GM in (earth radii)^1.5 per minute: the `ke` constant.
    pub const XKE: f64 = 0.074_366_916_133_173_42; // 60.0 / sqrt(R³/µ)
    /// Second zonal harmonic.
    pub const J2: f64 = 0.001_082_616;
    /// Third zonal harmonic.
    pub const J3: f64 = -0.000_002_538_81;
    /// Fourth zonal harmonic.
    pub const J4: f64 = -0.000_001_655_97;
    /// J3 / J2.
    pub const J3OJ2: f64 = J3 / J2;

    #[cfg(test)]
    mod tests {
        #[test]
        fn xke_matches_definition() {
            let computed = 60.0 / (super::EARTH_RADIUS_KM.powi(3) / super::MU).sqrt();
            assert!((computed - super::XKE).abs() < 1e-15);
        }
    }
}
