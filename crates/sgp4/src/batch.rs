//! Struct-of-arrays batched SGP4 propagation.
//!
//! The campaign engine and the netemu slot-cohort engine both propagate every
//! satellite of a constellation to the *same* instant, thousands of times per
//! run. Doing that through `Sgp4::propagate` walks one ~280-byte coefficient
//! struct per satellite — every field load is a strided miss and the compiler
//! cannot vectorize across satellites. [`Sgp4Batch`] transposes the
//! coefficients once into a struct-of-arrays layout and propagates the whole
//! batch in three passes (secular/long-period, Kepler solve, short-period +
//! orientation), so the polynomial and normalization arithmetic runs over
//! contiguous lanes.
//!
//! # Bit-identity contract
//!
//! The batch path performs exactly the same floating-point operations in
//! exactly the same per-satellite order as [`Sgp4::propagate_minutes`];
//! splitting the computation into passes only round-trips intermediates
//! through `f64` arrays, which is exact. Every position produced by
//! [`Sgp4Batch::positions_into`] is therefore bit-identical to the scalar
//! propagator's `position_km`, and a lane yields `None` exactly when the
//! scalar call returns an error (non-positive mean motion, eccentricity out
//! of range, negative semi-latus rectum, or decay). The tests pin this with
//! `to_bits` comparisons, including a property test over randomized element
//! sets.

use crate::propagator::Sgp4;
use crate::wgs72::{EARTH_RADIUS_KM, J2, XKE};
use starsense_astro::angles::wrap_tau;
use starsense_astro::time::JulianDate;
use starsense_astro::vec3::Vec3;

/// A set of SGP4 propagators transposed into struct-of-arrays lanes.
///
/// Build once per element-set generation (initialization already happened in
/// [`Sgp4::new`]; this is a pure transpose), then call
/// [`positions_into`](Sgp4Batch::positions_into) for each instant. Immutable
/// after construction and freely shareable across threads.
#[derive(Debug, Clone, Default)]
pub struct Sgp4Batch {
    epoch: Vec<JulianDate>,
    ecco: Vec<f64>,
    inclo: Vec<f64>,
    nodeo: Vec<f64>,
    argpo: Vec<f64>,
    mo: Vec<f64>,
    bstar: Vec<f64>,
    no_unkozai: Vec<f64>,
    isimp: Vec<bool>,
    con41: Vec<f64>,
    x1mth2: Vec<f64>,
    x7thm1: Vec<f64>,
    cc1: Vec<f64>,
    cc4: Vec<f64>,
    cc5: Vec<f64>,
    d2: Vec<f64>,
    d3: Vec<f64>,
    d4: Vec<f64>,
    delmo: Vec<f64>,
    eta: Vec<f64>,
    sinmao: Vec<f64>,
    mdot: Vec<f64>,
    argpdot: Vec<f64>,
    nodedot: Vec<f64>,
    nodecf: Vec<f64>,
    omgcof: Vec<f64>,
    xmcof: Vec<f64>,
    t2cof: Vec<f64>,
    t3cof: Vec<f64>,
    t4cof: Vec<f64>,
    t5cof: Vec<f64>,
    xlcof: Vec<f64>,
    aycof: Vec<f64>,
    // sin/cos of the (constant) inclination, hoisted out of the per-instant
    // path: the scalar propagator recomputes `inclo.sin()`/`inclo.cos()` on
    // every call with the same argument, so the hoisted values are bitwise
    // identical.
    sinip: Vec<f64>,
    cosip: Vec<f64>,
}

impl Sgp4Batch {
    /// Transposes an ordered set of propagators into batch lanes.
    ///
    /// Lane `i` of every output corresponds to the `i`-th propagator yielded
    /// by the iterator.
    pub fn from_propagators<'a>(props: impl IntoIterator<Item = &'a Sgp4>) -> Sgp4Batch {
        let mut b = Sgp4Batch::default();
        for p in props {
            b.epoch.push(p.epoch);
            b.ecco.push(p.ecco);
            b.inclo.push(p.inclo);
            b.nodeo.push(p.nodeo);
            b.argpo.push(p.argpo);
            b.mo.push(p.mo);
            b.bstar.push(p.bstar);
            b.no_unkozai.push(p.no_unkozai);
            b.isimp.push(p.isimp);
            b.con41.push(p.con41);
            b.x1mth2.push(p.x1mth2);
            b.x7thm1.push(p.x7thm1);
            b.cc1.push(p.cc1);
            b.cc4.push(p.cc4);
            b.cc5.push(p.cc5);
            b.d2.push(p.d2);
            b.d3.push(p.d3);
            b.d4.push(p.d4);
            b.delmo.push(p.delmo);
            b.eta.push(p.eta);
            b.sinmao.push(p.sinmao);
            b.mdot.push(p.mdot);
            b.argpdot.push(p.argpdot);
            b.nodedot.push(p.nodedot);
            b.nodecf.push(p.nodecf);
            b.omgcof.push(p.omgcof);
            b.xmcof.push(p.xmcof);
            b.t2cof.push(p.t2cof);
            b.t3cof.push(p.t3cof);
            b.t4cof.push(p.t4cof);
            b.t5cof.push(p.t5cof);
            b.xlcof.push(p.xlcof);
            b.aycof.push(p.aycof);
            b.sinip.push(p.inclo.sin());
            b.cosip.push(p.inclo.cos());
        }
        b
    }

    /// Number of lanes (propagators) in the batch.
    pub fn len(&self) -> usize {
        self.epoch.len()
    }

    /// Whether the batch holds no propagators.
    pub fn is_empty(&self) -> bool {
        self.epoch.is_empty()
    }

    /// Propagates every lane to `at`, filling `out` with one TEME position
    /// per lane (`None` where the scalar propagator would return an error).
    ///
    /// `out` is cleared and refilled; reuse it across calls to avoid
    /// reallocation.
    pub fn positions_into(&self, at: JulianDate, out: &mut Vec<Option<Vec3>>) {
        let n = self.len();
        out.clear();
        out.resize(n, None);
        if n == 0 {
            return;
        }

        // Inter-pass lanes. `ok` gates every later pass: a lane that errors
        // stays `None` in `out` and is skipped thereafter.
        let mut ok = vec![true; n];
        let mut l_am = vec![0.0f64; n];
        let mut l_nm = vec![0.0f64; n];
        let mut l_axnl = vec![0.0f64; n];
        let mut l_aynl = vec![0.0f64; n];
        let mut l_u = vec![0.0f64; n];
        let mut l_nodep = vec![0.0f64; n];
        let mut l_sineo1 = vec![0.0f64; n];
        let mut l_coseo1 = vec![0.0f64; n];

        // ---- Pass 1: secular gravity/drag and long-period periodics. ----
        for i in 0..n {
            let t = at.minutes_since(self.epoch[i]);
            let xmdf = self.mo[i] + self.mdot[i] * t;
            let argpdf = self.argpo[i] + self.argpdot[i] * t;
            let nodedf = self.nodeo[i] + self.nodedot[i] * t;
            let t2 = t * t;
            let mut nodem = nodedf + self.nodecf[i] * t2;
            let mut tempa = 1.0 - self.cc1[i] * t;
            let mut tempe = self.bstar[i] * self.cc4[i] * t;
            let mut templ = self.t2cof[i] * t2;

            let (mut mm, mut argpm) = (xmdf, argpdf);
            if !self.isimp[i] {
                let delomg = self.omgcof[i] * t;
                let delmtemp = 1.0 + self.eta[i] * xmdf.cos();
                let delm = self.xmcof[i] * (delmtemp.powi(3) - self.delmo[i]);
                let temp = delomg + delm;
                mm = xmdf + temp;
                argpm = argpdf - temp;
                let t3 = t2 * t;
                let t4 = t3 * t;
                tempa = tempa - self.d2[i] * t2 - self.d3[i] * t3 - self.d4[i] * t4;
                tempe += self.bstar[i] * self.cc5[i] * (mm.sin() - self.sinmao[i]);
                templ = templ + self.t3cof[i] * t3 + t4 * (self.t4cof[i] + t * self.t5cof[i]);
            }

            let nm = self.no_unkozai[i];
            if nm <= 0.0 {
                ok[i] = false; // NonPositiveMeanMotion
                continue;
            }
            let am = (XKE / nm).powf(2.0 / 3.0) * tempa * tempa;
            let nm = XKE / am.powf(1.5);
            let em = self.ecco[i] - tempe;

            if em >= 1.0 || em < -0.001 {
                ok[i] = false; // EccentricityOutOfRange
                continue;
            }
            let em = em.max(1.0e-6);

            let mm = mm + self.no_unkozai[i] * templ;
            let xlm = mm + argpm + nodem;

            nodem = wrap_tau(nodem);
            let argpm = wrap_tau(argpm);
            let xlm = wrap_tau(xlm);
            let mm = wrap_tau(xlm - argpm - nodem);

            let (ep, argpp, nodep, mp) = (em, argpm, nodem, mm);
            let axnl = ep * argpp.cos();
            let temp = 1.0 / (am * (1.0 - ep * ep));
            let aynl = ep * argpp.sin() + temp * self.aycof[i];
            let xl = mp + argpp + nodep + temp * self.xlcof[i] * axnl;

            l_am[i] = am;
            l_nm[i] = nm;
            l_axnl[i] = axnl;
            l_aynl[i] = aynl;
            l_u[i] = wrap_tau(xl - nodep);
            l_nodep[i] = nodep;
        }

        // ---- Pass 2: solve Kepler's equation per lane. ----
        for i in 0..n {
            if !ok[i] {
                continue;
            }
            let (axnl, aynl, u) = (l_axnl[i], l_aynl[i], l_u[i]);
            let mut eo1 = u;
            let mut tem5: f64 = 9999.9;
            let mut ktr = 1;
            let (mut sineo1, mut coseo1) = eo1.sin_cos();
            while tem5.abs() >= 1.0e-12 && ktr <= 10 {
                (sineo1, coseo1) = eo1.sin_cos();
                tem5 = 1.0 - coseo1 * axnl - sineo1 * aynl;
                tem5 = (u - aynl * coseo1 + axnl * sineo1 - eo1) / tem5;
                if tem5.abs() >= 0.95 {
                    tem5 = 0.95 * tem5.signum();
                }
                eo1 += tem5;
                ktr += 1;
            }
            l_sineo1[i] = sineo1;
            l_coseo1[i] = coseo1;
        }

        // ---- Pass 3: short-period periodics, orientation, position. ----
        for i in 0..n {
            if !ok[i] {
                continue;
            }
            let (am, nm) = (l_am[i], l_nm[i]);
            let (axnl, aynl) = (l_axnl[i], l_aynl[i]);
            let (sineo1, coseo1) = (l_sineo1[i], l_coseo1[i]);

            let ecose = axnl * coseo1 + aynl * sineo1;
            let esine = axnl * sineo1 - aynl * coseo1;
            let el2 = axnl * axnl + aynl * aynl;
            let pl = am * (1.0 - el2);
            if pl < 0.0 {
                continue; // NegativeSemiLatusRectum
            }

            let rl = am * (1.0 - ecose);
            let betal = (1.0 - el2).sqrt();
            let temp = esine / (1.0 + betal);
            let sinu = am / rl * (sineo1 - aynl - axnl * temp);
            let cosu = am / rl * (coseo1 - axnl + aynl * temp);
            let su = sinu.atan2(cosu);
            let sin2u = (cosu + cosu) * sinu;
            let cos2u = 1.0 - 2.0 * sinu * sinu;
            let temp = 1.0 / pl;
            let temp1 = 0.5 * J2 * temp;
            let temp2 = temp1 * temp;

            let mrt = rl * (1.0 - 1.5 * temp2 * betal * self.con41[i])
                + 0.5 * temp1 * self.x1mth2[i] * cos2u;
            let su = su - 0.25 * temp2 * self.x7thm1[i] * sin2u;
            let xnode = l_nodep[i] + 1.5 * temp2 * self.cosip[i] * sin2u;
            let xinc = self.inclo[i] + 1.5 * temp2 * self.cosip[i] * self.sinip[i] * cos2u;
            // `nm` participates only in velocity, which the batch path does
            // not produce; keep the binding so the lane math mirrors the
            // scalar code when read side by side.
            let _ = nm;

            let (sinsu, cossu) = su.sin_cos();
            let (snod, cnod) = xnode.sin_cos();
            let (sini, cosi) = xinc.sin_cos();
            let xmx = -snod * cosi;
            let xmy = cnod * cosi;
            let ux = xmx * sinsu + cnod * cossu;
            let uy = xmy * sinsu + snod * cossu;
            let uz = sini * sinsu;

            if mrt < 1.0 {
                continue; // Decayed
            }
            out[i] = Some(Vec3::new(ux, uy, uz) * (mrt * EARTH_RADIUS_KM));
        }
    }

    /// Convenience wrapper around [`positions_into`](Sgp4Batch::positions_into)
    /// that allocates the output vector.
    pub fn positions_at(&self, at: JulianDate) -> Vec<Option<Vec3>> {
        let mut out = Vec::new();
        self.positions_into(at, &mut out);
        out
    }
}

/// One-shot batched propagation of a propagator slice to a single instant.
///
/// Prefer holding a persistent [`Sgp4Batch`] when propagating the same set to
/// many instants — this helper re-transposes on every call.
pub fn propagate_batch(props: &[Sgp4], at: JulianDate) -> Vec<Option<Vec3>> {
    Sgp4Batch::from_propagators(props.iter()).positions_at(at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::Elements;
    use crate::tle::Tle;

    fn scalar_position(p: &Sgp4, at: JulianDate) -> Option<Vec3> {
        p.propagate(at).ok().map(|s| s.position_km)
    }

    fn assert_lane_bits(batch: &[Option<Vec3>], scalar: &[Option<Vec3>]) {
        assert_eq!(batch.len(), scalar.len());
        for (i, (b, s)) in batch.iter().zip(scalar).enumerate() {
            match (b, s) {
                (None, None) => {}
                (Some(b), Some(s)) => {
                    assert_eq!(b.x.to_bits(), s.x.to_bits(), "lane {i} x");
                    assert_eq!(b.y.to_bits(), s.y.to_bits(), "lane {i} y");
                    assert_eq!(b.z.to_bits(), s.z.to_bits(), "lane {i} z");
                }
                _ => panic!("lane {i}: batch {b:?} vs scalar {s:?}"),
            }
        }
    }

    fn shell_propagators() -> Vec<Sgp4> {
        let epoch = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
        let mut props = Vec::new();
        for k in 0..40 {
            let e = Elements::from_catalog_units(
                44000 + k,
                epoch,
                15.06 + 0.001 * k as f64,
                0.0001 + 0.00002 * k as f64,
                53.0 + 0.2 * (k % 5) as f64,
                9.0 * k as f64,
                4.5 * k as f64,
                (360.0 / 40.0) * k as f64,
                0.00012,
            );
            props.push(Sgp4::new(&e).expect("near-earth shell object"));
        }
        props
    }

    #[test]
    fn batch_matches_scalar_bitwise_across_epochs() {
        let props = shell_propagators();
        let batch = Sgp4Batch::from_propagators(props.iter());
        assert_eq!(batch.len(), props.len());
        let mut out = Vec::new();
        for step in 0..48 {
            let at = props[0].epoch().plus_minutes(step as f64 * 17.25 - 60.0);
            batch.positions_into(at, &mut out);
            let scalar: Vec<_> = props.iter().map(|p| scalar_position(p, at)).collect();
            assert_lane_bits(&out, &scalar);
        }
    }

    #[test]
    fn one_shot_helper_matches_scalar() {
        let props = shell_propagators();
        let at = props[0].epoch().plus_minutes(321.5);
        let batch = propagate_batch(&props, at);
        let scalar: Vec<_> = props.iter().map(|p| scalar_position(p, at)).collect();
        assert_lane_bits(&batch, &scalar);
    }

    #[test]
    fn empty_batch_yields_empty_output() {
        let batch = Sgp4Batch::from_propagators(std::iter::empty());
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        let mut out = vec![Some(Vec3::new(1.0, 2.0, 3.0))];
        batch.positions_into(JulianDate::J2000, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn error_lanes_become_none_without_disturbing_neighbors() {
        let epoch = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
        let healthy = Sgp4::new(&Elements::from_catalog_units(
            1, epoch, 15.06, 0.0001, 53.0, 10.0, 20.0, 30.0, 0.00012,
        ))
        .unwrap();
        // Absurd drag decays this lane within days.
        let draggy = Sgp4::new(&Elements::from_catalog_units(
            2, epoch, 15.06, 0.0001, 53.0, 40.0, 50.0, 60.0, 0.1,
        ))
        .unwrap();
        let props = vec![healthy.clone(), draggy.clone(), healthy.clone()];
        let batch = Sgp4Batch::from_propagators(props.iter());

        let mut saw_error_lane = false;
        let mut out = Vec::new();
        for day in 1..60 {
            let at = epoch.plus_minutes(day as f64 * 1440.0);
            batch.positions_into(at, &mut out);
            let scalar: Vec<_> = props.iter().map(|p| scalar_position(p, at)).collect();
            assert_lane_bits(&out, &scalar);
            if out[1].is_none() {
                assert!(out[0].is_some() && out[2].is_some());
                saw_error_lane = true;
                break;
            }
        }
        assert!(saw_error_lane, "expected the draggy lane to error");
    }

    #[test]
    fn vanguard_reference_object_matches_scalar() {
        let tle = Tle::parse_lines(
            "1 00005U 58002B   00179.78495062  .00000023  00000-0  28098-4 0  4753",
            "2 00005  34.2682 348.7242 1859667 331.7664  19.3264 10.82419157413667",
        )
        .expect("valid TLE");
        let p = Sgp4::new(&tle.elements()).expect("near-earth object");
        let batch = Sgp4Batch::from_propagators([&p]);
        for minutes in [0.0, 120.0, 360.0, 1440.0] {
            let at = p.epoch().plus_minutes(minutes);
            assert_lane_bits(&batch.positions_at(at), &[scalar_position(&p, at)]);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Batch lanes are bit-identical to the scalar propagator for
            /// arbitrary (valid, near-earth) element sets and offsets.
            #[test]
            fn batch_equals_scalar(
                revs in 11.3f64..16.4,
                ecc in 0.0f64..0.05,
                incl in 0.0f64..98.0,
                raan in 0.0f64..360.0,
                argp in 0.0f64..360.0,
                ma in 0.0f64..360.0,
                bstar in -0.001f64..0.01,
                minutes in -3000.0f64..3000.0,
            ) {
                let epoch = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
                let e = Elements::from_catalog_units(7, epoch, revs, ecc, incl, raan, argp, ma, bstar);
                if let Ok(p) = Sgp4::new(&e) {
                    let at = epoch.plus_minutes(minutes);
                    let batch = Sgp4Batch::from_propagators([&p]);
                    let lanes = batch.positions_at(at);
                    let scalar = scalar_position(&p, at);
                    match (lanes[0], scalar) {
                        (None, None) => {}
                        (Some(b), Some(s)) => {
                            prop_assert_eq!(b.x.to_bits(), s.x.to_bits());
                            prop_assert_eq!(b.y.to_bits(), s.y.to_bits());
                            prop_assert_eq!(b.z.to_bits(), s.z.to_bits());
                        }
                        (b, s) => prop_assert!(false, "batch {:?} vs scalar {:?}", b, s),
                    }
                }
            }
        }
    }
}
