//! The near-earth SGP4 propagator.
//!
//! This is a line-for-line port of the near-earth branch of the reference
//! implementation (`sgp4unit` from Vallado, Crawford, Hujsak & Kelso,
//! *Revisiting Spacetrack Report #3*, AIAA 2006-6753), using WGS-72
//! constants and the "improved" (afspc-compatible) initialization. Deep
//! space (SDP4) is deliberately out of scope: Starlink orbits at ~550 km
//! with ~95-minute periods, and the constructor rejects anything with a
//! period of 225 minutes or more.

use crate::elements::Elements;
use crate::error::Sgp4Error;
use crate::wgs72::{EARTH_RADIUS_KM, J2, J3OJ2, J4, XKE};
use starsense_astro::angles::wrap_tau;
use starsense_astro::time::JulianDate;
use starsense_astro::vec3::Vec3;

/// Satellite state produced by one propagation step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct State {
    /// Position in the TEME frame, km.
    pub position_km: Vec3,
    /// Velocity in the TEME frame, km/s.
    pub velocity_km_s: Vec3,
}

/// An initialized SGP4 propagator for one element set.
///
/// Initialization is the expensive part of SGP4; one `Sgp4` can then be
/// propagated to any number of instants. The struct is immutable and
/// therefore freely shareable across threads.
// Coefficient fields are crate-visible so `batch::Sgp4Batch` can transpose
// them into a struct-of-arrays layout without re-running initialization.
#[derive(Debug, Clone)]
pub struct Sgp4 {
    pub(crate) epoch: JulianDate,
    // Elements retained for propagation.
    pub(crate) ecco: f64,
    pub(crate) inclo: f64,
    pub(crate) nodeo: f64,
    pub(crate) argpo: f64,
    pub(crate) mo: f64,
    pub(crate) bstar: f64,
    // Derived at initialization.
    pub(crate) no_unkozai: f64,
    pub(crate) isimp: bool,
    pub(crate) con41: f64,
    pub(crate) x1mth2: f64,
    pub(crate) x7thm1: f64,
    pub(crate) cc1: f64,
    pub(crate) cc4: f64,
    pub(crate) cc5: f64,
    pub(crate) d2: f64,
    pub(crate) d3: f64,
    pub(crate) d4: f64,
    pub(crate) delmo: f64,
    pub(crate) eta: f64,
    pub(crate) sinmao: f64,
    pub(crate) mdot: f64,
    pub(crate) argpdot: f64,
    pub(crate) nodedot: f64,
    pub(crate) nodecf: f64,
    pub(crate) omgcof: f64,
    pub(crate) xmcof: f64,
    pub(crate) t2cof: f64,
    pub(crate) t3cof: f64,
    pub(crate) t4cof: f64,
    pub(crate) t5cof: f64,
    pub(crate) xlcof: f64,
    pub(crate) aycof: f64,
}

impl Sgp4 {
    /// Initializes the propagator from mean elements.
    ///
    /// # Errors
    ///
    /// Returns [`Sgp4Error::InvalidElements`] for unphysical inputs and
    /// [`Sgp4Error::DeepSpace`] for periods ≥ 225 minutes.
    pub fn new(elements: &Elements) -> Result<Sgp4, Sgp4Error> {
        if elements.no_kozai <= 0.0 {
            return Err(Sgp4Error::InvalidElements { reason: "mean motion must be positive" });
        }
        if !(0.0..1.0).contains(&elements.ecco) {
            return Err(Sgp4Error::InvalidElements { reason: "eccentricity must be in [0, 1)" });
        }
        if !elements.inclo.is_finite() || elements.inclo.abs() > std::f64::consts::PI {
            return Err(Sgp4Error::InvalidElements { reason: "inclination must be in [-π, π]" });
        }
        let period = elements.period_minutes();
        if period >= 225.0 {
            return Err(Sgp4Error::DeepSpace { period_minutes: period });
        }

        let ecco = elements.ecco;
        let inclo = elements.inclo;
        let no_kozai = elements.no_kozai;

        // ---- initl: recover the un-Kozai'd mean motion and geometry. ----
        let eccsq = ecco * ecco;
        let omeosq = 1.0 - eccsq;
        let rteosq = omeosq.sqrt();
        let cosio = inclo.cos();
        let cosio2 = cosio * cosio;

        let ak = (XKE / no_kozai).powf(2.0 / 3.0);
        let d1 = 0.75 * J2 * (3.0 * cosio2 - 1.0) / (rteosq * omeosq);
        let mut del = d1 / (ak * ak);
        let adel = ak * (1.0 - del * del - del * (1.0 / 3.0 + 134.0 * del * del / 81.0));
        del = d1 / (adel * adel);
        let no_unkozai = no_kozai / (1.0 + del);

        let ao = (XKE / no_unkozai).powf(2.0 / 3.0);
        let sinio = inclo.sin();
        let po = ao * omeosq;
        let con42 = 1.0 - 5.0 * cosio2;
        let con41 = -con42 - 2.0 * cosio2;
        let posq = po * po;
        let rp = ao * (1.0 - ecco);

        if rp < 1.0 {
            return Err(Sgp4Error::InvalidElements {
                reason: "perigee below the surface of the Earth",
            });
        }

        // ---- sgp4init: drag and secular coefficients. ----
        let isimp = rp < 220.0 / EARTH_RADIUS_KM + 1.0;

        // Density-function fitting parameters, adjusted for low perigees.
        let ss_default = 78.0 / EARTH_RADIUS_KM + 1.0;
        let qzms2t = ((120.0 - 78.0) / EARTH_RADIUS_KM).powi(4);
        let perige = (rp - 1.0) * EARTH_RADIUS_KM;
        let (sfour, qzms24) = if perige < 156.0 {
            let mut s = perige - 78.0;
            if perige < 98.0 {
                s = 20.0;
            }
            let q = ((120.0 - s) / EARTH_RADIUS_KM).powi(4);
            (s / EARTH_RADIUS_KM + 1.0, q)
        } else {
            (ss_default, qzms2t)
        };

        let pinvsq = 1.0 / posq;
        let tsi = 1.0 / (ao - sfour);
        let eta = ao * ecco * tsi;
        let etasq = eta * eta;
        let eeta = ecco * eta;
        let psisq = (1.0 - etasq).abs();
        let coef = qzms24 * tsi.powi(4);
        let coef1 = coef / psisq.powf(3.5);

        let cc2 = coef1
            * no_unkozai
            * (ao * (1.0 + 1.5 * etasq + eeta * (4.0 + etasq))
                + 0.375 * J2 * tsi / psisq * con41 * (8.0 + 3.0 * etasq * (8.0 + etasq)));
        let cc1 = elements.bstar * cc2;
        let cc3 =
            if ecco > 1.0e-4 { -2.0 * coef * tsi * J3OJ2 * no_unkozai * sinio / ecco } else { 0.0 };
        let x1mth2 = 1.0 - cosio2;
        let cc4 = 2.0
            * no_unkozai
            * coef1
            * ao
            * omeosq
            * (eta * (2.0 + 0.5 * etasq) + ecco * (0.5 + 2.0 * etasq)
                - J2 * tsi / (ao * psisq)
                    * (-3.0 * con41 * (1.0 - 2.0 * eeta + etasq * (1.5 - 0.5 * eeta))
                        + 0.75
                            * x1mth2
                            * (2.0 * etasq - eeta * (1.0 + etasq))
                            * (2.0 * elements.argpo).cos()));
        let cc5 = 2.0 * coef1 * ao * omeosq * (1.0 + 2.75 * (etasq + eeta) + eeta * etasq);

        let cosio4 = cosio2 * cosio2;
        let temp1 = 1.5 * J2 * pinvsq * no_unkozai;
        let temp2 = 0.5 * temp1 * J2 * pinvsq;
        let temp3 = -0.46875 * J4 * pinvsq * pinvsq * no_unkozai;
        let mdot = no_unkozai
            + 0.5 * temp1 * rteosq * con41
            + 0.0625 * temp2 * rteosq * (13.0 - 78.0 * cosio2 + 137.0 * cosio4);
        let argpdot = -0.5 * temp1 * con42
            + 0.0625 * temp2 * (7.0 - 114.0 * cosio2 + 395.0 * cosio4)
            + temp3 * (3.0 - 36.0 * cosio2 + 49.0 * cosio4);
        let xhdot1 = -temp1 * cosio;
        let nodedot = xhdot1
            + (0.5 * temp2 * (4.0 - 19.0 * cosio2) + 2.0 * temp3 * (3.0 - 7.0 * cosio2)) * cosio;

        let omgcof = elements.bstar * cc3 * elements.argpo.cos();
        let xmcof = if ecco > 1.0e-4 { -2.0 / 3.0 * coef * elements.bstar / eeta } else { 0.0 };
        let nodecf = 3.5 * omeosq * xhdot1 * cc1;
        let t2cof = 1.5 * cc1;

        let xlcof = if (1.0 + cosio).abs() > 1.5e-12 {
            -0.25 * J3OJ2 * sinio * (3.0 + 5.0 * cosio) / (1.0 + cosio)
        } else {
            -0.25 * J3OJ2 * sinio * (3.0 + 5.0 * cosio) / 1.5e-12
        };
        let aycof = -0.5 * J3OJ2 * sinio;

        let delmo = (1.0 + eta * elements.mo.cos()).powi(3);
        let sinmao = elements.mo.sin();
        let x7thm1 = 7.0 * cosio2 - 1.0;

        // Higher-order drag terms, only used when perigee ≥ 220 km.
        let (d2, d3, d4, t3cof, t4cof, t5cof) = if !isimp {
            let cc1sq = cc1 * cc1;
            let d2 = 4.0 * ao * tsi * cc1sq;
            let temp = d2 * tsi * cc1 / 3.0;
            let d3 = (17.0 * ao + sfour) * temp;
            let d4 = 0.5 * temp * ao * tsi * (221.0 * ao + 31.0 * sfour) * cc1;
            let t3cof = d2 + 2.0 * cc1sq;
            let t4cof = 0.25 * (3.0 * d3 + cc1 * (12.0 * d2 + 10.0 * cc1sq));
            let t5cof = 0.2
                * (3.0 * d4 + 12.0 * ao * d3 + 6.0 * d2 * d2 + 15.0 * cc1sq * (2.0 * d2 + cc1sq));
            (d2, d3, d4, t3cof, t4cof, t5cof)
        } else {
            (0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        };

        Ok(Sgp4 {
            epoch: elements.epoch,
            ecco,
            inclo,
            nodeo: elements.nodeo,
            argpo: elements.argpo,
            mo: elements.mo,
            bstar: elements.bstar,
            no_unkozai,
            isimp,
            con41,
            x1mth2,
            x7thm1,
            cc1,
            cc4,
            cc5,
            d2,
            d3,
            d4,
            delmo,
            eta,
            sinmao,
            mdot,
            argpdot,
            nodedot,
            nodecf,
            omgcof,
            xmcof,
            t2cof,
            t3cof,
            t4cof,
            t5cof,
            xlcof,
            aycof,
        })
    }

    /// Element-set epoch this propagator was initialized at.
    pub fn epoch(&self) -> JulianDate {
        self.epoch
    }

    /// Propagates to an absolute UTC instant.
    pub fn propagate(&self, at: JulianDate) -> Result<State, Sgp4Error> {
        self.propagate_minutes(at.minutes_since(self.epoch))
    }

    /// Propagates to `t` minutes past the element-set epoch.
    pub fn propagate_minutes(&self, t: f64) -> Result<State, Sgp4Error> {
        // ---- Secular gravity and atmospheric drag. ----
        let xmdf = self.mo + self.mdot * t;
        let argpdf = self.argpo + self.argpdot * t;
        let nodedf = self.nodeo + self.nodedot * t;
        let t2 = t * t;
        let mut nodem = nodedf + self.nodecf * t2;
        let mut tempa = 1.0 - self.cc1 * t;
        let mut tempe = self.bstar * self.cc4 * t;
        let mut templ = self.t2cof * t2;

        let (mut mm, mut argpm) = (xmdf, argpdf);
        if !self.isimp {
            let delomg = self.omgcof * t;
            let delmtemp = 1.0 + self.eta * xmdf.cos();
            let delm = self.xmcof * (delmtemp.powi(3) - self.delmo);
            let temp = delomg + delm;
            mm = xmdf + temp;
            argpm = argpdf - temp;
            let t3 = t2 * t;
            let t4 = t3 * t;
            tempa = tempa - self.d2 * t2 - self.d3 * t3 - self.d4 * t4;
            tempe += self.bstar * self.cc5 * (mm.sin() - self.sinmao);
            templ = templ + self.t3cof * t3 + t4 * (self.t4cof + t * self.t5cof);
        }

        let nm = self.no_unkozai;
        if nm <= 0.0 {
            return Err(Sgp4Error::NonPositiveMeanMotion);
        }
        let am = (XKE / nm).powf(2.0 / 3.0) * tempa * tempa;
        let nm = XKE / am.powf(1.5);
        let em = self.ecco - tempe;

        if em >= 1.0 || em < -0.001 {
            return Err(Sgp4Error::EccentricityOutOfRange { eccentricity: em });
        }
        let em = em.max(1.0e-6);

        let mm = mm + self.no_unkozai * templ;
        let xlm = mm + argpm + nodem;

        nodem = wrap_tau(nodem);
        let argpm = wrap_tau(argpm);
        let xlm = wrap_tau(xlm);
        let mm = wrap_tau(xlm - argpm - nodem);

        // ---- Long-period periodics. ----
        let sinip = self.inclo.sin();
        let cosip = self.inclo.cos();
        let (ep, xincp, argpp, nodep, mp) = (em, self.inclo, argpm, nodem, mm);

        let axnl = ep * argpp.cos();
        let temp = 1.0 / (am * (1.0 - ep * ep));
        let aynl = ep * argpp.sin() + temp * self.aycof;
        let xl = mp + argpp + nodep + temp * self.xlcof * axnl;

        // ---- Solve Kepler's equation. ----
        let u = wrap_tau(xl - nodep);
        let mut eo1 = u;
        let mut tem5: f64 = 9999.9;
        let mut ktr = 1;
        let (mut sineo1, mut coseo1) = eo1.sin_cos();
        while tem5.abs() >= 1.0e-12 && ktr <= 10 {
            (sineo1, coseo1) = eo1.sin_cos();
            tem5 = 1.0 - coseo1 * axnl - sineo1 * aynl;
            tem5 = (u - aynl * coseo1 + axnl * sineo1 - eo1) / tem5;
            if tem5.abs() >= 0.95 {
                tem5 = 0.95 * tem5.signum();
            }
            eo1 += tem5;
            ktr += 1;
        }

        // ---- Short-period preliminary quantities. ----
        let ecose = axnl * coseo1 + aynl * sineo1;
        let esine = axnl * sineo1 - aynl * coseo1;
        let el2 = axnl * axnl + aynl * aynl;
        let pl = am * (1.0 - el2);
        if pl < 0.0 {
            return Err(Sgp4Error::NegativeSemiLatusRectum);
        }

        let rl = am * (1.0 - ecose);
        let rdotl = am.sqrt() * esine / rl;
        let rvdotl = pl.sqrt() / rl;
        let betal = (1.0 - el2).sqrt();
        let temp = esine / (1.0 + betal);
        let sinu = am / rl * (sineo1 - aynl - axnl * temp);
        let cosu = am / rl * (coseo1 - axnl + aynl * temp);
        let su = sinu.atan2(cosu);
        let sin2u = (cosu + cosu) * sinu;
        let cos2u = 1.0 - 2.0 * sinu * sinu;
        let temp = 1.0 / pl;
        let temp1 = 0.5 * J2 * temp;
        let temp2 = temp1 * temp;

        // ---- Short-period periodics. ----
        let mrt = rl * (1.0 - 1.5 * temp2 * betal * self.con41) + 0.5 * temp1 * self.x1mth2 * cos2u;
        let su = su - 0.25 * temp2 * self.x7thm1 * sin2u;
        let xnode = nodep + 1.5 * temp2 * cosip * sin2u;
        let xinc = xincp + 1.5 * temp2 * cosip * sinip * cos2u;
        let mvt = rdotl - nm * temp1 * self.x1mth2 * sin2u / XKE;
        let rvdot = rvdotl + nm * temp1 * (self.x1mth2 * cos2u + 1.5 * self.con41) / XKE;

        // ---- Orientation vectors and final state. ----
        let (sinsu, cossu) = su.sin_cos();
        let (snod, cnod) = xnode.sin_cos();
        let (sini, cosi) = xinc.sin_cos();
        let xmx = -snod * cosi;
        let xmy = cnod * cosi;
        let ux = xmx * sinsu + cnod * cossu;
        let uy = xmy * sinsu + snod * cossu;
        let uz = sini * sinsu;
        let vx = xmx * cossu - cnod * sinsu;
        let vy = xmy * cossu - snod * sinsu;
        let vz = sini * cossu;

        if mrt < 1.0 {
            return Err(Sgp4Error::Decayed { minutes_past_epoch: t });
        }

        let vkmpersec = EARTH_RADIUS_KM * XKE / 60.0;
        Ok(State {
            position_km: Vec3::new(ux, uy, uz) * (mrt * EARTH_RADIUS_KM),
            velocity_km_s: (Vec3::new(ux, uy, uz) * mvt + Vec3::new(vx, vy, vz) * rvdot)
                * vkmpersec,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tle::Tle;

    /// Canonical verification object from "Revisiting Spacetrack Report #3"
    /// (AIAA 2006-6753), satellite 00005 (Vanguard 1), WGS-72.
    fn vanguard() -> Sgp4 {
        let tle = Tle::parse_lines(
            "1 00005U 58002B   00179.78495062  .00000023  00000-0  28098-4 0  4753",
            "2 00005  34.2682 348.7242 1859667 331.7664  19.3264 10.82419157413667",
        )
        .expect("valid TLE");
        Sgp4::new(&tle.elements()).expect("near-earth object")
    }

    #[test]
    fn vanguard_at_epoch_matches_reference() {
        let s = vanguard().propagate_minutes(0.0).unwrap();
        // Reference values from the AIAA test suite (wgs72, afspc mode).
        let r = s.position_km;
        assert!((r.x - 7022.465_292_66).abs() < 1e-4, "x = {}", r.x);
        assert!((r.y - -1400.082_967_55).abs() < 1e-4, "y = {}", r.y);
        assert!((r.z - 0.039_951_55).abs() < 1e-4, "z = {}", r.z);
        let v = s.velocity_km_s;
        assert!((v.x - 1.893_841_015).abs() < 1e-6, "vx = {}", v.x);
        assert!((v.y - 6.405_893_759).abs() < 1e-6, "vy = {}", v.y);
        assert!((v.z - 4.534_807_250).abs() < 1e-6, "vz = {}", v.z);
    }

    #[test]
    fn vanguard_at_360_minutes_matches_reference() {
        let s = vanguard().propagate_minutes(360.0).unwrap();
        let r = s.position_km;
        assert!((r.x - -7154.031_202_02).abs() < 1e-3, "x = {}", r.x);
        assert!((r.y - -3783.176_825_04).abs() < 1e-3, "y = {}", r.y);
        assert!((r.z - -3536.194_122_94).abs() < 1e-3, "z = {}", r.z);
        let v = s.velocity_km_s;
        assert!((v.x - 4.741_887_409).abs() < 1e-5, "vx = {}", v.x);
        assert!((v.y - -4.151_817_765).abs() < 1e-5, "vy = {}", v.y);
        assert!((v.z - -2.093_935_425).abs() < 1e-5, "vz = {}", v.z);
    }

    fn starlink_elements() -> Elements {
        Elements::from_catalog_units(
            44714,
            JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0),
            15.06,
            0.0001,
            53.0,
            210.0,
            90.0,
            45.0,
            0.00012,
        )
    }

    #[test]
    fn starlink_orbit_stays_near_550km_altitude() {
        let sgp4 = Sgp4::new(&starlink_elements()).unwrap();
        for k in 0..200 {
            let s = sgp4.propagate_minutes(k as f64 * 7.3).unwrap();
            let alt = s.position_km.norm() - EARTH_RADIUS_KM;
            assert!((500.0..620.0).contains(&alt), "t={k}: altitude {alt}");
        }
    }

    #[test]
    fn starlink_speed_is_about_7_6_km_s() {
        let sgp4 = Sgp4::new(&starlink_elements()).unwrap();
        let s = sgp4.propagate_minutes(42.0).unwrap();
        let speed = s.velocity_km_s.norm();
        assert!((7.4..7.8).contains(&speed), "speed {speed}");
    }

    #[test]
    fn orbit_returns_after_one_period() {
        let e = starlink_elements();
        let sgp4 = Sgp4::new(&e).unwrap();
        let p = e.period_minutes();
        let a = sgp4.propagate_minutes(0.0).unwrap().position_km;
        let b = sgp4.propagate_minutes(p).unwrap().position_km;
        // Nodal precession and drag move things slightly; within tens of km.
        assert!(a.distance(b) < 100.0, "distance {}", a.distance(b));
    }

    #[test]
    fn inclination_bounds_latitude_excursion() {
        let sgp4 = Sgp4::new(&starlink_elements()).unwrap();
        for k in 0..500 {
            let s = sgp4.propagate_minutes(k as f64 * 1.1).unwrap();
            let lat = (s.position_km.z / s.position_km.norm()).asin().to_degrees();
            assert!(lat.abs() < 53.5, "latitude {lat} exceeds inclination");
        }
    }

    #[test]
    fn deep_space_object_is_rejected() {
        // A geosynchronous-style orbit: ~1 rev/day.
        let e = Elements::from_catalog_units(
            1,
            JulianDate::J2000,
            1.002,
            0.0002,
            0.05,
            0.0,
            0.0,
            0.0,
            0.0,
        );
        match Sgp4::new(&e) {
            Err(Sgp4Error::DeepSpace { period_minutes }) => {
                assert!((period_minutes - 1436.0).abs() < 10.0)
            }
            other => panic!("expected DeepSpace, got {other:?}"),
        }
    }

    #[test]
    fn sub_surface_perigee_is_rejected() {
        let e = Elements::from_catalog_units(
            1,
            JulianDate::J2000,
            16.4, // extremely low orbit
            0.2,  // eccentric enough to dip below the surface
            53.0,
            0.0,
            0.0,
            0.0,
            0.0,
        );
        assert!(matches!(Sgp4::new(&e), Err(Sgp4Error::InvalidElements { .. })));
    }

    #[test]
    fn negative_mean_motion_is_rejected() {
        let mut e = starlink_elements();
        e.no_kozai = -1.0;
        assert!(matches!(Sgp4::new(&e), Err(Sgp4Error::InvalidElements { .. })));
    }

    #[test]
    fn heavy_drag_eventually_decays() {
        let mut e = starlink_elements();
        e.bstar = 0.1; // absurdly draggy
        let sgp4 = Sgp4::new(&e).unwrap();
        let mut decayed = false;
        for day in 1..60 {
            match sgp4.propagate_minutes(day as f64 * 1440.0) {
                Err(Sgp4Error::Decayed { .. }) | Err(Sgp4Error::EccentricityOutOfRange { .. }) => {
                    decayed = true;
                    break;
                }
                _ => {}
            }
        }
        assert!(decayed, "expected the satellite to decay within 60 days");
    }

    #[test]
    fn propagate_absolute_time_agrees_with_minutes() {
        let e = starlink_elements();
        let sgp4 = Sgp4::new(&e).unwrap();
        let at = e.epoch.plus_minutes(123.4);
        let a = sgp4.propagate(at).unwrap();
        let b = sgp4.propagate_minutes(123.4).unwrap();
        // f64 Julian dates resolve ~40 µs; at 7.6 km/s that is ~0.3 m.
        assert!((a.position_km - b.position_km).norm() < 0.01);
    }
}
