//! Two-line element set parsing and formatting.
//!
//! The paper pulls Starlink TLEs from CelesTrak; the reproduction synthesizes
//! its own (see `starsense-constellation`) but uses the exact same wire
//! format so the parsing path is fully exercised: fixed-column fields,
//! "implied decimal point" notation for B* and eccentricity, two-digit epoch
//! years, and the modulo-10 line checksum.

use crate::elements::Elements;
use starsense_astro::time::{CivilTime, JulianDate};
use std::fmt;

/// A parsed two-line element set.
#[derive(Debug, Clone, PartialEq)]
pub struct Tle {
    /// Optional satellite name (from a "line 0" title line).
    pub name: Option<String>,
    /// NORAD catalog number.
    pub norad_id: u32,
    /// Security classification character (`U` for unclassified).
    pub classification: char,
    /// International designator, e.g. `19074A` (launch 2019-074, object A).
    pub intl_designator: String,
    /// Element-set epoch, UTC.
    pub epoch: JulianDate,
    /// First derivative of mean motion / 2, rev/day².
    pub ndot: f64,
    /// Second derivative of mean motion / 6, rev/day³.
    pub nddot: f64,
    /// B* drag term, 1/earth-radii.
    pub bstar: f64,
    /// Element-set number.
    pub element_set_no: u32,
    /// Inclination, degrees.
    pub inclination_deg: f64,
    /// Right ascension of the ascending node, degrees.
    pub raan_deg: f64,
    /// Eccentricity, dimensionless.
    pub eccentricity: f64,
    /// Argument of perigee, degrees.
    pub arg_perigee_deg: f64,
    /// Mean anomaly, degrees.
    pub mean_anomaly_deg: f64,
    /// Mean motion, revolutions per day.
    pub mean_motion_rev_day: f64,
    /// Revolution number at epoch.
    pub rev_number: u32,
}

/// Errors from TLE parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum TleError {
    /// A line is shorter than the mandatory 69 columns.
    LineTooShort {
        /// Which line (1 or 2).
        line: u8,
        /// Its actual length.
        len: usize,
    },
    /// A line does not start with the expected line number.
    BadLineNumber {
        /// Which line was expected.
        expected: u8,
    },
    /// The modulo-10 checksum does not match.
    BadChecksum {
        /// Which line (1 or 2).
        line: u8,
        /// Checksum computed over the line body.
        computed: u32,
        /// Checksum digit present in column 69.
        found: u32,
    },
    /// The catalog numbers on lines 1 and 2 disagree.
    CatalogMismatch,
    /// A numeric field failed to parse.
    BadField {
        /// Name of the offending field.
        field: &'static str,
    },
}

impl fmt::Display for TleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TleError::LineTooShort { line, len } => {
                write!(f, "line {line} is {len} chars, need 69")
            }
            TleError::BadLineNumber { expected } => {
                write!(f, "line does not start with '{expected}'")
            }
            TleError::BadChecksum { line, computed, found } => {
                write!(f, "line {line} checksum mismatch: computed {computed}, found {found}")
            }
            TleError::CatalogMismatch => write!(f, "catalog numbers differ between lines"),
            TleError::BadField { field } => write!(f, "could not parse field `{field}`"),
        }
    }
}

impl std::error::Error for TleError {}

/// One defect found while lossily parsing a catalog feed — the record
/// that failed and why, so callers can degrade gracefully (keep the
/// usable records) while still reporting what was lost.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogDefect {
    /// 0-based index of the offending line among the feed's non-blank
    /// lines.
    pub line: usize,
    /// The parse error for that record.
    pub error: TleError,
}

/// Computes the TLE modulo-10 checksum of the first 68 columns of a line:
/// digits count as their value, `-` counts as 1, everything else as 0.
pub fn checksum(line: &str) -> u32 {
    line.chars()
        .take(68)
        .map(|c| match c {
            '0'..='9' => c as u32 - '0' as u32,
            '-' => 1,
            _ => 0,
        })
        .sum::<u32>()
        % 10
}

fn field(line: &str, range: std::ops::Range<usize>) -> &str {
    line.get(range).unwrap_or("").trim()
}

/// Rejects non-finite values: Rust's `f64` parser happily accepts
/// `NaN`/`inf` spellings, which a corrupted feed can smuggle past the
/// checksum (the checksum ignores letters), so every numeric field is
/// validated semantically as well.
fn require_finite(v: f64, name: &'static str) -> Result<f64, TleError> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(TleError::BadField { field: name })
    }
}

fn parse_f64(
    line: &str,
    range: std::ops::Range<usize>,
    name: &'static str,
) -> Result<f64, TleError> {
    field(line, range)
        .parse()
        .map_err(|_| TleError::BadField { field: name })
        .and_then(|v| require_finite(v, name))
}

fn parse_u32(
    line: &str,
    range: std::ops::Range<usize>,
    name: &'static str,
) -> Result<u32, TleError> {
    let s = field(line, range);
    if s.is_empty() {
        return Ok(0);
    }
    s.parse().map_err(|_| TleError::BadField { field: name })
}

/// Parses an "implied decimal point" exponent field such as ` 28098-4`
/// (meaning `+0.28098e-4`) into an `f64`.
fn parse_exp_field(s: &str, name: &'static str) -> Result<f64, TleError> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(0.0);
    }
    let bytes = s.as_bytes();
    let (sign, rest) = match bytes[0] {
        b'-' => (-1.0, &s[1..]),
        b'+' => (1.0, &s[1..]),
        _ => (1.0, s),
    };
    // Split mantissa digits from trailing exponent (sign + digit).
    let exp_start =
        rest.char_indices().skip(1).find(|&(_, c)| c == '+' || c == '-').map(|(i, _)| i);
    let (mantissa_str, exp) = match exp_start {
        Some(i) => {
            let e: i32 = rest[i..].parse().map_err(|_| TleError::BadField { field: name })?;
            (&rest[..i], e)
        }
        None => (rest, 0),
    };
    let digits: f64 =
        mantissa_str.trim().parse().map_err(|_| TleError::BadField { field: name })?;
    let scale = 10f64.powi(mantissa_str.trim().len() as i32);
    require_finite(sign * digits / scale * 10f64.powi(exp), name)
}

/// Formats a value into the 8-character implied-decimal exponent form.
fn format_exp_field(value: f64) -> String {
    // Values this small cannot be represented in the 5-digit implied-decimal
    // exponent form anyway; treat them as the wire-format zero sentinel
    // (also avoids an exact float `==`).
    if value.abs() < 1e-12 {
        return " 00000+0".to_string();
    }
    let sign = if value < 0.0 { '-' } else { ' ' };
    let mut v = value.abs();
    // Normalize to 0.ddddd × 10^e.
    let mut e = 0i32;
    while v >= 1.0 {
        v /= 10.0;
        e += 1;
    }
    while v < 0.1 {
        v *= 10.0;
        e -= 1;
    }
    let mantissa = (v * 100_000.0).round() as u32;
    // Rounding can push the mantissa to 100000 = 1.0; renormalize.
    let (mantissa, e) = if mantissa == 100_000 { (10_000, e + 1) } else { (mantissa, e) };
    let esign = if e < 0 { '-' } else { '+' };
    format!("{sign}{mantissa:05}{esign}{:1}", e.abs())
}

impl Tle {
    /// Parses a TLE from its two mandatory lines.
    pub fn parse_lines(line1: &str, line2: &str) -> Result<Tle, TleError> {
        Self::parse_named(None, line1, line2)
    }

    /// Parses a TLE preceded by an optional title line.
    pub fn parse_named(name: Option<&str>, line1: &str, line2: &str) -> Result<Tle, TleError> {
        for (idx, line) in [(1u8, line1), (2u8, line2)] {
            if line.len() < 69 {
                return Err(TleError::LineTooShort { line: idx, len: line.len() });
            }
            let expected = (b'0' + idx) as char;
            if !line.starts_with(expected) {
                return Err(TleError::BadLineNumber { expected: idx });
            }
            let computed = checksum(line);
            let found = line
                .chars()
                .nth(68)
                .and_then(|c| c.to_digit(10))
                .ok_or(TleError::BadField { field: "checksum" })?;
            if computed != found {
                return Err(TleError::BadChecksum { line: idx, computed, found });
            }
        }

        let norad1 = parse_u32(line1, 2..7, "catalog number")?;
        let norad2 = parse_u32(line2, 2..7, "catalog number")?;
        if norad1 != norad2 {
            return Err(TleError::CatalogMismatch);
        }

        // Epoch: two-digit year + fractional day of year.
        let yy = parse_u32(line1, 18..20, "epoch year")?;
        let year = if yy < 57 { 2000 + yy as i32 } else { 1900 + yy as i32 };
        let doy = parse_f64(line1, 20..32, "epoch day")?;
        let epoch = CivilTime::from_year_and_doy(year, doy).to_julian();

        // ndot has a leading sign/space then ".dddddddd".
        let ndot = parse_f64(line1, 33..43, "ndot")?;
        let nddot = parse_exp_field(field(line1, 44..52), "nddot")?;
        let bstar = parse_exp_field(field(line1, 53..61), "bstar")?;

        Ok(Tle {
            name: name.map(|s| s.trim().to_string()),
            norad_id: norad1,
            classification: line1.chars().nth(7).unwrap_or('U'),
            intl_designator: field(line1, 9..17).to_string(),
            epoch,
            ndot,
            nddot,
            bstar,
            element_set_no: parse_u32(line1, 64..68, "element set number")?,
            inclination_deg: parse_f64(line2, 8..16, "inclination")?,
            raan_deg: parse_f64(line2, 17..25, "raan")?,
            eccentricity: {
                let digits = field(line2, 26..33);
                let v: f64 = format!("0.{digits}")
                    .parse()
                    .map_err(|_| TleError::BadField { field: "eccentricity" })?;
                require_finite(v, "eccentricity")?
            },
            arg_perigee_deg: parse_f64(line2, 34..42, "argument of perigee")?,
            mean_anomaly_deg: parse_f64(line2, 43..51, "mean anomaly")?,
            mean_motion_rev_day: parse_f64(line2, 52..63, "mean motion")?,
            rev_number: parse_u32(line2, 63..68, "rev number")?,
        })
    }

    /// Parses a whole multi-TLE text (2 or 3 lines per object, 3LE when a
    /// title line precedes each pair). Blank lines are skipped.
    pub fn parse_catalog(text: &str) -> Result<Vec<Tle>, TleError> {
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < lines.len() {
            if lines[i].starts_with("1 ") && i + 1 < lines.len() {
                out.push(Tle::parse_lines(lines[i], lines[i + 1])?);
                i += 2;
            } else if i + 2 < lines.len() || (i + 2 == lines.len() && lines.len() >= 3) {
                out.push(Tle::parse_named(Some(lines[i]), lines[i + 1], lines[i + 2])?);
                i += 3;
            } else {
                return Err(TleError::BadField { field: "dangling lines at end of catalog" });
            }
        }
        Ok(out)
    }

    /// Like [`Tle::parse_catalog`], but defects do not abort the parse:
    /// each failing record is skipped and reported as a
    /// [`CatalogDefect`], and every record that parses cleanly is kept.
    /// A feed with no defects returns exactly what `parse_catalog`
    /// would.
    ///
    /// Resynchronization is structural: a line starting with `"1 "`
    /// opens a record (consuming the following line as its line 2,
    /// whether or not the pair parses), a stray `"2 "` line is reported
    /// and skipped, and anything else is treated as a title for the
    /// next record.
    pub fn parse_catalog_lossy(text: &str) -> (Vec<Tle>, Vec<CatalogDefect>) {
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut out = Vec::new();
        let mut defects = Vec::new();
        let mut pending_name: Option<&str> = None;
        let mut i = 0;
        while i < lines.len() {
            let line = lines[i];
            if line.starts_with("1 ") {
                if i + 1 < lines.len() {
                    match Tle::parse_named(pending_name, line, lines[i + 1]) {
                        Ok(t) => out.push(t),
                        Err(error) => defects.push(CatalogDefect { line: i, error }),
                    }
                    i += 2;
                } else {
                    // A line 1 with nothing after it: the record's line 2
                    // is missing entirely.
                    defects.push(CatalogDefect {
                        line: i,
                        error: TleError::BadLineNumber { expected: 2 },
                    });
                    i += 1;
                }
                pending_name = None;
            } else if line.starts_with("2 ") {
                defects.push(CatalogDefect {
                    line: i,
                    error: TleError::BadLineNumber { expected: 1 },
                });
                pending_name = None;
                i += 1;
            } else {
                pending_name = Some(line);
                i += 1;
            }
        }
        (out, defects)
    }

    /// Renders the two element lines, with correct column layout and
    /// checksums. The result round-trips through [`Tle::parse_lines`].
    pub fn format_lines(&self) -> (String, String) {
        let c = self.epoch.to_civil();
        let yy = c.year % 100;
        let doy = c.day_of_year();

        let ndot_str = {
            let sign = if self.ndot < 0.0 { '-' } else { ' ' };
            let frac = format!("{:.8}", self.ndot.abs());
            // ".00000023" — strip the leading zero.
            format!("{sign}{}", &frac[1..])
        };

        let mut line1 = format!(
            "1 {:05}{} {:<8} {:02}{:012.8} {} {} {} 0 {:4}",
            self.norad_id,
            self.classification,
            self.intl_designator,
            yy,
            doy,
            ndot_str,
            format_exp_field(self.nddot),
            format_exp_field(self.bstar),
            self.element_set_no % 10_000,
        );
        // `checksum` is mod 10, so from_digit is always Some; stay total.
        line1.push(char::from_digit(checksum(&line1), 10).unwrap_or('0'));

        let ecc_digits = format!("{:07}", (self.eccentricity * 1e7).round() as u64 % 10_000_000);
        let mut line2 = format!(
            "2 {:05} {:8.4} {:8.4} {} {:8.4} {:8.4} {:11.8}{:5}",
            self.norad_id,
            self.inclination_deg,
            self.raan_deg,
            ecc_digits,
            self.arg_perigee_deg,
            self.mean_anomaly_deg,
            self.mean_motion_rev_day,
            self.rev_number % 100_000,
        );
        line2.push(char::from_digit(checksum(&line2), 10).unwrap_or('0'));

        (line1, line2)
    }

    /// Converts to the element form the propagator consumes.
    pub fn elements(&self) -> Elements {
        Elements::from_catalog_units(
            self.norad_id,
            self.epoch,
            self.mean_motion_rev_day,
            self.eccentricity,
            self.inclination_deg,
            self.raan_deg,
            self.arg_perigee_deg,
            self.mean_anomaly_deg,
            self.bstar,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L1: &str = "1 00005U 58002B   00179.78495062  .00000023  00000-0  28098-4 0  4753";
    const L2: &str = "2 00005  34.2682 348.7242 1859667 331.7664  19.3264 10.82419157413667";

    #[test]
    fn parses_the_reference_tle() {
        let t = Tle::parse_lines(L1, L2).unwrap();
        assert_eq!(t.norad_id, 5);
        assert_eq!(t.classification, 'U');
        assert_eq!(t.intl_designator, "58002B");
        assert!((t.inclination_deg - 34.2682).abs() < 1e-9);
        assert!((t.raan_deg - 348.7242).abs() < 1e-9);
        assert!((t.eccentricity - 0.1859667).abs() < 1e-12);
        assert!((t.arg_perigee_deg - 331.7664).abs() < 1e-9);
        assert!((t.mean_anomaly_deg - 19.3264).abs() < 1e-9);
        assert!((t.mean_motion_rev_day - 10.82419157).abs() < 1e-9);
        assert_eq!(t.rev_number, 41366);
        assert!((t.bstar - 0.28098e-4).abs() < 1e-12);
        assert!((t.ndot - 0.00000023).abs() < 1e-12);
        // Epoch: 2000, day 179.78495062 = 2000-06-27 ~18:50 UTC.
        let c = t.epoch.to_civil();
        assert_eq!((c.year, c.month, c.day), (2000, 6, 27));
    }

    #[test]
    fn checksum_counts_minus_as_one() {
        assert_eq!(checksum(L1), 3);
        assert_eq!(checksum(L2), 7);
    }

    #[test]
    fn corrupted_checksum_is_rejected() {
        let mut bad = L1.to_string();
        bad.replace_range(68..69, "9");
        match Tle::parse_lines(&bad, L2) {
            Err(TleError::BadChecksum { line: 1, computed: 3, found: 9 }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn short_line_is_rejected() {
        assert!(matches!(
            Tle::parse_lines("1 00005U", L2),
            Err(TleError::LineTooShort { line: 1, .. })
        ));
    }

    #[test]
    fn wrong_line_number_is_rejected() {
        assert!(matches!(Tle::parse_lines(L2, L1), Err(TleError::BadLineNumber { expected: 1 })));
    }

    #[test]
    fn catalog_mismatch_is_rejected() {
        // A second line with a different catalog number and fixed checksum.
        let mut l2 = L2.to_string();
        l2.replace_range(2..7, "00006");
        l2.replace_range(68..69, "8"); // 5→6 bumps the checksum by 1
        assert_eq!(Tle::parse_lines(L1, &l2), Err(TleError::CatalogMismatch));
    }

    #[test]
    fn exp_field_parsing_examples() {
        assert!((parse_exp_field(" 28098-4", "t").unwrap() - 0.28098e-4).abs() < 1e-15);
        assert!((parse_exp_field("-11606-4", "t").unwrap() + 0.11606e-4).abs() < 1e-15);
        assert_eq!(parse_exp_field(" 00000-0", "t").unwrap(), 0.0);
        assert_eq!(parse_exp_field(" 00000+0", "t").unwrap(), 0.0);
        assert!((parse_exp_field(" 12345+2", "t").unwrap() - 12.345).abs() < 1e-12);
    }

    #[test]
    fn exp_field_format_round_trips() {
        for v in [0.0, 0.28098e-4, -0.11606e-4, 0.5, -0.99999e-1, 1.5e-7, 3.2e-2] {
            let s = format_exp_field(v);
            assert_eq!(s.len(), 8, "field {s:?}");
            let back = parse_exp_field(&s, "t").unwrap();
            let tol = v.abs().max(1e-9) * 1e-4;
            assert!((back - v).abs() <= tol, "{v} → {s:?} → {back}");
        }
    }

    #[test]
    fn format_lines_round_trip() {
        let t = Tle::parse_lines(L1, L2).unwrap();
        let (l1, l2) = t.format_lines();
        assert_eq!(l1.len(), 69, "line1 = {l1:?}");
        assert_eq!(l2.len(), 69, "line2 = {l2:?}");
        let back = Tle::parse_lines(&l1, &l2).unwrap();
        assert_eq!(back.norad_id, t.norad_id);
        assert!((back.eccentricity - t.eccentricity).abs() < 1e-7);
        assert!((back.mean_motion_rev_day - t.mean_motion_rev_day).abs() < 1e-8);
        assert!((back.inclination_deg - t.inclination_deg).abs() < 1e-4);
        assert!((back.bstar - t.bstar).abs() < 1e-9);
        assert!((back.epoch.0 - t.epoch.0).abs() < 1e-8);
    }

    #[test]
    fn parse_catalog_handles_2le_and_3le() {
        let text = format!("STARLINK-TEST\n{L1}\n{L2}\n\n{L1}\n{L2}\n");
        let cat = Tle::parse_catalog(&text).unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat[0].name.as_deref(), Some("STARLINK-TEST"));
        assert_eq!(cat[1].name, None);
    }

    /// Rewrites a column range of a line and repairs the checksum so the
    /// corruption can only be caught by semantic field validation.
    fn with_field(line: &str, range: std::ops::Range<usize>, text: &str) -> String {
        let mut s = line.to_string();
        s.replace_range(range, text);
        let c = checksum(&s);
        s.replace_range(68..69, &c.to_string());
        s
    }

    #[test]
    fn nan_and_inf_fields_are_rejected_despite_valid_checksums() {
        // Mean motion → NaN (the classic smuggle: checksum ignores letters).
        let l2 = with_field(L2, 52..63, "        NaN");
        assert_eq!(Tle::parse_lines(L1, &l2), Err(TleError::BadField { field: "mean motion" }));
        // Inclination → inf.
        let l2 = with_field(L2, 8..16, "     inf");
        assert_eq!(Tle::parse_lines(L1, &l2), Err(TleError::BadField { field: "inclination" }));
        // Epoch day-of-year → NaN on line 1.
        let l1 = with_field(L1, 20..32, "         NaN");
        assert_eq!(Tle::parse_lines(&l1, L2), Err(TleError::BadField { field: "epoch day" }));
    }

    #[test]
    fn lossy_catalog_matches_strict_on_clean_input() {
        let text = format!("STARLINK-TEST\n{L1}\n{L2}\n\n{L1}\n{L2}\n");
        let strict = Tle::parse_catalog(&text).unwrap();
        let (lossy, defects) = Tle::parse_catalog_lossy(&text);
        assert_eq!(strict, lossy);
        assert!(defects.is_empty());
    }

    #[test]
    fn lossy_catalog_skips_defective_records_and_reports_them() {
        let mut bad1 = L1.to_string();
        bad1.replace_range(68..69, "9"); // checksum flip
        let truncated2 = &L2[..40];
        let text =
            format!("GOOD-A\n{L1}\n{L2}\n{bad1}\n{L2}\nGOOD-B\n{L1}\n{L2}\n{L1}\n{truncated2}\n");
        let (tles, defects) = Tle::parse_catalog_lossy(&text);
        assert_eq!(tles.len(), 2);
        assert_eq!(tles[0].name.as_deref(), Some("GOOD-A"));
        assert_eq!(tles[1].name.as_deref(), Some("GOOD-B"));
        assert_eq!(defects.len(), 2);
        assert!(matches!(defects[0].error, TleError::BadChecksum { line: 1, .. }));
        assert_eq!(defects[0].line, 3);
        assert!(matches!(defects[1].error, TleError::LineTooShort { line: 2, .. }));
    }

    #[test]
    fn lossy_catalog_handles_stray_and_dangling_lines() {
        // A stray line 2, then a line 1 with no follower at all.
        let text = format!("{L2}\n{L1}\n");
        let (tles, defects) = Tle::parse_catalog_lossy(&text);
        assert!(tles.is_empty());
        assert_eq!(defects.len(), 2);
        assert_eq!(defects[0].error, TleError::BadLineNumber { expected: 1 });
        assert_eq!(defects[1].error, TleError::BadLineNumber { expected: 2 });
        assert_eq!(Tle::parse_catalog_lossy(""), (Vec::new(), Vec::new()));
    }

    #[test]
    fn elements_conversion_preserves_values() {
        let t = Tle::parse_lines(L1, L2).unwrap();
        let e = t.elements();
        assert_eq!(e.norad_id, 5);
        assert!((e.mean_motion_rev_per_day() - t.mean_motion_rev_day).abs() < 1e-10);
        assert!((e.inclo.to_degrees() - t.inclination_deg).abs() < 1e-10);
    }
}
