//! SGP4 error taxonomy.

use std::fmt;

/// Errors produced while initializing or running the SGP4 propagator.
///
/// The numeric codes follow the reference implementation's error codes so
/// results can be cross-checked against other SGP4 ports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sgp4Error {
    /// Eccentricity drifted outside `[0, 1)` during propagation (code 1).
    EccentricityOutOfRange {
        /// The offending eccentricity value.
        eccentricity: f64,
    },
    /// Mean motion became non-positive (code 2).
    NonPositiveMeanMotion,
    /// Semi-latus rectum became negative (code 4).
    NegativeSemiLatusRectum,
    /// The satellite has decayed: radius fell below one earth radius (code 6).
    Decayed {
        /// Minutes past epoch at which decay was detected.
        minutes_past_epoch: f64,
    },
    /// The elements describe a deep-space object (period ≥ 225 min), which
    /// this near-earth-only implementation deliberately rejects.
    DeepSpace {
        /// Orbital period implied by the elements, in minutes.
        period_minutes: f64,
    },
    /// The elements are unphysical (negative mean motion, eccentricity
    /// outside `[0, 1)`, …) before propagation even starts.
    InvalidElements {
        /// Human-readable description of the defect.
        reason: &'static str,
    },
}

impl fmt::Display for Sgp4Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sgp4Error::EccentricityOutOfRange { eccentricity } => {
                write!(f, "mean eccentricity {eccentricity} outside [0, 1)")
            }
            Sgp4Error::NonPositiveMeanMotion => write!(f, "mean motion is non-positive"),
            Sgp4Error::NegativeSemiLatusRectum => write!(f, "semi-latus rectum is negative"),
            Sgp4Error::Decayed { minutes_past_epoch } => {
                write!(f, "satellite decayed {minutes_past_epoch:.1} minutes past epoch")
            }
            Sgp4Error::DeepSpace { period_minutes } => write!(
                f,
                "deep-space object (period {period_minutes:.1} min ≥ 225 min) not supported"
            ),
            Sgp4Error::InvalidElements { reason } => write!(f, "invalid elements: {reason}"),
        }
    }
}

impl std::error::Error for Sgp4Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_useful_messages() {
        let msgs = [
            Sgp4Error::EccentricityOutOfRange { eccentricity: 1.2 }.to_string(),
            Sgp4Error::NonPositiveMeanMotion.to_string(),
            Sgp4Error::NegativeSemiLatusRectum.to_string(),
            Sgp4Error::Decayed { minutes_past_epoch: 1440.0 }.to_string(),
            Sgp4Error::DeepSpace { period_minutes: 1436.0 }.to_string(),
            Sgp4Error::InvalidElements { reason: "negative mean motion" }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
        assert!(Sgp4Error::DeepSpace { period_minutes: 1436.0 }.to_string().contains("1436.0"));
    }
}
