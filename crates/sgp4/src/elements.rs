//! Mean orbital elements in the form SGP4 consumes.

use starsense_astro::time::{JulianDate, MINUTES_PER_DAY};
use std::f64::consts::TAU;

/// SGP4 mean elements at an epoch.
///
/// Angles are radians; the mean motion is the *Kozai* mean motion in radians
/// per minute, exactly as read from a TLE (SGP4 internally un-Kozais it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Elements {
    /// NORAD catalog number of the object.
    pub norad_id: u32,
    /// Element-set epoch (UTC).
    pub epoch: JulianDate,
    /// Kozai mean motion, rad/min.
    pub no_kozai: f64,
    /// Eccentricity, dimensionless, `[0, 1)`.
    pub ecco: f64,
    /// Inclination, rad.
    pub inclo: f64,
    /// Right ascension of the ascending node, rad.
    pub nodeo: f64,
    /// Argument of perigee, rad.
    pub argpo: f64,
    /// Mean anomaly at epoch, rad.
    pub mo: f64,
    /// B* drag term, 1/earth-radii.
    pub bstar: f64,
}

impl Elements {
    /// Builds elements from "catalog-style" units: mean motion in revolutions
    /// per day and angles in degrees — the units a TLE displays.
    #[allow(clippy::too_many_arguments)]
    pub fn from_catalog_units(
        norad_id: u32,
        epoch: JulianDate,
        mean_motion_rev_per_day: f64,
        eccentricity: f64,
        inclination_deg: f64,
        raan_deg: f64,
        arg_perigee_deg: f64,
        mean_anomaly_deg: f64,
        bstar: f64,
    ) -> Elements {
        Elements {
            norad_id,
            epoch,
            no_kozai: mean_motion_rev_per_day * TAU / MINUTES_PER_DAY,
            ecco: eccentricity,
            inclo: inclination_deg.to_radians(),
            nodeo: raan_deg.to_radians(),
            argpo: arg_perigee_deg.to_radians(),
            mo: mean_anomaly_deg.to_radians(),
            bstar,
        }
    }

    /// Orbital period implied by the (Kozai) mean motion, minutes.
    pub fn period_minutes(&self) -> f64 {
        TAU / self.no_kozai
    }

    /// Mean motion in revolutions per day.
    pub fn mean_motion_rev_per_day(&self) -> f64 {
        self.no_kozai * MINUTES_PER_DAY / TAU
    }

    /// Semi-major axis implied by Kepler's third law (km), ignoring the
    /// Kozai correction — good to a few km, used for sanity checks only.
    pub fn semi_major_axis_km(&self) -> f64 {
        let n_rad_per_sec = self.no_kozai / 60.0;
        (crate::wgs72::MU / (n_rad_per_sec * n_rad_per_sec)).cbrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn starlink_like() -> Elements {
        Elements::from_catalog_units(
            44714,
            JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0),
            15.06,
            0.0001,
            53.0,
            120.0,
            90.0,
            0.0,
            0.0001,
        )
    }

    #[test]
    fn period_of_starlink_shell_is_about_95_minutes() {
        let e = starlink_like();
        assert!((e.period_minutes() - 95.6).abs() < 0.5, "{}", e.period_minutes());
    }

    #[test]
    fn semi_major_axis_is_near_550km_altitude() {
        let a = starlink_like().semi_major_axis_km();
        let alt = a - crate::wgs72::EARTH_RADIUS_KM;
        assert!((alt - 550.0).abs() < 30.0, "altitude {alt}");
    }

    #[test]
    fn catalog_units_round_trip() {
        let e = starlink_like();
        assert!((e.mean_motion_rev_per_day() - 15.06).abs() < 1e-12);
        assert!((e.inclo.to_degrees() - 53.0).abs() < 1e-12);
    }
}
