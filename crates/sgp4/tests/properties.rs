//! Property-based tests: TLE wire-format round trips and propagator
//! physical invariants over randomized LEO element sets.

use proptest::prelude::*;
use starsense_astro::time::JulianDate;
use starsense_sgp4::{checksum, Elements, Sgp4, Tle};

fn leo_elements() -> impl Strategy<Value = Elements> {
    (
        14.0f64..15.8,     // rev/day: LEO band
        1.0e-4f64..2.0e-3, // eccentricity: near-circular
        30.0f64..98.0,     // inclination
        0.0f64..360.0,     // raan
        0.0f64..360.0,     // argp
        0.0f64..360.0,     // mean anomaly
        1.0e-5f64..3.0e-4, // bstar
        1u32..99_999,      // catalog number
    )
        .prop_map(|(n, e, i, raan, argp, ma, bstar, id)| {
            Elements::from_catalog_units(
                id,
                JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0),
                n,
                e,
                i,
                raan,
                argp,
                ma,
                bstar,
            )
        })
}

fn tle_of(e: &Elements) -> Tle {
    Tle {
        name: None,
        norad_id: e.norad_id,
        classification: 'U',
        intl_designator: "23001A".to_string(),
        epoch: e.epoch,
        ndot: 1.0e-6,
        nddot: 0.0,
        bstar: e.bstar,
        element_set_no: 999,
        inclination_deg: e.inclo.to_degrees(),
        raan_deg: e.nodeo.to_degrees(),
        eccentricity: e.ecco,
        arg_perigee_deg: e.argpo.to_degrees(),
        mean_anomaly_deg: e.mo.to_degrees(),
        mean_motion_rev_day: e.mean_motion_rev_per_day(),
        rev_number: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn formatted_tles_have_valid_layout_and_checksums(e in leo_elements()) {
        let (l1, l2) = tle_of(&e).format_lines();
        prop_assert_eq!(l1.len(), 69);
        prop_assert_eq!(l2.len(), 69);
        prop_assert_eq!(checksum(&l1), l1.chars().last().unwrap().to_digit(10).unwrap());
        prop_assert_eq!(checksum(&l2), l2.chars().last().unwrap().to_digit(10).unwrap());
    }

    #[test]
    fn tle_round_trip_preserves_fields_to_wire_precision(e in leo_elements()) {
        let tle = tle_of(&e);
        let (l1, l2) = tle.format_lines();
        let back = Tle::parse_lines(&l1, &l2).unwrap();
        prop_assert_eq!(back.norad_id, tle.norad_id);
        prop_assert!((back.inclination_deg - tle.inclination_deg).abs() < 1e-4);
        prop_assert!((back.raan_deg - tle.raan_deg).abs() < 1e-4);
        prop_assert!((back.eccentricity - tle.eccentricity).abs() < 1e-7);
        prop_assert!((back.arg_perigee_deg - tle.arg_perigee_deg).abs() < 1e-4);
        prop_assert!((back.mean_anomaly_deg - tle.mean_anomaly_deg).abs() < 1e-4);
        prop_assert!((back.mean_motion_rev_day - tle.mean_motion_rev_day).abs() < 1e-8);
        prop_assert!((back.bstar - tle.bstar).abs() < tle.bstar.abs() * 1e-4 + 1e-12);
        prop_assert!((back.epoch.0 - tle.epoch.0).abs() < 1e-7);
    }

    #[test]
    fn leo_orbits_stay_physical_for_a_day(e in leo_elements()) {
        let sgp4 = Sgp4::new(&e).unwrap();
        for k in 0..24 {
            let s = sgp4.propagate_minutes(k as f64 * 60.0).unwrap();
            let r = s.position_km.norm();
            // Radius stays within the LEO shell band.
            prop_assert!((6500.0..7500.0).contains(&r), "t={k}h r={r}");
            // Vis-viva: speed matches the orbit energy to a few percent.
            let v = s.velocity_km_s.norm();
            let a = e.semi_major_axis_km();
            let vis_viva = (398_600.8 * (2.0 / r - 1.0 / a)).sqrt();
            prop_assert!((v - vis_viva).abs() < 0.25, "v={v} vs vis-viva {vis_viva}");
        }
    }

    #[test]
    fn angular_momentum_direction_is_stable_over_one_orbit(e in leo_elements()) {
        let sgp4 = Sgp4::new(&e).unwrap();
        let s0 = sgp4.propagate_minutes(0.0).unwrap();
        let h0 = s0.position_km.cross(s0.velocity_km_s).unit();
        let s1 = sgp4.propagate_minutes(e.period_minutes() / 2.0).unwrap();
        let h1 = s1.position_km.cross(s1.velocity_km_s).unit();
        // J2 precesses the node slowly; within half an orbit the plane
        // moves by well under a degree.
        prop_assert!(h0.angle_to(h1).to_degrees() < 1.0);
    }

    #[test]
    fn latitude_stays_below_inclination(e in leo_elements()) {
        let sgp4 = Sgp4::new(&e).unwrap();
        let incl_deg = e.inclo.to_degrees();
        for k in 0..50 {
            let s = sgp4.propagate_minutes(k as f64 * 3.7).unwrap();
            let lat = (s.position_km.z / s.position_km.norm()).asin().to_degrees();
            prop_assert!(lat.abs() <= incl_deg + 0.5, "lat {lat} vs incl {incl_deg}");
        }
    }
}
