//! Robustness property tests: the TLE parser must never panic, whatever
//! bytes a corrupted feed throws at it — byte flips, truncations,
//! non-ASCII (multi-byte) injections — and must come back with a
//! `TleError` instead.

use proptest::prelude::*;
use starsense_sgp4::{Tle, TleError};

const L1: &str = "1 00005U 58002B   00179.78495062  .00000023  00000-0  28098-4 0  4753";
const L2: &str = "2 00005  34.2682 348.7242 1859667 331.7664  19.3264 10.82419157413667";

/// One mutation applied to a line.
#[derive(Clone, Debug)]
enum Mutation {
    /// Overwrite the byte at `pos % len` with `byte`.
    Flip { pos: usize, byte: u8 },
    /// Truncate the line to `keep % (len + 1)` bytes.
    Truncate { keep: usize },
    /// Splice a multi-byte UTF-8 snippet at `pos % len`.
    NonAscii { pos: usize, which: usize },
}

const SNIPPETS: [&str; 4] = ["é", "∞", "🛰", "ламп"];

fn apply(line: &str, muts: &[Mutation]) -> String {
    let mut bytes: Vec<u8> = line.as_bytes().to_vec();
    for m in muts {
        match *m {
            Mutation::Flip { pos, byte } => {
                if !bytes.is_empty() {
                    let i = pos % bytes.len();
                    bytes[i] = byte;
                }
            }
            Mutation::Truncate { keep } => {
                bytes.truncate(keep % (bytes.len() + 1));
            }
            Mutation::NonAscii { pos, which } => {
                let i = if bytes.is_empty() { 0 } else { pos % bytes.len() };
                let snippet = SNIPPETS[which % SNIPPETS.len()].as_bytes();
                for (j, &b) in snippet.iter().enumerate() {
                    if i + j < bytes.len() {
                        bytes[i + j] = b;
                    } else {
                        bytes.push(b);
                    }
                }
            }
        }
    }
    // Invalid UTF-8 produced by partial overwrites becomes U+FFFD, which
    // is exactly the kind of garbage a real feed can contain.
    String::from_utf8_lossy(&bytes).into_owned()
}

fn mutation() -> impl Strategy<Value = Mutation> {
    (0usize..3, 0usize..128, 0usize..256).prop_map(|(kind, pos, extra)| match kind {
        0 => Mutation::Flip { pos, byte: (extra % 256) as u8 },
        1 => Mutation::Truncate { keep: pos + extra },
        _ => Mutation::NonAscii { pos, which: extra },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `parse_lines` / `parse_named` on arbitrarily mutated input either
    /// succeeds or returns a `TleError` — it never panics, and every
    /// value it does accept is fully finite.
    #[test]
    fn parse_never_panics_on_mutated_lines(
        m1 in proptest::collection::vec(mutation(), 0..6),
        m2 in proptest::collection::vec(mutation(), 0..6),
    ) {
        let l1 = apply(L1, &m1);
        let l2 = apply(L2, &m2);
        let checks = |r: Result<Tle, TleError>| {
            if let Ok(t) = r {
                prop_assert!(t.ndot.is_finite());
                prop_assert!(t.nddot.is_finite());
                prop_assert!(t.bstar.is_finite());
                prop_assert!(t.inclination_deg.is_finite());
                prop_assert!(t.raan_deg.is_finite());
                prop_assert!(t.eccentricity.is_finite());
                prop_assert!(t.arg_perigee_deg.is_finite());
                prop_assert!(t.mean_anomaly_deg.is_finite());
                prop_assert!(t.mean_motion_rev_day.is_finite());
            }
            Ok(())
        };
        checks(Tle::parse_lines(&l1, &l2))?;
        checks(Tle::parse_named(Some("MUTATED 🛰"), &l1, &l2))?;
        // Swapped and doubled lines must also be handled gracefully.
        checks(Tle::parse_lines(&l2, &l1))?;
        checks(Tle::parse_lines(&l1, &l1))?;
    }

    /// Lossy catalog parsing of a feed with mutated records never
    /// panics, never invents records, and accounts for every record as
    /// either parsed or defective (titles aside).
    #[test]
    fn lossy_catalog_never_panics_on_mutated_feeds(
        muts in proptest::collection::vec(
            (0usize..4, proptest::collection::vec(mutation(), 1..4)),
            0..6,
        ),
    ) {
        let mut records: Vec<(String, String)> =
            (0..4).map(|_| (L1.to_string(), L2.to_string())).collect();
        for (idx, ms) in &muts {
            let slot = idx % records.len();
            let (l1, l2) = &mut records[slot];
            if ms.len() % 2 == 0 {
                *l1 = apply(l1, ms);
            } else {
                *l2 = apply(l2, ms);
            }
        }
        let mut text = String::new();
        for (i, (l1, l2)) in records.iter().enumerate() {
            text.push_str(&format!("OBJ-{i}\n{l1}\n{l2}\n"));
        }
        let (tles, defects) = Tle::parse_catalog_lossy(&text);
        prop_assert!(tles.len() <= records.len());
        // Every clean record must survive: with 4 records and at most 6
        // mutated ones, parsed + defective covers all line-1 openers.
        prop_assert!(tles.len() + defects.len() >= 1);
        for t in &tles {
            prop_assert!(t.mean_motion_rev_day.is_finite());
        }
    }
}
