//! Property-based tests for the statistics crate.

use proptest::prelude::*;
use starsense_stats::describe::{mean, quantile, std_dev_population};
use starsense_stats::{mann_whitney_u, pearson, Ecdf, Histogram};

proptest! {
    #[test]
    fn u_statistics_sum_to_product(
        a in prop::collection::vec(-100.0f64..100.0, 2..40),
        b in prop::collection::vec(-100.0f64..100.0, 2..40),
    ) {
        if let (Some(t1), Some(t2)) = (mann_whitney_u(&a, &b), mann_whitney_u(&b, &a)) {
            prop_assert!((t1.u + t2.u - (a.len() * b.len()) as f64).abs() < 1e-9);
            // Two-sided p-values agree regardless of direction.
            prop_assert!((t1.p_value - t2.p_value).abs() < 1e-9);
        }
    }

    #[test]
    fn p_value_is_a_probability(
        a in prop::collection::vec(-100.0f64..100.0, 2..40),
        b in prop::collection::vec(-100.0f64..100.0, 2..40),
    ) {
        if let Some(t) = mann_whitney_u(&a, &b) {
            prop_assert!((0.0..=1.0).contains(&t.p_value));
        }
    }

    #[test]
    fn shifting_one_sample_far_enough_is_always_significant(
        a in prop::collection::vec(0.0f64..10.0, 30..100),
    ) {
        let b: Vec<f64> = a.iter().map(|x| x + 100.0).collect();
        let t = mann_whitney_u(&a, &b).unwrap();
        prop_assert!(t.p_value < 1e-6);
    }

    #[test]
    fn ecdf_is_monotone_and_bounded(xs in prop::collection::vec(-50.0f64..50.0, 1..60)) {
        let e = Ecdf::new(&xs);
        let mut prev = 0.0;
        for k in -60..=60 {
            let f = e.eval(k as f64);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev - 1e-12);
            prev = f;
        }
        prop_assert_eq!(e.eval(100.0), 1.0);
        prop_assert_eq!(e.eval(-100.0), 0.0);
    }

    #[test]
    fn quantile_is_monotone_and_within_sample(xs in prop::collection::vec(-50.0f64..50.0, 1..60)) {
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = lo;
        for k in 0..=10 {
            let q = quantile(&xs, k as f64 / 10.0);
            prop_assert!((lo..=hi).contains(&q));
            prop_assert!(q >= prev - 1e-12);
            prev = q;
        }
    }

    #[test]
    fn pearson_is_within_unit_interval_and_symmetric(
        pairs in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 3..40),
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            prop_assert!((pearson(&ys, &xs).unwrap() - r).abs() < 1e-12);
        }
    }

    #[test]
    fn pearson_of_affine_transform_is_plus_minus_one(
        xs in prop::collection::vec(-50.0f64..50.0, 3..40),
        slope in prop::sample::select(vec![-3.0f64, -0.5, 0.5, 2.0]),
        intercept in -10.0f64..10.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((r.abs() - 1.0).abs() < 1e-9);
            prop_assert_eq!(r > 0.0, slope > 0.0);
        }
    }

    #[test]
    fn histogram_accounts_for_every_observation(
        xs in prop::collection::vec(-20.0f64..20.0, 0..100),
    ) {
        let mut h = Histogram::new(-10.0, 10.0, 8);
        h.extend(&xs);
        prop_assert_eq!(
            (h.total() + h.underflow + h.overflow) as usize,
            xs.len()
        );
    }

    #[test]
    fn population_std_dev_is_translation_invariant(
        xs in prop::collection::vec(-50.0f64..50.0, 2..40),
        shift in -100.0f64..100.0,
    ) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let a = std_dev_population(&xs);
        let b = std_dev_population(&shifted);
        prop_assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        prop_assert!((mean(&shifted) - mean(&xs) - shift).abs() < 1e-7);
    }
}
