//! Pearson product-moment correlation.
//!
//! Figure 6 of the paper reports "the Pearson correlation, averaged over all
//! locations is 0.41" between satellite launch date and the probability of a
//! satellite from that launch being picked.

/// Pearson correlation coefficient between paired samples.
///
/// Returns `None` when the samples have different lengths, fewer than two
/// points, or when either sample has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;

    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    // Sums of squares are non-negative; `<=` rejects degenerate (constant)
    // samples without an exact float `==`.
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Ordinary least-squares slope and intercept of `y` on `x`, for drawing the
/// trend line through Figure 6's scatter.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<(f64, f64)> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
    }
    if sxx <= 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    Some((slope, my - slope * mx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_data_is_uncorrelated() {
        let xs = [-1.0, 0.0, 1.0];
        let ys = [1.0, 0.0, 1.0]; // symmetric in x
        assert!(pearson(&xs, &ys).unwrap().abs() < 1e-12);
    }

    #[test]
    fn known_textbook_value() {
        let xs = [43.0, 21.0, 25.0, 42.0, 57.0, 59.0];
        let ys = [99.0, 65.0, 79.0, 75.0, 87.0, 81.0];
        assert!((pearson(&xs, &ys).unwrap() - 0.5298).abs() < 1e-3);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_none()); // zero variance
    }

    #[test]
    fn correlation_is_scale_invariant() {
        let xs = [1.0, 4.0, 2.0, 8.0, 5.0];
        let ys = [0.3, 1.1, 0.4, 2.2, 1.4];
        let r1 = pearson(&xs, &ys).unwrap();
        let xs2: Vec<f64> = xs.iter().map(|x| 100.0 * x - 7.0).collect();
        let r2 = pearson(&xs2, &ys).unwrap();
        assert!((r1 - r2).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.0).collect();
        let (slope, intercept) = linear_fit(&xs, &ys).unwrap();
        assert!((slope - 2.5).abs() < 1e-12);
        assert!((intercept + 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate_returns_none() {
        assert!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]).is_none());
    }
}
