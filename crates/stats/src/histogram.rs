//! Fixed-width histograms.
//!
//! Used by Figure 6 (launch-month bins) and by the experiment binaries when
//! printing distribution tables.

/// A histogram with equal-width bins over `[lo, hi)`.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Observations below `lo`.
    pub underflow: u64,
    /// Observations at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `bins == 0` or `hi <= lo` — both are construction bugs,
    /// not data conditions.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram { lo, hi, counts: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let bin = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[bin] += 1;
        }
    }

    /// Adds every observation in a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `[lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let (a, b) = self.bin_edges(i);
        (a + b) / 2.0
    }

    /// In-range fraction per bin (empty histogram gives zeros).
    pub fn normalized(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_observations_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend(&[0.0, 1.9, 2.0, 5.5, 9.99]);
        assert_eq!(h.count(0), 2); // 0.0, 1.9
        assert_eq!(h.count(1), 1); // 2.0
        assert_eq!(h.count(2), 1); // 5.5
        assert_eq!(h.count(4), 1); // 9.99
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn under_and_overflow_are_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.extend(&[-0.1, 0.5, 1.0, 2.0]);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2); // 1.0 is exclusive at the top
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn nan_is_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(f64::NAN);
        assert_eq!(h.total() + h.underflow + h.overflow, 0);
    }

    #[test]
    fn edges_and_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
        assert_eq!(h.bin_center(2), 5.0);
    }

    #[test]
    fn normalized_sums_to_one() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.extend(&[0.5, 1.5, 1.6, 3.2]);
        let n = h.normalized();
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(n[1], 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_range_panics() {
        let _ = Histogram::new(1.0, 0.0, 3);
    }
}
