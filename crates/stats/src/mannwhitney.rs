//! Mann-Whitney U test (Wilcoxon rank-sum).
//!
//! §3 of the paper: "we are also able to confirm that the latency
//! characteristics observed during these consecutive 15-second windows are
//! statistically different (Mann-Whitney U test; p < .05)". This module
//! implements the two-sided test with the normal approximation and tie
//! correction — appropriate here because each 15-second window contains
//! ~750 probe samples, far beyond where the exact distribution matters.

use crate::describe::mean;

/// Result of a Mann-Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitney {
    /// The U statistic for the first sample.
    pub u: f64,
    /// Standardized z score (with continuity and tie correction).
    pub z: f64,
    /// Two-sided p-value from the normal approximation.
    pub p_value: f64,
}

impl MannWhitney {
    /// True when the test rejects equality at the given significance level.
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Runs the two-sided Mann-Whitney U test on two samples.
///
/// Returns `None` when either sample is empty or when every value across
/// both samples is identical (the statistic is undefined: σ_U = 0).
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Option<MannWhitney> {
    let n1 = a.len();
    let n2 = b.len();
    if n1 == 0 || n2 == 0 {
        return None;
    }

    // Rank the pooled sample, averaging ranks across ties.
    let mut pooled: Vec<(f64, usize)> =
        a.iter().map(|&x| (x, 0usize)).chain(b.iter().map(|&x| (x, 1usize))).collect();
    pooled.sort_by(|x, y| x.0.total_cmp(&y.0));

    let n = pooled.len();
    let mut ranks = vec![0.0f64; n];
    let mut tie_term = 0.0f64; // Σ (t³ − t) over tie groups
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg_rank;
        }
        let t = (j - i + 1) as f64;
        if t > 1.0 {
            tie_term += t * t * t - t;
        }
        i = j + 1;
    }

    let r1: f64 = pooled
        .iter()
        .zip(ranks.iter())
        .filter(|((_, group), _)| *group == 0)
        .map(|(_, &r)| r)
        .sum();

    let n1f = n1 as f64;
    let n2f = n2 as f64;
    let u1 = r1 - n1f * (n1f + 1.0) / 2.0;

    let mu = n1f * n2f / 2.0;
    let nf = n as f64;
    let sigma_sq = n1f * n2f / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    if sigma_sq <= 0.0 {
        return None; // all values tied
    }
    let sigma = sigma_sq.sqrt();

    // Continuity correction toward the mean.
    let diff = u1 - mu;
    let corrected = if diff > 0.5 {
        diff - 0.5
    } else if diff < -0.5 {
        diff + 0.5
    } else {
        0.0
    };
    let z = corrected / sigma;
    let p = 2.0 * (1.0 - standard_normal_cdf(z.abs()));

    Some(MannWhitney { u: u1, z, p_value: p.clamp(0.0, 1.0) })
}

/// Standard normal CDF via the complementary error function
/// (Abramowitz & Stegun 7.1.26 rational approximation, |ε| < 1.5e-7).
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = x.signum();
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Effect-size helper: the common-language effect size U / (n1·n2) — the
/// probability a random draw from the first sample exceeds one from the
/// second (ties counted half).
pub fn common_language_effect(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let u = mann_whitney_u(a, b)?.u;
    Some(u / (a.len() as f64 * b.len() as f64))
}

/// Convenience: difference of means, used when reporting which window is
/// slower alongside the test result.
pub fn mean_shift(a: &[f64], b: &[f64]) -> f64 {
    mean(a) - mean(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn clearly_shifted_samples_are_significant() {
        let a: Vec<f64> = (0..200).map(|i| 20.0 + (i % 10) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..200).map(|i| 30.0 + (i % 10) as f64 * 0.1).collect();
        let t = mann_whitney_u(&a, &b).unwrap();
        assert!(t.p_value < 1e-6, "p = {}", t.p_value);
        assert!(t.is_significant(0.05));
    }

    #[test]
    fn identical_distributions_are_not_significant() {
        let mut rng = StdRng::seed_from_u64(7);
        let a: Vec<f64> = (0..300).map(|_| rng.random_range(0.0..1.0)).collect();
        let b: Vec<f64> = (0..300).map(|_| rng.random_range(0.0..1.0)).collect();
        let t = mann_whitney_u(&a, &b).unwrap();
        assert!(t.p_value > 0.01, "p = {} should not be tiny", t.p_value);
    }

    #[test]
    fn u_statistic_small_example() {
        // Classic worked example: A = [1,2,3], B = [4,5,6] ⇒ U₁ = 0.
        let t = mann_whitney_u(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(t.u, 0.0);
        // And reversed: U₁ = n1·n2 = 9.
        let t = mann_whitney_u(&[4.0, 5.0, 6.0], &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(t.u, 9.0);
    }

    #[test]
    fn u_statistics_sum_to_n1_n2() {
        let a = [3.1, 2.2, 5.5, 0.4, 4.4, 2.0];
        let b = [1.1, 6.6, 2.2, 3.3];
        let u1 = mann_whitney_u(&a, &b).unwrap().u;
        let u2 = mann_whitney_u(&b, &a).unwrap().u;
        assert!((u1 + u2 - (a.len() * b.len()) as f64).abs() < 1e-9);
    }

    #[test]
    fn all_tied_returns_none() {
        assert!(mann_whitney_u(&[5.0, 5.0, 5.0], &[5.0, 5.0]).is_none());
    }

    #[test]
    fn empty_returns_none() {
        assert!(mann_whitney_u(&[], &[1.0]).is_none());
        assert!(mann_whitney_u(&[1.0], &[]).is_none());
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(standard_normal_cdf(6.0) > 0.999_999);
    }

    #[test]
    fn effect_size_is_half_for_identical_samples() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let e = common_language_effect(&a, &a).unwrap();
        assert!((e - 0.5).abs() < 1e-12);
    }

    #[test]
    fn effect_size_is_one_for_dominant_sample() {
        let e = common_language_effect(&[10.0, 11.0], &[1.0, 2.0]).unwrap();
        assert_eq!(e, 1.0);
    }

    #[test]
    fn mean_shift_sign() {
        assert!(mean_shift(&[3.0, 4.0], &[1.0, 2.0]) > 0.0);
    }
}
