//! Empirical cumulative distribution functions.
//!
//! Figures 4, 5 and 7 of the paper are CDF plots comparing the distribution
//! of a property (angle of elevation, azimuth) over *available* satellites
//! against the same property over *selected* satellites. [`Ecdf`] provides
//! both point evaluation and the sampled curve the experiment binaries print.

/// An empirical CDF over a sample.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample (NaNs are dropped).
    pub fn new(xs: &[f64]) -> Ecdf {
        let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(f64::total_cmp);
        Ecdf { sorted }
    }

    /// Number of retained observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the sample was empty (or all-NaN).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// F(x) = P(X ≤ x). Returns `NaN` on an empty ECDF.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        // Index of the first element strictly greater than x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Generalized inverse: smallest sample value `x` with `F(x) ≥ q`.
    pub fn inverse(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Samples the curve at `points` evenly spaced x values over
    /// `[lo, hi]`, returning `(x, F(x))` pairs — the series the figure
    /// regeneration binaries print.
    pub fn curve(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least the two endpoints");
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Fraction of the sample inside `[lo, hi)`.
    pub fn mass_in(&self, lo: f64, hi: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let below_hi = self.sorted.partition_point(|&v| v < hi);
        let below_lo = self.sorted.partition_point(|&v| v < lo);
        (below_hi - below_lo) as f64 / self.sorted.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_steps_at_sample_points() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn handles_ties() {
        let e = Ecdf::new(&[2.0, 2.0, 2.0, 5.0]);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(1.9), 0.0);
    }

    #[test]
    fn drops_nans() {
        let e = Ecdf::new(&[1.0, f64::NAN, 3.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn empty_is_nan() {
        let e = Ecdf::new(&[]);
        assert!(e.is_empty());
        assert!(e.eval(0.0).is_nan());
        assert!(e.inverse(0.5).is_nan());
        assert!(e.mass_in(0.0, 1.0).is_nan());
    }

    #[test]
    fn inverse_recovers_median() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.inverse(0.5), 30.0);
        assert_eq!(e.inverse(0.0), 10.0);
        assert_eq!(e.inverse(1.0), 50.0);
    }

    #[test]
    fn inverse_is_generalized_inverse_of_eval() {
        let e = Ecdf::new(&[1.0, 3.0, 3.0, 7.0, 9.0]);
        for q in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let x = e.inverse(q);
            assert!(e.eval(x) >= q - 1e-12, "q={q} x={x} F={}", e.eval(x));
        }
    }

    #[test]
    fn curve_is_monotone_and_spans_range() {
        let e = Ecdf::new(&[25.0, 40.0, 60.0, 85.0]);
        let c = e.curve(25.0, 90.0, 14);
        assert_eq!(c.len(), 14);
        assert_eq!(c[0].0, 25.0);
        assert_eq!(c[13].0, 90.0);
        for w in c.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be nondecreasing");
        }
        assert_eq!(c[13].1, 1.0);
    }

    #[test]
    fn mass_in_band() {
        // The Figure 4 quote: share of satellites with AOE in [45°, 90°).
        let e = Ecdf::new(&[30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 89.0, 26.0, 35.0, 44.0]);
        assert!((e.mass_in(45.0, 90.0) - 0.5).abs() < 1e-12);
    }
}
