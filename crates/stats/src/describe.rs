//! Descriptive statistics: mean, variance, quantiles, summaries.

/// Arithmetic mean. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator). Returns `NaN` for fewer than
/// two values.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// Population standard deviation (n denominator). Returns 0 for a single
/// value and `NaN` for an empty slice.
///
/// §6 of the paper z-scores satellite features against the mean/σ of the
/// satellites *currently in view*; with the population convention a
/// single-satellite field of view yields a well-defined (zero) deviation.
pub fn std_dev_population(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    (ss / xs.len() as f64).sqrt()
}

/// Quantile by linear interpolation between order statistics
/// (the "R-7" definition used by NumPy's default). `q` is clamped to
/// `[0, 1]`. Returns `NaN` for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Computes the summary of a sample. Returns `None` for empty input.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        Some(Summary {
            n: xs.len(),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            p25: quantile(xs, 0.25),
            median: median(xs),
            p75: quantile(xs, 0.75),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mean: mean(xs),
            std_dev: std_dev(xs),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_simple_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn std_dev_matches_hand_computation() {
        // Values 2,4,4,4,5,5,7,9: population σ = 2, sample s = 2.138…
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev_population(&xs) - 2.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn std_dev_degenerate_cases() {
        assert!(std_dev(&[1.0]).is_nan());
        assert_eq!(std_dev_population(&[7.5]), 0.0);
        assert!(std_dev_population(&[]).is_nan());
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), 10.0);
        assert_eq!(quantile(&xs, 1.0), 40.0);
        assert!((quantile(&xs, 1.0 / 3.0) - 20.0).abs() < 1e-12);
        assert_eq!(quantile(&xs, 0.5), 25.0);
    }

    #[test]
    fn quantile_clamps_out_of_range() {
        let xs = [1.0, 2.0];
        assert_eq!(quantile(&xs, -0.5), 1.0);
        assert_eq!(quantile(&xs, 1.5), 2.0);
    }

    #[test]
    fn summary_is_internally_consistent() {
        let xs = [5.0, 1.0, 4.0, 2.0, 3.0];
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!(s.p25 <= s.median && s.median <= s.p75);
        assert!(Summary::of(&[]).is_none());
    }
}
