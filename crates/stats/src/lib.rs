//! Statistics used throughout the reproduction.
//!
//! The paper's analyses lean on a small set of classical tools:
//!
//! * the **Mann-Whitney U test** to show consecutive 15-second RTT windows
//!   are statistically distinct (§3),
//! * **empirical CDFs** for Figures 4, 5 and 7,
//! * **Pearson correlation** for the launch-date preference of Figure 6,
//! * descriptive summaries (medians, quantiles) quoted in the text.
//!
//! Everything is implemented from scratch over `&[f64]` slices.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod describe;
pub mod ecdf;
pub mod histogram;
pub mod mannwhitney;
pub mod pearson;

pub use describe::{mean, median, quantile, std_dev, Summary};
pub use ecdf::Ecdf;
pub use histogram::Histogram;
pub use mannwhitney::{mann_whitney_u, MannWhitney};
pub use pearson::pearson;
