//! Property-based tests for the scheduler crate.

use proptest::prelude::*;
use starsense_astro::frames::Geodetic;
use starsense_astro::time::JulianDate;
use starsense_constellation::{Constellation, ConstellationBuilder, VisibleSat};
use starsense_scheduler::slots::{next_boundary, slot_index, slot_start, SLOT_PERIOD_SECONDS};
use starsense_scheduler::{GlobalScheduler, LoadModel, MacScheduler, SchedulerPolicy, Terminal};
use std::sync::OnceLock;

/// One shared catalog across cases — the properties quantify over epochs,
/// sites, and permutations, not over seeds.
fn catalog() -> &'static Constellation {
    static CATALOG: OnceLock<Constellation> = OnceLock::new();
    CATALOG.get_or_init(|| ConstellationBuilder::starlink_mini().seed(42).build())
}

fn fov_bits(v: &VisibleSat) -> (u32, u32, u64, u64, u64) {
    (
        v.norad_id,
        v.catalog_index,
        v.look.elevation_deg.to_bits(),
        v.look.azimuth_deg.to_bits(),
        v.look.range_km.to_bits(),
    )
}

proptest! {
    #[test]
    fn slot_start_is_idempotent(seconds in 0.0f64..864_000.0) {
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0).plus_seconds(seconds);
        let s = slot_start(at);
        // The start of a slot belongs to that slot (probe just after it to
        // dodge boundary float rounding).
        prop_assert_eq!(slot_index(s.plus_seconds(0.001)), slot_index(s.plus_seconds(7.0)));
    }

    #[test]
    fn boundaries_land_on_paper_anchors(seconds in 0.0f64..86_400.0) {
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0).plus_seconds(seconds);
        let b = next_boundary(at);
        let sec = b.to_civil().second.round() as u32 % 60;
        prop_assert!([12, 27, 42, 57].contains(&sec), "boundary at :{sec}");
        // Strictly in the future, at most one period away.
        let dt = b.seconds_since(at);
        prop_assert!(dt > 0.0 && dt <= SLOT_PERIOD_SECONDS + 1e-6);
    }

    #[test]
    fn mac_wait_is_positive_and_bounded(
        n in 1usize..12,
        frame in 0.5f64..3.0,
        t in 0.0f64..15_000.0,
        term in 0usize..12,
    ) {
        let term = term % n;
        let mut mac = MacScheduler::new(frame);
        mac.set_attached((0..n).collect());
        let w = mac.wait_ms(term, t).unwrap();
        prop_assert!(w > 0.0);
        prop_assert!(w <= mac.cycle_ms() + 1e-9);
        // The landing frame belongs to the terminal.
        let frame_idx = ((t + w) / frame).round() as i64;
        prop_assert_eq!(frame_idx.rem_euclid(n as i64) as usize, term);
    }

    #[test]
    fn mac_band_offsets_are_distinct_multiples_of_frame(
        n in 2usize..8,
        // Bands are only quantized when the probe period is commensurate
        // with the frame length; with an irrational ratio the arrival phase
        // is dense in the cycle and the "bands" smear out (which is also
        // physical — the real system uses a fixed frame grid).
        frame in prop::sample::select(vec![0.5f64, 1.0, 1.25, 2.0, 2.5, 4.0, 5.0]),
    ) {
        let mut mac = MacScheduler::new(frame);
        mac.set_attached((0..n).collect());
        let bands = mac.band_offsets_ms(0, 20.0, 400);
        prop_assert!(!bands.is_empty());
        prop_assert!(bands.len() <= n, "{} bands with {n} terminals", bands.len());
        for pair in bands.windows(2) {
            let gap = pair[1] - pair[0];
            // Gaps between bands are integer multiples of the frame length.
            let ratio = gap / frame;
            prop_assert!((ratio - ratio.round()).abs() < 1e-6, "gap {gap} frame {frame}");
        }
    }

    #[test]
    fn load_is_deterministic_and_bounded(
        seed in 0u64..1000,
        sat in 44_000u32..48_000,
        slot in -1_000i64..1_000_000,
    ) {
        let m = LoadModel::new(seed, 0.5);
        let a = m.utilization(sat, slot);
        prop_assert_eq!(a, m.utilization(sat, slot));
        prop_assert!((0.0..1.0).contains(&a));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cohort_fov_is_invariant_under_terminal_input_order(
        hours in 0.0f64..96.0,
        lat in -60.0f64..60.0,
        lon in -179.0f64..179.0,
        rot in 1usize..9,
        rev in prop::sample::select(vec![false, true]),
    ) {
        // Cohort membership is a pure function of terminal position and
        // the snapshot's grid: permuting the terminal input order permutes
        // the cohorts' member lists but must not move a single bit of any
        // terminal's field of view. The fixture clusters terminals within
        // a fraction of a grid cell so cohorts genuinely form.
        let c = catalog();
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0).plus_seconds(hours * 3600.0);
        let snap = c.snapshot(at);

        let terminals: Vec<Terminal> = (0..9)
            .map(|i| {
                let t = i as f64;
                Terminal::new(
                    i,
                    format!("t{i}"),
                    Geodetic::new(
                        (lat + 0.4 * (t * 0.7).sin()).clamp(-89.0, 89.0),
                        lon + 0.4 * (t * 1.3).cos(),
                        0.05 * t,
                    ),
                )
            })
            .collect();
        let mut shuffled = terminals.clone();
        let n = shuffled.len();
        shuffled.rotate_left(rot % n);
        if rev {
            shuffled.reverse();
        }

        let policy = SchedulerPolicy::default();
        let a = GlobalScheduler::new(policy.clone(), terminals.clone(), 7)
            .fields_of_view_cohort(c, &snap);
        let b = GlobalScheduler::new(policy, shuffled.clone(), 7)
            .fields_of_view_cohort(c, &snap);
        for (i, t) in terminals.iter().enumerate() {
            let j = shuffled.iter().position(|s| s.id == t.id).unwrap();
            prop_assert_eq!(a[i].len(), b[j].len(), "terminal {}", t.id);
            for (x, y) in a[i].iter().zip(&b[j]) {
                prop_assert_eq!(fov_bits(x), fov_bits(y), "terminal {}", t.id);
            }
        }
    }
}
