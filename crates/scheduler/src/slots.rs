//! Global-scheduler slot timing.
//!
//! §3: "major changes in latency characteristics occur every 15 seconds —
//! specifically, at the 12th, 27th, 42nd, and 57th second past every
//! minute... globally." Slots are therefore anchored at :12 and repeat
//! every 15 s, simultaneously for every terminal on the planet.

use starsense_astro::time::JulianDate;

/// Reallocation happens this many seconds past the minute (first anchor).
pub const SLOT_ANCHOR_SECONDS: f64 = 12.0;

/// Slot length in seconds.
pub const SLOT_PERIOD_SECONDS: f64 = 15.0;

/// Global slot index containing `at` (an absolute count since the epoch,
/// consistent across terminals — the "globally simultaneous" property).
pub fn slot_index(at: JulianDate) -> i64 {
    let seconds = at.0 * 86_400.0 - SLOT_ANCHOR_SECONDS;
    (seconds / SLOT_PERIOD_SECONDS).floor() as i64
}

/// Start instant of the slot containing `at`.
pub fn slot_start(at: JulianDate) -> JulianDate {
    let idx = slot_index(at);
    JulianDate((idx as f64 * SLOT_PERIOD_SECONDS + SLOT_ANCHOR_SECONDS) / 86_400.0)
}

/// Start instant of slot `idx`.
pub fn slot_start_of(idx: i64) -> JulianDate {
    JulianDate((idx as f64 * SLOT_PERIOD_SECONDS + SLOT_ANCHOR_SECONDS) / 86_400.0)
}

/// The next reallocation boundary strictly after `at`.
pub fn next_boundary(at: JulianDate) -> JulianDate {
    slot_start_of(slot_index(at) + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_fall_on_12_27_42_57() {
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 5, 38, 3.0);
        let mut b = next_boundary(at);
        let mut seconds = Vec::new();
        for _ in 0..4 {
            seconds.push(b.to_civil().second.round() as u32 % 60);
            b = next_boundary(b.plus_seconds(0.001));
        }
        assert_eq!(seconds, vec![12, 27, 42, 57]);
    }

    #[test]
    fn slot_start_is_at_or_before_and_within_period() {
        for k in 0..100 {
            let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0).plus_seconds(k as f64 * 7.3);
            let s = slot_start(at);
            let dt = at.seconds_since(s);
            assert!((0.0..SLOT_PERIOD_SECONDS + 1e-6).contains(&dt), "k={k}: offset {dt}");
        }
    }

    #[test]
    fn slot_index_is_monotone_and_steps_by_one() {
        let t0 = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        let mut prev = slot_index(t0);
        for k in 1..200 {
            let idx = slot_index(t0.plus_seconds(k as f64));
            assert!(idx == prev || idx == prev + 1, "jumped from {prev} to {idx}");
            prev = idx;
        }
        assert_eq!(prev, slot_index(t0) + 13, "199 s spans 13 boundaries");
    }

    #[test]
    fn all_terminals_share_slot_indices() {
        // Slot indexing has no longitude dependence — it is global.
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 18, 30, 29.0);
        let idx = slot_index(at);
        // ...so the same instant gives the same index regardless of any
        // terminal-local context (trivially true by construction; the test
        // documents the invariant).
        assert_eq!(idx, slot_index(JulianDate(at.0)));
    }

    #[test]
    fn slot_start_of_round_trips_with_slot_index() {
        let at = JulianDate::from_ymd_hms(2023, 6, 2, 7, 45, 33.0);
        let idx = slot_index(at);
        let start = slot_start_of(idx);
        assert_eq!(slot_index(start.plus_seconds(0.001)), idx);
        assert!((slot_start(at).0 - start.0).abs() < 1e-12);
    }
}
