//! Per-satellite background load.
//!
//! The real global scheduler balances load from the whole user population;
//! our simulation only carries a handful of measurement terminals, so the
//! rest of the world is modelled as a deterministic pseudo-random
//! background load per (satellite, slot). SpaceX's FCC filings list
//! "current load" among the medium-access scheduling factors, and §6 of the
//! paper names unavailable "satellite load characteristics" as the main
//! ceiling on its model's accuracy — the reproduction keeps load
//! *deliberately invisible* to the measurement side, reproducing that
//! ceiling.

/// Deterministic background-load model.
///
/// Load is a function of (satellite id, slot index) through a splitmix64
/// hash, so it is stable across runs, uncorrelated with satellite geometry,
/// and changes every slot — the behaviour of a large, churning user
/// population at 15-second granularity.
#[derive(Debug, Clone, Copy)]
pub struct LoadModel {
    seed: u64,
    /// Mean background utilization in `[0, 1]`.
    pub mean_utilization: f64,
}

impl LoadModel {
    /// Creates a load model with the given seed and mean utilization.
    pub fn new(seed: u64, mean_utilization: f64) -> LoadModel {
        assert!((0.0..=1.0).contains(&mean_utilization));
        LoadModel { seed, mean_utilization }
    }

    /// Background utilization of a satellite in a slot, in `[0, 1)`.
    pub fn utilization(&self, norad_id: u32, slot: i64) -> f64 {
        let h = splitmix64(
            self.seed
                ^ (norad_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (slot as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9),
        );
        // Map to [0,1), then squash toward the configured mean: a weighted
        // blend keeps the full spread while centering the distribution.
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        (0.5 * u + self.mean_utilization - 0.25).clamp(0.0, 0.999)
    }
}

impl Default for LoadModel {
    fn default() -> Self {
        LoadModel::new(0xC0FFEE, 0.5)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_deterministic() {
        let m = LoadModel::new(7, 0.5);
        assert_eq!(m.utilization(44123, 100), m.utilization(44123, 100));
    }

    #[test]
    fn utilization_changes_across_slots_and_sats() {
        let m = LoadModel::new(7, 0.5);
        let a = m.utilization(44123, 100);
        let b = m.utilization(44123, 101);
        let c = m.utilization(44124, 100);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn utilization_is_in_unit_interval() {
        let m = LoadModel::new(3, 0.5);
        for sat in 0..200u32 {
            for slot in 0..20i64 {
                let u = m.utilization(44000 + sat, slot);
                assert!((0.0..1.0).contains(&u), "u = {u}");
            }
        }
    }

    #[test]
    fn mean_tracks_configuration() {
        for target in [0.3, 0.5, 0.7] {
            let m = LoadModel::new(5, target);
            let mut sum = 0.0;
            let n = 5000;
            for i in 0..n {
                sum += m.utilization(44000 + (i % 100) as u32, (i / 100) as i64);
            }
            let mean = sum / n as f64;
            assert!((mean - target).abs() < 0.05, "target {target}, mean {mean}");
        }
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = LoadModel::new(1, 0.5);
        let b = LoadModel::new(2, 0.5);
        let same = (0..50).all(|i| a.utilization(44000 + i, 0) == b.utilization(44000 + i, 0));
        assert!(!same);
    }

    #[test]
    #[should_panic]
    fn out_of_range_mean_panics() {
        let _ = LoadModel::new(0, 1.5);
    }
}
