//! User terminals (dishes).

use starsense_astro::frames::Geodetic;
use starsense_obstruction::SkyMask;

/// A user terminal: a location, an environmental sky mask, and an identity.
///
/// Matches the paper's measurement setup — four dishes in Iowa, Ithaca
/// (NY), Madrid, and Washington state, one of them (Ithaca) with a
/// tree-obstructed north-west sky.
#[derive(Debug, Clone)]
pub struct Terminal {
    /// Stable terminal id (index into allocation vectors).
    pub id: usize,
    /// Human-readable name, e.g. `"Iowa"`.
    pub name: String,
    /// Geodetic location of the dish.
    pub location: Geodetic,
    /// Environmental obstructions.
    pub mask: SkyMask,
}

impl Terminal {
    /// Creates a terminal with a clear sky.
    pub fn new(id: usize, name: impl Into<String>, location: Geodetic) -> Terminal {
        Terminal { id, name: name.into(), location, mask: SkyMask::clear() }
    }

    /// Replaces the sky mask.
    pub fn with_mask(mut self, mask: SkyMask) -> Terminal {
        self.mask = mask;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_builder() {
        let t = Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2));
        assert_eq!(t.id, 0);
        assert_eq!(t.name, "Iowa");
        assert!(t.mask.is_clear());

        let t = t.with_mask(SkyMask::ithaca_trees());
        assert!(!t.mask.is_clear());
    }
}
