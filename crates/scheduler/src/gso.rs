//! The geostationary-orbit exclusion zone.
//!
//! §5.1's rationale for the northward azimuth skew: "The International
//! Telecommunication Union has imposed a mandatory geo-stationary orbit
//! exclusion zone, which prohibits LEO satellites from transmitting to or
//! receiving from a ground station while being in the protected part of
//! the sky" (47 CFR §25.289). For a terminal in the northern mid-latitudes
//! the GSO belt arcs across the southern sky at moderate elevation, so
//! avoiding it removes much of the southern field of view — the scheduler
//! crate implements the zone as a hard constraint and the azimuth
//! preference of Figure 5 *emerges* from the geometry rather than being
//! baked in as a weight.

use starsense_astro::frames::{look_angles, Geodetic, LookAngles};
use starsense_astro::vec3::Vec3;

/// Radius of the geostationary belt, km.
pub const GSO_RADIUS_KM: f64 = 42_164.0;

/// The exclusion test for one terminal location.
///
/// Construction samples the GSO arc as seen from the terminal once;
/// per-satellite tests are then a handful of dot products. (The arc is
/// fixed in the terminal's sky — GSO satellites do not move in ECEF.)
#[derive(Debug, Clone)]
pub struct GsoExclusion {
    /// Unit vectors (ENU-style local frame) toward sampled GSO arc points
    /// that are above the horizon.
    arc_dirs: Vec<Vec3>,
    /// Protection half-angle, degrees: a satellite within this angular
    /// separation of the arc is excluded.
    pub half_angle_deg: f64,
    /// `cos(half_angle)` — the exclusion threshold, hoisted out of the
    /// per-satellite test.
    cos_half: f64,
}

/// Dot-product slack under which two arc points count as tied for closest
/// (see [`GsoExclusion::separation_deg`]). An arc point whose dot product
/// with the query trails the winner by more than this is separated by a
/// strictly larger angle — the guard is ~6 orders of magnitude above the
/// combined rounding error of the dot products and `angle_to`, and ties
/// merely add a redundant term to a `min` fold.
const DOT_TIE_GUARD: f64 = 1e-9;

/// Converts look angles to a local unit direction vector (east, north, up).
fn look_to_unit(look: &LookAngles) -> Vec3 {
    let el = look.elevation_deg.to_radians();
    let az = look.azimuth_deg.to_radians();
    Vec3::new(el.cos() * az.sin(), el.cos() * az.cos(), el.sin())
}

impl GsoExclusion {
    /// Builds the exclusion tester for a terminal at `site` with a given
    /// protection half-angle (degrees).
    pub fn for_site(site: Geodetic, half_angle_deg: f64) -> GsoExclusion {
        let mut arc_dirs = Vec::new();
        // Sample the whole belt; only points above the horizon matter.
        for k in 0..720 {
            let lon = k as f64 * 0.5;
            let gso = Vec3::new(
                GSO_RADIUS_KM * lon.to_radians().cos(),
                GSO_RADIUS_KM * lon.to_radians().sin(),
                0.0,
            );
            let look = look_angles(site, gso);
            if look.elevation_deg > -5.0 {
                arc_dirs.push(look_to_unit(&look));
            }
        }
        GsoExclusion { arc_dirs, half_angle_deg, cos_half: half_angle_deg.to_radians().cos() }
    }

    /// A disabled zone (never excludes) — the ablation configuration.
    pub fn disabled() -> GsoExclusion {
        GsoExclusion { arc_dirs: Vec::new(), half_angle_deg: 0.0, cos_half: 1.0 }
    }

    /// True when a satellite seen at `look` falls inside the protected zone.
    pub fn excludes(&self, look: &LookAngles) -> bool {
        if self.arc_dirs.is_empty() {
            return false;
        }
        let dir = look_to_unit(look);
        self.arc_dirs.iter().any(|a| a.dot(dir) > self.cos_half)
    }

    /// Minimum angular separation (degrees) between `look` and the visible
    /// GSO arc; `f64::INFINITY` when the arc is below the horizon entirely.
    ///
    /// The historical implementation evaluated `angle_to` (a cross
    /// product, a square root and an `atan2`) against every arc point.
    /// The angle is monotone in the dot product, so this version finds the
    /// winning arc point with dot products alone and evaluates the exact
    /// historical formula only for points tied with it (within
    /// [`DOT_TIE_GUARD`], conservatively). The fold over the survivors
    /// yields the same minimum, bit for bit: every skipped point is
    /// separated by a strictly larger angle, and `min` ignores it either
    /// way.
    pub fn separation_deg(&self, look: &LookAngles) -> f64 {
        let dir = look_to_unit(look);
        let mut best_dot = f64::NEG_INFINITY;
        for a in &self.arc_dirs {
            best_dot = best_dot.max(a.dot(dir));
        }
        let mut min_deg = f64::INFINITY;
        for a in &self.arc_dirs {
            if a.dot(dir) >= best_dot - DOT_TIE_GUARD {
                min_deg = min_deg.min(a.angle_to(dir).to_degrees());
            }
        }
        min_deg
    }

    /// Whether any part of the belt is visible from the site at all.
    pub fn arc_visible(&self) -> bool {
        !self.arc_dirs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iowa() -> Geodetic {
        Geodetic::new(41.66, -91.53, 0.2)
    }

    fn look(el: f64, az: f64) -> LookAngles {
        LookAngles { elevation_deg: el, azimuth_deg: az, range_km: 1000.0 }
    }

    #[test]
    fn gso_arc_peaks_due_south_at_midlatitude() {
        let z = GsoExclusion::for_site(iowa(), 12.0);
        assert!(z.arc_visible());
        // The arc's highest point from 41.66°N is due south at elevation
        // ~41-43° (geometry of the belt). A satellite there must be excluded.
        assert!(z.excludes(&look(42.0, 180.0)));
        // Straight north at the same elevation: far from the belt.
        assert!(!z.excludes(&look(42.0, 0.0)));
    }

    #[test]
    fn zenith_is_outside_the_zone_at_midlatitude() {
        let z = GsoExclusion::for_site(iowa(), 15.0);
        assert!(!z.excludes(&look(90.0, 0.0)));
        assert!(z.separation_deg(&look(90.0, 0.0)) > 30.0);
    }

    #[test]
    fn southern_low_sky_is_excluded_northern_low_sky_is_not() {
        let z = GsoExclusion::for_site(iowa(), 15.0);
        // Low southern sky hugs the belt for a wide azimuth span.
        assert!(z.excludes(&look(35.0, 160.0)));
        assert!(z.excludes(&look(35.0, 200.0)));
        assert!(!z.excludes(&look(35.0, 330.0)));
        assert!(!z.excludes(&look(35.0, 30.0)));
    }

    #[test]
    fn separation_shrinks_toward_the_belt() {
        let z = GsoExclusion::for_site(iowa(), 15.0);
        let near = z.separation_deg(&look(45.0, 180.0));
        let far = z.separation_deg(&look(80.0, 0.0));
        assert!(near < far, "near {near} vs far {far}");
    }

    #[test]
    fn pruned_separation_matches_the_exhaustive_fold_bit_for_bit() {
        let zones = [
            GsoExclusion::for_site(iowa(), 12.0),
            GsoExclusion::for_site(Geodetic::new(0.0, 17.2, 0.0), 12.0),
            GsoExclusion::for_site(Geodetic::new(-41.66, 130.0, 0.2), 15.0),
            GsoExclusion::for_site(Geodetic::new(67.0, -20.0, 0.1), 12.0),
        ];
        for z in &zones {
            for el10 in (250..=900).step_by(23) {
                for az in (0..360).step_by(7) {
                    let l = look(el10 as f64 / 10.0, az as f64);
                    let dir = look_to_unit(&l);
                    let exhaustive = z
                        .arc_dirs
                        .iter()
                        .map(|a| a.angle_to(dir).to_degrees())
                        .fold(f64::INFINITY, f64::min);
                    assert_eq!(
                        z.separation_deg(&l).to_bits(),
                        exhaustive.to_bits(),
                        "el {} az {az}",
                        el10 as f64 / 10.0
                    );
                }
            }
        }
    }

    #[test]
    fn disabled_zone_never_excludes() {
        let z = GsoExclusion::disabled();
        assert!(!z.excludes(&look(42.0, 180.0)));
        assert!(!z.arc_visible());
        assert_eq!(z.separation_deg(&look(42.0, 180.0)), f64::INFINITY);
    }

    #[test]
    fn equatorial_site_has_belt_overhead() {
        let z = GsoExclusion::for_site(Geodetic::new(0.0, 0.0, 0.0), 12.0);
        // From the equator the belt passes through zenith.
        assert!(z.excludes(&look(89.0, 90.0)) || z.excludes(&look(89.0, 270.0)));
    }

    #[test]
    fn southern_hemisphere_mirror_image() {
        // From 41°S the belt is in the *northern* sky: the exclusion flips,
        // which is exactly the generalization limitation §8 of the paper
        // calls out.
        let z = GsoExclusion::for_site(Geodetic::new(-41.66, -91.53, 0.2), 12.0);
        assert!(z.excludes(&look(42.0, 0.0)));
        assert!(!z.excludes(&look(42.0, 180.0)));
    }

    #[test]
    fn wider_half_angle_excludes_more() {
        let narrow = GsoExclusion::for_site(iowa(), 5.0);
        let wide = GsoExclusion::for_site(iowa(), 25.0);
        let probe = look(55.0, 180.0);
        if narrow.excludes(&probe) {
            assert!(wide.excludes(&probe));
        }
        // A direction excluded by the wide zone but not the narrow one
        // must exist somewhere along the southern sky.
        let mut found = false;
        for el in 25..80 {
            let l = look(el as f64, 180.0);
            if wide.excludes(&l) && !narrow.excludes(&l) {
                found = true;
                break;
            }
        }
        assert!(found);
    }
}
