//! The geostationary-orbit exclusion zone.
//!
//! §5.1's rationale for the northward azimuth skew: "The International
//! Telecommunication Union has imposed a mandatory geo-stationary orbit
//! exclusion zone, which prohibits LEO satellites from transmitting to or
//! receiving from a ground station while being in the protected part of
//! the sky" (47 CFR §25.289). For a terminal in the northern mid-latitudes
//! the GSO belt arcs across the southern sky at moderate elevation, so
//! avoiding it removes much of the southern field of view — the scheduler
//! crate implements the zone as a hard constraint and the azimuth
//! preference of Figure 5 *emerges* from the geometry rather than being
//! baked in as a weight.

use starsense_astro::frames::{look_angles, Geodetic, LookAngles};
use starsense_astro::vec3::Vec3;

/// Radius of the geostationary belt, km.
pub const GSO_RADIUS_KM: f64 = 42_164.0;

/// The exclusion test for one terminal location.
///
/// Construction samples the GSO arc as seen from the terminal once;
/// per-satellite tests are then a handful of dot products. (The arc is
/// fixed in the terminal's sky — GSO satellites do not move in ECEF.)
#[derive(Debug, Clone)]
pub struct GsoExclusion {
    /// Unit vectors (ENU-style local frame) toward sampled GSO arc points
    /// that are above the horizon.
    arc_dirs: Vec<Vec3>,
    /// Bounding caps over consecutive runs of `arc_dirs`, for the
    /// segment-pruned fast tests ([`GsoExclusion::excludes_fast`],
    /// [`GsoExclusion::separation_deg_fast`]).
    segments: Vec<ArcSegment>,
    /// Protection half-angle, degrees: a satellite within this angular
    /// separation of the arc is excluded.
    pub half_angle_deg: f64,
    /// `cos(half_angle)` — the exclusion threshold, hoisted out of the
    /// per-satellite test.
    cos_half: f64,
}

/// Arc samples per bounding segment: small enough that a segment's cap is
/// tight (8 samples span ≤ 4° of belt longitude, so the sqrt-free
/// Lipschitz pre-filter in the scan kills all but the near-arc segments),
/// large enough that the two-level scan replaces ~480 dot products per
/// query with ~90 cheap segment bounds plus the few surviving runs.
const SEGMENT_LEN: usize = 8;

/// Padding (radians) added to a segment's measured angular radius,
/// dominating the rounding error of `angle_to` so the stored cap provably
/// contains every member.
const SEGMENT_RHO_PAD: f64 = 1e-9;

/// Slack added to the algebraic dot upper bound, dominating the rounding
/// of its three-term evaluation. Together with [`SEGMENT_RHO_PAD`] it
/// keeps the bound rigorous: a pruned segment's members can never hold
/// the true maximum, which is what makes the fast folds bit-identical to
/// the exhaustive ones.
const SEGMENT_UB_GUARD: f64 = 1e-12;

/// A bounding cap over one run of consecutive arc samples: all members lie
/// within angle `rho` of `center` (with `cos_rho`/`sin_rho` stored for the
/// closed-form dot bound).
#[derive(Debug, Clone, Copy)]
struct ArcSegment {
    /// Member range `arc_dirs[start..end]`.
    start: usize,
    end: usize,
    /// Unit center of the cap.
    center: Vec3,
    /// Angular radius of the cap, radians (with its cosine and sine
    /// stored for the closed-form dot bound).
    rho: f64,
    cos_rho: f64,
    sin_rho: f64,
}

impl ArcSegment {
    /// Upper bound on `dot(q, a)` over every member `a`, given
    /// `d = dot(q, center)` for a unit query `q`: the maximum of the dot
    /// product over a spherical cap of radius ρ is `cos(θ − ρ)` for query
    /// angle θ ≥ ρ (expanded via `d` and `sqrt(1 − d²)`) and 1 inside the
    /// cap.
    fn dot_upper_bound(&self, d: f64) -> f64 {
        if d >= self.cos_rho {
            1.0
        } else {
            d * self.cos_rho + (1.0 - d * d).max(0.0).sqrt() * self.sin_rho + SEGMENT_UB_GUARD
        }
    }
}

/// Builds the bounding segments over the sampled arc.
fn build_segments(arc_dirs: &[Vec3]) -> Vec<ArcSegment> {
    arc_dirs
        .chunks(SEGMENT_LEN)
        .enumerate()
        .map(|(k, chunk)| {
            let start = k * SEGMENT_LEN;
            let sum = chunk.iter().fold(Vec3::new(0.0, 0.0, 0.0), |acc, a| acc + *a);
            let (center, rho) = if sum.norm() > 1e-9 {
                let center = sum.unit();
                let rho =
                    chunk.iter().map(|a| a.angle_to(center)).fold(0.0, f64::max) + SEGMENT_RHO_PAD;
                (center, rho)
            } else {
                // Degenerate (members cancel): a whole-sphere cap that
                // never prunes, keeping the bound trivially valid.
                (chunk[0], std::f64::consts::PI)
            };
            ArcSegment {
                start,
                end: start + chunk.len(),
                center,
                rho,
                cos_rho: rho.cos(),
                sin_rho: rho.sin(),
            }
        })
        .collect()
}

/// Dot-product slack under which two arc points count as tied for closest
/// (see [`GsoExclusion::separation_deg`]). An arc point whose dot product
/// with the query trails the winner by more than this is separated by a
/// strictly larger angle — the guard is ~6 orders of magnitude above the
/// combined rounding error of the dot products and `angle_to`, and ties
/// merely add a redundant term to a `min` fold.
const DOT_TIE_GUARD: f64 = 1e-9;

/// Converts look angles to a local unit direction vector (east, north, up).
fn look_to_unit(look: &LookAngles) -> Vec3 {
    let el = look.elevation_deg.to_radians();
    let az = look.azimuth_deg.to_radians();
    Vec3::new(el.cos() * az.sin(), el.cos() * az.cos(), el.sin())
}

impl GsoExclusion {
    /// Builds the exclusion tester for a terminal at `site` with a given
    /// protection half-angle (degrees).
    pub fn for_site(site: Geodetic, half_angle_deg: f64) -> GsoExclusion {
        let mut arc_dirs = Vec::new();
        // Sample the whole belt; only points above the horizon matter.
        for k in 0..720 {
            let lon = k as f64 * 0.5;
            let gso = Vec3::new(
                GSO_RADIUS_KM * lon.to_radians().cos(),
                GSO_RADIUS_KM * lon.to_radians().sin(),
                0.0,
            );
            let look = look_angles(site, gso);
            if look.elevation_deg > -5.0 {
                arc_dirs.push(look_to_unit(&look));
            }
        }
        let segments = build_segments(&arc_dirs);
        GsoExclusion {
            arc_dirs,
            segments,
            half_angle_deg,
            cos_half: half_angle_deg.to_radians().cos(),
        }
    }

    /// A disabled zone (never excludes) — the ablation configuration.
    pub fn disabled() -> GsoExclusion {
        GsoExclusion {
            arc_dirs: Vec::new(),
            segments: Vec::new(),
            half_angle_deg: 0.0,
            cos_half: 1.0,
        }
    }

    /// True when a satellite seen at `look` falls inside the protected zone.
    pub fn excludes(&self, look: &LookAngles) -> bool {
        if self.arc_dirs.is_empty() {
            return false;
        }
        let dir = look_to_unit(look);
        self.arc_dirs.iter().any(|a| a.dot(dir) > self.cos_half)
    }

    /// Minimum angular separation (degrees) between `look` and the visible
    /// GSO arc; `f64::INFINITY` when the arc is below the horizon entirely.
    ///
    /// The historical implementation evaluated `angle_to` (a cross
    /// product, a square root and an `atan2`) against every arc point.
    /// The angle is monotone in the dot product, so this version finds the
    /// winning arc point with dot products alone and evaluates the exact
    /// historical formula only for points tied with it (within
    /// [`DOT_TIE_GUARD`], conservatively). The fold over the survivors
    /// yields the same minimum, bit for bit: every skipped point is
    /// separated by a strictly larger angle, and `min` ignores it either
    /// way.
    pub fn separation_deg(&self, look: &LookAngles) -> f64 {
        let dir = look_to_unit(look);
        let mut best_dot = f64::NEG_INFINITY;
        for a in &self.arc_dirs {
            best_dot = best_dot.max(a.dot(dir));
        }
        let mut min_deg = f64::INFINITY;
        for a in &self.arc_dirs {
            if a.dot(dir) >= best_dot - DOT_TIE_GUARD {
                min_deg = min_deg.min(a.angle_to(dir).to_degrees());
            }
        }
        min_deg
    }

    /// Segment-pruned variant of [`GsoExclusion::excludes`], bit-identical
    /// by construction: a segment whose dot upper bound does not clear
    /// `cos_half` cannot contain an excluding sample, so skipping it
    /// cannot change the answer. This is the variant the scheduler's fast
    /// scoring path calls; [`GsoExclusion::excludes`] stays as the frozen
    /// reference (and the equality is tested below).
    pub fn excludes_fast(&self, look: &LookAngles) -> bool {
        if self.arc_dirs.is_empty() {
            return false;
        }
        let dir = look_to_unit(look);
        for seg in &self.segments {
            if seg.dot_upper_bound(seg.center.dot(dir)) > self.cos_half
                && self.arc_dirs[seg.start..seg.end].iter().any(|a| a.dot(dir) > self.cos_half)
            {
                return true;
            }
        }
        false
    }

    /// Segment-pruned variant of [`GsoExclusion::separation_deg`],
    /// bit-identical by construction. Pass 1 folds the exact maximum dot
    /// product, skipping segments whose upper bound cannot beat the
    /// running best (`max` over a subset containing the argmax is the
    /// same value, bit for bit). Pass 2 re-runs the historical tie-guarded
    /// `min` fold, skipping segments whose bound falls below the tie
    /// threshold — their members fail the `≥ threshold` test either way.
    ///
    /// Pass 1 visits the segment whose *center* is closest to the query
    /// first: the true argmax sample almost always lives there, so the
    /// seed is tight and the remaining segments' upper bounds fail on the
    /// spot. (Visit order only changes *which* segments get scanned
    /// exactly, never the fold's value — every skipped segment provably
    /// holds no sample above the running best.)
    pub fn separation_deg_fast(&self, look: &LookAngles) -> f64 {
        match self.pruned_scan(look_to_unit(look), 2.0) {
            Some(deg) => deg,
            // `best_dot` never exceeds 1 (+ rounding), so a bail threshold
            // of 2 can never trip.
            None => unreachable!("bail threshold of 2.0 is above any dot product"),
        }
    }

    /// Fused exclusion + separation query — the one GSO call the
    /// scheduler's scoring loop makes per candidate. Returns `None` when
    /// `look` falls inside the protected zone (exactly when
    /// [`GsoExclusion::excludes`] returns true) and
    /// `Some(separation_deg)` (bit-identical to
    /// [`GsoExclusion::separation_deg`]) otherwise.
    ///
    /// The fusion is exact, not approximate: `excludes` asks whether *any*
    /// arc sample's dot product beats `cos_half`, which is the same
    /// question as whether the *maximum* dot product does — and pass 1 of
    /// the pruned scan computes that maximum exactly. One query therefore
    /// answers both tests with a single direction conversion and segment
    /// sweep, where separate calls would redo each.
    pub fn separation_if_clear(&self, look: &LookAngles) -> Option<f64> {
        self.pruned_scan(look_to_unit(look), self.cos_half)
    }

    /// Two-pass segment-pruned scan shared by the fast GSO queries.
    ///
    /// Pass 1 folds the exact maximum dot product against `dir`, visiting
    /// the segment whose *center* is closest first: the true argmax sample
    /// almost always lives there, so the seed is tight and the remaining
    /// segments' upper bounds fail on the spot. (Visit order only changes
    /// *which* segments get scanned exactly, never the fold's value —
    /// every skipped segment provably holds no sample above the running
    /// best.) If the maximum exceeds `bail_above` the direction is inside
    /// the exclusion zone and the scan returns `None`. Pass 2 re-runs the
    /// historical tie-guarded `min` fold over the segments whose bound
    /// clears the tie threshold — their members fail the `≥ threshold`
    /// test either way.
    fn pruned_scan(&self, dir: Vec3, bail_above: f64) -> Option<f64> {
        // ceil(720 / SEGMENT_LEN) — the belt sampling in `for_site` caps
        // the segment count, so the per-query scratch lives on the stack.
        const MAX_SEGMENTS: usize = 720 / SEGMENT_LEN + 1;
        debug_assert!(self.segments.len() <= MAX_SEGMENTS);
        let n = self.segments.len();

        // Center dot products, then the argmax — two tight array passes
        // pipeline better than one fused compare-and-branch chain.
        let mut center_d = [f64::NEG_INFINITY; MAX_SEGMENTS];
        for (k, seg) in self.segments.iter().enumerate() {
            center_d[k] = seg.center.dot(dir);
        }
        let mut seed = 0usize;
        for k in 1..n {
            if center_d[k] > center_d[seed] {
                seed = k;
            }
        }

        // Exact scan of the seed segment, keeping its member dots so the
        // tie fold below does not recompute them.
        let mut best_dot = f64::NEG_INFINITY;
        let mut seed_dots = [f64::NEG_INFINITY; SEGMENT_LEN];
        let mut seed_start = 0usize;
        let mut seed_len = 0usize;
        if let Some(seg) = self.segments.get(seed) {
            seed_start = seg.start;
            seed_len = seg.end - seg.start;
            for (j, a) in self.arc_dirs[seg.start..seg.end].iter().enumerate() {
                let d = a.dot(dir);
                seed_dots[j] = d;
                best_dot = best_dot.max(d);
            }
        }

        // One sweep decides every other segment's fate for BOTH folds. A
        // segment whose member-dot upper bound sits strictly below
        // `best_dot − DOT_TIE_GUARD` can neither raise the maximum (pass
        // 1) nor hold a tie-fold survivor (pass 2: the running best only
        // grows, so the final threshold is at least this one, and every
        // member fails the `≥ threshold` sample test). The sqrt-free
        // over-bound `cosθ + ρ` (cosine is 1-Lipschitz) fails far
        // segments on one add; only near-arc segments pay the sqrt of
        // the exact cap bound, and only the handful within the tie guard
        // land on the survivor list the tie fold revisits.
        let mut survivors = [(0usize, 0.0f64); MAX_SEGMENTS];
        let mut n_survivors = 0usize;
        for (k, seg) in self.segments.iter().enumerate() {
            if k == seed {
                continue;
            }
            let cheap = center_d[k] + seg.rho + SEGMENT_UB_GUARD;
            if cheap < best_dot - DOT_TIE_GUARD {
                continue;
            }
            let ub = seg.dot_upper_bound(center_d[k]);
            if ub < best_dot - DOT_TIE_GUARD {
                continue;
            }
            if ub > best_dot {
                for a in &self.arc_dirs[seg.start..seg.end] {
                    best_dot = best_dot.max(a.dot(dir));
                }
            }
            survivors[n_survivors] = (k, ub);
            n_survivors += 1;
        }
        if best_dot > bail_above {
            return None;
        }

        // The historical tie-guarded min fold, over the seed's stored
        // dots plus the surviving segments — the same survivor samples
        // the exhaustive fold admits, so the same minimum, bit for bit.
        let threshold = best_dot - DOT_TIE_GUARD;
        let mut min_deg = f64::INFINITY;
        for (j, &d) in seed_dots[..seed_len].iter().enumerate() {
            if d >= threshold {
                min_deg = min_deg.min(self.arc_dirs[seed_start + j].angle_to(dir).to_degrees());
            }
        }
        for &(k, ub) in &survivors[..n_survivors] {
            if ub < threshold {
                continue;
            }
            let seg = &self.segments[k];
            for a in &self.arc_dirs[seg.start..seg.end] {
                if a.dot(dir) >= threshold {
                    min_deg = min_deg.min(a.angle_to(dir).to_degrees());
                }
            }
        }
        Some(min_deg)
    }

    /// Whether any part of the belt is visible from the site at all.
    pub fn arc_visible(&self) -> bool {
        !self.arc_dirs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iowa() -> Geodetic {
        Geodetic::new(41.66, -91.53, 0.2)
    }

    fn look(el: f64, az: f64) -> LookAngles {
        LookAngles { elevation_deg: el, azimuth_deg: az, range_km: 1000.0 }
    }

    #[test]
    fn gso_arc_peaks_due_south_at_midlatitude() {
        let z = GsoExclusion::for_site(iowa(), 12.0);
        assert!(z.arc_visible());
        // The arc's highest point from 41.66°N is due south at elevation
        // ~41-43° (geometry of the belt). A satellite there must be excluded.
        assert!(z.excludes(&look(42.0, 180.0)));
        // Straight north at the same elevation: far from the belt.
        assert!(!z.excludes(&look(42.0, 0.0)));
    }

    #[test]
    fn zenith_is_outside_the_zone_at_midlatitude() {
        let z = GsoExclusion::for_site(iowa(), 15.0);
        assert!(!z.excludes(&look(90.0, 0.0)));
        assert!(z.separation_deg(&look(90.0, 0.0)) > 30.0);
    }

    #[test]
    fn southern_low_sky_is_excluded_northern_low_sky_is_not() {
        let z = GsoExclusion::for_site(iowa(), 15.0);
        // Low southern sky hugs the belt for a wide azimuth span.
        assert!(z.excludes(&look(35.0, 160.0)));
        assert!(z.excludes(&look(35.0, 200.0)));
        assert!(!z.excludes(&look(35.0, 330.0)));
        assert!(!z.excludes(&look(35.0, 30.0)));
    }

    #[test]
    fn separation_shrinks_toward_the_belt() {
        let z = GsoExclusion::for_site(iowa(), 15.0);
        let near = z.separation_deg(&look(45.0, 180.0));
        let far = z.separation_deg(&look(80.0, 0.0));
        assert!(near < far, "near {near} vs far {far}");
    }

    #[test]
    fn pruned_separation_matches_the_exhaustive_fold_bit_for_bit() {
        let zones = [
            GsoExclusion::for_site(iowa(), 12.0),
            GsoExclusion::for_site(Geodetic::new(0.0, 17.2, 0.0), 12.0),
            GsoExclusion::for_site(Geodetic::new(-41.66, 130.0, 0.2), 15.0),
            GsoExclusion::for_site(Geodetic::new(67.0, -20.0, 0.1), 12.0),
        ];
        for z in &zones {
            for el10 in (250..=900).step_by(23) {
                for az in (0..360).step_by(7) {
                    let l = look(el10 as f64 / 10.0, az as f64);
                    let dir = look_to_unit(&l);
                    let exhaustive = z
                        .arc_dirs
                        .iter()
                        .map(|a| a.angle_to(dir).to_degrees())
                        .fold(f64::INFINITY, f64::min);
                    assert_eq!(
                        z.separation_deg(&l).to_bits(),
                        exhaustive.to_bits(),
                        "el {} az {az}",
                        el10 as f64 / 10.0
                    );
                }
            }
        }
    }

    #[test]
    fn segment_pruned_fast_paths_match_the_reference_bit_for_bit() {
        // The fast tests are what the scheduler's hot path calls; they
        // must agree with the frozen reference on every output bit across
        // sites on both hemispheres, the equator and near the poles.
        let zones = [
            GsoExclusion::for_site(iowa(), 12.0),
            GsoExclusion::for_site(Geodetic::new(0.0, 17.2, 0.0), 12.0),
            GsoExclusion::for_site(Geodetic::new(-41.66, 130.0, 0.2), 15.0),
            GsoExclusion::for_site(Geodetic::new(67.0, -20.0, 0.1), 12.0),
            GsoExclusion::for_site(Geodetic::new(-88.0, 5.0, 0.0), 12.0),
        ];
        for z in &zones {
            for el10 in (250..=900).step_by(13) {
                for az in (0..360).step_by(5) {
                    let l = look(el10 as f64 / 10.0, az as f64);
                    assert_eq!(
                        z.separation_deg_fast(&l).to_bits(),
                        z.separation_deg(&l).to_bits(),
                        "separation el {} az {az}",
                        el10 as f64 / 10.0
                    );
                    assert_eq!(
                        z.excludes_fast(&l),
                        z.excludes(&l),
                        "excludes el {} az {az}",
                        el10 as f64 / 10.0
                    );
                    // The fused query answers both questions at once:
                    // `None` exactly on exclusion, the reference
                    // separation bits otherwise.
                    assert_eq!(
                        z.separation_if_clear(&l).map(f64::to_bits),
                        (!z.excludes(&l)).then(|| z.separation_deg(&l).to_bits()),
                        "fused el {} az {az}",
                        el10 as f64 / 10.0
                    );
                }
            }
        }
    }

    #[test]
    fn fast_paths_handle_the_disabled_zone() {
        let z = GsoExclusion::disabled();
        assert!(!z.excludes_fast(&look(42.0, 180.0)));
        assert_eq!(z.separation_deg_fast(&look(42.0, 180.0)), f64::INFINITY);
        assert_eq!(z.separation_if_clear(&look(42.0, 180.0)), Some(f64::INFINITY));
    }

    #[test]
    fn disabled_zone_never_excludes() {
        let z = GsoExclusion::disabled();
        assert!(!z.excludes(&look(42.0, 180.0)));
        assert!(!z.arc_visible());
        assert_eq!(z.separation_deg(&look(42.0, 180.0)), f64::INFINITY);
    }

    #[test]
    fn equatorial_site_has_belt_overhead() {
        let z = GsoExclusion::for_site(Geodetic::new(0.0, 0.0, 0.0), 12.0);
        // From the equator the belt passes through zenith.
        assert!(z.excludes(&look(89.0, 90.0)) || z.excludes(&look(89.0, 270.0)));
    }

    #[test]
    fn southern_hemisphere_mirror_image() {
        // From 41°S the belt is in the *northern* sky: the exclusion flips,
        // which is exactly the generalization limitation §8 of the paper
        // calls out.
        let z = GsoExclusion::for_site(Geodetic::new(-41.66, -91.53, 0.2), 12.0);
        assert!(z.excludes(&look(42.0, 0.0)));
        assert!(!z.excludes(&look(42.0, 180.0)));
    }

    #[test]
    fn wider_half_angle_excludes_more() {
        let narrow = GsoExclusion::for_site(iowa(), 5.0);
        let wide = GsoExclusion::for_site(iowa(), 25.0);
        let probe = look(55.0, 180.0);
        if narrow.excludes(&probe) {
            assert!(wide.excludes(&probe));
        }
        // A direction excluded by the wide zone but not the narrow one
        // must exist somewhere along the southern sky.
        let mut found = false;
        for el in 25..80 {
            let l = look(el as f64, 180.0);
            if wide.excludes(&l) && !narrow.excludes(&l) {
                found = true;
                break;
            }
        }
        assert!(found);
    }
}
