//! The hidden ground-truth schedulers.
//!
//! The paper's central object of study is a pair of controllers inside the
//! Starlink network that the authors can only observe from outside:
//!
//! * a **global scheduler** that re-allocates satellites to user terminals
//!   every 15 seconds (at :12/:27/:42/:57 past each minute), preferring
//!   satellites that are high in the sky, outside the GSO exclusion zone,
//!   recently launched, sunlit, and lightly loaded (§3, §5);
//! * an **on-satellite MAC scheduler** that round-robins radio frames
//!   across the terminals attached to a satellite, producing the parallel
//!   RTT bands of Figure 2 (§3).
//!
//! This crate implements both as the reproduction's *ground truth*. The
//! measurement pipeline (`starsense-netemu`, `starsense-ident`,
//! `starsense-core`) observes the system exactly the way the paper's
//! vantage points did and must *re-discover* these behaviours; having the
//! truth in hand lets the reproduction quantify how well each inference
//! step works, which the authors could not do against the real network.
//!
//! The scheduler's preferences live in [`SchedulerPolicy`]; every weight
//! can be zeroed for the ablation benches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod global;
pub mod gso;
pub mod load;
pub mod mac;
pub mod slots;
pub mod terminal;

pub use global::{
    Allocation, GlobalScheduler, SchedulerPolicy, StateRestoreError, TerminalSchedState,
};
pub use gso::GsoExclusion;
pub use load::LoadModel;
pub use mac::MacScheduler;
pub use slots::{slot_index, slot_start, SLOT_ANCHOR_SECONDS, SLOT_PERIOD_SECONDS};
pub use terminal::Terminal;
