//! The on-satellite medium-access-control (MAC) scheduler.
//!
//! §3: "within the 15-second time interval, latency measurements \[from\] the
//! user terminal frequently form parallel bands that are a few milliseconds
//! apart. These bands reflect evidence that radio frames are allocated to
//! user terminals by an on-satellite controller in a round-robin fashion."
//! The controller matches the "medium access control scheduler" described
//! in SpaceX's patent filing (US 11,540,301).
//!
//! [`MacScheduler`] models exactly that: uplink time is divided into fixed
//! radio frames; the terminals attached to a satellite own frames in
//! round-robin order; a packet arriving at the terminal waits for the next
//! frame its terminal owns. With an `n`-terminal cycle and frame length
//! `f`, the added queueing delay is quantized to the grid `{0, f, 2f, …,
//! (n−1)·f}` sampled by the probe phase — which is precisely what paints
//! the parallel RTT bands of Figure 2.

/// Round-robin frame scheduler for one satellite.
#[derive(Debug, Clone, PartialEq)]
pub struct MacScheduler {
    frame_ms: f64,
    attached: Vec<usize>,
}

impl MacScheduler {
    /// Creates a scheduler with the given radio-frame length (milliseconds)
    /// and an initially empty attachment set.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive frame length.
    pub fn new(frame_ms: f64) -> MacScheduler {
        assert!(frame_ms > 0.0, "frame length must be positive");
        MacScheduler { frame_ms, attached: Vec::new() }
    }

    /// Frame length in milliseconds.
    pub fn frame_ms(&self) -> f64 {
        self.frame_ms
    }

    /// Currently attached terminals, in round-robin order.
    pub fn attached(&self) -> &[usize] {
        &self.attached
    }

    /// Attaches a terminal (no-op when already attached).
    pub fn attach(&mut self, terminal: usize) {
        if !self.attached.contains(&terminal) {
            self.attached.push(terminal);
        }
    }

    /// Detaches a terminal (no-op when not attached).
    pub fn detach(&mut self, terminal: usize) {
        self.attached.retain(|&t| t != terminal);
    }

    /// Replaces the attachment set (a global-scheduler reallocation).
    pub fn set_attached(&mut self, terminals: Vec<usize>) {
        self.attached = terminals;
        self.attached.dedup();
    }

    /// Cycle length in milliseconds: one frame per attached terminal.
    pub fn cycle_ms(&self) -> f64 {
        self.frame_ms * self.attached.len().max(1) as f64
    }

    /// Queueing delay (ms) for a packet from `terminal` arriving at offset
    /// `t_ms` within the slot: time until the *next* frame boundary owned
    /// by that terminal (a frame already in progress cannot be joined).
    ///
    /// Returns `None` when the terminal is not attached (its traffic is not
    /// served by this satellite at all).
    pub fn wait_ms(&self, terminal: usize, t_ms: f64) -> Option<f64> {
        let n = self.attached.len();
        let pos = self.attached.iter().position(|&t| t == terminal)?;
        debug_assert!(n > 0);

        let current = (t_ms / self.frame_ms).floor() as i64;
        // Next frame index ≥ current+1 whose owner is `pos`.
        let n = n as i64;
        let rem = (current + 1).rem_euclid(n);
        let skip = (pos as i64 - rem).rem_euclid(n);
        let next_owned = current + 1 + skip;
        Some(next_owned as f64 * self.frame_ms - t_ms)
    }

    /// The discrete set of steady-state extra delays a probe train with
    /// period `probe_ms` experiences — the predicted band offsets.
    /// Sorted ascending; empty when the terminal is not attached.
    pub fn band_offsets_ms(&self, terminal: usize, probe_ms: f64, probes: usize) -> Vec<f64> {
        let mut seen: Vec<f64> = Vec::new();
        for k in 0..probes {
            if let Some(w) = self.wait_ms(terminal, k as f64 * probe_ms) {
                // Quantize to sub-microsecond to dedup float noise.
                let q = (w * 1e4).round() / 1e4;
                if !seen.contains(&q) {
                    seen.push(q);
                }
            }
        }
        seen.sort_by(f64::total_cmp);
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(n: usize) -> MacScheduler {
        let mut m = MacScheduler::new(1.5);
        m.set_attached((0..n).collect());
        m
    }

    #[test]
    fn unattached_terminal_gets_none() {
        let m = mac(3);
        assert!(m.wait_ms(99, 0.0).is_none());
        assert!(m.band_offsets_ms(99, 20.0, 10).is_empty());
    }

    #[test]
    fn wait_is_bounded_by_one_cycle() {
        let m = mac(4);
        for k in 0..200 {
            let t = k as f64 * 0.37;
            let w = m.wait_ms(2, t).unwrap();
            assert!(w > 0.0, "must wait for the *next* boundary (t={t})");
            assert!(w <= m.cycle_ms() + 1e-9, "wait {w} exceeds cycle (t={t})");
        }
    }

    #[test]
    fn single_terminal_waits_at_most_one_frame() {
        let m = mac(1);
        for k in 0..50 {
            let t = k as f64 * 0.21;
            let w = m.wait_ms(0, t).unwrap();
            assert!(w <= m.frame_ms() + 1e-9);
        }
    }

    #[test]
    fn round_robin_order_is_fair() {
        // Over one full cycle of arrivals at frame starts, each terminal's
        // wait pattern is a rotation of the others'.
        let m = mac(3);
        let waits: Vec<f64> = (0..3).map(|k| m.wait_ms(k, 0.0).unwrap()).collect();
        let mut sorted = waits.clone();
        sorted.sort_by(f64::total_cmp);
        // Terminal 1 owns frame 1 (starting at 1.5ms), terminal 2 frame 2, etc.
        assert_eq!(sorted, vec![1.5, 3.0, 4.5]);
    }

    #[test]
    fn wait_lands_exactly_on_owned_frame_boundary() {
        let m = mac(5);
        for term in 0..5 {
            for k in 0..40 {
                let t = k as f64 * 1.1;
                let w = m.wait_ms(term, t).unwrap();
                let land = t + w;
                let frame = (land / m.frame_ms()).round() as i64;
                assert!((land - frame as f64 * m.frame_ms()).abs() < 1e-9);
                assert_eq!(frame.rem_euclid(5) as usize, term);
            }
        }
    }

    #[test]
    fn probe_train_sees_discrete_bands() {
        // 4 attached terminals, 1.5 ms frames → 6 ms cycle; 20 ms probes
        // sample phases 20k mod 6 ∈ {0, 2, 4} ms: exactly 3 bands.
        let m = mac(4);
        let bands = m.band_offsets_ms(1, 20.0, 120);
        assert_eq!(bands.len(), 3, "bands: {bands:?}");
        for w in bands.windows(2) {
            assert!((w[1] - w[0] - 2.0).abs() < 1e-6, "bands 2 ms apart: {bands:?}");
        }
    }

    #[test]
    fn attach_detach_lifecycle() {
        let mut m = MacScheduler::new(1.0);
        m.attach(7);
        m.attach(7); // duplicate ignored
        m.attach(9);
        assert_eq!(m.attached(), &[7, 9]);
        assert_eq!(m.cycle_ms(), 2.0);
        m.detach(7);
        assert_eq!(m.attached(), &[9]);
        m.detach(100); // absent: no-op
        assert_eq!(m.attached(), &[9]);
    }

    #[test]
    fn more_attached_terminals_stretch_the_cycle() {
        assert!(mac(8).cycle_ms() > mac(2).cycle_ms());
        let w8 = mac(8).band_offsets_ms(0, 20.0, 200);
        let w2 = mac(2).band_offsets_ms(0, 20.0, 200);
        let max8 = w8.last().copied().unwrap();
        let max2 = w2.last().copied().unwrap();
        assert!(max8 > max2, "more sharing → longer worst-case wait");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frame_panics() {
        let _ = MacScheduler::new(0.0);
    }
}
