//! The hidden global scheduler.
//!
//! Every 15 seconds (§3's :12/:27/:42/:57 boundaries) the global scheduler
//! assigns one satellite to every terminal, scoring each *eligible*
//! candidate by the preferences the paper later infers:
//!
//! * **angle of elevation** — higher is better (RF power falls with
//!   distance; §5.1's rationale), with a much steeper fall-off for *dark*
//!   satellites, which are only worth their battery drain when nearly
//!   overhead (§5.3's rationale),
//! * **GSO exclusion** — a hard constraint; the northward azimuth skew of
//!   Figure 5 emerges from this geometry rather than from a weight,
//! * **launch date** — newer satellites are slightly preferred
//!   (constellation-lifetime leveling; §5.2's rationale, explicitly "low
//!   absolute values" — the weight is small),
//! * **sunlit status** — sunlit satellites preferred (§5.3),
//! * **background load** — lightly loaded satellites preferred; load is
//!   invisible to the measurement side, reproducing §6's stated accuracy
//!   ceiling,
//! * **hysteresis** — a small bonus for keeping the current satellite.
//!
//! Selection is a softmax draw over scores rather than a hard argmax: the
//! real scheduler serves a whole population under constraints we do not
//! model, and the paper's measured distributions (e.g. "80% of picks from
//! the 45–90° band", not 100%) show exactly the graded preference a
//! temperature parameter captures.
//!
//! # Per-terminal randomness and shard invariance
//!
//! Every terminal draws from its **own** RNG stream, seeded from
//! `(scheduler seed, terminal id)` by a splitmix-style mix. Combined with
//! per-terminal hysteresis state and the pure-hash [`LoadModel`], one
//! terminal's allocation sequence is a function of `(seed, terminal id,
//! sky)` alone — independent of which other terminals are co-scheduled.
//! That is what lets the campaign engine split the terminal population
//! into contiguous shards, run one sub-scheduler per shard in parallel,
//! and merge results bit-identical to a single serial scheduler over all
//! terminals (tested below in `sharded_sub_schedulers_match_monolith`).
//!
//! # The cohort fast path
//!
//! Every terminal in a slot queries the *same* sky, so the hot engine
//! shares satellite-side work across terminals without changing a single
//! output bit:
//!
//! * [`GlobalScheduler::fields_of_view_cohort`] groups terminals by the
//!   visibility index's own grid cells and computes one conservative
//!   candidate superset per cohort (cap at the smallest member radius,
//!   widened by the exact anchor→member angle), then narrows it per
//!   member with an exact cap-cosine prefilter before the exact
//!   elevation test;
//! * [`GlobalScheduler::allocate_from_available`] gathers the
//!   `(satellite, slot)`-only score terms from a slot-stamped table and
//!   runs the segment-pruned GSO tests.
//!
//! The per-terminal reference engine ([`GlobalScheduler::fields_of_view`]
//! + [`GlobalScheduler::allocate_from_available_reference`]) is kept
//! frozen, both as the equality oracle for the tests below and as the
//! baseline arm of the bench sweep's cohort-speedup measurement.

use crate::gso::GsoExclusion;
use crate::load::LoadModel;
use crate::slots::{slot_index, slot_start};
use crate::terminal::Terminal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use starsense_astro::frames::geodetic_to_ecef;
use starsense_astro::time::JulianDate;
use starsense_astro::vec3::Vec3;
use starsense_constellation::{Constellation, PropagationCache, Snapshot, VisibleSat};
use std::collections::BTreeMap;

/// Pad (degrees) added to a cohort's measured anchor→member widening
/// angle, dominating the rounding of the `acos` that measures it so the
/// widened cap provably contains every member's own cap.
const COHORT_WIDEN_PAD_DEG: f64 = 1e-7;

/// Slack subtracted from the per-member cap-cosine prefilter threshold,
/// dominating the rounding of the unit-vector dot product it is compared
/// against (the cap itself already carries the index's 0.02° guard).
const CAP_COS_GUARD: f64 = 1e-12;

/// Tunable preferences of the hidden scheduler. Zeroing a weight removes
/// the corresponding preference — the knobs the ablation benches turn.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerPolicy {
    /// Minimum connection elevation, degrees (25 for Starlink terminals).
    pub min_elevation_deg: f64,
    /// Weight of normalized elevation in the score.
    pub w_elevation: f64,
    /// Penalty a *dark* satellite pays per unit of sky below the zenith:
    /// its score loses `w_dark_low_elevation · (1 − el_norm)`. A dark
    /// satellite is battery-limited, and the RF power needed grows with
    /// slant range, so darkness only costs little when the satellite is
    /// nearly overhead (§5.3's rationale). The same term makes equally
    /// placed sunlit satellites preferable everywhere below the zenith,
    /// and steepens the elevation preference when the whole sky is dark.
    pub w_dark_low_elevation: f64,
    /// Weight of (newer) launch date.
    pub w_age: f64,
    /// Additive bonus for sunlit satellites.
    pub w_sunlit: f64,
    /// Weight of (1 − background load).
    pub w_load: f64,
    /// Additive bonus for keeping the previously assigned satellite.
    pub w_hysteresis: f64,
    /// GSO protection half-angle, degrees; `None` disables the zone.
    pub gso_half_angle_deg: Option<f64>,
    /// Weight of the angular margin to the GSO arc (normalized by 90°).
    ///
    /// Beyond the hard exclusion, the scheduler prefers links that keep
    /// interference margin from the protected belt — for a northern
    /// mid-latitude terminal the belt fills the southern sky, so this is
    /// what produces Figure 5's northward skew.
    pub w_gso_margin: f64,
    /// Softmax temperature; lower = more deterministic.
    pub temperature: f64,
    /// Age normalization horizon, days (≈ the 5-year design life).
    pub max_age_days: f64,
}

impl Default for SchedulerPolicy {
    fn default() -> Self {
        SchedulerPolicy {
            min_elevation_deg: 25.0,
            w_elevation: 1.9,
            w_dark_low_elevation: 1.2,
            w_age: 0.25,
            w_sunlit: 0.1,
            w_load: 0.9,
            w_hysteresis: 0.15,
            gso_half_angle_deg: Some(12.0),
            w_gso_margin: 0.9,
            temperature: 0.35,
            max_age_days: 5.0 * 365.25,
        }
    }
}

/// The outcome of one slot's allocation for one terminal.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Terminal this allocation is for.
    pub terminal_id: usize,
    /// Global slot index.
    pub slot: i64,
    /// Slot start time.
    pub slot_start: JulianDate,
    /// Every satellite above the minimum elevation ("available" in the
    /// paper's §5 terminology — environmental obstruction and the GSO zone
    /// do *not* remove a satellite from this list).
    pub available: Vec<VisibleSat>,
    /// Catalog ids of the available satellites that were actually eligible
    /// (not sky-masked, not GSO-excluded).
    pub eligible_ids: Vec<u32>,
    /// The chosen satellite, `None` on outage (no eligible candidate).
    pub chosen: Option<VisibleSat>,
}

impl Allocation {
    /// Convenience: the chosen satellite's catalog id.
    pub fn chosen_id(&self) -> Option<u32> {
        self.chosen.as_ref().map(|s| s.norad_id)
    }
}

/// Reusable per-scheduler buffers for the hot allocation loop, so that
/// scoring a terminal allocates nothing: candidate indices and scores live
/// here across terminals and slots, and the softmax overwrites the score
/// buffer in place instead of building a separate weight vector.
///
/// Scratch contents never outlive one terminal's scoring pass, so carrying
/// the buffers across calls cannot change results — only where the
/// intermediate values are stored.
#[derive(Debug, Clone, Default)]
struct AllocScratch {
    /// Indices into the current terminal's `available` list that survived
    /// the sky mask and the GSO exclusion.
    eligible: Vec<usize>,
    /// GSO separation (degrees) for each eligible candidate, filled by the
    /// same fused query that decided the exclusion — aligned with
    /// `eligible`.
    gso_sep: Vec<f64>,
    /// Scores for the eligible candidates; the softmax draw overwrites
    /// them with their weights in place.
    scores: Vec<f64>,
    /// Slot-stamped satellite term table, indexed by catalog index: the
    /// score components that depend only on `(satellite, slot)` — the age
    /// term `w_age · age_norm` and the load term `w_load · (1 − load)` —
    /// computed once per (satellite, slot) by the first terminal that
    /// scores the satellite and gathered by every later one. `term_stamp`
    /// holds the slot each lane was filled for, so advancing to a new
    /// slot invalidates the table without an O(catalog) clear.
    age_term: Vec<f64>,
    load_term: Vec<f64>,
    term_stamp: Vec<i64>,
}

/// Cached geocentric geometry of one terminal, computed at scheduler
/// construction: its ECEF position, the unit direction (for cohort
/// grouping, widening angles and the cap-cosine prefilter) and the
/// geocentric radius the cap bound is evaluated at.
#[derive(Debug, Clone, Copy)]
struct TerminalGeom {
    ecef: Vec3,
    unit: Vec3,
    r_km: f64,
}

/// Derives the per-terminal RNG stream seed from the scheduler seed and a
/// terminal's stable id (a splitmix64-style finalizer — the same family
/// the [`LoadModel`] hashes with). Using the terminal *id* rather than its
/// position makes the stream a property of the terminal itself, so any
/// partition of the terminal set into sub-schedulers reproduces it.
fn stream_seed(seed: u64, terminal_id: u64) -> u64 {
    let mut z = seed ^ terminal_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Softmax draw over candidate scores; returns the winning index.
///
/// Overwrites `scores` with the softmax weights in place — exp and the
/// weight total fold into one pass over the buffer, with no intermediate
/// weight vector. Consumes one RNG draw when there is at least one
/// candidate, none otherwise.
fn sample_in_place(rng: &mut StdRng, temperature: f64, scores: &mut [f64]) -> Option<usize> {
    if scores.is_empty() {
        return None;
    }
    let tau = temperature.max(1e-6);
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut total = 0.0;
    for s in scores.iter_mut() {
        *s = ((*s - max) / tau).exp();
        total += *s;
    }
    let mut draw = rng.random_range(0.0..total);
    for (i, w) in scores.iter().enumerate() {
        draw -= w;
        if draw <= 0.0 {
            return Some(i);
        }
    }
    Some(scores.len() - 1)
}

/// The mutable cross-slot state of one terminal inside a
/// [`GlobalScheduler`], exported at a slot boundary for checkpointing.
///
/// Everything else a scheduler holds — GSO geometry, terminal geometry,
/// the [`LoadModel`], the scratch buffers — is either a pure function of
/// `(policy, terminals, seed)` or results-neutral caching, so this pair
/// (RNG stream position + previous assignment) is the complete state a
/// resumed scheduler needs to continue its allocation sequence
/// bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TerminalSchedState {
    /// Stable id of the terminal this state belongs to.
    pub terminal_id: usize,
    /// xoshiro256++ state of the terminal's softmax RNG stream.
    pub rng_state: [u64; 4],
    /// Satellite assigned in the previous slot (hysteresis key), if any.
    pub previous: Option<u32>,
}

/// Why [`GlobalScheduler::restore_states`] rejected a state vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateRestoreError {
    /// The vector length does not match the scheduler's terminal count.
    CountMismatch {
        /// Terminals the scheduler serves.
        expected: usize,
        /// States supplied.
        got: usize,
    },
    /// A state's terminal id does not match the terminal at its position.
    IdMismatch {
        /// Position in the vector.
        index: usize,
        /// Terminal id the scheduler has at that position.
        expected: usize,
        /// Terminal id the state carries.
        got: usize,
    },
}

impl std::fmt::Display for StateRestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateRestoreError::CountMismatch { expected, got } => {
                write!(f, "scheduler state count mismatch: {expected} terminals, {got} states")
            }
            StateRestoreError::IdMismatch { index, expected, got } => write!(
                f,
                "scheduler state id mismatch at {index}: terminal {expected}, state for {got}"
            ),
        }
    }
}

impl std::error::Error for StateRestoreError {}

/// The global scheduler: owns per-terminal GSO geometry, the background
/// load model, one softmax RNG stream per terminal and the
/// previous-assignment state.
#[derive(Debug, Clone)]
pub struct GlobalScheduler {
    policy: SchedulerPolicy,
    terminals: Vec<Terminal>,
    /// Per-terminal geocentric geometry (same order as `terminals`),
    /// cached once for the cohort field-of-view path.
    geom: Vec<TerminalGeom>,
    gso: Vec<GsoExclusion>,
    load: LoadModel,
    /// One independent RNG stream per terminal (same order as
    /// `terminals`), each seeded from `(seed, terminal id)` — see the
    /// module docs on shard invariance.
    rngs: Vec<StdRng>,
    // Ordered map keyed by terminal id: access today is keyed-only, but
    // any future iteration (snapshotting, sharded merges) must not depend
    // on hash order.
    previous: BTreeMap<usize, u32>,
    scratch: AllocScratch,
}

impl GlobalScheduler {
    /// Creates a scheduler for a set of terminals.
    ///
    /// Terminal ids seed the per-terminal RNG streams and key the
    /// hysteresis state, so a scheduler over any subset of a terminal
    /// population allocates for those terminals exactly as a scheduler
    /// over the whole population would (given the same `seed`).
    pub fn new(policy: SchedulerPolicy, terminals: Vec<Terminal>, seed: u64) -> GlobalScheduler {
        let gso = terminals
            .iter()
            .map(|t| match policy.gso_half_angle_deg {
                Some(half) => GsoExclusion::for_site(t.location, half),
                None => GsoExclusion::disabled(),
            })
            .collect();
        let rngs = terminals
            .iter()
            .map(|t| StdRng::seed_from_u64(stream_seed(seed, t.id as u64)))
            .collect();
        let geom = terminals
            .iter()
            .map(|t| {
                let ecef = geodetic_to_ecef(t.location);
                TerminalGeom { ecef, unit: ecef.unit(), r_km: ecef.norm() }
            })
            .collect();
        GlobalScheduler {
            policy,
            terminals,
            geom,
            gso,
            load: LoadModel::new(seed ^ 0x10AD, 0.5),
            rngs,
            previous: BTreeMap::new(),
            scratch: AllocScratch::default(),
        }
    }

    /// The terminals this scheduler serves.
    pub fn terminals(&self) -> &[Terminal] {
        &self.terminals
    }

    /// The policy in force.
    pub fn policy(&self) -> &SchedulerPolicy {
        &self.policy
    }

    /// The (hidden) background load model — exposed for ablation benches
    /// and oracle analyses only; the measurement pipeline never reads it.
    pub fn load_model(&self) -> &LoadModel {
        &self.load
    }

    /// Exports the mutable cross-slot state of every terminal, in
    /// terminal order — the scheduler half of a campaign checkpoint.
    pub fn export_states(&self) -> Vec<TerminalSchedState> {
        self.terminals
            .iter()
            .zip(&self.rngs)
            .map(|(t, rng)| TerminalSchedState {
                terminal_id: t.id,
                rng_state: rng.state(),
                previous: self.previous.get(&t.id).copied(),
            })
            .collect()
    }

    /// Restores state exported by [`GlobalScheduler::export_states`],
    /// positioning every RNG stream and hysteresis key exactly where the
    /// exporting scheduler left them: the restored scheduler's subsequent
    /// allocations are bit-identical to the exporter continuing.
    ///
    /// `states` must carry one entry per terminal, in this scheduler's
    /// terminal order (sub-schedulers restore the matching slice of a
    /// whole-population export).
    pub fn restore_states(
        &mut self,
        states: &[TerminalSchedState],
    ) -> Result<(), StateRestoreError> {
        if states.len() != self.terminals.len() {
            return Err(StateRestoreError::CountMismatch {
                expected: self.terminals.len(),
                got: states.len(),
            });
        }
        for (index, (t, s)) in self.terminals.iter().zip(states).enumerate() {
            if t.id != s.terminal_id {
                return Err(StateRestoreError::IdMismatch {
                    index,
                    expected: t.id,
                    got: s.terminal_id,
                });
            }
        }
        self.previous.clear();
        for (rng, s) in self.rngs.iter_mut().zip(states) {
            *rng = StdRng::from_state(s.rng_state);
            if let Some(prev) = s.previous {
                self.previous.insert(s.terminal_id, prev);
            }
        }
        Ok(())
    }

    /// Allocates a satellite to every terminal for the slot containing
    /// `at`. Returns one [`Allocation`] per terminal, in terminal order.
    ///
    /// Runs through the cohort field-of-view path and the precomputed
    /// scoring table — both bit-identical to the frozen per-terminal
    /// reference ([`GlobalScheduler::fields_of_view`] +
    /// [`GlobalScheduler::allocate_from_available_reference`]), as the
    /// equality tests below hold them to.
    pub fn allocate(&mut self, constellation: &Constellation, at: JulianDate) -> Vec<Allocation> {
        // One propagation pass per slot, shared by every terminal.
        let snapshot = constellation.snapshot(slot_start(at));
        let available = self.fields_of_view_cohort(constellation, &snapshot);
        self.allocate_from_available(at, available)
    }

    /// Like [`GlobalScheduler::allocate`], but reads the slot's snapshot
    /// through a shared [`PropagationCache`], so several schedulers — or a
    /// campaign's pre-warming workers — propagate each epoch only once.
    /// Bit-identical to `allocate` on the same catalog.
    pub fn allocate_through(
        &mut self,
        cache: &PropagationCache<'_>,
        at: JulianDate,
    ) -> Vec<Allocation> {
        let snapshot = cache.snapshot(slot_start(at));
        let available = self.fields_of_view_cohort(cache.constellation(), &snapshot);
        self.allocate_from_available(at, available)
    }

    /// Per-terminal field-of-view lists for one prepared snapshot, in
    /// terminal order — the stateless (parallelizable) half of `allocate`.
    ///
    /// Queries go through the snapshot's [`VisibilityIndex`], so the cost
    /// per terminal is proportional to the satellites near its sky rather
    /// than to the whole catalog; the index's property tests guarantee the
    /// result is bit-identical to [`GlobalScheduler::fields_of_view_linear`].
    ///
    /// [`VisibilityIndex`]: starsense_constellation::VisibilityIndex
    pub fn fields_of_view(
        &self,
        constellation: &Constellation,
        snapshot: &Snapshot,
    ) -> Vec<Vec<VisibleSat>> {
        // One candidate buffer per call (not per terminal); `&self` keeps
        // this callable from the campaign engine's parallel workers.
        let mut candidates = Vec::new();
        self.terminals
            .iter()
            .map(|t| {
                constellation.field_of_view_indexed(
                    snapshot,
                    t.location,
                    self.policy.min_elevation_deg,
                    &mut candidates,
                )
            })
            .collect()
    }

    /// Per-terminal field-of-view lists answered through **terminal
    /// cohorts**: terminals are grouped by the grid cell of the snapshot's
    /// [`VisibilityIndex`] their geocentric direction falls into, each
    /// cohort shares one conservative candidate superset (the cap bound at
    /// the smallest member radius, widened by the largest exact
    /// anchor→member angle — a provable superset by the triangle
    /// inequality, see
    /// [`VisibilityIndex::cohort_candidates_into`]), and each member then
    /// narrows the shared list with its own exact cap-cosine prefilter
    /// before running the exact elevation test. Every satellite above a
    /// member's cutoff survives both conservative stages, so the result is
    /// bit-identical to [`GlobalScheduler::fields_of_view`] (equality- and
    /// property-tested below and in the constellation crate).
    ///
    /// Cohort membership is a pure function of terminal position and the
    /// snapshot, so results are invariant under terminal input order and
    /// sharding — the campaign engine's merge guarantees carry over.
    ///
    /// [`VisibilityIndex`]: starsense_constellation::VisibilityIndex
    /// [`VisibilityIndex::cohort_candidates_into`]: starsense_constellation::VisibilityIndex::cohort_candidates_into
    pub fn fields_of_view_cohort(
        &self,
        constellation: &Constellation,
        snapshot: &Snapshot,
    ) -> Vec<Vec<VisibleSat>> {
        let mut out: Vec<Vec<VisibleSat>> = self.terminals.iter().map(|_| Vec::new()).collect();
        if self.terminals.is_empty() {
            return out;
        }
        let index = snapshot.visibility_index();
        let min_el = self.policy.min_elevation_deg;

        // Cohorts are runs of equal cell key after sorting (cell, terminal
        // position) pairs; results land in `out[position]`, so the
        // cell-major visit order never shows downstream.
        let mut order: Vec<(u32, u32)> =
            self.geom.iter().enumerate().map(|(i, g)| (index.cell_key(g.ecef), i as u32)).collect();
        order.sort_unstable();

        let mut candidates: Vec<u32> = Vec::new();
        let mut dirs: Vec<(u32, Vec3)> = Vec::new();
        let mut filtered: Vec<u32> = Vec::new();
        let mut start = 0usize;
        while start < order.len() {
            let cell = order[start].0;
            let mut end = start + 1;
            while end < order.len() && order[end].0 == cell {
                end += 1;
            }
            let members = &order[start..end];

            // Anchor on the first member; evaluate the cap at the smallest
            // member radius (the bound is decreasing in observer radius)
            // and widen it by the largest exact anchor→member angle.
            let anchor = &self.geom[members[0].1 as usize];
            let mut min_r = f64::INFINITY;
            let mut widen = 0.0f64;
            for &(_, ti) in members {
                let g = &self.geom[ti as usize];
                min_r = min_r.min(g.r_km);
                widen = widen.max(anchor.unit.dot(g.unit).clamp(-1.0, 1.0).acos().to_degrees());
            }
            index.cohort_candidates_into(
                anchor.ecef,
                min_r,
                widen + COHORT_WIDEN_PAD_DEG,
                min_el,
                &mut candidates,
            );

            // Unit directions of the present candidates, shared by every
            // member's prefilter.
            dirs.clear();
            let entries = snapshot.entries();
            for &si in &candidates {
                if let Some(entry) = &entries[si as usize] {
                    dirs.push((si, entry.ecef.unit()));
                }
            }

            for &(_, ti) in members {
                let g = &self.geom[ti as usize];
                filtered.clear();
                match index.cap_cos(g.r_km, min_el) {
                    Some(cap_cos) => {
                        let thr = cap_cos - CAP_COS_GUARD;
                        filtered.extend(
                            dirs.iter().filter(|(_, d)| g.unit.dot(*d) >= thr).map(|&(si, _)| si),
                        );
                    }
                    None => filtered.extend(dirs.iter().map(|&(si, _)| si)),
                }
                out[ti as usize] = constellation.field_of_view_from_candidates(
                    snapshot,
                    self.terminals[ti as usize].location,
                    min_el,
                    &filtered,
                );
            }
            start = end;
        }
        out
    }

    /// [`GlobalScheduler::fields_of_view`] via the full-catalog linear
    /// scan. Kept as the reference implementation the spatial index is
    /// measured and property-tested against; not used on any hot path.
    pub fn fields_of_view_linear(
        &self,
        constellation: &Constellation,
        snapshot: &Snapshot,
    ) -> Vec<Vec<VisibleSat>> {
        self.terminals
            .iter()
            .map(|t| {
                constellation.field_of_view_from(
                    snapshot,
                    t.location,
                    self.policy.min_elevation_deg,
                )
            })
            .collect()
    }

    /// The stateful half of `allocate`: scoring, the softmax draw and the
    /// hysteresis update, consuming per-terminal availability lists that
    /// were computed elsewhere (in slot order — each terminal's RNG stream
    /// and previous-assignment state advance per call).
    ///
    /// Scoring runs the fast path: the `(satellite, slot)`-only score
    /// components are gathered from the slot-stamped term table (filled
    /// lazily by the first terminal scoring each satellite) and the GSO
    /// geometry goes through the segment-pruned tests — every term and its
    /// summation order matches [`GlobalScheduler::score`] exactly, so the
    /// emitted allocations and consumed RNG streams are bit-identical to
    /// [`GlobalScheduler::allocate_from_available_reference`] (tested
    /// below).
    ///
    /// # Panics
    ///
    /// Panics when `available` does not have one entry per terminal.
    pub fn allocate_from_available(
        &mut self,
        at: JulianDate,
        available: Vec<Vec<VisibleSat>>,
    ) -> Vec<Allocation> {
        assert_eq!(available.len(), self.terminals.len(), "one availability list per terminal");
        let slot = slot_index(at);
        let start = slot_start(at);
        let mut out = Vec::with_capacity(self.terminals.len());

        // Detach the scratch buffers so `self` stays borrowable for
        // scoring and the RNG draw; reattached after the loop.
        let mut scratch = std::mem::take(&mut self.scratch);

        for (ti, available) in available.into_iter().enumerate() {
            let terminal = &self.terminals[ti];
            let tid = terminal.id;

            // One fused GSO query per candidate decides the exclusion and
            // yields the separation the scoring loop needs — where the
            // reference path pays a full exclusion scan and then a second
            // full separation scan per eligible candidate.
            scratch.eligible.clear();
            scratch.gso_sep.clear();
            for (i, v) in available.iter().enumerate() {
                if terminal.mask.blocks(v.look.elevation_deg, v.look.azimuth_deg) {
                    continue;
                }
                let Some(sep) = self.gso[ti].separation_if_clear(&v.look) else { continue };
                scratch.eligible.push(i);
                scratch.gso_sep.push(sep);
            }

            let mut eligible_ids = Vec::with_capacity(scratch.eligible.len());
            eligible_ids.extend(scratch.eligible.iter().map(|&i| available[i].norad_id));

            scratch.scores.clear();
            let p = &self.policy;
            for (ei, &i) in scratch.eligible.iter().enumerate() {
                let sat = &available[i];
                let ci = sat.catalog_index as usize;
                if scratch.term_stamp.len() <= ci {
                    scratch.term_stamp.resize(ci + 1, i64::MIN);
                    scratch.age_term.resize(ci + 1, 0.0);
                    scratch.load_term.resize(ci + 1, 0.0);
                }
                if scratch.term_stamp[ci] != slot {
                    scratch.term_stamp[ci] = slot;
                    let age_norm = 1.0 - (sat.age_days / p.max_age_days).clamp(0.0, 1.0);
                    scratch.age_term[ci] = p.w_age * age_norm;
                    scratch.load_term[ci] =
                        p.w_load * (1.0 - self.load.utilization(sat.norad_id, slot));
                }
                let el_norm = ((sat.look.elevation_deg - p.min_elevation_deg)
                    / (90.0 - p.min_elevation_deg))
                    .clamp(0.0, 1.0);
                let dark_penalty =
                    if sat.sunlit { 0.0 } else { p.w_dark_low_elevation * (1.0 - el_norm) };
                let gso_margin = (scratch.gso_sep[ei] / 90.0).clamp(0.0, 1.0);
                let hyst = if self.previous.get(&tid) == Some(&sat.norad_id) {
                    p.w_hysteresis
                } else {
                    0.0
                };
                // Same terms, same left-to-right association as `score`.
                scratch.scores.push(
                    p.w_elevation * el_norm - dark_penalty
                        + scratch.age_term[ci]
                        + if sat.sunlit { p.w_sunlit } else { 0.0 }
                        + scratch.load_term[ci]
                        + p.w_gso_margin * gso_margin
                        + hyst,
                );
            }
            let chosen =
                sample_in_place(&mut self.rngs[ti], self.policy.temperature, &mut scratch.scores)
                    .map(|i| available[scratch.eligible[i]].clone());

            match chosen.as_ref() {
                Some(c) => {
                    self.previous.insert(tid, c.norad_id);
                }
                None => {
                    self.previous.remove(&tid);
                }
            }

            out.push(Allocation {
                terminal_id: tid,
                slot,
                slot_start: start,
                available,
                eligible_ids,
                chosen,
            });
        }
        self.scratch = scratch;
        out
    }

    /// The frozen per-terminal reference for
    /// [`GlobalScheduler::allocate_from_available`]: per-candidate
    /// [`GlobalScheduler::score`] evaluation and the exhaustive-fold GSO
    /// tests, exactly as the pre-cohort engine ran them. Kept (like
    /// [`GlobalScheduler::fields_of_view_linear`]) as the baseline the
    /// fast path is equality-tested and benchmarked against; not used on
    /// any hot path.
    ///
    /// # Panics
    ///
    /// Panics when `available` does not have one entry per terminal.
    pub fn allocate_from_available_reference(
        &mut self,
        at: JulianDate,
        available: Vec<Vec<VisibleSat>>,
    ) -> Vec<Allocation> {
        assert_eq!(available.len(), self.terminals.len(), "one availability list per terminal");
        let slot = slot_index(at);
        let start = slot_start(at);
        let mut out = Vec::with_capacity(self.terminals.len());
        let mut scratch = std::mem::take(&mut self.scratch);

        for (ti, available) in available.into_iter().enumerate() {
            let terminal = &self.terminals[ti];
            let tid = terminal.id;

            scratch.eligible.clear();
            scratch.eligible.extend(available.iter().enumerate().filter_map(|(i, v)| {
                let open = !terminal.mask.blocks(v.look.elevation_deg, v.look.azimuth_deg)
                    && !self.gso[ti].excludes(&v.look);
                open.then_some(i)
            }));

            let mut eligible_ids = Vec::with_capacity(scratch.eligible.len());
            eligible_ids.extend(scratch.eligible.iter().map(|&i| available[i].norad_id));

            scratch.scores.clear();
            scratch.scores.extend(
                scratch
                    .eligible
                    .iter()
                    .map(|&i| self.score(tid, slot, &available[i], &self.gso[ti])),
            );
            let chosen =
                sample_in_place(&mut self.rngs[ti], self.policy.temperature, &mut scratch.scores)
                    .map(|i| available[scratch.eligible[i]].clone());

            match chosen.as_ref() {
                Some(c) => {
                    self.previous.insert(tid, c.norad_id);
                }
                None => {
                    self.previous.remove(&tid);
                }
            }

            out.push(Allocation {
                terminal_id: tid,
                slot,
                slot_start: start,
                available,
                eligible_ids,
                chosen,
            });
        }
        self.scratch = scratch;
        out
    }

    /// Runs `slots` consecutive allocations starting from the slot
    /// containing `from`, returning all allocations flattened
    /// (slot-major, terminal-minor).
    pub fn allocate_range(
        &mut self,
        constellation: &Constellation,
        from: JulianDate,
        slots: usize,
    ) -> Vec<Allocation> {
        let mut out = Vec::with_capacity(slots * self.terminals.len());
        // Query mid-slot so float rounding can never straddle a boundary.
        let period = crate::slots::SLOT_PERIOD_SECONDS;
        let first_mid = slot_start(from).plus_seconds(period / 2.0);
        for k in 0..slots {
            out.extend(self.allocate(constellation, first_mid.plus_seconds(k as f64 * period)));
        }
        out
    }

    /// Scores one candidate for one terminal — the reference expression
    /// the fast path's table-driven scoring mirrors term for term (the
    /// `w_age·age_norm` and `w_load·(1−load)` products depend only on
    /// `(satellite, slot)` and are what the slot term table caches).
    fn score(&self, terminal_id: usize, slot: i64, sat: &VisibleSat, gso: &GsoExclusion) -> f64 {
        let p = &self.policy;
        let el_norm = ((sat.look.elevation_deg - p.min_elevation_deg)
            / (90.0 - p.min_elevation_deg))
            .clamp(0.0, 1.0);
        let dark_penalty = if sat.sunlit { 0.0 } else { p.w_dark_low_elevation * (1.0 - el_norm) };
        let age_norm = 1.0 - (sat.age_days / p.max_age_days).clamp(0.0, 1.0);
        let load = self.load.utilization(sat.norad_id, slot);
        let gso_margin = (gso.separation_deg(&sat.look) / 90.0).clamp(0.0, 1.0);
        let hyst = if self.previous.get(&terminal_id) == Some(&sat.norad_id) {
            p.w_hysteresis
        } else {
            0.0
        };
        p.w_elevation * el_norm - dark_penalty
            + p.w_age * age_norm
            + if sat.sunlit { p.w_sunlit } else { 0.0 }
            + p.w_load * (1.0 - load)
            + p.w_gso_margin * gso_margin
            + hyst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starsense_astro::frames::Geodetic;
    use starsense_constellation::ConstellationBuilder;
    use starsense_obstruction::SkyMask;

    fn constellation() -> Constellation {
        ConstellationBuilder::starlink_gen1().seed(11).build()
    }

    fn terminals() -> Vec<Terminal> {
        vec![
            Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2)),
            Terminal::new(1, "Ithaca", Geodetic::new(42.44, -76.50, 0.3))
                .with_mask(SkyMask::ithaca_trees()),
        ]
    }

    fn at() -> JulianDate {
        JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 5.0)
    }

    #[test]
    fn allocate_returns_one_allocation_per_terminal() {
        let c = constellation();
        let mut g = GlobalScheduler::new(SchedulerPolicy::default(), terminals(), 3);
        let allocs = g.allocate(&c, at());
        assert_eq!(allocs.len(), 2);
        assert_eq!(allocs[0].terminal_id, 0);
        assert_eq!(allocs[1].terminal_id, 1);
        for a in &allocs {
            assert!(!a.available.is_empty(), "full constellation always has FOV");
            assert!(a.chosen.is_some(), "clear-ish sky should always allocate");
            let id = a.chosen_id().unwrap();
            assert!(a.eligible_ids.contains(&id), "chosen must be eligible");
        }
    }

    #[test]
    fn chosen_is_above_minimum_elevation() {
        let c = constellation();
        let mut g = GlobalScheduler::new(SchedulerPolicy::default(), terminals(), 3);
        for a in g.allocate_range(&c, at(), 10) {
            if let Some(ch) = &a.chosen {
                assert!(ch.look.elevation_deg >= 25.0);
            }
        }
    }

    #[test]
    fn chosen_respects_sky_mask() {
        let c = constellation();
        let mut g = GlobalScheduler::new(SchedulerPolicy::default(), terminals(), 3);
        for a in g.allocate_range(&c, at(), 20) {
            if a.terminal_id == 1 {
                if let Some(ch) = &a.chosen {
                    assert!(
                        !SkyMask::ithaca_trees().blocks(ch.look.elevation_deg, ch.look.azimuth_deg),
                        "picked a tree-blocked satellite: {:?}",
                        ch.look
                    );
                }
            }
        }
    }

    #[test]
    fn chosen_respects_gso_zone() {
        let c = constellation();
        let mut g = GlobalScheduler::new(SchedulerPolicy::default(), terminals(), 3);
        let zone = GsoExclusion::for_site(Geodetic::new(41.66, -91.53, 0.2), 12.0);
        for a in g.allocate_range(&c, at(), 20) {
            if a.terminal_id == 0 {
                if let Some(ch) = &a.chosen {
                    assert!(!zone.excludes(&ch.look), "picked inside the GSO zone");
                }
            }
        }
    }

    #[test]
    fn same_seed_reproduces_allocations() {
        let c = constellation();
        let run = |seed| {
            let mut g = GlobalScheduler::new(SchedulerPolicy::default(), terminals(), seed);
            g.allocate_range(&c, at(), 8).iter().map(|a| a.chosen_id()).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should eventually differ");
    }

    #[test]
    fn allocations_change_across_slots() {
        let c = constellation();
        let mut g = GlobalScheduler::new(SchedulerPolicy::default(), terminals(), 3);
        let allocs = g.allocate_range(&c, at(), 12);
        let iowa: Vec<Option<u32>> =
            allocs.iter().filter(|a| a.terminal_id == 0).map(|a| a.chosen_id()).collect();
        let distinct: std::collections::HashSet<_> = iowa.iter().collect();
        assert!(distinct.len() > 3, "reallocation every 15 s should churn: {iowa:?}");
    }

    #[test]
    fn elevation_preference_is_visible_in_aggregate() {
        let c = constellation();
        let mut g = GlobalScheduler::new(SchedulerPolicy::default(), terminals(), 3);
        let allocs = g.allocate_range(&c, at(), 60);
        let mut chosen_el = Vec::new();
        let mut avail_el = Vec::new();
        for a in &allocs {
            if let Some(ch) = &a.chosen {
                chosen_el.push(ch.look.elevation_deg);
            }
            avail_el.extend(a.available.iter().map(|v| v.look.elevation_deg));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&chosen_el) > mean(&avail_el) + 10.0,
            "chosen {:.1} vs available {:.1}",
            mean(&chosen_el),
            mean(&avail_el)
        );
    }

    #[test]
    fn zero_weights_remove_elevation_preference() {
        let c = constellation();
        let flat = SchedulerPolicy {
            w_elevation: 0.0,
            w_dark_low_elevation: 0.0,
            w_age: 0.0,
            w_sunlit: 0.0,
            w_load: 0.0,
            w_hysteresis: 0.0,
            gso_half_angle_deg: None,
            w_gso_margin: 0.0,
            temperature: 5.0,
            ..SchedulerPolicy::default()
        };
        let mut g = GlobalScheduler::new(flat, terminals(), 3);
        let allocs = g.allocate_range(&c, at(), 60);
        let mut chosen_el = Vec::new();
        let mut avail_el = Vec::new();
        for a in &allocs {
            if let Some(ch) = &a.chosen {
                chosen_el.push(ch.look.elevation_deg);
            }
            avail_el.extend(a.available.iter().map(|v| v.look.elevation_deg));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            (mean(&chosen_el) - mean(&avail_el)).abs() < 8.0,
            "flat policy should pick ~uniformly: chosen {:.1} vs avail {:.1}",
            mean(&chosen_el),
            mean(&avail_el)
        );
    }

    #[test]
    fn stronger_hysteresis_reduces_handovers() {
        let c = constellation();
        let churn = |w_hysteresis: f64| {
            let policy = SchedulerPolicy { w_hysteresis, ..SchedulerPolicy::default() };
            let mut g = GlobalScheduler::new(policy, terminals(), 3);
            let allocs = g.allocate_range(&c, at(), 80);
            let iowa: Vec<Option<u32>> =
                allocs.iter().filter(|a| a.terminal_id == 0).map(|a| a.chosen_id()).collect();
            iowa.windows(2).filter(|w| w[0] != w[1]).count()
        };
        let sticky = churn(3.0);
        let free = churn(0.0);
        assert!(
            sticky < free,
            "hysteresis 3.0 changed satellite {sticky} times vs {free} with none"
        );
    }

    #[test]
    fn allocate_through_cache_is_bit_identical_to_allocate() {
        let c = constellation();
        let cache = PropagationCache::new(&c);
        let mut direct = GlobalScheduler::new(SchedulerPolicy::default(), terminals(), 3);
        let mut cached = GlobalScheduler::new(SchedulerPolicy::default(), terminals(), 3);
        for k in 0..6 {
            let t = at().plus_seconds(15.0 * k as f64);
            let a = direct.allocate(&c, t);
            let b = cached.allocate_through(&cache, t);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.chosen_id(), y.chosen_id());
                assert_eq!(x.eligible_ids, y.eligible_ids);
                assert_eq!(x.available.len(), y.available.len());
                for (va, vb) in x.available.iter().zip(&y.available) {
                    assert_eq!(va.norad_id, vb.norad_id);
                    assert_eq!(va.look, vb.look);
                }
            }
        }
        // Every slot was propagated exactly once despite both schedulers.
        assert_eq!(cache.stats().truth_entries, 6);
    }

    #[test]
    fn indexed_availability_is_bit_identical_to_linear() {
        // Two schedulers with the same seed, one fed by the indexed
        // field-of-view path and one by the linear scan, must produce
        // byte-identical allocations and consume identical RNG streams.
        let c = constellation();
        let mut indexed = GlobalScheduler::new(SchedulerPolicy::default(), terminals(), 3);
        let mut linear = indexed.clone();
        for k in 0..8 {
            let t = at().plus_seconds(15.0 * k as f64);
            let snap = c.snapshot(crate::slots::slot_start(t));
            let fov_i = indexed.fields_of_view(&c, &snap);
            let fov_l = linear.fields_of_view_linear(&c, &snap);
            assert_eq!(fov_i.len(), fov_l.len());
            for (a, b) in fov_i.iter().zip(&fov_l) {
                assert_eq!(a.len(), b.len(), "slot {k} FOV size");
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.norad_id, y.norad_id);
                    assert_eq!(x.look.elevation_deg.to_bits(), y.look.elevation_deg.to_bits());
                    assert_eq!(x.look.azimuth_deg.to_bits(), y.look.azimuth_deg.to_bits());
                    assert_eq!(x.look.range_km.to_bits(), y.look.range_km.to_bits());
                }
            }
            let aa = indexed.allocate_from_available(t, fov_i);
            let bb = linear.allocate_from_available(t, fov_l);
            for (x, y) in aa.iter().zip(&bb) {
                assert_eq!(x.chosen_id(), y.chosen_id(), "slot {k}");
                assert_eq!(x.eligible_ids, y.eligible_ids, "slot {k}");
            }
        }
    }

    /// Clustered + isolated sites: the clusters land in shared visibility
    /// grid cells (~4° at gen1 shells), exercising true multi-member
    /// cohorts; the polar pair straddles the longitude wrap.
    fn cohort_terminals() -> Vec<Terminal> {
        let sites = [
            (41.66, -91.53),
            (41.9, -91.2),
            (42.1, -91.8),
            (42.44, -76.50),
            (-33.86, 151.21),
            (-33.5, 151.0),
            (69.65, 18.96),
            (85.0, 179.5),
            (85.2, -179.6),
            (0.0, 0.0),
            (0.3, 0.4),
        ];
        sites
            .iter()
            .enumerate()
            .map(|(i, &(lat, lon))| {
                let t = Terminal::new(i, format!("t{i}"), Geodetic::new(lat, lon, 0.1));
                if i == 3 {
                    t.with_mask(SkyMask::ithaca_trees())
                } else {
                    t
                }
            })
            .collect()
    }

    #[test]
    fn cohort_terminals_share_cells() {
        // Sanity for the fixtures below: the clustered sites really do
        // fall into shared grid cells, so the cohort tests exercise
        // multi-member supersets rather than degenerating to singletons.
        let c = constellation();
        let snap = c.snapshot(at());
        let index = snap.visibility_index();
        let keys: Vec<u32> = cohort_terminals()
            .iter()
            .map(|t| index.cell_key(starsense_astro::frames::geodetic_to_ecef(t.location)))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() < keys.len(), "no two terminals shared a cell: {keys:?}");
    }

    #[test]
    fn cohort_fov_is_bit_identical_to_per_terminal() {
        let c = constellation();
        let g = GlobalScheduler::new(SchedulerPolicy::default(), cohort_terminals(), 3);
        for k in 0..6 {
            let t = at().plus_seconds(15.0 * k as f64);
            let snap = c.snapshot(crate::slots::slot_start(t));
            let cohort = g.fields_of_view_cohort(&c, &snap);
            let per = g.fields_of_view(&c, &snap);
            assert_eq!(cohort.len(), per.len());
            for (ti, (a, b)) in cohort.iter().zip(&per).enumerate() {
                assert_eq!(a.len(), b.len(), "terminal {ti} slot {k} FOV size");
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.norad_id, y.norad_id);
                    assert_eq!(x.catalog_index, y.catalog_index);
                    assert_eq!(x.look.elevation_deg.to_bits(), y.look.elevation_deg.to_bits());
                    assert_eq!(x.look.azimuth_deg.to_bits(), y.look.azimuth_deg.to_bits());
                    assert_eq!(x.look.range_km.to_bits(), y.look.range_km.to_bits());
                    assert_eq!(x.age_days.to_bits(), y.age_days.to_bits());
                    assert_eq!(x.sunlit, y.sunlit);
                }
            }
        }
    }

    #[test]
    fn fast_allocate_matches_reference_engine_bit_for_bit() {
        // The full fast engine (cohort FOV + table-driven scoring + pruned
        // GSO) against the frozen PR-7 reference engine (per-terminal FOV
        // + per-candidate score): identical allocations, identical RNG
        // stream consumption, across consecutive slots with hysteresis in
        // play.
        let c = constellation();
        let mut fast = GlobalScheduler::new(SchedulerPolicy::default(), cohort_terminals(), 3);
        let mut reference = fast.clone();
        for k in 0..8 {
            let t = at().plus_seconds(15.0 * k as f64);
            let snap = c.snapshot(crate::slots::slot_start(t));
            let fov_fast = fast.fields_of_view_cohort(&c, &snap);
            let fov_ref = reference.fields_of_view(&c, &snap);
            let a = fast.allocate_from_available(t, fov_fast);
            let b = reference.allocate_from_available_reference(t, fov_ref);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.terminal_id, y.terminal_id, "slot {k}");
                assert_eq!(x.chosen_id(), y.chosen_id(), "slot {k} terminal {}", x.terminal_id);
                assert_eq!(x.eligible_ids, y.eligible_ids, "slot {k}");
                assert_eq!(x.slot_start.0.to_bits(), y.slot_start.0.to_bits());
                assert_eq!(x.available.len(), y.available.len());
            }
        }
    }

    #[test]
    fn precomputed_score_expression_matches_score_bit_for_bit() {
        // The fast path's score expression, reconstructed term for term
        // (table terms + pruned GSO margin), against the reference
        // `score` — with and without hysteresis engaged.
        let c = constellation();
        let mut g = GlobalScheduler::new(SchedulerPolicy::default(), cohort_terminals(), 3);
        for k in 0..4 {
            let t = at().plus_seconds(15.0 * k as f64);
            let slot = slot_index(t);
            let snap = c.snapshot(slot_start(t));
            let fov = g.fields_of_view_cohort(&c, &snap);
            for (ti, available) in fov.iter().enumerate() {
                let tid = g.terminals[ti].id;
                for sat in available {
                    let reference = g.score(tid, slot, sat, &g.gso[ti]);
                    let p = &g.policy;
                    let age_term =
                        p.w_age * (1.0 - (sat.age_days / p.max_age_days).clamp(0.0, 1.0));
                    let load_term = p.w_load * (1.0 - g.load.utilization(sat.norad_id, slot));
                    let el_norm = ((sat.look.elevation_deg - p.min_elevation_deg)
                        / (90.0 - p.min_elevation_deg))
                        .clamp(0.0, 1.0);
                    let dark_penalty =
                        if sat.sunlit { 0.0 } else { p.w_dark_low_elevation * (1.0 - el_norm) };
                    let gso_margin =
                        (g.gso[ti].separation_deg_fast(&sat.look) / 90.0).clamp(0.0, 1.0);
                    let hyst = if g.previous.get(&tid) == Some(&sat.norad_id) {
                        p.w_hysteresis
                    } else {
                        0.0
                    };
                    let fast = p.w_elevation * el_norm - dark_penalty
                        + age_term
                        + if sat.sunlit { p.w_sunlit } else { 0.0 }
                        + load_term
                        + p.w_gso_margin * gso_margin
                        + hyst;
                    assert_eq!(
                        fast.to_bits(),
                        reference.to_bits(),
                        "terminal {ti} sat {} slot {k}",
                        sat.norad_id
                    );
                }
            }
            // Advance hysteresis state so later slots test the engaged path.
            let fov = g.fields_of_view_cohort(&c, &snap);
            g.allocate_from_available(t, fov);
        }
    }

    #[test]
    fn sharded_sub_schedulers_match_monolith() {
        // A scheduler over any partition of the terminal population must
        // allocate for each terminal exactly as the monolithic scheduler
        // does: per-terminal RNG streams, hysteresis and load are all
        // functions of (seed, terminal id) alone.
        let c = constellation();
        let pop = vec![
            Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2)),
            Terminal::new(1, "Ithaca", Geodetic::new(42.44, -76.50, 0.3))
                .with_mask(SkyMask::ithaca_trees()),
            Terminal::new(2, "Austin", Geodetic::new(30.27, -97.74, 0.15)),
            Terminal::new(3, "Berlin", Geodetic::new(52.52, 13.40, 0.03)),
        ];
        let seed = 3;
        let mut whole = GlobalScheduler::new(SchedulerPolicy::default(), pop.clone(), seed);

        for split in [1usize, 2, 3] {
            let (left, right) = pop.split_at(split);
            let mut a = GlobalScheduler::new(SchedulerPolicy::default(), left.to_vec(), seed);
            let mut b = GlobalScheduler::new(SchedulerPolicy::default(), right.to_vec(), seed);
            let mut whole_run = GlobalScheduler::new(SchedulerPolicy::default(), pop.clone(), seed);
            for k in 0..6 {
                let t = at().plus_seconds(15.0 * k as f64);
                let mut merged = a.allocate(&c, t);
                merged.extend(b.allocate(&c, t));
                let mono = whole_run.allocate(&c, t);
                assert_eq!(merged.len(), mono.len());
                for (x, y) in merged.iter().zip(&mono) {
                    assert_eq!(x.terminal_id, y.terminal_id, "split {split} slot {k}");
                    assert_eq!(x.chosen_id(), y.chosen_id(), "split {split} slot {k}");
                    assert_eq!(x.eligible_ids, y.eligible_ids, "split {split} slot {k}");
                }
            }
        }

        // And the monolith agrees with itself across runs (sanity).
        let again = whole.allocate(&c, at());
        let mut fresh = GlobalScheduler::new(SchedulerPolicy::default(), pop, seed);
        let fresh_run = fresh.allocate(&c, at());
        for (x, y) in again.iter().zip(&fresh_run) {
            assert_eq!(x.chosen_id(), y.chosen_id());
        }
    }

    #[test]
    fn terminal_stream_is_independent_of_coscheduled_terminals() {
        // Dropping every other terminal must not change a terminal's
        // allocation sequence.
        let c = constellation();
        let seed = 9;
        let solo = vec![Terminal::new(1, "Ithaca", Geodetic::new(42.44, -76.50, 0.3))
            .with_mask(SkyMask::ithaca_trees())];
        let mut alone = GlobalScheduler::new(SchedulerPolicy::default(), solo, seed);
        let mut crowd = GlobalScheduler::new(SchedulerPolicy::default(), terminals(), seed);
        for k in 0..8 {
            let t = at().plus_seconds(15.0 * k as f64);
            let a = alone.allocate(&c, t);
            let b = crowd.allocate(&c, t);
            let b_ithaca =
                b.iter().find(|x| x.terminal_id == 1).expect("Ithaca allocated every slot");
            assert_eq!(a[0].chosen_id(), b_ithaca.chosen_id(), "slot {k}");
            assert_eq!(a[0].eligible_ids, b_ithaca.eligible_ids, "slot {k}");
        }
    }

    #[test]
    fn exported_state_resumes_allocation_stream_bit_identically() {
        // Run 5 slots, export, restore into a *fresh* scheduler, then both
        // continue 6 more slots: the fresh scheduler must emit exactly the
        // allocations the original does, hysteresis and RNG included.
        let c = constellation();
        let mut live = GlobalScheduler::new(SchedulerPolicy::default(), cohort_terminals(), 3);
        for k in 0..5 {
            live.allocate(&c, at().plus_seconds(15.0 * k as f64));
        }
        let states = live.export_states();
        assert_eq!(states.len(), cohort_terminals().len());

        let mut resumed = GlobalScheduler::new(SchedulerPolicy::default(), cohort_terminals(), 3);
        resumed.restore_states(&states).expect("states match terminals");
        for k in 5..11 {
            let t = at().plus_seconds(15.0 * k as f64);
            let a = live.allocate(&c, t);
            let b = resumed.allocate(&c, t);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.terminal_id, y.terminal_id, "slot {k}");
                assert_eq!(x.chosen_id(), y.chosen_id(), "slot {k}");
                assert_eq!(x.eligible_ids, y.eligible_ids, "slot {k}");
            }
        }
        // And the restored streams stay aligned: a second export agrees.
        assert_eq!(live.export_states(), resumed.export_states());
    }

    #[test]
    fn restore_rejects_mismatched_states() {
        let mut g = GlobalScheduler::new(SchedulerPolicy::default(), terminals(), 3);
        let states = g.export_states();
        assert_eq!(
            g.restore_states(&states[..1]),
            Err(StateRestoreError::CountMismatch { expected: 2, got: 1 })
        );
        let mut wrong = states.clone();
        wrong[1].terminal_id = 99;
        assert_eq!(
            g.restore_states(&wrong),
            Err(StateRestoreError::IdMismatch { index: 1, expected: 1, got: 99 })
        );
        // A failed restore leaves the scheduler usable (state unchanged).
        assert_eq!(g.export_states(), states);
    }

    #[test]
    fn sub_scheduler_restores_slice_of_whole_population_export() {
        // A shard scheduler over terminals [2..4] resumes from the
        // matching slice of a whole-population export.
        let c = constellation();
        let pop = vec![
            Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2)),
            Terminal::new(1, "Ithaca", Geodetic::new(42.44, -76.50, 0.3)),
            Terminal::new(2, "Austin", Geodetic::new(30.27, -97.74, 0.15)),
            Terminal::new(3, "Berlin", Geodetic::new(52.52, 13.40, 0.03)),
        ];
        let mut whole = GlobalScheduler::new(SchedulerPolicy::default(), pop.clone(), 7);
        for k in 0..4 {
            whole.allocate(&c, at().plus_seconds(15.0 * k as f64));
        }
        let states = whole.export_states();
        let mut shard = GlobalScheduler::new(SchedulerPolicy::default(), pop[2..].to_vec(), 7);
        shard.restore_states(&states[2..]).expect("slice matches shard terminals");
        for k in 4..8 {
            let t = at().plus_seconds(15.0 * k as f64);
            let mono = whole.allocate(&c, t);
            let part = shard.allocate(&c, t);
            for (x, y) in mono[2..].iter().zip(&part) {
                assert_eq!(x.terminal_id, y.terminal_id, "slot {k}");
                assert_eq!(x.chosen_id(), y.chosen_id(), "slot {k}");
            }
        }
    }

    #[test]
    fn empty_fov_yields_outage() {
        // A terminal whose whole sky is masked can never be assigned.
        let blocked = Terminal::new(0, "Bunker", Geodetic::new(41.66, -91.53, 0.2)).with_mask(
            SkyMask::new(vec![starsense_obstruction::MaskSector {
                az_from_deg: 0.0,
                az_to_deg: 360.0,
                max_blocked_elevation_deg: 90.0,
            }]),
        );
        let c = constellation();
        let mut g = GlobalScheduler::new(SchedulerPolicy::default(), vec![blocked], 3);
        let allocs = g.allocate(&c, at());
        assert!(allocs[0].chosen.is_none());
        assert!(allocs[0].eligible_ids.is_empty());
        assert!(!allocs[0].available.is_empty(), "available ignores the mask");
    }
}
