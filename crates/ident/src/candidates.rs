//! Candidate sky tracks from published TLEs.
//!
//! §4: "we compare the AOEs and Azimuths calculated above to those of all
//! satellites in our terminal's field-of-view – calculated using TLE files
//! ... for the given 15-second slot." The inference side may only touch
//! each satellite's *published* TLE — never the truth elements — exactly
//! like the paper could only touch CelesTrak.

use starsense_astro::frames::{look_angles_teme, Geodetic};
use starsense_astro::time::JulianDate;
use starsense_constellation::{Constellation, PropagationCache};
use starsense_obstruction::PolarSample;
use starsense_scheduler::slots::SLOT_PERIOD_SECONDS;

/// One candidate satellite's predicted sky track over a slot.
#[derive(Debug, Clone)]
pub struct CandidateTrack {
    /// Catalog number.
    pub norad_id: u32,
    /// Predicted (elevation, azimuth) samples across the slot, time order.
    pub samples: Vec<PolarSample>,
}

impl CandidateTrack {
    /// The track projected to Cartesian for DTW, in time order.
    pub fn cartesian(&self) -> Vec<[f64; 2]> {
        self.samples.iter().map(|s| s.to_cartesian()).collect()
    }
}

/// Generates the candidate set for one slot: every satellite whose
/// *published* TLE places it above `min_elevation_deg` at any point during
/// the slot, with its predicted track.
///
/// The paper reports ~40 candidates per slot for the real constellation.
pub fn candidate_tracks(
    constellation: &Constellation,
    observer: Geodetic,
    slot_start: JulianDate,
    min_elevation_deg: f64,
    samples_per_slot: u32,
) -> Vec<CandidateTrack> {
    let n = samples_per_slot.max(2);
    let epochs = sample_epochs(slot_start, n);
    let mut out = Vec::new();
    for sat in constellation.sats() {
        let mut samples = Vec::with_capacity(n as usize);
        let mut any_above = false;
        for &t in &epochs {
            let Some(teme) = sat.published_position(t) else { continue };
            let look = look_angles_teme(observer, teme, t);
            if look.elevation_deg >= min_elevation_deg {
                any_above = true;
            }
            samples.push(PolarSample {
                elevation_deg: look.elevation_deg,
                azimuth_deg: look.azimuth_deg,
            });
        }
        if let Some(track) = finish_track(sat.norad_id, any_above, samples) {
            out.push(track);
        }
    }
    out
}

/// [`candidate_tracks`] reading published-TLE positions through a shared
/// [`PropagationCache`], so the per-epoch propagation of the whole catalog
/// is done once per slot instead of once per terminal. Produces exactly the
/// same candidate set as [`candidate_tracks`] (same epochs, same skip-on-
/// propagation-failure semantics, same in-plot filtering).
pub fn candidate_tracks_through(
    cache: &PropagationCache<'_>,
    observer: Geodetic,
    slot_start: JulianDate,
    min_elevation_deg: f64,
    samples_per_slot: u32,
) -> Vec<CandidateTrack> {
    let n = samples_per_slot.max(2);
    let epochs = sample_epochs(slot_start, n);
    // One catalog-wide lookup per sample epoch; every satellite — and every
    // terminal and worker thread sharing the cache — reads these vectors.
    let per_epoch: Vec<_> = epochs.iter().map(|&t| cache.published_positions(t)).collect();
    let mut out = Vec::new();
    for (si, sat) in cache.constellation().sats().iter().enumerate() {
        let mut samples = Vec::with_capacity(n as usize);
        let mut any_above = false;
        for (positions, &t) in per_epoch.iter().zip(&epochs) {
            let Some(teme) = positions[si] else { continue };
            let look = look_angles_teme(observer, teme, t);
            if look.elevation_deg >= min_elevation_deg {
                any_above = true;
            }
            samples.push(PolarSample {
                elevation_deg: look.elevation_deg,
                azimuth_deg: look.azimuth_deg,
            });
        }
        if let Some(track) = finish_track(sat.norad_id, any_above, samples) {
            out.push(track);
        }
    }
    out
}

/// The two boundary instants of a slot's sample grid — bit-identical to
/// the first and last entries of [`sample_epochs`], which are the only
/// epochs [`crate::TrackCache`] reads as full catalog rows. Campaign
/// engines prepare exactly these into the propagation cache's immutable
/// epoch table so the observation phase never takes a lock for a boundary
/// row.
pub fn slot_boundary_epochs(slot_start: JulianDate, samples_per_slot: u32) -> [JulianDate; 2] {
    let n = samples_per_slot.max(2);
    let epochs = sample_epochs(slot_start, n);
    [epochs[0], epochs[n as usize - 1]]
}

/// The sample instants inside a slot: `n` points spanning the slot period,
/// endpoints included. Every candidate generator (including the
/// [`crate::TrackCache`]) uses this exact expression, so their epochs are
/// bit-identical — a requirement for cache sharing.
pub(crate) fn sample_epochs(slot_start: JulianDate, n: u32) -> Vec<JulianDate> {
    (0..n)
        .map(|k| slot_start.plus_seconds(k as f64 * SLOT_PERIOD_SECONDS / (n - 1) as f64))
        .collect()
}

/// Applies the visibility and in-plot filters shared by all generators.
pub(crate) fn finish_track(
    norad_id: u32,
    any_above: bool,
    samples: Vec<PolarSample>,
) -> Option<CandidateTrack> {
    if !any_above || samples.is_empty() {
        return None;
    }
    // Keep only in-plot samples: the obstruction map never shows anything
    // below the rim, so the comparison track shouldn't include it either.
    let in_plot: Vec<PolarSample> =
        samples.into_iter().filter(|s| s.elevation_deg >= 25.0).collect();
    if in_plot.is_empty() {
        return None;
    }
    Some(CandidateTrack { norad_id, samples: in_plot })
}

#[cfg(test)]
mod tests {
    use super::*;
    use starsense_constellation::ConstellationBuilder;
    use starsense_scheduler::slots::slot_start;

    #[test]
    fn full_constellation_yields_tens_of_candidates() {
        let c = ConstellationBuilder::starlink_gen1().seed(5).build();
        let loc = Geodetic::new(41.66, -91.53, 0.2);
        let start = slot_start(JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 13.0));
        let cands = candidate_tracks(&c, loc, start, 25.0, 16);
        assert!(
            (15..=90).contains(&cands.len()),
            "expected tens of candidates, got {}",
            cands.len()
        );
        for cand in &cands {
            assert!(!cand.samples.is_empty());
            assert!(cand.samples.iter().all(|s| s.elevation_deg >= 25.0));
            assert_eq!(cand.cartesian().len(), cand.samples.len());
        }
    }

    #[test]
    fn candidate_set_contains_the_truth_fov() {
        // Published TLEs are stale but close: the true field of view should
        // be (almost) a subset of the candidate set.
        let c = ConstellationBuilder::starlink_gen1().seed(5).build();
        let loc = Geodetic::new(41.66, -91.53, 0.2);
        let start = slot_start(JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 13.0));
        let cands: std::collections::HashSet<u32> =
            candidate_tracks(&c, loc, start, 25.0, 8).iter().map(|t| t.norad_id).collect();
        let fov = c.field_of_view(loc, start, 30.0); // margin above the 25° cutoff
        let missing = fov.iter().filter(|v| !cands.contains(&v.norad_id)).count();
        assert!(
            missing * 10 <= fov.len(),
            "{missing}/{} true-FOV satellites missing from candidates",
            fov.len()
        );
    }

    #[test]
    fn cached_candidate_tracks_match_direct_generation() {
        let c = ConstellationBuilder::starlink_gen1().seed(5).build();
        let loc = Geodetic::new(41.66, -91.53, 0.2);
        let start = slot_start(JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 13.0));
        let direct = candidate_tracks(&c, loc, start, 25.0, 16);
        let cache = starsense_constellation::PropagationCache::new(&c);
        let cached = candidate_tracks_through(&cache, loc, start, 25.0, 16);
        assert_eq!(direct.len(), cached.len());
        for (a, b) in direct.iter().zip(&cached) {
            assert_eq!(a.norad_id, b.norad_id);
            assert_eq!(a.samples.len(), b.samples.len());
            for (sa, sb) in a.samples.iter().zip(&b.samples) {
                assert_eq!(sa.elevation_deg.to_bits(), sb.elevation_deg.to_bits());
                assert_eq!(sa.azimuth_deg.to_bits(), sb.azimuth_deg.to_bits());
            }
        }
        // A second terminal at a different site reuses the warm epochs.
        let misses_before = cache.stats().misses;
        let _ = candidate_tracks_through(&cache, Geodetic::new(47.6, -122.3, 0.1), start, 25.0, 16);
        assert_eq!(cache.stats().misses, misses_before, "all epochs should be warm");
    }

    #[test]
    fn raising_the_cutoff_shrinks_the_candidate_set() {
        let c = ConstellationBuilder::starlink_gen1().seed(5).build();
        let loc = Geodetic::new(41.66, -91.53, 0.2);
        let start = slot_start(JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 13.0));
        let low = candidate_tracks(&c, loc, start, 25.0, 8).len();
        let high = candidate_tracks(&c, loc, start, 55.0, 8).len();
        assert!(high < low, "low {low} vs high {high}");
    }
}
