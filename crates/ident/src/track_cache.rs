//! Cross-slot candidate-track generation with an exact elevation prefilter.
//!
//! [`crate::candidate_tracks_through`] pays for the whole catalog at every
//! one of a slot's 16 sample epochs — propagation plus look angles — even
//! though the overwhelming majority of satellites are below the horizon
//! the entire slot. [`TrackCache`] removes that waste in two ways, without
//! changing a single bit of the produced candidate set:
//!
//! 1. **Elevation prefilter.** Before any per-epoch work, each satellite's
//!    elevation is checked at just the slot's two boundary epochs. A bound
//!    on how fast a line of sight can swing (§ *Soundness* below) gives a
//!    margin such that a satellite below `min_elevation − margin` at both
//!    boundaries provably stays below `min_elevation` for the whole slot —
//!    so it would fail [`crate::candidates`]' `any_above` filter anyway and
//!    can be discarded with zero interior work. Survivors (typically a few
//!    dozen of hundreds) get their full tracks built exactly as before,
//!    reading interior positions through the propagation cache's sparse
//!    per-(satellite, epoch) memo instead of full catalog rows.
//!
//! 2. **Boundary-row reuse.** Consecutive 15-second slots share a boundary
//!    instant: slot *t*'s last sample epoch is slot *t+1*'s first. The
//!    cache keeps the previous slot's end-boundary looks (keyed by the
//!    epoch's exact bit pattern, so reuse can never be approximate) and
//!    hands them to the next slot's prefilter and track heads for free.
//!
//! # Soundness
//!
//! Let `d(el)` be the smallest possible observer–satellite distance at
//! elevation `el` for a satellite of orbital radius ≥ [`R_FLOOR_KM`]:
//! `d(el) = sqrt(R_s² − R_o² cos²el) − R_o sin el`, which decreases as
//! `el` grows. A unit line-of-sight vector rotates at most `v_rel / d`
//! radians per second, and elevation changes no faster than the line of
//! sight rotates, so while a satellite sits above `min_elevation − margin`
//! its elevation rate is at most `v_max / d(min_elevation − margin)`...
//! but more simply: any sample epoch is within [`HORIZON_S`] seconds of a
//! boundary epoch, and on that interval elevation can change by at most
//! `ω_max × HORIZON_S` where `ω_max = v_max / d_min` uses the smallest
//! distance attainable anywhere at elevations up to the cutoff — which is
//! `d(min_elevation)`, since `d` decreases with elevation. Here `v_max`
//! bounds the relative TEME speed: satellite speed ≤ `sqrt(2μ/r)` for any
//! bound orbit of radius `r ≥ R_FLOOR_KM`, plus the observer's Earth-
//! rotation speed. The radius premise is itself guarded: a satellite is
//! only discarded when its propagated radius at both boundaries is at
//! least [`R_GUARD_KM`], which exceeds the floor by more than the largest
//! radial drift a bound orbit can manage in [`HORIZON_S`] seconds. An
//! extra [`SLACK_DEG`] absorbs the small geodetic-vs-geocentric zenith
//! difference in the look-angle model. Satellites that fail propagation at
//! a boundary are never discarded — they take the exact path.

use crate::candidates::{finish_track, sample_epochs, CandidateTrack};
use starsense_astro::frames::{geodetic_to_ecef, look_angles_teme, Geodetic};
use starsense_astro::time::JulianDate;
use starsense_constellation::{PropagationCache, SparseMemo};
use starsense_obstruction::PolarSample;
use starsense_sgp4::wgs72;

/// Orbital-radius floor (km) used by the velocity and distance bounds:
/// ~120 km altitude, far below anything that completes an orbit.
pub const R_FLOOR_KM: f64 = 6500.0;

/// Minimum propagated boundary radius (km) for the prefilter to apply —
/// the floor plus the largest radial drift (`sqrt(2μ/R_FLOOR) × HORIZON_S`
/// ≈ 85 km) a bound orbit can manage between a boundary and any sample.
pub const R_GUARD_KM: f64 = 6585.0;

/// Maximum time (s) from any sample epoch to the nearer slot boundary:
/// half a 15-second slot, plus slack for float epoch rounding.
pub const HORIZON_S: f64 = 7.6;

/// Extra margin (deg) absorbing the geodetic-vs-geocentric zenith
/// difference (≤ 0.2°) and every other small-model generosity.
pub const SLACK_DEG: f64 = 1.0;

/// Earth rotation rate (rad/s), bounding the observer's TEME speed.
const OMEGA_EARTH_RAD_S: f64 = 7.292_115_9e-5;

/// Work counters for the prefilter, reported by the benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrackCacheStats {
    /// Slots served.
    pub slots: usize,
    /// Satellites discarded by the boundary elevation check, summed over
    /// slots — each saved all of its interior propagation and look work.
    pub prefiltered: usize,
    /// Satellites that took the exact full-track path, summed over slots.
    pub surviving: usize,
    /// Slots whose start-boundary looks were reused from the previous
    /// slot's end boundary (bit-identical epoch).
    pub boundary_rows_reused: usize,
    /// Interior single-satellite lookups answered without propagating
    /// (prepared row, local memo, or shared fallback row).
    pub interior_hits: usize,
    /// Interior single-satellite lookups that propagated one satellite.
    pub interior_propagations: usize,
}

/// One satellite's look angles and orbital radius at a boundary epoch
/// (`None` where the published TLE failed to propagate).
#[derive(Debug, Clone, Copy)]
struct BoundaryLook {
    elevation_deg: f64,
    azimuth_deg: f64,
    radius_km: f64,
}

/// Per-observer candidate-track generator that reuses boundary work across
/// consecutive slots and prefilters never-visible satellites. Produces
/// candidate sets bit-identical to [`crate::candidate_tracks_through`] on
/// the same [`PropagationCache`] (property-tested in this module).
#[derive(Debug)]
pub struct TrackCache<'a, 'c> {
    cache: &'c PropagationCache<'a>,
    observer: Geodetic,
    min_elevation_deg: f64,
    samples_per_slot: u32,
    /// Keep every satellite whose boundary elevation reaches this; below
    /// it (at both boundaries, radius guard passing) is provably invisible
    /// all slot.
    discard_below_deg: f64,
    /// The previous slot's end-boundary row, keyed by the epoch's bits.
    last_end: Option<(u64, Vec<Option<BoundaryLook>>)>,
    /// Single-owner interior-position memo: this track cache's sparse
    /// lookups never cross threads and never take a lock, so shard workers
    /// running one `TrackCache` each cannot contend with one another.
    memo: SparseMemo,
    stats: TrackCacheStats,
}

/// The prefilter margin (deg) for an observer and elevation cutoff: how
/// much elevation a satellite could possibly gain between a boundary and a
/// sample epoch, per the module-level soundness argument.
pub fn prefilter_margin_deg(observer: Geodetic, min_elevation_deg: f64) -> f64 {
    let r_o = geodetic_to_ecef(observer).norm();
    let el = min_elevation_deg.to_radians();
    // Nearest a guarded satellite can be while at the cutoff elevation —
    // the minimum over all elevations up to the cutoff, since distance
    // shrinks as elevation grows.
    let d_min = (R_FLOOR_KM * R_FLOOR_KM - r_o * r_o * el.cos() * el.cos()).sqrt() - r_o * el.sin();
    let v_max = (2.0 * wgs72::MU / R_FLOOR_KM).sqrt() + OMEGA_EARTH_RAD_S * r_o;
    (v_max / d_min * HORIZON_S).to_degrees() + SLACK_DEG
}

impl<'a, 'c> TrackCache<'a, 'c> {
    /// Creates a track cache for one observer over `cache`'s catalog,
    /// matching [`crate::candidate_tracks_through`]'s `min_elevation_deg`
    /// and `samples_per_slot` parameters.
    pub fn new(
        cache: &'c PropagationCache<'a>,
        observer: Geodetic,
        min_elevation_deg: f64,
        samples_per_slot: u32,
    ) -> TrackCache<'a, 'c> {
        let margin = prefilter_margin_deg(observer, min_elevation_deg);
        TrackCache {
            cache,
            observer,
            min_elevation_deg,
            samples_per_slot,
            discard_below_deg: min_elevation_deg - margin,
            last_end: None,
            memo: SparseMemo::new(),
            stats: TrackCacheStats::default(),
        }
    }

    /// The shared propagation cache this generator reads through.
    pub fn propagation_cache(&self) -> &'c PropagationCache<'a> {
        self.cache
    }

    /// Work counters accumulated since construction.
    pub fn stats(&self) -> TrackCacheStats {
        let mut s = self.stats;
        s.interior_hits = self.memo.hits();
        s.interior_propagations = self.memo.misses();
        s
    }

    /// Candidate set for the slot starting at `slot_start` — bit-identical
    /// to `candidate_tracks_through(cache, observer, slot_start, ...)`.
    pub fn candidate_tracks(&mut self, slot_start: JulianDate) -> Vec<CandidateTrack> {
        let n = self.samples_per_slot.max(2) as usize;
        let epochs = sample_epochs(slot_start, n as u32);
        let first = epochs[0];
        let last = epochs[n - 1];

        let row0 = match self.last_end.take() {
            Some((bits, row)) if bits == first.0.to_bits() => {
                self.stats.boundary_rows_reused += 1;
                row
            }
            _ => self.boundary_row(first),
        };
        let row1 = self.boundary_row(last);

        let sats = self.cache.constellation().sats();
        let mut out = Vec::new();
        for (si, sat) in sats.iter().enumerate() {
            if let (Some(a), Some(b)) = (&row0[si], &row1[si]) {
                if a.radius_km >= R_GUARD_KM
                    && b.radius_km >= R_GUARD_KM
                    && a.elevation_deg.max(b.elevation_deg) < self.discard_below_deg
                {
                    // Provably below `min_elevation_deg` at every sample
                    // epoch: `any_above` would be false, the track `None`.
                    self.stats.prefiltered += 1;
                    continue;
                }
            }
            self.stats.surviving += 1;
            let mut samples = Vec::with_capacity(n);
            let mut any_above = false;
            for (k, &t) in epochs.iter().enumerate() {
                // Boundary looks were already computed for the prefilter;
                // interior epochs go through this cache's own sparse memo
                // (lock-free; prepared epochs answer from the shared
                // immutable table) so discarded satellites never get
                // propagated there.
                let (elevation_deg, azimuth_deg) = if k == 0 || k == n - 1 {
                    let row = if k == 0 { &row0 } else { &row1 };
                    let Some(look) = row[si] else { continue };
                    (look.elevation_deg, look.azimuth_deg)
                } else {
                    let Some(teme) = self.memo.published_position_of(self.cache, si, t) else {
                        continue;
                    };
                    let look = look_angles_teme(self.observer, teme, t);
                    (look.elevation_deg, look.azimuth_deg)
                };
                if elevation_deg >= self.min_elevation_deg {
                    any_above = true;
                }
                samples.push(PolarSample { elevation_deg, azimuth_deg });
            }
            if let Some(track) = finish_track(sat.norad_id, any_above, samples) {
                out.push(track);
            }
        }

        self.stats.slots += 1;
        self.last_end = Some((last.0.to_bits(), row1));
        out
    }

    /// Looks and radii of the full catalog at a boundary epoch, read
    /// through the shared full-row position cache (boundary epochs are
    /// sample epochs, so the rows are shared with every other consumer).
    fn boundary_row(&self, at: JulianDate) -> Vec<Option<BoundaryLook>> {
        let positions = self.cache.published_positions(at);
        positions
            .iter()
            .map(|pos| {
                pos.map(|teme| {
                    let look = look_angles_teme(self.observer, teme, at);
                    BoundaryLook {
                        elevation_deg: look.elevation_deg,
                        azimuth_deg: look.azimuth_deg,
                        radius_km: teme.norm(),
                    }
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::candidate_tracks_through;
    use starsense_constellation::ConstellationBuilder;
    use starsense_scheduler::slots::{slot_start, SLOT_PERIOD_SECONDS};

    fn assert_same_tracks(direct: &[CandidateTrack], tracked: &[CandidateTrack]) {
        assert_eq!(direct.len(), tracked.len());
        for (a, b) in direct.iter().zip(tracked) {
            assert_eq!(a.norad_id, b.norad_id);
            assert_eq!(a.samples.len(), b.samples.len());
            for (sa, sb) in a.samples.iter().zip(&b.samples) {
                assert_eq!(sa.elevation_deg.to_bits(), sb.elevation_deg.to_bits());
                assert_eq!(sa.azimuth_deg.to_bits(), sb.azimuth_deg.to_bits());
            }
        }
    }

    #[test]
    fn margin_is_positive_and_sane() {
        let m = prefilter_margin_deg(Geodetic::new(41.66, -91.53, 0.2), 25.0);
        assert!(m > SLACK_DEG, "margin {m} should exceed the slack alone");
        assert!(m < 45.0, "margin {m} should leave the filter useful");
    }

    #[test]
    fn tracked_candidates_match_direct_over_consecutive_slots() {
        let c = ConstellationBuilder::starlink_gen1().seed(5).build();
        let cache = PropagationCache::new(&c);
        let loc = Geodetic::new(41.66, -91.53, 0.2);
        let mut tracks = TrackCache::new(&cache, loc, 25.0, 16);
        let first = slot_start(JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 13.0));
        for k in 0..8 {
            let start = slot_start(first.plus_seconds(k as f64 * SLOT_PERIOD_SECONDS + 1.0));
            let direct = candidate_tracks_through(&cache, loc, start, 25.0, 16);
            let tracked = tracks.candidate_tracks(start);
            assert_same_tracks(&direct, &tracked);
        }
        let s = tracks.stats();
        assert_eq!(s.slots, 8);
        assert!(s.prefiltered > s.surviving, "prefilter should discard most of the catalog: {s:?}");
        assert!(s.boundary_rows_reused > 0, "consecutive slots should share boundaries: {s:?}");
    }

    #[test]
    fn misaligned_slot_starts_are_still_exact() {
        // The soundness argument only uses the slot's own first/last sample
        // epochs, so a start that is not on the global :12 grid must still
        // reproduce the direct generator bit for bit.
        let c = ConstellationBuilder::starlink_mini().seed(42).build();
        let cache = PropagationCache::new(&c);
        let loc = Geodetic::new(47.6, -122.3, 0.1);
        let mut tracks = TrackCache::new(&cache, loc, 25.0, 16);
        let first = JulianDate::from_ymd_hms(2023, 6, 1, 9, 0, 3.7);
        for k in 0..6 {
            let start = first.plus_seconds(k as f64 * SLOT_PERIOD_SECONDS);
            let direct = candidate_tracks_through(&cache, loc, start, 25.0, 16);
            let tracked = tracks.candidate_tracks(start);
            assert_same_tracks(&direct, &tracked);
        }
    }

    #[test]
    fn sweeping_observers_and_cutoffs_stays_exact() {
        // A small property sweep: several sites and elevation cutoffs, a
        // couple of slots each, all bit-identical to the direct path.
        let c = ConstellationBuilder::starlink_mini().seed(7).build();
        let sites = [
            Geodetic::new(41.66, -91.53, 0.2),
            Geodetic::new(-33.9, 18.4, 0.05),
            Geodetic::new(64.1, -21.9, 0.1),
        ];
        let first = slot_start(JulianDate::from_ymd_hms(2023, 6, 2, 3, 0, 13.0));
        for &site in &sites {
            for &cutoff in &[25.0, 40.0] {
                let cache = PropagationCache::new(&c);
                let mut tracks = TrackCache::new(&cache, site, cutoff, 16);
                for k in 0..3 {
                    let start =
                        slot_start(first.plus_seconds(k as f64 * SLOT_PERIOD_SECONDS + 1.0));
                    let direct = candidate_tracks_through(&cache, site, start, cutoff, 16);
                    let tracked = tracks.candidate_tracks(start);
                    assert_same_tracks(&direct, &tracked);
                }
            }
        }
    }

    #[test]
    fn prefilter_avoids_interior_propagation_for_discarded_sats() {
        let c = ConstellationBuilder::starlink_gen1().seed(5).build();
        let cache = PropagationCache::new(&c);
        let loc = Geodetic::new(41.66, -91.53, 0.2);
        let mut tracks = TrackCache::new(&cache, loc, 25.0, 16);
        let start = slot_start(JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 13.0));
        let _ = tracks.candidate_tracks(start);
        // Only the two boundary epochs took full catalog rows; interior
        // epochs propagated survivors alone, through the local memo.
        assert_eq!(cache.stats().published_entries, 2);
        let s = tracks.stats();
        assert!(
            s.interior_propagations < c.len() * 14,
            "interior propagation should cover survivors only: {} of {}",
            s.interior_propagations,
            c.len() * 14
        );
    }
}
