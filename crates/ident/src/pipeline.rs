//! The identification pipeline: XOR → extract → DTW match.

use crate::candidates::{candidate_tracks, CandidateTrack};
use starsense_astro::frames::Geodetic;
use starsense_astro::time::JulianDate;
use starsense_constellation::Constellation;
use starsense_dtw::dtw_distance;
use starsense_obstruction::{extract_trajectory, isolate, ObstructionMap, PolarSample};

/// A successful identification for one slot.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentifiedSat {
    /// The matched satellite.
    pub norad_id: u32,
    /// Its DTW distance to the isolated trajectory.
    pub distance: f64,
    /// The runner-up's distance (∞ with a single candidate). A small gap
    /// between `distance` and `runner_up` marks an ambiguous match.
    pub runner_up: f64,
    /// Number of candidates considered.
    pub n_candidates: usize,
    /// Number of pixels in the isolated trajectory.
    pub trail_pixels: usize,
}

impl IdentifiedSat {
    /// A crude confidence signal in `[0, 1]`: how decisively the winner
    /// beat the runner-up.
    pub fn margin(&self) -> f64 {
        // DTW distances are non-negative, so `<=` covers the exact-zero
        // runner-up without an exact float `==`.
        if !self.runner_up.is_finite() || self.runner_up <= 0.0 {
            return 1.0;
        }
        (1.0 - self.distance / self.runner_up).clamp(0.0, 1.0)
    }
}

/// DTW distance between an isolated trajectory and a candidate track,
/// tried in both directions (a bitmap has no arrow of time) — the smaller
/// of the two alignments.
fn track_distance(isolated: &[[f64; 2]], candidate: &CandidateTrack) -> f64 {
    let cand = candidate.cartesian();
    let forward = dtw_distance(isolated, &cand);
    let mut rev = cand;
    rev.reverse();
    let backward = dtw_distance(isolated, &rev);
    forward.min(backward)
}

/// Identifies the satellite that served the terminal during the slot whose
/// maps are `prev` (end of slot t−1) and `curr` (end of slot t).
///
/// Returns `None` when the XOR leaves no usable trajectory (outage slot,
/// repeated satellite fully overlapping, or a post-reset capture) or when
/// no candidate is in view.
pub fn identify_slot(
    prev: &ObstructionMap,
    curr: &ObstructionMap,
    constellation: &Constellation,
    observer: Geodetic,
    slot_start: JulianDate,
) -> Option<IdentifiedSat> {
    let isolated_map = isolate(prev, curr);
    let trajectory = extract_trajectory(&isolated_map);
    identify_from_trajectory(&trajectory, constellation, observer, slot_start)
}

/// The matching half of the pipeline, for callers that already extracted a
/// trajectory (e.g. the validation harness's ambiguity analyses).
pub fn identify_from_trajectory(
    trajectory: &[PolarSample],
    constellation: &Constellation,
    observer: Geodetic,
    slot_start: JulianDate,
) -> Option<IdentifiedSat> {
    // A couple of pixels carry no directional information; the paper's
    // protocol guarantees fresh trails, so tiny residues are XOR noise.
    if trajectory.len() < 3 {
        return None;
    }
    let isolated: Vec<[f64; 2]> = trajectory.iter().map(|s| s.to_cartesian()).collect();

    let candidates = candidate_tracks(constellation, observer, slot_start, 25.0, 16);
    if candidates.is_empty() {
        return None;
    }

    let mut best: Option<(usize, f64)> = None;
    let mut runner_up = f64::INFINITY;
    for (i, cand) in candidates.iter().enumerate() {
        let d = track_distance(&isolated, cand);
        match best {
            None => best = Some((i, d)),
            Some((_, bd)) if d < bd => {
                runner_up = bd;
                best = Some((i, d));
            }
            Some(_) => {
                if d < runner_up {
                    runner_up = d;
                }
            }
        }
    }

    let (idx, distance) = best?;
    Some(IdentifiedSat {
        norad_id: candidates[idx].norad_id,
        distance,
        runner_up,
        n_candidates: candidates.len(),
        trail_pixels: trajectory.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dish::DishSimulator;
    use starsense_constellation::ConstellationBuilder;
    use starsense_scheduler::slots::{slot_index, slot_start};

    fn setup() -> (Constellation, Geodetic, JulianDate) {
        let c = ConstellationBuilder::starlink_gen1().seed(5).build();
        let loc = Geodetic::new(41.66, -91.53, 0.2);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 13.0);
        (c, loc, slot_start(at))
    }

    #[test]
    fn identifies_the_painted_satellite() {
        let (c, loc, start) = setup();
        // Serve a high-elevation satellite for one slot after an empty map.
        let truth = c.field_of_view(loc, start, 45.0);
        let serving = truth.first().expect("a high satellite").norad_id;

        let mut dish = DishSimulator::new(loc);
        let prev = dish.map().clone();
        let cap = dish.play_slot(&c, slot_index(start), start, Some(serving));

        let id = identify_slot(&prev, &cap.map, &c, loc, start).expect("identification");
        assert_eq!(id.norad_id, serving, "margin {}", id.margin());
        assert!(id.n_candidates > 10);
        assert!(id.distance < id.runner_up);
    }

    #[test]
    fn blank_xor_gives_none() {
        let (c, loc, start) = setup();
        let blank = ObstructionMap::new();
        assert!(identify_slot(&blank, &blank, &c, loc, start).is_none());
    }

    #[test]
    fn identification_works_across_consecutive_slots() {
        let (c, loc, start) = setup();
        let mut dish = DishSimulator::new(loc);

        // Slot 1: one satellite; slot 2: a different one. Identify slot 2
        // from the XOR of the two captures.
        let fov = c.field_of_view(loc, start, 40.0);
        assert!(fov.len() >= 2);
        let cap1 = dish.play_slot(&c, 0, start, Some(fov[0].norad_id));
        let next_start = start.plus_seconds(15.0);
        let cap2 = dish.play_slot(&c, 1, next_start, Some(fov[1].norad_id));

        let id = identify_slot(&cap1.map, &cap2.map, &c, loc, next_start).expect("match");
        assert_eq!(id.norad_id, fov[1].norad_id);
    }

    #[test]
    fn margin_is_unit_interval() {
        let a = IdentifiedSat {
            norad_id: 1,
            distance: 5.0,
            runner_up: 20.0,
            n_candidates: 4,
            trail_pixels: 9,
        };
        assert!((a.margin() - 0.75).abs() < 1e-12);
        let b = IdentifiedSat { runner_up: f64::INFINITY, ..a.clone() };
        assert_eq!(b.margin(), 1.0);
        let c = IdentifiedSat { distance: 30.0, runner_up: 20.0, ..a };
        assert_eq!(c.margin(), 0.0);
    }

    #[test]
    fn tiny_trails_are_rejected() {
        let (c, loc, start) = setup();
        let samples = vec![
            PolarSample { elevation_deg: 50.0, azimuth_deg: 10.0 },
            PolarSample { elevation_deg: 51.0, azimuth_deg: 11.0 },
        ];
        assert!(identify_from_trajectory(&samples, &c, loc, start).is_none());
    }
}
