//! The identification pipeline: XOR → extract → DTW match.
//!
//! The DTW matching stage is a two-stage cascade: a cheap coarse pass on
//! [`starsense_dtw::downsample`]d sequences orders the candidates so the
//! near-certain winner is evaluated first, then the exact early-abandon
//! pass visits them in that order (both track orientations per candidate),
//! skipping any whose O(1) lower bound already exceeds the running
//! runner-up. The cascade is exact — coarse distances only pick the visit
//! order, and the winner, its distance, and the runner-up are bit-identical
//! to the exhaustive scan (see [`starsense_dtw::dtw_distance_early_abandon`]
//! for the argument) — so identification accuracy is untouched while most
//! matrix cells are never evaluated.

use crate::candidates::{candidate_tracks, candidate_tracks_through, CandidateTrack};
use starsense_astro::frames::Geodetic;
use starsense_astro::time::JulianDate;
use starsense_constellation::{Constellation, PropagationCache};
use starsense_dtw::{
    downsample, dtw_distance, dtw_distance_early_abandon, dtw_lower_bound, PruneStats, COARSE_LEN,
};
use starsense_obstruction::{extract_trajectory, isolate, ObstructionMap, PolarSample};

/// Elevation cutoff (deg) for candidate generation: the obstruction plot's
/// rim, below which nothing is ever painted.
pub const MIN_CANDIDATE_ELEVATION_DEG: f64 = 25.0;

/// Sample epochs per 15-second slot for candidate tracks (1 Hz, endpoints
/// included).
pub const CANDIDATE_SAMPLES_PER_SLOT: u32 = 16;

/// A successful identification for one slot.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentifiedSat {
    /// The matched satellite.
    pub norad_id: u32,
    /// Its DTW distance to the isolated trajectory.
    pub distance: f64,
    /// The runner-up's distance (∞ with a single candidate). A small gap
    /// between `distance` and `runner_up` marks an ambiguous match.
    pub runner_up: f64,
    /// Number of candidates considered.
    pub n_candidates: usize,
    /// Number of pixels in the isolated trajectory.
    pub trail_pixels: usize,
}

impl IdentifiedSat {
    /// A crude confidence signal in `[0, 1]`: how decisively the winner
    /// beat the runner-up.
    pub fn margin(&self) -> f64 {
        // DTW distances are non-negative, so `<=` covers the exact-zero
        // runner-up without an exact float `==`.
        if !self.runner_up.is_finite() || self.runner_up <= 0.0 {
            return 1.0;
        }
        (1.0 - self.distance / self.runner_up).clamp(0.0, 1.0)
    }
}

/// Why a slot produced no identification at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoDataReason {
    /// The XOR of consecutive captures left no trail (outage slot, or
    /// the serving satellite's trail fully overlapped an earlier one).
    EmptyTrail,
    /// The trail has fewer than 3 pixels — XOR noise, not a trajectory.
    TinyTrail,
    /// No published-TLE candidate was in view of the terminal.
    NoCandidates,
}

/// A sensible default confidence cutoff for [`IdentVerdict`]: matches
/// whose winner beat the runner-up by less than 5% are ambiguous. The
/// legacy `identify_slot*` entry points use 0.0 (always report the best
/// match), which keeps their behaviour unchanged.
pub const DEFAULT_MIN_MARGIN: f64 = 0.05;

/// Identification outcome for one slot — the graceful-degradation
/// counterpart of `Option<IdentifiedSat>`: instead of forcing the best
/// match, low-confidence matches and empty slots are reported as what
/// they are.
#[derive(Debug, Clone, PartialEq)]
pub enum IdentVerdict {
    /// A match that cleared the confidence threshold.
    Identified {
        /// The winning satellite.
        sat: IdentifiedSat,
        /// The winner's [`IdentifiedSat::margin`], in `[0, 1]`.
        confidence: f64,
    },
    /// A best match exists but its margin fell below the threshold — the
    /// runner-up is close enough that reporting the winner as fact would
    /// be a guess.
    Ambiguous {
        /// The sub-threshold best match (its margin is the evidence).
        best: IdentifiedSat,
    },
    /// There was nothing to match.
    NoData(NoDataReason),
}

impl IdentVerdict {
    /// The best match regardless of confidence, when one exists.
    pub fn best(&self) -> Option<&IdentifiedSat> {
        match self {
            IdentVerdict::Identified { sat, .. } => Some(sat),
            IdentVerdict::Ambiguous { best } => Some(best),
            IdentVerdict::NoData(_) => None,
        }
    }

    /// The match, only if it cleared the threshold.
    pub fn identified(&self) -> Option<&IdentifiedSat> {
        match self {
            IdentVerdict::Identified { sat, .. } => Some(sat),
            _ => None,
        }
    }
}

/// Applies the confidence threshold to a raw match: margins strictly
/// below `min_margin` become [`IdentVerdict::Ambiguous`]. A
/// `min_margin` of 0.0 never rejects (margins are non-negative), which
/// is how the legacy always-best-match entry points are expressed in
/// terms of this function.
pub fn classify_identification(sat: IdentifiedSat, min_margin: f64) -> IdentVerdict {
    let confidence = sat.margin();
    if confidence < min_margin {
        IdentVerdict::Ambiguous { best: sat }
    } else {
        IdentVerdict::Identified { sat, confidence }
    }
}

/// Cascaded, pruned 1-NN over both orientations of every candidate — a
/// track is tried in both directions because a bitmap has no arrow of time,
/// and the smaller of the two alignments counts.
///
/// Stage one runs full DTW on [`downsample`]d copies (≤ [`COARSE_LEN`]
/// points per side) of the query and every candidate; the coarse distances
/// only decide the *visit order* of the exact pass, so they carry no
/// correctness burden — a bad coarse estimate costs cells, never accuracy.
/// Stage two is the exact early-abandon pass, visiting candidates in coarse
/// order so the running runner-up cutoff tightens as early as possible.
///
/// Bit-identical to the exhaustive scan (full DTW in both orientations per
/// candidate, strict `<` update in index order; the tests keep that scan as
/// the oracle): minimal-distance candidates can never be skipped — the
/// lower bound never exceeds the runner-up for them — and every candidate
/// that *is* skipped or abandoned has a true distance strictly above the
/// final runner-up, so neither winner nor runner-up can differ.
fn match_candidates(
    trajectory: &[PolarSample],
    candidates: &[CandidateTrack],
) -> Option<(IdentifiedSat, PruneStats)> {
    if candidates.is_empty() {
        return None;
    }
    let isolated: Vec<[f64; 2]> = trajectory.iter().map(|s| s.to_cartesian()).collect();
    let coarse_query = downsample(&isolated, COARSE_LEN);

    let mut stats = PruneStats::default();
    // Both orientations per candidate, an O(1) lower bound on the cheaper
    // of the two for skipping, and a coarse DTW estimate for ordering;
    // visit cheapest-estimate first (ties by index).
    let mut tracks: Vec<(Vec<[f64; 2]>, Vec<[f64; 2]>)> = Vec::with_capacity(candidates.len());
    let mut order: Vec<(usize, f64, f64)> = Vec::with_capacity(candidates.len());
    for (i, cand) in candidates.iter().enumerate() {
        let fwd = cand.cartesian();
        let mut rev = fwd.clone();
        rev.reverse();
        stats.cells_full += 2 * isolated.len() * fwd.len();
        let lb = dtw_lower_bound(&isolated, &fwd).min(dtw_lower_bound(&isolated, &rev));
        let coarse_fwd = downsample(&fwd, COARSE_LEN);
        let coarse_rev = downsample(&rev, COARSE_LEN);
        stats.coarse_cells += 2 * coarse_query.len() * coarse_fwd.len();
        let coarse =
            dtw_distance(&coarse_query, &coarse_fwd).min(dtw_distance(&coarse_query, &coarse_rev));
        order.push((i, lb, coarse));
        tracks.push((fwd, rev));
    }
    order.sort_by(|x, y| x.2.total_cmp(&y.2).then(x.0.cmp(&y.0)));

    let mut best_index = usize::MAX;
    let mut best = f64::INFINITY;
    let mut runner = f64::INFINITY;
    for &(i, lb, _) in &order {
        if lb > runner {
            // Coarse order is a heuristic, not sorted by bound — skip this
            // candidate but keep scanning the rest.
            stats.pruned += 1;
            continue;
        }
        let (fwd, rev) = &tracks[i];
        // Cut against the runner-up (not the best) so the reported
        // runner-up stays exact; the forward result tightens the backward
        // cutoff further.
        let f = dtw_distance_early_abandon(&isolated, fwd, runner);
        let b = dtw_distance_early_abandon(&isolated, rev, runner.min(f.distance));
        stats.evaluated += 1;
        stats.cells_evaluated += f.cells + b.cells;
        if f.abandoned && b.abandoned {
            // Both orientations provably exceed the runner-up.
            continue;
        }
        let d = f.distance.min(b.distance);
        if d < best || (d == best && i < best_index) {
            runner = best;
            best = d;
            best_index = i;
        } else if d < runner {
            runner = d;
        }
    }

    Some((
        IdentifiedSat {
            norad_id: candidates[best_index].norad_id,
            distance: best,
            runner_up: runner,
            n_candidates: candidates.len(),
            trail_pixels: trajectory.len(),
        },
        stats,
    ))
}

/// Identifies the satellite that served the terminal during the slot whose
/// maps are `prev` (end of slot t−1) and `curr` (end of slot t).
///
/// Returns `None` when the XOR leaves no usable trajectory (outage slot,
/// repeated satellite fully overlapping, or a post-reset capture) or when
/// no candidate is in view.
pub fn identify_slot(
    prev: &ObstructionMap,
    curr: &ObstructionMap,
    constellation: &Constellation,
    observer: Geodetic,
    slot_start: JulianDate,
) -> Option<IdentifiedSat> {
    let isolated_map = isolate(prev, curr);
    let trajectory = extract_trajectory(&isolated_map);
    identify_from_trajectory(&trajectory, constellation, observer, slot_start)
}

/// [`identify_slot`] reading all published-TLE propagation through a shared
/// [`PropagationCache`]: the candidate epochs are propagated once per slot
/// for the whole campaign instead of once per terminal. Results are
/// bit-identical to [`identify_slot`].
pub fn identify_slot_through(
    cache: &PropagationCache<'_>,
    prev: &ObstructionMap,
    curr: &ObstructionMap,
    observer: Geodetic,
    slot_start: JulianDate,
) -> Option<IdentifiedSat> {
    let isolated_map = isolate(prev, curr);
    let trajectory = extract_trajectory(&isolated_map);
    if trajectory.len() < 3 {
        return None;
    }
    let candidates = candidate_tracks_through(
        cache,
        observer,
        slot_start,
        MIN_CANDIDATE_ELEVATION_DEG,
        CANDIDATE_SAMPLES_PER_SLOT,
    );
    match_candidates(&trajectory, &candidates).map(|(id, _)| id)
}

/// [`identify_slot_through`] with candidate generation going through a
/// per-terminal [`crate::TrackCache`]: never-visible satellites are
/// discarded from boundary elevations alone and consecutive slots share
/// boundary work. Results are bit-identical to [`identify_slot`] and
/// [`identify_slot_through`] — the cache's prefilter is exact (see
/// [`crate::track_cache`] for the argument and the property tests).
pub fn identify_slot_tracked(
    tracks: &mut crate::TrackCache<'_, '_>,
    prev: &ObstructionMap,
    curr: &ObstructionMap,
    slot_start: JulianDate,
) -> Option<IdentifiedSat> {
    match verdict_slot_tracked(tracks, prev, curr, slot_start, 0.0) {
        IdentVerdict::Identified { sat, .. } | IdentVerdict::Ambiguous { best: sat } => Some(sat),
        IdentVerdict::NoData(_) => None,
    }
}

/// [`identify_slot_tracked`] with the degradation taxonomy surfaced: the
/// result distinguishes *why* nothing was identified (empty vs. tiny
/// trail, no candidates) and demotes matches whose margin falls below
/// `min_margin` to [`IdentVerdict::Ambiguous`] instead of forcing the
/// best match. With `min_margin = 0.0` the best match is always
/// reported, bit-identical to `identify_slot_tracked`.
pub fn verdict_slot_tracked(
    tracks: &mut crate::TrackCache<'_, '_>,
    prev: &ObstructionMap,
    curr: &ObstructionMap,
    slot_start: JulianDate,
    min_margin: f64,
) -> IdentVerdict {
    let isolated_map = isolate(prev, curr);
    let trajectory = extract_trajectory(&isolated_map);
    if trajectory.is_empty() {
        return IdentVerdict::NoData(NoDataReason::EmptyTrail);
    }
    if trajectory.len() < 3 {
        return IdentVerdict::NoData(NoDataReason::TinyTrail);
    }
    let candidates = tracks.candidate_tracks(slot_start);
    match match_candidates(&trajectory, &candidates) {
        None => IdentVerdict::NoData(NoDataReason::NoCandidates),
        Some((sat, _)) => classify_identification(sat, min_margin),
    }
}

/// The matching half of the pipeline, for callers that already extracted a
/// trajectory (e.g. the validation harness's ambiguity analyses).
pub fn identify_from_trajectory(
    trajectory: &[PolarSample],
    constellation: &Constellation,
    observer: Geodetic,
    slot_start: JulianDate,
) -> Option<IdentifiedSat> {
    identify_from_trajectory_counted(trajectory, constellation, observer, slot_start)
        .map(|(id, _)| id)
}

/// [`identify_from_trajectory`] plus the pruning work counters — how many
/// DTW cells the pruned matcher evaluated versus what an exhaustive scan
/// would have cost. Used by the benches to report pruning effectiveness.
pub fn identify_from_trajectory_counted(
    trajectory: &[PolarSample],
    constellation: &Constellation,
    observer: Geodetic,
    slot_start: JulianDate,
) -> Option<(IdentifiedSat, PruneStats)> {
    // A couple of pixels carry no directional information; the paper's
    // protocol guarantees fresh trails, so tiny residues are XOR noise.
    if trajectory.len() < 3 {
        return None;
    }
    let candidates = candidate_tracks(
        constellation,
        observer,
        slot_start,
        MIN_CANDIDATE_ELEVATION_DEG,
        CANDIDATE_SAMPLES_PER_SLOT,
    );
    match_candidates(trajectory, &candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dish::DishSimulator;
    use starsense_constellation::ConstellationBuilder;
    use starsense_scheduler::slots::{slot_index, slot_start};

    fn setup() -> (Constellation, Geodetic, JulianDate) {
        let c = ConstellationBuilder::starlink_gen1().seed(5).build();
        let loc = Geodetic::new(41.66, -91.53, 0.2);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 13.0);
        (c, loc, slot_start(at))
    }

    #[test]
    fn identifies_the_painted_satellite() {
        let (c, loc, start) = setup();
        // Serve a high-elevation satellite for one slot after an empty map.
        let truth = c.field_of_view(loc, start, 45.0);
        let serving = truth.first().expect("a high satellite").norad_id;

        let mut dish = DishSimulator::new(loc);
        let prev = dish.map().clone();
        let cap = dish.play_slot(&c, slot_index(start), start, Some(serving));

        let id = identify_slot(&prev, &cap.map, &c, loc, start).expect("identification");
        assert_eq!(id.norad_id, serving, "margin {}", id.margin());
        assert!(id.n_candidates > 10);
        assert!(id.distance < id.runner_up);
    }

    #[test]
    fn blank_xor_gives_none() {
        let (c, loc, start) = setup();
        let blank = ObstructionMap::new();
        assert!(identify_slot(&blank, &blank, &c, loc, start).is_none());
    }

    #[test]
    fn identification_works_across_consecutive_slots() {
        let (c, loc, start) = setup();
        let mut dish = DishSimulator::new(loc);

        // Slot 1: one satellite; slot 2: a different one. Identify slot 2
        // from the XOR of the two captures.
        let fov = c.field_of_view(loc, start, 40.0);
        assert!(fov.len() >= 2);
        let cap1 = dish.play_slot(&c, 0, start, Some(fov[0].norad_id));
        let next_start = start.plus_seconds(15.0);
        let cap2 = dish.play_slot(&c, 1, next_start, Some(fov[1].norad_id));

        let id = identify_slot(&cap1.map, &cap2.map, &c, loc, next_start).expect("match");
        assert_eq!(id.norad_id, fov[1].norad_id);
    }

    /// DTW distance of one candidate, both orientations, full matrices —
    /// the pre-pruning per-candidate evaluation, kept as the test oracle.
    fn track_distance(isolated: &[[f64; 2]], candidate: &CandidateTrack) -> f64 {
        let cand = candidate.cartesian();
        let forward = starsense_dtw::dtw_distance(isolated, &cand);
        let mut rev = cand;
        rev.reverse();
        let backward = starsense_dtw::dtw_distance(isolated, &rev);
        forward.min(backward)
    }

    /// Exhaustive reference matcher: the pre-pruning forward scan.
    fn exhaustive_match(
        trajectory: &[PolarSample],
        candidates: &[CandidateTrack],
    ) -> Option<(usize, f64, f64)> {
        let isolated: Vec<[f64; 2]> = trajectory.iter().map(|s| s.to_cartesian()).collect();
        let mut best: Option<(usize, f64)> = None;
        let mut runner_up = f64::INFINITY;
        for (i, cand) in candidates.iter().enumerate() {
            let d = track_distance(&isolated, cand);
            match best {
                None => best = Some((i, d)),
                Some((_, bd)) if d < bd => {
                    runner_up = bd;
                    best = Some((i, d));
                }
                Some(_) => {
                    if d < runner_up {
                        runner_up = d;
                    }
                }
            }
        }
        best.map(|(i, d)| (i, d, runner_up))
    }

    #[test]
    fn pruned_matching_is_bit_identical_to_exhaustive_scan() {
        let (c, loc, start) = setup();
        let truth = c.field_of_view(loc, start, 45.0);
        let serving = truth.first().expect("a high satellite").norad_id;
        let mut dish = DishSimulator::new(loc);
        let prev = dish.map().clone();
        let cap = dish.play_slot(&c, slot_index(start), start, Some(serving));

        let isolated_map = starsense_obstruction::isolate(&prev, &cap.map);
        let trajectory = starsense_obstruction::extract_trajectory(&isolated_map);
        let candidates = candidate_tracks(&c, loc, start, 25.0, 16);
        let (pruned, stats) = match_candidates(&trajectory, &candidates).expect("match");
        let (bi, bd, ru) = exhaustive_match(&trajectory, &candidates).expect("match");

        assert_eq!(pruned.norad_id, candidates[bi].norad_id);
        assert_eq!(pruned.distance.to_bits(), bd.to_bits());
        assert_eq!(pruned.runner_up.to_bits(), ru.to_bits());
        assert!(
            stats.cells_evaluated < stats.cells_full,
            "pruning should skip cells on a real slot: {} of {}",
            stats.cells_evaluated,
            stats.cells_full
        );
    }

    #[test]
    fn identify_slot_through_cache_matches_direct() {
        let (c, loc, start) = setup();
        let truth = c.field_of_view(loc, start, 45.0);
        let serving = truth.first().expect("a high satellite").norad_id;
        let mut dish = DishSimulator::new(loc);
        let prev = dish.map().clone();
        let cap = dish.play_slot(&c, slot_index(start), start, Some(serving));

        let direct = identify_slot(&prev, &cap.map, &c, loc, start).expect("direct");
        let cache = starsense_constellation::PropagationCache::new(&c);
        let cached = identify_slot_through(&cache, &prev, &cap.map, loc, start).expect("cached");
        assert_eq!(direct, cached);
        assert!(cache.stats().published_entries > 0, "candidates must go through the cache");
    }

    #[test]
    fn identify_slot_tracked_matches_through() {
        let (c, loc, start) = setup();
        let mut dish = DishSimulator::new(loc);
        let fov = c.field_of_view(loc, start, 40.0);
        assert!(fov.len() >= 2);

        // Two consecutive identified slots, as the campaign engine replays
        // them; the tracked path must agree slot by slot, field by field.
        let cache = starsense_constellation::PropagationCache::new(&c);
        let mut tracks = crate::TrackCache::new(&cache, loc, 25.0, 16);
        let prev = dish.map().clone();
        let cap1 = dish.play_slot(&c, 0, start, Some(fov[0].norad_id));
        let next = start.plus_seconds(15.0);
        let cap2 = dish.play_slot(&c, 1, next, Some(fov[1].norad_id));

        for (p, m, at) in [(&prev, &cap1.map, start), (&cap1.map, &cap2.map, next)] {
            let through = identify_slot_through(&cache, p, m, loc, at);
            let tracked = identify_slot_tracked(&mut tracks, p, m, at);
            assert_eq!(through, tracked);
        }
        assert!(tracks.stats().prefiltered > 0, "prefilter should do work on real slots");
    }

    #[test]
    fn margin_is_unit_interval() {
        let a = IdentifiedSat {
            norad_id: 1,
            distance: 5.0,
            runner_up: 20.0,
            n_candidates: 4,
            trail_pixels: 9,
        };
        assert!((a.margin() - 0.75).abs() < 1e-12);
        let b = IdentifiedSat { runner_up: f64::INFINITY, ..a.clone() };
        assert_eq!(b.margin(), 1.0);
        let c = IdentifiedSat { distance: 30.0, runner_up: 20.0, ..a };
        assert_eq!(c.margin(), 0.0);
    }

    #[test]
    fn verdict_distinguishes_nodata_reasons_and_thresholds() {
        let (c, loc, start) = setup();
        let truth = c.field_of_view(loc, start, 45.0);
        let serving = truth.first().expect("a high satellite").norad_id;
        let mut dish = DishSimulator::new(loc);
        let prev = dish.map().clone();
        let cap = dish.play_slot(&c, slot_index(start), start, Some(serving));

        let cache = starsense_constellation::PropagationCache::new(&c);
        let mut tracks = crate::TrackCache::new(&cache, loc, 25.0, 16);

        // Blank XOR → EmptyTrail.
        let blank = ObstructionMap::new();
        assert_eq!(
            verdict_slot_tracked(&mut tracks, &blank, &blank, start, 0.0),
            IdentVerdict::NoData(NoDataReason::EmptyTrail)
        );

        // A 2-pixel residue → TinyTrail.
        let mut two = ObstructionMap::new();
        two.set(60, 60, true);
        two.set(61, 60, true);
        assert_eq!(
            verdict_slot_tracked(&mut tracks, &blank, &two, start, 0.0),
            IdentVerdict::NoData(NoDataReason::TinyTrail)
        );

        // min_margin 0.0 reproduces the legacy best match...
        let legacy = identify_slot_tracked(&mut tracks, &prev, &cap.map, start)
            .expect("legacy identification");
        let v = verdict_slot_tracked(&mut tracks, &prev, &cap.map, start, 0.0);
        match &v {
            IdentVerdict::Identified { sat, confidence } => {
                assert_eq!(sat, &legacy);
                assert_eq!(confidence.to_bits(), legacy.margin().to_bits());
            }
            other => panic!("expected Identified, got {other:?}"),
        }
        // ...and an impossible threshold demotes the same match to
        // Ambiguous instead of inventing a different answer.
        let strict = verdict_slot_tracked(&mut tracks, &prev, &cap.map, start, 1.1);
        match strict {
            IdentVerdict::Ambiguous { best } => assert_eq!(best, legacy),
            other => panic!("expected Ambiguous at min_margin 1.1, got {other:?}"),
        }
        assert!(v.best().is_some());
        assert!(v.identified().is_some());
        assert!(IdentVerdict::NoData(NoDataReason::EmptyTrail).best().is_none());
    }

    #[test]
    fn classify_identification_respects_threshold_boundaries() {
        let sat = IdentifiedSat {
            norad_id: 9,
            distance: 5.0,
            runner_up: 20.0, // margin 0.75
            n_candidates: 3,
            trail_pixels: 12,
        };
        assert!(matches!(
            classify_identification(sat.clone(), 0.75),
            IdentVerdict::Identified { .. } // not strictly below threshold
        ));
        assert!(matches!(
            classify_identification(sat.clone(), 0.76),
            IdentVerdict::Ambiguous { .. }
        ));
        assert!(matches!(classify_identification(sat, 0.0), IdentVerdict::Identified { .. }));
    }

    #[test]
    fn tiny_trails_are_rejected() {
        let (c, loc, start) = setup();
        let samples = vec![
            PolarSample { elevation_deg: 50.0, azimuth_deg: 10.0 },
            PolarSample { elevation_deg: 51.0, azimuth_deg: 11.0 },
        ];
        assert!(identify_from_trajectory(&samples, &c, loc, start).is_none());
    }
}
