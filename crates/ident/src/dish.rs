//! The simulated dish: obstruction-map painting and snapshotting.
//!
//! The real dish paints the trajectory of whichever satellite currently
//! serves it. Our simulator does the same from the hidden scheduler's
//! ground-truth allocations — this module is part of the *system under
//! measurement*, not of the inference pipeline, which only ever sees the
//! snapshots.

use starsense_astro::frames::Geodetic;
use starsense_astro::time::JulianDate;
use starsense_constellation::Constellation;
use starsense_faults::{FaultPlan, FaultRng, FrameFault};
use starsense_obstruction::{paint, ObstructionMap, MAP_SIZE};
use starsense_scheduler::slots::SLOT_PERIOD_SECONDS;

/// An obstruction-map snapshot taken at the end of a slot, as
/// `starlink-grpc-tools` would fetch it every 15 seconds.
#[derive(Debug, Clone)]
pub struct SlotCapture {
    /// Global slot index the snapshot closes.
    pub slot: i64,
    /// Slot start time.
    pub slot_start: JulianDate,
    /// The map state after the slot's trajectory was painted.
    pub map: ObstructionMap,
    /// Whether the dish was reset (blank map) immediately before this slot.
    pub after_reset: bool,
}

/// How one obstruction-frame *fetch* resolved (the fault channel of
/// [`DishSimulator::play_slot_faulted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameStatus {
    /// A clean, current bitmap.
    Fresh,
    /// The bitmap as it stood before this slot's trail was painted — a
    /// late gRPC response serving the previous state.
    Stale,
    /// A current bitmap with a burst of flipped pixels.
    Corrupted,
    /// Every fetch attempt (including retries) returned nothing.
    Dropped,
}

/// Result of a fault-aware frame fetch: the capture (absent when every
/// attempt dropped), how the fetch resolved, and how many attempts it
/// took. The dish's own state machine (reset policy, painting) always
/// advances regardless — faults model the telemetry channel, not the
/// dish.
#[derive(Debug, Clone)]
pub struct FrameFetch {
    /// The fetched capture; `None` only when `status` is
    /// [`FrameStatus::Dropped`].
    pub capture: Option<SlotCapture>,
    /// How the fetch resolved.
    pub status: FrameStatus,
    /// Fetch attempts made (1 = first attempt succeeded).
    pub attempts: u32,
}

/// The mutable cross-slot state of a [`DishSimulator`], exported at a
/// slot boundary for checkpointing. The rest of a simulator — location,
/// reset cadence, samples per slot — is configuration the restoring side
/// reconstructs; this triple is everything that evolves as slots play.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DishState {
    /// The accumulated obstruction map.
    pub map: ObstructionMap,
    /// Slots played since the map was last blanked.
    pub slots_since_reset: u32,
    /// Whether a reset is still pending disclosure to the next
    /// successful fetch.
    pub reset_since_fetch: bool,
}

/// Simulates the dish's obstruction-map behaviour for one terminal.
#[derive(Debug, Clone)]
pub struct DishSimulator {
    location: Geodetic,
    map: ObstructionMap,
    /// Reset cadence in slots (paper: every 10 minutes = 40 slots).
    reset_every_slots: u32,
    slots_since_reset: u32,
    /// Samples painted per slot (the dish tracks continuously; ~1 Hz
    /// sampling keeps the Bresenham trail identical to a continuous one).
    samples_per_slot: u32,
    /// Whether the map was blanked since the last *successful* fetch —
    /// dropped frames can hide a reset from the client, and the next
    /// capture it does get must still carry `after_reset` so XOR chains
    /// across the blank are discarded.
    reset_since_fetch: bool,
}

impl DishSimulator {
    /// Creates a dish at `location` with the paper's 10-minute reset policy.
    pub fn new(location: Geodetic) -> DishSimulator {
        DishSimulator {
            location,
            map: ObstructionMap::new(),
            reset_every_slots: 40,
            slots_since_reset: 0,
            samples_per_slot: 16,
            reset_since_fetch: false,
        }
    }

    /// Overrides the reset cadence (0 = never reset, for the 2-day
    /// saturation run of §4.1).
    ///
    /// The cadence counts *played* slots, and the check runs at the
    /// **start** of a slot, before painting: with a cadence of `n`, slots
    /// `0..n` paint onto one accumulating map, and the slot that would be
    /// the `n`-th since the last blank first wipes the map and then
    /// paints — its capture is flagged [`SlotCapture::after_reset`] and
    /// shows only that slot's own trail. The counter restarts at every
    /// blank, whether it came from this policy or from an explicit
    /// [`DishSimulator::reset`] call.
    pub fn with_reset_every_slots(mut self, slots: u32) -> DishSimulator {
        self.reset_every_slots = slots;
        self
    }

    /// The dish's location.
    pub fn location(&self) -> Geodetic {
        self.location
    }

    /// Current map state (what a gRPC fetch would return right now).
    pub fn map(&self) -> &ObstructionMap {
        &self.map
    }

    /// Exports the mutable cross-slot state — the dish half of a campaign
    /// checkpoint.
    pub fn export_state(&self) -> DishState {
        DishState {
            map: self.map.clone(),
            slots_since_reset: self.slots_since_reset,
            reset_since_fetch: self.reset_since_fetch,
        }
    }

    /// Restores state exported by [`DishSimulator::export_state`]: the
    /// restored dish plays subsequent slots bit-identically to the
    /// exporting dish continuing (given the same configuration).
    pub fn restore_state(&mut self, state: DishState) {
        self.map = state.map;
        self.slots_since_reset = state.slots_since_reset;
        self.reset_since_fetch = state.reset_since_fetch;
    }

    /// Forces a terminal reset: blanks the map and restarts the reset
    /// cadence counter, exactly as the periodic policy does. The *next*
    /// capture a client receives after this call carries
    /// [`SlotCapture::after_reset`] `= true` (even if intervening
    /// fetches were dropped), telling the identification pipeline that
    /// an XOR against any earlier capture is meaningless.
    pub fn reset(&mut self) {
        self.map = ObstructionMap::new();
        self.slots_since_reset = 0;
        self.reset_since_fetch = true;
    }

    /// Advances the dish state machine by one slot: applies the reset
    /// policy and paints the serving satellite's true sky track.
    fn advance_slot(
        &mut self,
        constellation: &Constellation,
        slot_start: JulianDate,
        serving: Option<u32>,
    ) {
        if self.reset_every_slots > 0 && self.slots_since_reset >= self.reset_every_slots {
            self.reset();
        }
        self.slots_since_reset += 1;

        if let Some(id) = serving {
            if let Some(sat) = constellation.get(id) {
                let samples = sky_track(sat, self.location, slot_start, self.samples_per_slot);
                paint(&mut self.map, &samples);
            }
        }
    }

    /// Plays one slot: applies the reset policy, paints the serving
    /// satellite's true sky track across the slot, and returns the
    /// end-of-slot snapshot.
    ///
    /// `serving` is the ground-truth allocation for this slot (`None` =
    /// outage, nothing painted).
    pub fn play_slot(
        &mut self,
        constellation: &Constellation,
        slot: i64,
        slot_start: JulianDate,
        serving: Option<u32>,
    ) -> SlotCapture {
        self.advance_slot(constellation, slot_start, serving);
        let after_reset = self.reset_since_fetch;
        self.reset_since_fetch = false;
        SlotCapture { slot, slot_start, map: self.map.clone(), after_reset }
    }

    /// [`DishSimulator::play_slot`] with a fault-injected fetch channel.
    ///
    /// The dish state machine advances exactly as in `play_slot` — resets
    /// and painting are unaffected by telemetry faults — but the
    /// *snapshot fetch* consults `plan` (keyed by `terminal`, `slot`, and
    /// the attempt number, so the schedule is reproducible and
    /// thread-order independent):
    ///
    /// - **Dropped** attempts are retried up to `max_retries` times; if
    ///   all attempts drop, the result carries no capture and any reset
    ///   stays pending for the next successful fetch.
    /// - A **stale** fetch returns the map as it stood before this slot's
    ///   trail was painted (a late response).
    /// - A **corrupted** fetch returns the current map with a burst of
    ///   deterministically flipped pixels; the dish's own map is *not*
    ///   modified.
    ///
    /// With a fault-free plan this is bit-identical to `play_slot` (one
    /// attempt, `Fresh`, same capture).
    pub fn play_slot_faulted(
        &mut self,
        constellation: &Constellation,
        slot: i64,
        slot_start: JulianDate,
        serving: Option<u32>,
        plan: &FaultPlan,
        terminal: u64,
        max_retries: u32,
    ) -> FrameFetch {
        // Resolve the fetch outcome first (pure in (plan, keys)): the
        // attempt loop stops at the first non-dropped attempt.
        let mut status = FrameStatus::Dropped;
        let mut salt = 0u64;
        let mut attempts = max_retries + 1;
        for attempt in 0..=max_retries {
            match plan.frame_fault(terminal, slot, attempt) {
                FrameFault::Dropped => continue,
                FrameFault::None => status = FrameStatus::Fresh,
                FrameFault::Stale => status = FrameStatus::Stale,
                FrameFault::Corrupt { salt: s } => {
                    status = FrameStatus::Corrupted;
                    salt = s;
                }
            }
            attempts = attempt + 1;
            break;
        }

        // The state machine always advances; a stale fetch needs the
        // post-reset, pre-paint map.
        let will_reset =
            self.reset_every_slots > 0 && self.slots_since_reset >= self.reset_every_slots;
        let pre_paint = if status == FrameStatus::Stale {
            Some(if will_reset { ObstructionMap::new() } else { self.map.clone() })
        } else {
            None
        };
        self.advance_slot(constellation, slot_start, serving);

        let map = match (status, pre_paint) {
            (FrameStatus::Dropped, _) => {
                return FrameFetch { capture: None, status, attempts };
            }
            (FrameStatus::Stale, Some(m)) => m,
            (FrameStatus::Corrupted, _) => {
                let mut m = self.map.clone();
                let mut rng = FaultRng::from_salt(salt);
                let flips = 1 + rng.below(24);
                for _ in 0..flips {
                    let x = rng.below(MAP_SIZE as u64) as usize;
                    let y = rng.below(MAP_SIZE as u64) as usize;
                    m.set(x, y, !m.get(x, y));
                }
                m
            }
            (_, _) => self.map.clone(),
        };
        let after_reset = self.reset_since_fetch;
        self.reset_since_fetch = false;
        FrameFetch {
            capture: Some(SlotCapture { slot, slot_start, map, after_reset }),
            status,
            attempts,
        }
    }
}

/// The true sky track of a satellite over one slot, as (elevation°,
/// azimuth°) samples.
pub fn sky_track(
    sat: &starsense_constellation::Satellite,
    observer: Geodetic,
    slot_start: JulianDate,
    samples: u32,
) -> Vec<(f64, f64)> {
    (0..samples)
        .filter_map(|k| {
            let t = slot_start
                .plus_seconds(k as f64 * SLOT_PERIOD_SECONDS / (samples.max(2) - 1) as f64);
            let teme = sat.true_position(t)?;
            let look = starsense_astro::frames::look_angles_teme(observer, teme, t);
            Some((look.elevation_deg, look.azimuth_deg))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use starsense_constellation::ConstellationBuilder;
    use starsense_scheduler::slots::{slot_index, slot_start};

    fn setup() -> (Constellation, Geodetic, JulianDate) {
        let c = ConstellationBuilder::starlink_gen1().seed(5).build();
        let loc = Geodetic::new(41.66, -91.53, 0.2);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 13.0);
        (c, loc, at)
    }

    fn a_visible_sat(c: &Constellation, loc: Geodetic, at: JulianDate) -> u32 {
        c.field_of_view(loc, at, 40.0).first().expect("some satellite above 40°").norad_id
    }

    #[test]
    fn playing_a_slot_paints_a_trail() {
        let (c, loc, at) = setup();
        let start = slot_start(at);
        let id = a_visible_sat(&c, loc, start);
        let mut dish = DishSimulator::new(loc);
        let cap = dish.play_slot(&c, slot_index(at), start, Some(id));
        assert!(cap.map.count_set() >= 3, "trail has {} pixels", cap.map.count_set());
        assert!(!cap.after_reset);
    }

    #[test]
    fn outage_slot_paints_nothing() {
        let (c, loc, at) = setup();
        let mut dish = DishSimulator::new(loc);
        let cap = dish.play_slot(&c, slot_index(at), slot_start(at), None);
        assert_eq!(cap.map.count_set(), 0);
    }

    #[test]
    fn map_accumulates_across_slots() {
        let (c, loc, at) = setup();
        let start = slot_start(at);
        let mut dish = DishSimulator::new(loc);
        let fov = c.field_of_view(loc, start, 40.0);
        let cap1 = dish.play_slot(&c, 0, start, Some(fov[0].norad_id));
        let n1 = cap1.map.count_set();
        let cap2 =
            dish.play_slot(&c, 1, start.plus_seconds(15.0), Some(fov[1 % fov.len()].norad_id));
        assert!(cap2.map.count_set() >= n1, "map must be cumulative");
    }

    #[test]
    fn reset_policy_blanks_the_map() {
        let (c, loc, at) = setup();
        let start = slot_start(at);
        let id = a_visible_sat(&c, loc, start);
        let mut dish = DishSimulator::new(loc).with_reset_every_slots(2);
        dish.play_slot(&c, 0, start, Some(id));
        dish.play_slot(&c, 1, start.plus_seconds(15.0), Some(id));
        // Third slot triggers the reset.
        let cap = dish.play_slot(&c, 2, start.plus_seconds(30.0), Some(id));
        assert!(cap.after_reset);
    }

    #[test]
    fn zero_reset_cadence_never_resets() {
        let (c, loc, at) = setup();
        let start = slot_start(at);
        let id = a_visible_sat(&c, loc, start);
        let mut dish = DishSimulator::new(loc).with_reset_every_slots(0);
        for k in 0..100 {
            let cap = dish.play_slot(&c, k, start.plus_seconds(15.0 * k as f64), Some(id));
            assert!(!cap.after_reset);
        }
    }

    use starsense_faults::FaultRates;

    fn frame_plan(drop: f64, stale: f64, corrupt: f64) -> FaultPlan {
        FaultPlan::new(
            7,
            FaultRates {
                frame_drop: drop,
                frame_stale: stale,
                frame_corrupt: corrupt,
                ..FaultRates::none()
            },
        )
    }

    #[test]
    fn fault_free_faulted_play_matches_play_slot_exactly() {
        let (c, loc, at) = setup();
        let start = slot_start(at);
        let id = a_visible_sat(&c, loc, start);
        let mut plain = DishSimulator::new(loc).with_reset_every_slots(3);
        let mut faulted = DishSimulator::new(loc).with_reset_every_slots(3);
        let plan = FaultPlan::none();
        for k in 0..8 {
            let t = start.plus_seconds(15.0 * k as f64);
            let serving = if k % 4 == 3 { None } else { Some(id) };
            let a = plain.play_slot(&c, k, t, serving);
            let b = faulted.play_slot_faulted(&c, k, t, serving, &plan, 0, 2);
            assert_eq!(b.status, FrameStatus::Fresh);
            assert_eq!(b.attempts, 1);
            let cap = b.capture.expect("fresh fetch has a capture");
            assert_eq!(a.map, cap.map);
            assert_eq!(a.after_reset, cap.after_reset);
            assert_eq!(a.slot, cap.slot);
        }
    }

    #[test]
    fn dropped_frames_exhaust_retries_and_return_no_capture() {
        let (c, loc, at) = setup();
        let start = slot_start(at);
        let id = a_visible_sat(&c, loc, start);
        let mut dish = DishSimulator::new(loc);
        let fetch =
            dish.play_slot_faulted(&c, 0, start, Some(id), &frame_plan(1.0, 0.0, 0.0), 0, 2);
        assert_eq!(fetch.status, FrameStatus::Dropped);
        assert_eq!(fetch.attempts, 3);
        assert!(fetch.capture.is_none());
        // The dish still painted: a later clean fetch shows the trail.
        let next =
            dish.play_slot_faulted(&c, 1, start.plus_seconds(15.0), None, &FaultPlan::none(), 0, 0);
        let cap = next.capture.expect("clean fetch");
        assert!(cap.map.count_set() >= 3, "dropped-slot trail must persist in the map");
    }

    #[test]
    fn stale_frames_return_the_pre_paint_map() {
        let (c, loc, at) = setup();
        let start = slot_start(at);
        let id = a_visible_sat(&c, loc, start);
        let mut dish = DishSimulator::new(loc);
        let first = dish
            .play_slot_faulted(&c, 0, start, Some(id), &FaultPlan::none(), 0, 0)
            .capture
            .expect("clean fetch");
        // Slot 1 serves again but the fetch is stale: the capture must
        // equal slot 0's end-of-slot map, not include slot 1's trail.
        let stale = dish.play_slot_faulted(
            &c,
            1,
            start.plus_seconds(15.0),
            Some(id),
            &frame_plan(0.0, 1.0, 0.0),
            0,
            0,
        );
        assert_eq!(stale.status, FrameStatus::Stale);
        let cap = stale.capture.expect("stale fetch still returns a bitmap");
        assert_eq!(cap.map, first.map);
        assert!(dish.map().count_set() >= cap.map.count_set());
    }

    #[test]
    fn corrupted_frames_flip_pixels_without_touching_the_dish() {
        let (c, loc, at) = setup();
        let start = slot_start(at);
        let id = a_visible_sat(&c, loc, start);
        let mut dish = DishSimulator::new(loc);
        let fetch =
            dish.play_slot_faulted(&c, 0, start, Some(id), &frame_plan(0.0, 0.0, 1.0), 3, 0);
        assert_eq!(fetch.status, FrameStatus::Corrupted);
        let cap = fetch.capture.expect("corrupted fetch returns a bitmap");
        assert_ne!(&cap.map, dish.map(), "corruption must alter the returned copy");
        // Corruption is deterministic: replaying the same dish and plan
        // reproduces the identical corrupted bitmap.
        let mut dish2 = DishSimulator::new(loc);
        let fetch2 =
            dish2.play_slot_faulted(&c, 0, start, Some(id), &frame_plan(0.0, 0.0, 1.0), 3, 0);
        assert_eq!(cap.map, fetch2.capture.expect("same plan").map);
    }

    #[test]
    fn reset_during_dropped_frames_reaches_the_next_successful_fetch() {
        let (c, loc, at) = setup();
        let start = slot_start(at);
        let id = a_visible_sat(&c, loc, start);
        // Reset cadence 2: slot 2 blanks the map. Drop exactly that
        // slot's fetch; the *next* successful capture must still carry
        // `after_reset` so XOR chains across the blank are discarded.
        let mut dish = DishSimulator::new(loc).with_reset_every_slots(2);
        let none = FaultPlan::none();
        let drop_all = frame_plan(1.0, 0.0, 0.0);
        for k in 0..2 {
            let f = dish.play_slot_faulted(
                &c,
                k,
                start.plus_seconds(15.0 * k as f64),
                Some(id),
                &none,
                0,
                0,
            );
            assert!(!f.capture.expect("clean").after_reset);
        }
        let dropped =
            dish.play_slot_faulted(&c, 2, start.plus_seconds(30.0), Some(id), &drop_all, 0, 0);
        assert_eq!(dropped.status, FrameStatus::Dropped);
        let after = dish.play_slot_faulted(&c, 3, start.plus_seconds(45.0), Some(id), &none, 0, 0);
        let cap = after.capture.expect("clean fetch after the blackout");
        assert!(
            cap.after_reset,
            "the reset hidden behind the dropped frame must surface in the next capture"
        );
        // And an explicit reset behaves the same way.
        dish.reset();
        let next = dish.play_slot_faulted(&c, 4, start.plus_seconds(60.0), Some(id), &none, 0, 0);
        assert!(next.capture.expect("clean").after_reset);
    }

    #[test]
    fn exported_state_resumes_dish_bit_identically() {
        // Play 5 slots (crossing a reset), export, restore into a fresh
        // dish, and play 6 more on both: captures must match exactly,
        // including the pending-reset disclosure bit.
        let (c, loc, at) = setup();
        let start = slot_start(at);
        let id = a_visible_sat(&c, loc, start);
        let mut live = DishSimulator::new(loc).with_reset_every_slots(3);
        for k in 0..5 {
            live.play_slot(&c, k, start.plus_seconds(15.0 * k as f64), Some(id));
        }
        live.reset(); // leave a reset pending across the checkpoint
        let state = live.export_state();

        let mut resumed = DishSimulator::new(loc).with_reset_every_slots(3);
        resumed.restore_state(state.clone());
        assert_eq!(resumed.export_state(), state);
        for k in 5..11 {
            let t = start.plus_seconds(15.0 * k as f64);
            let serving = if k % 4 == 3 { None } else { Some(id) };
            let a = live.play_slot(&c, k, t, serving);
            let b = resumed.play_slot(&c, k, t, serving);
            assert_eq!(a.map, b.map, "slot {k}");
            assert_eq!(a.after_reset, b.after_reset, "slot {k}");
            assert_eq!(a.slot, b.slot);
        }
        assert_eq!(live.export_state(), resumed.export_state());
    }

    #[test]
    fn sky_track_stays_in_valid_ranges() {
        let (c, loc, at) = setup();
        let start = slot_start(at);
        let id = a_visible_sat(&c, loc, start);
        let sat = c.get(id).unwrap();
        let track = sky_track(sat, loc, start, 16);
        assert_eq!(track.len(), 16);
        for (el, az) in track {
            assert!((-90.0..=90.0).contains(&el));
            assert!((0.0..360.0).contains(&az));
        }
    }
}
