//! The simulated dish: obstruction-map painting and snapshotting.
//!
//! The real dish paints the trajectory of whichever satellite currently
//! serves it. Our simulator does the same from the hidden scheduler's
//! ground-truth allocations — this module is part of the *system under
//! measurement*, not of the inference pipeline, which only ever sees the
//! snapshots.

use starsense_astro::frames::Geodetic;
use starsense_astro::time::JulianDate;
use starsense_constellation::Constellation;
use starsense_obstruction::{paint, ObstructionMap};
use starsense_scheduler::slots::SLOT_PERIOD_SECONDS;

/// An obstruction-map snapshot taken at the end of a slot, as
/// `starlink-grpc-tools` would fetch it every 15 seconds.
#[derive(Debug, Clone)]
pub struct SlotCapture {
    /// Global slot index the snapshot closes.
    pub slot: i64,
    /// Slot start time.
    pub slot_start: JulianDate,
    /// The map state after the slot's trajectory was painted.
    pub map: ObstructionMap,
    /// Whether the dish was reset (blank map) immediately before this slot.
    pub after_reset: bool,
}

/// Simulates the dish's obstruction-map behaviour for one terminal.
#[derive(Debug, Clone)]
pub struct DishSimulator {
    location: Geodetic,
    map: ObstructionMap,
    /// Reset cadence in slots (paper: every 10 minutes = 40 slots).
    reset_every_slots: u32,
    slots_since_reset: u32,
    /// Samples painted per slot (the dish tracks continuously; ~1 Hz
    /// sampling keeps the Bresenham trail identical to a continuous one).
    samples_per_slot: u32,
}

impl DishSimulator {
    /// Creates a dish at `location` with the paper's 10-minute reset policy.
    pub fn new(location: Geodetic) -> DishSimulator {
        DishSimulator {
            location,
            map: ObstructionMap::new(),
            reset_every_slots: 40,
            slots_since_reset: 0,
            samples_per_slot: 16,
        }
    }

    /// Overrides the reset cadence (0 = never reset, for the 2-day
    /// saturation run of §4.1).
    pub fn with_reset_every_slots(mut self, slots: u32) -> DishSimulator {
        self.reset_every_slots = slots;
        self
    }

    /// The dish's location.
    pub fn location(&self) -> Geodetic {
        self.location
    }

    /// Current map state (what a gRPC fetch would return right now).
    pub fn map(&self) -> &ObstructionMap {
        &self.map
    }

    /// Forces a terminal reset (blank map).
    pub fn reset(&mut self) {
        self.map = ObstructionMap::new();
        self.slots_since_reset = 0;
    }

    /// Plays one slot: applies the reset policy, paints the serving
    /// satellite's true sky track across the slot, and returns the
    /// end-of-slot snapshot.
    ///
    /// `serving` is the ground-truth allocation for this slot (`None` =
    /// outage, nothing painted).
    pub fn play_slot(
        &mut self,
        constellation: &Constellation,
        slot: i64,
        slot_start: JulianDate,
        serving: Option<u32>,
    ) -> SlotCapture {
        let mut after_reset = false;
        if self.reset_every_slots > 0 && self.slots_since_reset >= self.reset_every_slots {
            self.reset();
            after_reset = true;
        }
        self.slots_since_reset += 1;

        if let Some(id) = serving {
            if let Some(sat) = constellation.get(id) {
                let samples = sky_track(sat, self.location, slot_start, self.samples_per_slot);
                paint(&mut self.map, &samples);
            }
        }

        SlotCapture { slot, slot_start, map: self.map.clone(), after_reset }
    }
}

/// The true sky track of a satellite over one slot, as (elevation°,
/// azimuth°) samples.
pub fn sky_track(
    sat: &starsense_constellation::Satellite,
    observer: Geodetic,
    slot_start: JulianDate,
    samples: u32,
) -> Vec<(f64, f64)> {
    (0..samples)
        .filter_map(|k| {
            let t = slot_start
                .plus_seconds(k as f64 * SLOT_PERIOD_SECONDS / (samples.max(2) - 1) as f64);
            let teme = sat.true_position(t)?;
            let look = starsense_astro::frames::look_angles_teme(observer, teme, t);
            Some((look.elevation_deg, look.azimuth_deg))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use starsense_constellation::ConstellationBuilder;
    use starsense_scheduler::slots::{slot_index, slot_start};

    fn setup() -> (Constellation, Geodetic, JulianDate) {
        let c = ConstellationBuilder::starlink_gen1().seed(5).build();
        let loc = Geodetic::new(41.66, -91.53, 0.2);
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 13.0);
        (c, loc, at)
    }

    fn a_visible_sat(c: &Constellation, loc: Geodetic, at: JulianDate) -> u32 {
        c.field_of_view(loc, at, 40.0).first().expect("some satellite above 40°").norad_id
    }

    #[test]
    fn playing_a_slot_paints_a_trail() {
        let (c, loc, at) = setup();
        let start = slot_start(at);
        let id = a_visible_sat(&c, loc, start);
        let mut dish = DishSimulator::new(loc);
        let cap = dish.play_slot(&c, slot_index(at), start, Some(id));
        assert!(cap.map.count_set() >= 3, "trail has {} pixels", cap.map.count_set());
        assert!(!cap.after_reset);
    }

    #[test]
    fn outage_slot_paints_nothing() {
        let (c, loc, at) = setup();
        let mut dish = DishSimulator::new(loc);
        let cap = dish.play_slot(&c, slot_index(at), slot_start(at), None);
        assert_eq!(cap.map.count_set(), 0);
    }

    #[test]
    fn map_accumulates_across_slots() {
        let (c, loc, at) = setup();
        let start = slot_start(at);
        let mut dish = DishSimulator::new(loc);
        let fov = c.field_of_view(loc, start, 40.0);
        let cap1 = dish.play_slot(&c, 0, start, Some(fov[0].norad_id));
        let n1 = cap1.map.count_set();
        let cap2 =
            dish.play_slot(&c, 1, start.plus_seconds(15.0), Some(fov[1 % fov.len()].norad_id));
        assert!(cap2.map.count_set() >= n1, "map must be cumulative");
    }

    #[test]
    fn reset_policy_blanks_the_map() {
        let (c, loc, at) = setup();
        let start = slot_start(at);
        let id = a_visible_sat(&c, loc, start);
        let mut dish = DishSimulator::new(loc).with_reset_every_slots(2);
        dish.play_slot(&c, 0, start, Some(id));
        dish.play_slot(&c, 1, start.plus_seconds(15.0), Some(id));
        // Third slot triggers the reset.
        let cap = dish.play_slot(&c, 2, start.plus_seconds(30.0), Some(id));
        assert!(cap.after_reset);
    }

    #[test]
    fn zero_reset_cadence_never_resets() {
        let (c, loc, at) = setup();
        let start = slot_start(at);
        let id = a_visible_sat(&c, loc, start);
        let mut dish = DishSimulator::new(loc).with_reset_every_slots(0);
        for k in 0..100 {
            let cap = dish.play_slot(&c, k, start.plus_seconds(15.0 * k as f64), Some(id));
            assert!(!cap.after_reset);
        }
    }

    #[test]
    fn sky_track_stays_in_valid_ranges() {
        let (c, loc, at) = setup();
        let start = slot_start(at);
        let id = a_visible_sat(&c, loc, start);
        let sat = c.get(id).unwrap();
        let track = sky_track(sat, loc, start, 16);
        assert_eq!(track.len(), 16);
        for (el, az) in track {
            assert!((-90.0..=90.0).contains(&el));
            assert!((0.0..360.0).contains(&az));
        }
    }
}
