//! End-to-end validation of the identification pipeline.
//!
//! The paper validated its DTW matcher with "a manual (visual) pilot test
//! study of 500 sets of isolated trajectories and polar plots of available
//! satellite trajectories; the DTW similarity method and our manual tests
//! overlapped on over 99% of all outcomes." Against the real network the
//! authors had no ground truth beyond that manual inspection; the
//! reproduction *does* have the hidden scheduler's assignments, so the
//! harness here scores the matcher exactly.

use crate::dish::DishSimulator;
use crate::pipeline::identify_slot;
use starsense_astro::time::JulianDate;
use starsense_constellation::Constellation;
use starsense_scheduler::slots::{slot_start, SLOT_PERIOD_SECONDS};
use starsense_scheduler::GlobalScheduler;

/// Outcome of a validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Slots played against the scheduler.
    pub slots_played: usize,
    /// Slots where identification was attempted (a usable XOR existed and
    /// ground truth had a serving satellite).
    pub attempted: usize,
    /// Attempts where the matched satellite equals the ground truth.
    pub correct: usize,
    /// Attempts where the pipeline returned a match but ground truth says
    /// a *different* satellite served the slot.
    pub wrong: usize,
    /// Slots skipped (outage, post-reset, or empty XOR).
    pub skipped: usize,
    /// Mean decision margin over attempts.
    pub mean_margin: f64,
}

impl ValidationReport {
    /// Identification accuracy over attempted slots.
    pub fn accuracy(&self) -> f64 {
        if self.attempted == 0 {
            return f64::NAN;
        }
        self.correct as f64 / self.attempted as f64
    }
}

/// Replays `slots` consecutive scheduler slots for terminal
/// `terminal_id`, painting the dish map from ground truth and identifying
/// each slot's satellite from the map snapshots alone.
pub fn run_validation(
    constellation: &Constellation,
    scheduler: &mut GlobalScheduler,
    terminal_id: usize,
    from: JulianDate,
    slots: usize,
) -> ValidationReport {
    let location = scheduler.terminals()[terminal_id].location;
    let mut dish = DishSimulator::new(location);
    let mut report = ValidationReport {
        slots_played: 0,
        attempted: 0,
        correct: 0,
        wrong: 0,
        skipped: 0,
        mean_margin: 0.0,
    };
    let mut margin_sum = 0.0;

    // Mid-slot queries: float rounding can never straddle a boundary.
    let first_mid = slot_start(from).plus_seconds(SLOT_PERIOD_SECONDS / 2.0);
    let mut prev_capture: Option<crate::dish::SlotCapture> = None;
    for k in 0..slots {
        let at = first_mid.plus_seconds(k as f64 * SLOT_PERIOD_SECONDS);
        let allocs = scheduler.allocate(constellation, at);
        let truth = allocs[terminal_id].chosen_id();
        let slot = allocs[terminal_id].slot;
        let start = allocs[terminal_id].slot_start;

        let capture = dish.play_slot(constellation, slot, start, truth);
        report.slots_played += 1;

        // A capture straight after a reset has no valid predecessor.
        let usable_prev = if capture.after_reset { None } else { prev_capture.as_ref() };

        match (usable_prev, truth) {
            (Some(prev), Some(truth_id)) => {
                match identify_slot(&prev.map, &capture.map, constellation, location, start) {
                    Some(id) => {
                        report.attempted += 1;
                        margin_sum += id.margin();
                        if id.norad_id == truth_id {
                            report.correct += 1;
                        } else {
                            report.wrong += 1;
                        }
                    }
                    None => report.skipped += 1,
                }
            }
            _ => report.skipped += 1,
        }

        prev_capture = Some(capture);
    }

    report.mean_margin =
        if report.attempted > 0 { margin_sum / report.attempted as f64 } else { f64::NAN };
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use starsense_astro::frames::Geodetic;
    use starsense_constellation::ConstellationBuilder;
    use starsense_scheduler::{SchedulerPolicy, Terminal};

    #[test]
    fn validation_accuracy_is_high() {
        let c = ConstellationBuilder::starlink_gen1().seed(21).build();
        let terminals = vec![Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2))];
        let mut sched = GlobalScheduler::new(SchedulerPolicy::default(), terminals, 21);
        let from = JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0);
        let report = run_validation(&c, &mut sched, 0, from, 60);

        assert_eq!(report.slots_played, 60);
        assert!(report.attempted >= 40, "attempted only {}", report.attempted);
        assert!(
            report.accuracy() >= 0.9,
            "accuracy {:.3} ({} correct / {} attempted, {} wrong)",
            report.accuracy(),
            report.correct,
            report.attempted,
            report.wrong
        );
        assert!(report.mean_margin > 0.2, "mean margin {}", report.mean_margin);
    }

    #[test]
    fn accuracy_of_empty_report_is_nan() {
        let r = ValidationReport {
            slots_played: 0,
            attempted: 0,
            correct: 0,
            wrong: 0,
            skipped: 0,
            mean_margin: f64::NAN,
        };
        assert!(r.accuracy().is_nan());
    }
}
