//! Satellite identification from obstruction maps — the paper's §4.
//!
//! "Our approach involves correlating the publicly known positions of the
//! Starlink satellites with observations of connected satellites recorded
//! \[in\] the obstruction maps of each terminal."
//!
//! The pipeline has four stages, each its own module:
//!
//! 1. [`dish`] — a simulated dish that paints the serving satellite's sky
//!    track onto its obstruction map each slot and snapshots the map every
//!    15 seconds, with the 10-minute reset policy the authors used to keep
//!    trajectories from overlapping;
//! 2. [`candidates`] — for each slot, the set of satellites in the
//!    terminal's field of view according to the *published* (stale, noisy)
//!    TLEs, each with its SGP4-propagated sky track over the slot;
//! 3. [`pipeline`] — XOR isolation of the new trajectory, pixel → polar →
//!    Cartesian conversion, and DTW matching against the candidates (the
//!    candidate with the lowest DTW distance wins);
//! 4. [`validate`] — the end-to-end harness that replays a measurement
//!    campaign against the hidden scheduler and scores identification
//!    accuracy against ground truth, reproducing the paper's 500-sample
//!    pilot validation (>99% agreement).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod candidates;
pub mod dish;
pub mod pipeline;
pub mod track_cache;
pub mod validate;

pub use candidates::{
    candidate_tracks, candidate_tracks_through, slot_boundary_epochs, CandidateTrack,
};
pub use dish::{DishSimulator, DishState, FrameFetch, FrameStatus, SlotCapture};
pub use pipeline::{
    classify_identification, identify_from_trajectory, identify_from_trajectory_counted,
    identify_slot, identify_slot_through, identify_slot_tracked, verdict_slot_tracked,
    IdentVerdict, IdentifiedSat, NoDataReason, CANDIDATE_SAMPLES_PER_SLOT, DEFAULT_MIN_MARGIN,
    MIN_CANDIDATE_ELEVATION_DEG,
};
pub use track_cache::{prefilter_margin_deg, TrackCache, TrackCacheStats};
pub use validate::{run_validation, ValidationReport};
