//! Dynamic time warping (DTW) for trajectory matching.
//!
//! §4.1 of the paper matches the trajectory isolated from an obstruction map
//! against the SGP4-propagated trajectories of every candidate satellite by
//! computing DTW distances (after converting both to Cartesian coordinates)
//! and picking the candidate with the smallest distance.
//!
//! DTW is the right tool there because the two sequences are sampled
//! differently — the obstruction map paints a pixel trail with no timestamps
//! while the candidate tracks are sampled uniformly in time — so a point-wise
//! (lockstep) distance would be meaningless. DTW finds the monotone alignment
//! between the sequences that minimizes total point distance.
//!
//! This crate implements:
//!
//! * [`dtw_distance`] — classic O(n·m) DTW with an O(min(n,m)) rolling row,
//! * [`dtw_distance_banded`] — the Sakoe-Chiba band variant,
//! * [`dtw_path`] — full-matrix DTW that also returns the warping path,
//! * [`NearestSequence`] — a tiny 1-nearest-neighbour classifier over DTW,
//!   which is exactly the matching rule of §4.1.
//!
//! Distances are Euclidean over fixed-size points (`[f64; N]`), covering the
//! 2-D Cartesian sky tracks the paper uses as well as 3-D variants.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Euclidean distance between two `N`-dimensional points.
pub fn euclidean<const N: usize>(a: &[f64; N], b: &[f64; N]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Dynamic time warping distance between two sequences of `N`-dimensional
/// points, with no warping-window constraint.
///
/// Returns `f64::INFINITY` when either sequence is empty (nothing aligns).
/// Memory is O(min-length); time is O(n·m).
pub fn dtw_distance<const N: usize>(a: &[[f64; N]], b: &[[f64; N]]) -> f64 {
    // Keep the shorter sequence as the row to minimize memory.
    let (rows, cols) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if rows.is_empty() || cols.is_empty() {
        return f64::INFINITY;
    }

    let n = rows.len();
    let mut prev = vec![f64::INFINITY; n + 1];
    let mut curr = vec![f64::INFINITY; n + 1];
    prev[0] = 0.0;

    for col in cols {
        curr[0] = f64::INFINITY;
        for (i, row) in rows.iter().enumerate() {
            let cost = euclidean(row, col);
            curr[i + 1] = cost + prev[i + 1].min(curr[i]).min(prev[i]);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[n]
}

/// DTW distance constrained to a Sakoe-Chiba band of half-width `band`
/// (expressed in *fraction of the longer sequence*, so `0.1` allows indices
/// to deviate by 10%).
///
/// A band both speeds the computation up and rejects pathological alignments
/// (e.g. the whole of one trajectory mapping onto a single point of another).
/// Returns `f64::INFINITY` for empty input or a band too narrow to connect
/// the corners.
pub fn dtw_distance_banded<const N: usize>(a: &[[f64; N]], b: &[[f64; N]], band: f64) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    let n = a.len();
    let m = b.len();
    // Minimum feasible half-width: the diagonal slope requires |i·m/n − j|
    // to reach |m − n|; anything smaller can never reach the far corner.
    let w = ((band * n.max(m) as f64).ceil() as i64).max((n as i64 - m as i64).abs());

    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;

    for i in 1..=n {
        curr.fill(f64::INFINITY);
        // Column indices allowed for this row under the band.
        let center = (i as f64 * m as f64 / n as f64).round() as i64;
        let lo = (center - w).max(1) as usize;
        let hi = ((center + w).min(m as i64)) as usize;
        if i == 1 {
            // Ensure the (1,1) cell can see the (0,0) anchor.
            curr[0] = f64::INFINITY;
        }
        for j in lo..=hi {
            let cost = euclidean(&a[i - 1], &b[j - 1]);
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            // The (0,0) anchor lives at prev[0] on the first row.
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// A step of a DTW warping path: indices into the two sequences.
pub type PathStep = (usize, usize);

/// DTW distance plus the optimal warping path, computed with the full
/// O(n·m) matrix. Use for diagnostics and tests; prefer [`dtw_distance`] in
/// hot loops.
pub fn dtw_path<const N: usize>(a: &[[f64; N]], b: &[[f64; N]]) -> (f64, Vec<PathStep>) {
    if a.is_empty() || b.is_empty() {
        return (f64::INFINITY, Vec::new());
    }
    let n = a.len();
    let m = b.len();
    let mut d = vec![f64::INFINITY; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    d[idx(0, 0)] = 0.0;

    for i in 1..=n {
        for j in 1..=m {
            let cost = euclidean(&a[i - 1], &b[j - 1]);
            let best = d[idx(i - 1, j)].min(d[idx(i, j - 1)]).min(d[idx(i - 1, j - 1)]);
            d[idx(i, j)] = cost + best;
        }
    }

    // Backtrack from (n, m).
    let mut path = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        path.push((i - 1, j - 1));
        let diag = d[idx(i - 1, j - 1)];
        let up = d[idx(i - 1, j)];
        let left = d[idx(i, j - 1)];
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    path.reverse();
    (d[idx(n, m)], path)
}

/// Result of a nearest-sequence query.
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    /// Index of the best-matching candidate.
    pub index: usize,
    /// Its DTW distance.
    pub distance: f64,
    /// Distance of the runner-up (`f64::INFINITY` with a single candidate).
    ///
    /// The gap between `distance` and `runner_up` is a practical confidence
    /// signal: the identification pipeline reports matches with a small gap
    /// as ambiguous.
    pub runner_up: f64,
}

/// 1-nearest-neighbour search over candidate sequences by DTW distance —
/// the matching rule of §4.1 ("the available satellite with the lowest DTW
/// distance is chosen as the current serving satellite").
#[derive(Debug, Clone, Default)]
pub struct NearestSequence<const N: usize> {
    candidates: Vec<Vec<[f64; N]>>,
}

impl<const N: usize> NearestSequence<N> {
    /// Creates an empty matcher.
    pub fn new() -> Self {
        NearestSequence { candidates: Vec::new() }
    }

    /// Adds a candidate sequence; returns its index.
    pub fn add(&mut self, seq: Vec<[f64; N]>) -> usize {
        self.candidates.push(seq);
        self.candidates.len() - 1
    }

    /// Number of stored candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True when no candidates are stored.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Finds the candidate with the lowest DTW distance to `query`.
    /// Returns `None` when there are no candidates or the query is empty.
    pub fn best_match(&self, query: &[[f64; N]]) -> Option<Match> {
        if query.is_empty() {
            return None;
        }
        let mut best: Option<Match> = None;
        for (index, cand) in self.candidates.iter().enumerate() {
            let distance = dtw_distance(query, cand);
            best = Some(match best {
                None => Match { index, distance, runner_up: f64::INFINITY },
                Some(b) if distance < b.distance => {
                    Match { index, distance, runner_up: b.distance }
                }
                Some(mut b) => {
                    if distance < b.runner_up {
                        b.runner_up = distance;
                    }
                    b
                }
            });
        }
        best
    }

    /// Ranks all candidates by ascending DTW distance.
    pub fn ranked(&self, query: &[[f64; N]]) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> =
            self.candidates.iter().enumerate().map(|(i, c)| (i, dtw_distance(query, c))).collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq1d(xs: &[f64]) -> Vec<[f64; 1]> {
        xs.iter().map(|&x| [x]).collect()
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let a = seq1d(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(dtw_distance(&a, &a), 0.0);
    }

    #[test]
    fn dtw_absorbs_time_stretch() {
        // Same shape, one sampled twice as densely: lockstep distance would
        // be large, DTW should be exactly zero (every point has an equal).
        let a = seq1d(&[0.0, 1.0, 2.0, 3.0]);
        let b = seq1d(&[0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        assert_eq!(dtw_distance(&a, &b), 0.0);
    }

    #[test]
    fn dtw_is_symmetric() {
        let a = seq1d(&[0.0, 2.0, 4.0, 3.0]);
        let b = seq1d(&[1.0, 2.0, 2.5, 5.0, 3.0]);
        assert_eq!(dtw_distance(&a, &b), dtw_distance(&b, &a));
    }

    #[test]
    fn known_small_example() {
        // D matrix by hand: a=[1,2,3], b=[2,2,2,3,4].
        // Optimal alignment: |1-2| + 0 + 0 + 0(2?)... compute: path cost 1 (1→2)
        // then 2→2 zero (twice), 3→3 zero, 3→4 one ⇒ total 2.
        let a = seq1d(&[1.0, 2.0, 3.0]);
        let b = seq1d(&[2.0, 2.0, 2.0, 3.0, 4.0]);
        assert_eq!(dtw_distance(&a, &b), 2.0);
    }

    #[test]
    fn empty_sequence_gives_infinity() {
        let a = seq1d(&[1.0]);
        let empty: Vec<[f64; 1]> = Vec::new();
        assert_eq!(dtw_distance(&a, &empty), f64::INFINITY);
        assert_eq!(dtw_distance(&empty, &a), f64::INFINITY);
        assert_eq!(dtw_distance_banded(&a, &empty, 0.1), f64::INFINITY);
    }

    #[test]
    fn banded_with_full_band_matches_unbanded() {
        let a = seq1d(&[0.0, 1.5, 3.0, 2.0, 5.0, 4.0]);
        let b = seq1d(&[0.5, 1.0, 2.5, 2.5, 4.5]);
        let full = dtw_distance(&a, &b);
        let banded = dtw_distance_banded(&a, &b, 1.0);
        assert!((full - banded).abs() < 1e-12, "{full} vs {banded}");
    }

    #[test]
    fn banded_distance_upper_bounds_unbanded() {
        let a = seq1d(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let b = seq1d(&[0.0, 0.0, 0.0, 0.0, 4.0, 5.0, 6.0, 7.0]);
        let full = dtw_distance(&a, &b);
        let banded = dtw_distance_banded(&a, &b, 0.125);
        assert!(banded >= full - 1e-12, "banded {banded} < full {full}");
    }

    #[test]
    fn path_connects_corners_and_is_monotone() {
        let a = seq1d(&[1.0, 2.0, 3.0, 2.0]);
        let b = seq1d(&[1.0, 3.0, 2.0]);
        let (dist, path) = dtw_path(&a, &b);
        assert_eq!(path.first(), Some(&(0usize, 0usize)));
        assert_eq!(path.last(), Some(&(3usize, 2usize)));
        for w in path.windows(2) {
            let (i0, j0) = w[0];
            let (i1, j1) = w[1];
            assert!(i1 >= i0 && j1 >= j0, "path must be monotone");
            assert!(i1 - i0 <= 1 && j1 - j0 <= 1, "path must move by single steps");
        }
        assert!((dist - dtw_distance(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn two_dimensional_points_work() {
        let a: Vec<[f64; 2]> = vec![[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]];
        let b: Vec<[f64; 2]> = vec![[0.0, 0.0], [1.0, 1.0], [1.0, 1.0], [2.0, 2.0]];
        assert_eq!(dtw_distance(&a, &b), 0.0);
    }

    #[test]
    fn nearest_sequence_picks_the_closest_track() {
        let mut ns = NearestSequence::<2>::new();
        ns.add(vec![[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]]); // along +x
        ns.add(vec![[0.0, 0.0], [0.0, 1.0], [0.0, 2.0]]); // along +y
        let query = vec![[0.1, 0.0], [1.1, 0.05], [2.0, -0.1]];
        let m = ns.best_match(&query).unwrap();
        assert_eq!(m.index, 0);
        assert!(m.distance < m.runner_up);
    }

    #[test]
    fn nearest_sequence_handles_edge_cases() {
        let ns = NearestSequence::<1>::new();
        assert!(ns.is_empty());
        assert!(ns.best_match(&seq1d(&[1.0])).is_none());

        let mut ns = NearestSequence::<1>::new();
        ns.add(seq1d(&[5.0]));
        assert!(ns.best_match(&[]).is_none());
        let m = ns.best_match(&seq1d(&[5.0])).unwrap();
        assert_eq!(m.runner_up, f64::INFINITY);
    }

    #[test]
    fn ranked_is_sorted_ascending() {
        let mut ns = NearestSequence::<1>::new();
        ns.add(seq1d(&[10.0, 11.0]));
        ns.add(seq1d(&[0.0, 1.0]));
        ns.add(seq1d(&[5.0, 6.0]));
        let r = ns.ranked(&seq1d(&[0.0, 1.0]));
        assert_eq!(r[0].0, 1);
        assert!(r[0].1 <= r[1].1 && r[1].1 <= r[2].1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn dtw_is_nonnegative(
                a in prop::collection::vec(-100.0f64..100.0, 1..20),
                b in prop::collection::vec(-100.0f64..100.0, 1..20),
            ) {
                let a = seq1d(&a);
                let b = seq1d(&b);
                prop_assert!(dtw_distance(&a, &b) >= 0.0);
            }

            #[test]
            fn dtw_symmetry(
                a in prop::collection::vec(-50.0f64..50.0, 1..15),
                b in prop::collection::vec(-50.0f64..50.0, 1..15),
            ) {
                let a = seq1d(&a);
                let b = seq1d(&b);
                prop_assert!((dtw_distance(&a, &b) - dtw_distance(&b, &a)).abs() < 1e-9);
            }

            #[test]
            fn self_distance_is_zero(a in prop::collection::vec(-50.0f64..50.0, 1..15)) {
                let a = seq1d(&a);
                prop_assert_eq!(dtw_distance(&a, &a), 0.0);
            }

            #[test]
            fn dtw_bounded_by_lockstep(
                pairs in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..15),
            ) {
                // DTW minimizes over alignments that include the lockstep
                // diagonal, so it can never exceed the lockstep cost.
                let a: Vec<[f64;1]> = pairs.iter().map(|&(x, _)| [x]).collect();
                let b: Vec<[f64;1]> = pairs.iter().map(|&(_, y)| [y]).collect();
                let lockstep: f64 = pairs.iter().map(|&(x, y)| (x - y).abs()).sum();
                prop_assert!(dtw_distance(&a, &b) <= lockstep + 1e-9);
            }

            #[test]
            fn path_cost_equals_distance(
                a in prop::collection::vec(-20.0f64..20.0, 1..10),
                b in prop::collection::vec(-20.0f64..20.0, 1..10),
            ) {
                let a = seq1d(&a);
                let b = seq1d(&b);
                let (dist, path) = dtw_path(&a, &b);
                let cost: f64 = path.iter().map(|&(i, j)| euclidean(&a[i], &b[j])).sum();
                prop_assert!((cost - dist).abs() < 1e-9);
            }
        }
    }
}
