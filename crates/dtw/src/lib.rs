//! Dynamic time warping (DTW) for trajectory matching.
//!
//! §4.1 of the paper matches the trajectory isolated from an obstruction map
//! against the SGP4-propagated trajectories of every candidate satellite by
//! computing DTW distances (after converting both to Cartesian coordinates)
//! and picking the candidate with the smallest distance.
//!
//! DTW is the right tool there because the two sequences are sampled
//! differently — the obstruction map paints a pixel trail with no timestamps
//! while the candidate tracks are sampled uniformly in time — so a point-wise
//! (lockstep) distance would be meaningless. DTW finds the monotone alignment
//! between the sequences that minimizes total point distance.
//!
//! This crate implements:
//!
//! * [`dtw_distance`] — classic O(n·m) DTW with an O(min(n,m)) rolling row,
//! * [`dtw_distance_banded`] — the Sakoe-Chiba band variant,
//! * [`dtw_distance_early_abandon`] — DTW that gives up as soon as every
//!   alignment provably exceeds a cutoff (the 1-NN pruning workhorse),
//! * [`dtw_lower_bound`] — an O(1) endpoint lower bound used to order and
//!   prune candidates before any matrix work,
//! * [`dtw_path`] — full-matrix DTW that also returns the warping path,
//! * [`downsample`] — evenly spaced subsampling for cheap coarse passes,
//! * [`NearestSequence`] — a tiny 1-nearest-neighbour classifier over DTW,
//!   which is exactly the matching rule of §4.1. Its [`NearestSequence::best_match`]
//!   runs an exact two-stage cascade: a downsampled coarse DTW pass orders
//!   the candidates (so the best and runner-up are almost always measured
//!   first, seeding a tight running cutoff), then the exact early-abandon
//!   pass confirms each candidate against that cutoff, with the O(1) lower
//!   bound skipping candidates outright. The coarse distances influence
//!   only the visit *order*, never a skip decision, so the result stays
//!   **bit-identical** to the exhaustive scan.
//!
//! Distances are Euclidean over fixed-size points (`[f64; N]`), covering the
//! 2-D Cartesian sky tracks the paper uses as well as 3-D variants.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Euclidean distance between two `N`-dimensional points.
pub fn euclidean<const N: usize>(a: &[f64; N], b: &[f64; N]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Dynamic time warping distance between two sequences of `N`-dimensional
/// points, with no warping-window constraint.
///
/// Returns `f64::INFINITY` when either sequence is empty (nothing aligns).
/// Memory is O(min-length); time is O(n·m).
pub fn dtw_distance<const N: usize>(a: &[[f64; N]], b: &[[f64; N]]) -> f64 {
    // Keep the shorter sequence as the row to minimize memory.
    let (rows, cols) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if rows.is_empty() || cols.is_empty() {
        return f64::INFINITY;
    }

    let n = rows.len();
    let mut prev = vec![f64::INFINITY; n + 1];
    let mut curr = vec![f64::INFINITY; n + 1];
    prev[0] = 0.0;

    for col in cols {
        curr[0] = f64::INFINITY;
        for (i, row) in rows.iter().enumerate() {
            let cost = euclidean(row, col);
            curr[i + 1] = cost + prev[i + 1].min(curr[i]).min(prev[i]);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[n]
}

/// Outcome of an early-abandoning DTW evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbandonableDtw {
    /// The exact DTW distance, or `f64::INFINITY` when the evaluation was
    /// abandoned (the true distance is then provably `> cutoff`).
    pub distance: f64,
    /// Matrix cells actually evaluated (the full matrix would be n·m).
    pub cells: usize,
    /// True when the evaluation stopped early.
    pub abandoned: bool,
}

/// A cheap O(1) lower bound on [`dtw_distance`]: every warping path aligns
/// the two first points and the two last points, so their distances bound
/// the total from below. Returns `f64::INFINITY` for empty input (matching
/// [`dtw_distance`]'s convention).
pub fn dtw_lower_bound<const N: usize>(a: &[[f64; N]], b: &[[f64; N]]) -> f64 {
    let (Some(a_first), Some(b_first)) = (a.first(), b.first()) else {
        return f64::INFINITY;
    };
    let first = euclidean(a_first, b_first);
    if a.len() == 1 && b.len() == 1 {
        // First and last are the same single cell; count it once.
        return first;
    }
    first + euclidean(&a[a.len() - 1], &b[b.len() - 1])
}

/// DTW distance with early abandoning: as soon as *every* alignment is
/// provably more expensive than `cutoff`, the evaluation stops.
///
/// The abandon test is exact, not heuristic: each warping path visits at
/// least one cell in every column of the cost matrix (paths are monotone
/// and single-step), so once a whole column's minimum cumulative cost
/// exceeds `cutoff`, no path can finish below it. Consequently, when
/// `abandoned` is false the returned distance equals [`dtw_distance`]
/// bit-for-bit, and when it is true the true distance is strictly greater
/// than `cutoff` — which is all a best-so-far 1-NN search needs.
///
/// A `cutoff` of `f64::INFINITY` never abandons.
pub fn dtw_distance_early_abandon<const N: usize>(
    a: &[[f64; N]],
    b: &[[f64; N]],
    cutoff: f64,
) -> AbandonableDtw {
    // Keep the shorter sequence as the row to minimize memory, exactly as
    // dtw_distance does (DTW is symmetric, so results are unaffected).
    let (rows, cols) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if rows.is_empty() || cols.is_empty() {
        return AbandonableDtw { distance: f64::INFINITY, cells: 0, abandoned: false };
    }

    let n = rows.len();
    let mut prev = vec![f64::INFINITY; n + 1];
    let mut curr = vec![f64::INFINITY; n + 1];
    prev[0] = 0.0;

    let mut cells = 0usize;
    for col in cols {
        curr[0] = f64::INFINITY;
        let mut col_min = f64::INFINITY;
        for (i, row) in rows.iter().enumerate() {
            let cost = euclidean(row, col);
            let value = cost + prev[i + 1].min(curr[i]).min(prev[i]);
            curr[i + 1] = value;
            col_min = col_min.min(value);
        }
        cells += n;
        if col_min > cutoff {
            return AbandonableDtw { distance: f64::INFINITY, cells, abandoned: true };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    AbandonableDtw { distance: prev[n], cells, abandoned: false }
}

/// DTW distance constrained to a Sakoe-Chiba band of half-width `band`
/// (expressed in *fraction of the longer sequence*, so `0.1` allows indices
/// to deviate by 10%).
///
/// A band both speeds the computation up and rejects pathological alignments
/// (e.g. the whole of one trajectory mapping onto a single point of another).
/// Returns `f64::INFINITY` for empty input or a band too narrow to connect
/// the corners.
pub fn dtw_distance_banded<const N: usize>(a: &[[f64; N]], b: &[[f64; N]], band: f64) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    let n = a.len();
    let m = b.len();
    // A band narrower than |n − m| cannot connect (0,0) to (n,m): the
    // diagonal slope requires |i·m/n − j| to reach |m − n|. The request is
    // infeasible as stated, so report that rather than silently widening.
    let w = (band * n.max(m) as f64).ceil() as i64;
    if w < (n as i64 - m as i64).abs() {
        return f64::INFINITY;
    }

    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;

    for i in 1..=n {
        curr.fill(f64::INFINITY);
        // Column indices allowed for this row under the band.
        let center = (i as f64 * m as f64 / n as f64).round() as i64;
        let lo = (center - w).max(1) as usize;
        let hi = ((center + w).min(m as i64)) as usize;
        if i == 1 {
            // Ensure the (1,1) cell can see the (0,0) anchor.
            curr[0] = f64::INFINITY;
        }
        for j in lo..=hi {
            let cost = euclidean(&a[i - 1], &b[j - 1]);
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            // The (0,0) anchor lives at prev[0] on the first row.
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Points per sequence in the cascade's coarse pass: long enough to keep
/// the shape of a sky track, short enough that a coarse DTW costs at most
/// 64 cells — around 5% of a typical full matrix in the §4.1 workload.
pub const COARSE_LEN: usize = 8;

/// Evenly spaced subsample of `seq` with at most `max_len` points, always
/// keeping both endpoints. Sequences already short enough are returned
/// verbatim. Used by the cascade's coarse pass: DTW over two downsampled
/// sequences costs `max_len²` cells instead of `n·m`.
///
/// The subsample is a *heuristic* summary — its DTW distance is neither an
/// upper nor a lower bound of the full distance — so exact callers may use
/// it only to choose evaluation order, never to discard a candidate.
pub fn downsample<const N: usize>(seq: &[[f64; N]], max_len: usize) -> Vec<[f64; N]> {
    let max_len = max_len.max(2);
    if seq.len() <= max_len {
        return seq.to_vec();
    }
    (0..max_len)
        .map(|i| {
            // Integer rounding of i·(len−1)/(max_len−1): deterministic and
            // strictly monotone because the real step exceeds one.
            let idx = (i * (seq.len() - 1) + (max_len - 1) / 2) / (max_len - 1);
            seq[idx]
        })
        .collect()
}

/// A step of a DTW warping path: indices into the two sequences.
pub type PathStep = (usize, usize);

/// DTW distance plus the optimal warping path, computed with the full
/// O(n·m) matrix. Use for diagnostics and tests; prefer [`dtw_distance`] in
/// hot loops.
pub fn dtw_path<const N: usize>(a: &[[f64; N]], b: &[[f64; N]]) -> (f64, Vec<PathStep>) {
    if a.is_empty() || b.is_empty() {
        return (f64::INFINITY, Vec::new());
    }
    let n = a.len();
    let m = b.len();
    let mut d = vec![f64::INFINITY; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    d[idx(0, 0)] = 0.0;

    for i in 1..=n {
        for j in 1..=m {
            let cost = euclidean(&a[i - 1], &b[j - 1]);
            let best = d[idx(i - 1, j)].min(d[idx(i, j - 1)]).min(d[idx(i - 1, j - 1)]);
            d[idx(i, j)] = cost + best;
        }
    }

    // Backtrack from (n, m).
    let mut path = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        path.push((i - 1, j - 1));
        let diag = d[idx(i - 1, j - 1)];
        let up = d[idx(i - 1, j)];
        let left = d[idx(i, j - 1)];
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    path.reverse();
    (d[idx(n, m)], path)
}

/// Result of a nearest-sequence query.
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    /// Index of the best-matching candidate.
    pub index: usize,
    /// Its DTW distance.
    pub distance: f64,
    /// Distance of the runner-up (`f64::INFINITY` with a single candidate).
    ///
    /// The gap between `distance` and `runner_up` is a practical confidence
    /// signal: the identification pipeline reports matches with a small gap
    /// as ambiguous.
    pub runner_up: f64,
}

/// Work counters for a pruned [`NearestSequence::best_match_with_stats`]
/// query, for benches and regression tests of pruning effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneStats {
    /// DTW matrix cells actually evaluated across all candidates.
    pub cells_evaluated: usize,
    /// Cells an exhaustive scan would have evaluated (Σ n·mᵢ).
    pub cells_full: usize,
    /// Candidates whose DTW evaluation was started.
    pub evaluated: usize,
    /// Candidates skipped outright by the lower bound (no matrix work).
    pub pruned: usize,
    /// Matrix cells spent in the cascade's downsampled coarse pass (these
    /// are extra work on top of `cells_evaluated`, bounded by
    /// candidates × coarse-length²).
    pub coarse_cells: usize,
}

/// 1-nearest-neighbour search over candidate sequences by DTW distance —
/// the matching rule of §4.1 ("the available satellite with the lowest DTW
/// distance is chosen as the current serving satellite").
#[derive(Debug, Clone, Default)]
pub struct NearestSequence<const N: usize> {
    candidates: Vec<Vec<[f64; N]>>,
}

impl<const N: usize> NearestSequence<N> {
    /// Creates an empty matcher.
    pub fn new() -> Self {
        NearestSequence { candidates: Vec::new() }
    }

    /// Adds a candidate sequence; returns its index.
    pub fn add(&mut self, seq: Vec<[f64; N]>) -> usize {
        self.candidates.push(seq);
        self.candidates.len() - 1
    }

    /// Number of stored candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True when no candidates are stored.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Finds the candidate with the lowest DTW distance to `query`.
    /// Returns `None` when there are no candidates or the query is empty.
    ///
    /// The search is an exact two-stage cascade — a downsampled coarse DTW
    /// pass orders candidates, then the exact early-abandon pass confirms
    /// them against the running runner-up — but the result is bit-identical
    /// to an exhaustive scan: same winning index (ties broken by lowest
    /// index, as a forward scan would), same `distance`, same exact
    /// `runner_up`.
    pub fn best_match(&self, query: &[[f64; N]]) -> Option<Match> {
        self.best_match_with_stats(query).map(|(m, _)| m)
    }

    /// [`NearestSequence::best_match`] plus counters describing how much
    /// work the cascade saved.
    ///
    /// Stage 1 (coarse): every candidate's DTW distance to the query is
    /// estimated on [`downsample`]d copies (≤ [`COARSE_LEN`] points each)
    /// and candidates are visited cheapest-estimate first, so the true best
    /// and runner-up are almost always measured immediately and the cutoff
    /// is tight for everyone else. Stage 2 (exact): each candidate is
    /// skipped when its O(1) lower bound exceeds the running runner-up,
    /// otherwise confirmed by [`dtw_distance_early_abandon`].
    ///
    /// Exactness argument: coarse distances influence only the visit
    /// *order*. The runner-up only ever decreases, every candidate's true
    /// distance is at least its lower bound, and the abandon test is
    /// strict; a skipped candidate therefore has distance `> runner_up ≥
    /// best` and an abandoned one `> runner_up` — neither can change the
    /// winner *or* the runner-up, for any visit order. Minimal-distance
    /// candidates can never be skipped (their lower bound never exceeds the
    /// runner-up), so ties still resolve on the full set of minima, by
    /// lowest index.
    pub fn best_match_with_stats(&self, query: &[[f64; N]]) -> Option<(Match, PruneStats)> {
        if query.is_empty() || self.candidates.is_empty() {
            return None;
        }

        let mut stats = PruneStats::default();
        let coarse_query = downsample(query, COARSE_LEN);
        // (index, lower bound, coarse estimate) per candidate; visited in
        // ascending coarse-estimate order, ties by index so the order is
        // deterministic.
        let mut order: Vec<(usize, f64, f64)> = self
            .candidates
            .iter()
            .enumerate()
            .map(|(i, c)| {
                stats.cells_full += query.len() * c.len();
                let coarse = downsample(c, COARSE_LEN);
                stats.coarse_cells += coarse_query.len() * coarse.len();
                (i, dtw_lower_bound(query, c), dtw_distance(&coarse_query, &coarse))
            })
            .collect();
        order.sort_by(|x, y| x.2.total_cmp(&y.2).then(x.0.cmp(&y.0)));

        let mut best_index = usize::MAX;
        let mut best = f64::INFINITY;
        let mut runner = f64::INFINITY;
        for &(index, lb, _) in &order {
            if lb > runner {
                // Not sorted by bound any more, so skip (not break): a
                // later candidate may still have a smaller bound.
                stats.pruned += 1;
                continue;
            }
            // Cut against the runner-up, not the best: distances in
            // (best, runner_up] still have to be measured exactly so the
            // reported runner-up matches the exhaustive scan.
            let result = dtw_distance_early_abandon(query, &self.candidates[index], runner);
            stats.evaluated += 1;
            stats.cells_evaluated += result.cells;
            if result.abandoned {
                continue;
            }
            let distance = result.distance;
            if distance < best || (distance == best && index < best_index) {
                runner = best;
                best = distance;
                best_index = index;
            } else if distance < runner {
                runner = distance;
            }
        }
        Some((Match { index: best_index, distance: best, runner_up: runner }, stats))
    }

    /// Ranks all candidates by ascending DTW distance.
    pub fn ranked(&self, query: &[[f64; N]]) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> =
            self.candidates.iter().enumerate().map(|(i, c)| (i, dtw_distance(query, c))).collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq1d(xs: &[f64]) -> Vec<[f64; 1]> {
        xs.iter().map(|&x| [x]).collect()
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let a = seq1d(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(dtw_distance(&a, &a), 0.0);
    }

    #[test]
    fn dtw_absorbs_time_stretch() {
        // Same shape, one sampled twice as densely: lockstep distance would
        // be large, DTW should be exactly zero (every point has an equal).
        let a = seq1d(&[0.0, 1.0, 2.0, 3.0]);
        let b = seq1d(&[0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        assert_eq!(dtw_distance(&a, &b), 0.0);
    }

    #[test]
    fn dtw_is_symmetric() {
        let a = seq1d(&[0.0, 2.0, 4.0, 3.0]);
        let b = seq1d(&[1.0, 2.0, 2.5, 5.0, 3.0]);
        assert_eq!(dtw_distance(&a, &b), dtw_distance(&b, &a));
    }

    #[test]
    fn known_small_example() {
        // D matrix by hand: a=[1,2,3], b=[2,2,2,3,4].
        // Optimal alignment: |1-2| + 0 + 0 + 0(2?)... compute: path cost 1 (1→2)
        // then 2→2 zero (twice), 3→3 zero, 3→4 one ⇒ total 2.
        let a = seq1d(&[1.0, 2.0, 3.0]);
        let b = seq1d(&[2.0, 2.0, 2.0, 3.0, 4.0]);
        assert_eq!(dtw_distance(&a, &b), 2.0);
    }

    #[test]
    fn empty_sequence_gives_infinity() {
        let a = seq1d(&[1.0]);
        let empty: Vec<[f64; 1]> = Vec::new();
        assert_eq!(dtw_distance(&a, &empty), f64::INFINITY);
        assert_eq!(dtw_distance(&empty, &a), f64::INFINITY);
        assert_eq!(dtw_distance_banded(&a, &empty, 0.1), f64::INFINITY);
        assert_eq!(dtw_distance_banded(&empty, &a, 0.1), f64::INFINITY);
        assert_eq!(dtw_distance_banded(&empty, &empty, 1.0), f64::INFINITY);
        assert_eq!(dtw_lower_bound(&a, &empty), f64::INFINITY);
        let ea = dtw_distance_early_abandon(&a, &empty, f64::INFINITY);
        assert_eq!((ea.distance, ea.cells, ea.abandoned), (f64::INFINITY, 0, false));
    }

    #[test]
    fn band_narrower_than_length_gap_is_infeasible() {
        // |n − m| = 5 but the band only allows deviation 1: no monotone
        // path can connect the corners, so the answer is INFINITY — not a
        // silently widened band producing a bogus finite distance.
        let a = seq1d(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let b = seq1d(&[0.0, 1.0, 2.0]);
        assert_eq!(dtw_distance_banded(&a, &b, 0.125), f64::INFINITY);
        assert_eq!(dtw_distance_banded(&b, &a, 0.125), f64::INFINITY);
        // Widening the band past the gap makes it feasible again.
        assert!(dtw_distance_banded(&a, &b, 1.0).is_finite());
    }

    #[test]
    fn banded_full_band_matches_unbanded_on_unequal_lengths() {
        let a = seq1d(&[0.0, 2.0, 1.0, 4.0, 3.0, 6.0, 5.0, 8.0]);
        let b = seq1d(&[0.5, 1.5, 3.5, 5.5]);
        let full = dtw_distance(&a, &b);
        let banded = dtw_distance_banded(&a, &b, 1.0);
        assert!((full - banded).abs() < 1e-12, "{full} vs {banded}");
    }

    #[test]
    fn early_abandon_without_cutoff_matches_plain_dtw() {
        let a = seq1d(&[0.0, 2.0, 4.0, 3.0]);
        let b = seq1d(&[1.0, 2.0, 2.5, 5.0, 3.0]);
        let ea = dtw_distance_early_abandon(&a, &b, f64::INFINITY);
        assert!(!ea.abandoned);
        assert_eq!(ea.distance, dtw_distance(&a, &b));
        assert_eq!(ea.cells, a.len() * b.len());
    }

    #[test]
    fn early_abandon_stops_under_tight_cutoff() {
        let a = seq1d(&[0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let b = seq1d(&[100.0, 100.0, 100.0, 100.0, 100.0, 100.0]);
        let ea = dtw_distance_early_abandon(&a, &b, 1.0);
        assert!(ea.abandoned);
        assert_eq!(ea.distance, f64::INFINITY);
        assert!(ea.cells < a.len() * b.len(), "should abandon before the full matrix");
        // The true distance really is above the cutoff.
        assert!(dtw_distance(&a, &b) > 1.0);
    }

    #[test]
    fn lower_bound_never_exceeds_distance() {
        let a = seq1d(&[1.0, 5.0, 2.0]);
        let b = seq1d(&[2.0, 4.0, 4.0, 1.0]);
        assert!(dtw_lower_bound(&a, &b) <= dtw_distance(&a, &b));
        // Single-point sequences: first and last are one cell, counted once.
        let p = seq1d(&[3.0]);
        let q = seq1d(&[7.0]);
        assert_eq!(dtw_lower_bound(&p, &q), 4.0);
        assert_eq!(dtw_lower_bound(&p, &q), dtw_distance(&p, &q));
    }

    #[test]
    fn banded_with_full_band_matches_unbanded() {
        let a = seq1d(&[0.0, 1.5, 3.0, 2.0, 5.0, 4.0]);
        let b = seq1d(&[0.5, 1.0, 2.5, 2.5, 4.5]);
        let full = dtw_distance(&a, &b);
        let banded = dtw_distance_banded(&a, &b, 1.0);
        assert!((full - banded).abs() < 1e-12, "{full} vs {banded}");
    }

    #[test]
    fn banded_distance_upper_bounds_unbanded() {
        let a = seq1d(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let b = seq1d(&[0.0, 0.0, 0.0, 0.0, 4.0, 5.0, 6.0, 7.0]);
        let full = dtw_distance(&a, &b);
        let banded = dtw_distance_banded(&a, &b, 0.125);
        assert!(banded >= full - 1e-12, "banded {banded} < full {full}");
    }

    #[test]
    fn path_connects_corners_and_is_monotone() {
        let a = seq1d(&[1.0, 2.0, 3.0, 2.0]);
        let b = seq1d(&[1.0, 3.0, 2.0]);
        let (dist, path) = dtw_path(&a, &b);
        assert_eq!(path.first(), Some(&(0usize, 0usize)));
        assert_eq!(path.last(), Some(&(3usize, 2usize)));
        for w in path.windows(2) {
            let (i0, j0) = w[0];
            let (i1, j1) = w[1];
            assert!(i1 >= i0 && j1 >= j0, "path must be monotone");
            assert!(i1 - i0 <= 1 && j1 - j0 <= 1, "path must move by single steps");
        }
        assert!((dist - dtw_distance(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn two_dimensional_points_work() {
        let a: Vec<[f64; 2]> = vec![[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]];
        let b: Vec<[f64; 2]> = vec![[0.0, 0.0], [1.0, 1.0], [1.0, 1.0], [2.0, 2.0]];
        assert_eq!(dtw_distance(&a, &b), 0.0);
    }

    #[test]
    fn nearest_sequence_picks_the_closest_track() {
        let mut ns = NearestSequence::<2>::new();
        ns.add(vec![[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]]); // along +x
        ns.add(vec![[0.0, 0.0], [0.0, 1.0], [0.0, 2.0]]); // along +y
        let query = vec![[0.1, 0.0], [1.1, 0.05], [2.0, -0.1]];
        let m = ns.best_match(&query).unwrap();
        assert_eq!(m.index, 0);
        assert!(m.distance < m.runner_up);
    }

    #[test]
    fn nearest_sequence_handles_edge_cases() {
        let ns = NearestSequence::<1>::new();
        assert!(ns.is_empty());
        assert!(ns.best_match(&seq1d(&[1.0])).is_none());

        let mut ns = NearestSequence::<1>::new();
        ns.add(seq1d(&[5.0]));
        assert!(ns.best_match(&[]).is_none());
        let m = ns.best_match(&seq1d(&[5.0])).unwrap();
        assert_eq!(m.runner_up, f64::INFINITY);
    }

    /// The pre-pruning exhaustive scan, kept as the test oracle.
    fn exhaustive_best_match<const N: usize>(
        ns: &NearestSequence<N>,
        query: &[[f64; N]],
    ) -> Option<Match> {
        if query.is_empty() {
            return None;
        }
        let mut best: Option<Match> = None;
        for (index, cand) in ns.candidates.iter().enumerate() {
            let distance = dtw_distance(query, cand);
            best = Some(match best {
                None => Match { index, distance, runner_up: f64::INFINITY },
                Some(b) if distance < b.distance => {
                    Match { index, distance, runner_up: b.distance }
                }
                Some(mut b) => {
                    if distance < b.runner_up {
                        b.runner_up = distance;
                    }
                    b
                }
            });
        }
        best
    }

    #[test]
    fn pruned_best_match_is_bit_identical_on_ties() {
        // Two candidates at the exact same distance: the winner must be the
        // lower index, and the runner-up must equal the winning distance —
        // exactly what a forward exhaustive scan reports.
        let mut ns = NearestSequence::<1>::new();
        ns.add(seq1d(&[10.0, 11.0, 12.0]));
        ns.add(seq1d(&[0.0, 1.0, 2.0]));
        ns.add(seq1d(&[0.0, 1.0, 2.0]));
        let query = seq1d(&[0.5, 1.5, 2.5]);
        let pruned = ns.best_match(&query).unwrap();
        let full = exhaustive_best_match(&ns, &query).unwrap();
        assert_eq!(pruned, full);
        assert_eq!(pruned.index, 1);
        assert_eq!(pruned.distance, pruned.runner_up);
    }

    #[test]
    fn pruned_best_match_evaluates_fewer_cells() {
        // One near candidate and many far ones: the far ones should be
        // abandoned early or skipped outright by the lower bound.
        let mut ns = NearestSequence::<1>::new();
        ns.add(seq1d(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]));
        for k in 1..=12 {
            let off = 1000.0 * k as f64;
            ns.add(seq1d(&[off, off + 1.0, off + 2.0, off + 3.0, off + 4.0, off + 5.0]));
        }
        let query = seq1d(&[0.1, 1.1, 2.1, 3.1, 4.1, 5.1, 6.1, 7.1]);
        let (m, stats) = ns.best_match_with_stats(&query).unwrap();
        assert_eq!(m.index, 0);
        assert!(
            stats.cells_evaluated < stats.cells_full / 2,
            "pruning saved too little: {} of {} cells",
            stats.cells_evaluated,
            stats.cells_full
        );
        assert!(stats.pruned > 0, "lower bound should skip distant candidates outright");
        assert_eq!(m, exhaustive_best_match(&ns, &query).unwrap());
    }

    #[test]
    fn pruned_best_match_handles_empty_candidates() {
        // Empty candidate sequences have infinite distance; the scan must
        // still agree with the exhaustive oracle (first index wins).
        let mut ns = NearestSequence::<1>::new();
        ns.add(Vec::new());
        ns.add(Vec::new());
        let query = seq1d(&[1.0]);
        let pruned = ns.best_match(&query).unwrap();
        assert_eq!(pruned, exhaustive_best_match(&ns, &query).unwrap());
        assert_eq!(pruned.index, 0);
        assert_eq!(pruned.distance, f64::INFINITY);
    }

    #[test]
    fn downsample_keeps_endpoints_and_order() {
        let seq: Vec<[f64; 1]> = (0..100).map(|i| [i as f64]).collect();
        let coarse = downsample(&seq, 8);
        assert_eq!(coarse.len(), 8);
        assert_eq!(coarse[0], [0.0]);
        assert_eq!(coarse[7], [99.0]);
        for w in coarse.windows(2) {
            assert!(w[0][0] < w[1][0], "downsample must preserve order");
        }
    }

    #[test]
    fn downsample_short_sequences_are_verbatim() {
        let seq = seq1d(&[3.0, 1.0, 4.0]);
        assert_eq!(downsample(&seq, 8), seq);
        assert_eq!(downsample(&seq, 3), seq);
        let empty: Vec<[f64; 1]> = Vec::new();
        assert!(downsample(&empty, 8).is_empty());
        // max_len below 2 is clamped, never a panic or a truncation to one.
        let two = seq1d(&[1.0, 2.0]);
        assert_eq!(downsample(&two, 0), two);
    }

    #[test]
    fn cascade_counts_coarse_work_separately() {
        let mut ns = NearestSequence::<1>::new();
        let long: Vec<f64> = (0..40).map(|i| i as f64).collect();
        ns.add(seq1d(&long));
        ns.add(seq1d(&long));
        let query = seq1d(&long);
        let (_, stats) = ns.best_match_with_stats(&query).unwrap();
        // Coarse matrices are COARSE_LEN² per candidate, far below full.
        assert_eq!(stats.coarse_cells, 2 * COARSE_LEN * COARSE_LEN);
        assert!(stats.coarse_cells < stats.cells_full / 10);
    }

    #[test]
    fn cascade_orders_far_candidates_out_of_the_exact_pass() {
        // The best candidate and its close runner-up are placed LAST by
        // index, so index-ordered visiting would evaluate every far
        // candidate exactly first; the coarse pass must instead surface the
        // two of them immediately, after which the tight runner-up cutoff
        // lets the lower bound or a first-column abandon dispatch the far
        // candidates with almost no matrix work.
        let mut ns = NearestSequence::<1>::new();
        let n = 32;
        for k in 0..12 {
            let off = 500.0 + 40.0 * k as f64;
            ns.add(seq1d(&(0..n).map(|i| off + i as f64).collect::<Vec<_>>()));
        }
        ns.add(seq1d(&(0..n).map(|i| i as f64).collect::<Vec<_>>()));
        ns.add(seq1d(&(0..n).map(|i| i as f64 + 1.0).collect::<Vec<_>>()));
        let query = seq1d(&(0..n).map(|i| i as f64 + 0.25).collect::<Vec<_>>());
        let (m, stats) = ns.best_match_with_stats(&query).unwrap();
        assert_eq!(m.index, 12);
        assert_eq!(m, exhaustive_best_match(&ns, &query).unwrap());
        assert!(
            stats.cells_evaluated < stats.cells_full / 4,
            "cascade saved too little: {} of {} cells",
            stats.cells_evaluated,
            stats.cells_full
        );
    }

    #[test]
    fn ranked_is_sorted_ascending() {
        let mut ns = NearestSequence::<1>::new();
        ns.add(seq1d(&[10.0, 11.0]));
        ns.add(seq1d(&[0.0, 1.0]));
        ns.add(seq1d(&[5.0, 6.0]));
        let r = ns.ranked(&seq1d(&[0.0, 1.0]));
        assert_eq!(r[0].0, 1);
        assert!(r[0].1 <= r[1].1 && r[1].1 <= r[2].1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn dtw_is_nonnegative(
                a in prop::collection::vec(-100.0f64..100.0, 1..20),
                b in prop::collection::vec(-100.0f64..100.0, 1..20),
            ) {
                let a = seq1d(&a);
                let b = seq1d(&b);
                prop_assert!(dtw_distance(&a, &b) >= 0.0);
            }

            #[test]
            fn dtw_symmetry(
                a in prop::collection::vec(-50.0f64..50.0, 1..15),
                b in prop::collection::vec(-50.0f64..50.0, 1..15),
            ) {
                let a = seq1d(&a);
                let b = seq1d(&b);
                prop_assert!((dtw_distance(&a, &b) - dtw_distance(&b, &a)).abs() < 1e-9);
            }

            #[test]
            fn self_distance_is_zero(a in prop::collection::vec(-50.0f64..50.0, 1..15)) {
                let a = seq1d(&a);
                prop_assert_eq!(dtw_distance(&a, &a), 0.0);
            }

            #[test]
            fn dtw_bounded_by_lockstep(
                pairs in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..15),
            ) {
                // DTW minimizes over alignments that include the lockstep
                // diagonal, so it can never exceed the lockstep cost.
                let a: Vec<[f64;1]> = pairs.iter().map(|&(x, _)| [x]).collect();
                let b: Vec<[f64;1]> = pairs.iter().map(|&(_, y)| [y]).collect();
                let lockstep: f64 = pairs.iter().map(|&(x, y)| (x - y).abs()).sum();
                prop_assert!(dtw_distance(&a, &b) <= lockstep + 1e-9);
            }

            #[test]
            fn early_abandon_agrees_with_plain_dtw(
                a in prop::collection::vec(-50.0f64..50.0, 1..15),
                b in prop::collection::vec(-50.0f64..50.0, 1..15),
                cutoff in 0.0f64..200.0,
            ) {
                let a = seq1d(&a);
                let b = seq1d(&b);
                let full = dtw_distance(&a, &b);
                let ea = dtw_distance_early_abandon(&a, &b, cutoff);
                if ea.abandoned {
                    // Abandoning is only legal when the true distance
                    // strictly exceeds the cutoff.
                    prop_assert!(full > cutoff);
                } else {
                    prop_assert_eq!(ea.distance, full);
                }
                prop_assert!(ea.cells <= a.len() * b.len());
            }

            #[test]
            fn lower_bound_is_a_lower_bound(
                a in prop::collection::vec(-50.0f64..50.0, 1..15),
                b in prop::collection::vec(-50.0f64..50.0, 1..15),
            ) {
                let a = seq1d(&a);
                let b = seq1d(&b);
                prop_assert!(dtw_lower_bound(&a, &b) <= dtw_distance(&a, &b) + 1e-12);
            }

            #[test]
            fn pruned_best_match_equals_exhaustive_scan(
                cands in prop::collection::vec(
                    prop::collection::vec(-50.0f64..50.0, 1..10), 1..8),
                query in prop::collection::vec(-50.0f64..50.0, 1..10),
            ) {
                let mut ns = NearestSequence::<1>::new();
                for c in &cands {
                    ns.add(seq1d(c));
                }
                let query = seq1d(&query);
                let (pruned, stats) = ns.best_match_with_stats(&query)
                    .expect("non-empty query and candidates");
                let full = exhaustive_best_match(&ns, &query)
                    .expect("non-empty query and candidates");
                // Bit-identical, not approximately equal: same index, same
                // distance bits, same runner-up bits.
                prop_assert_eq!(pruned, full);
                prop_assert!(stats.cells_evaluated <= stats.cells_full);
            }

            #[test]
            fn path_cost_equals_distance(
                a in prop::collection::vec(-20.0f64..20.0, 1..10),
                b in prop::collection::vec(-20.0f64..20.0, 1..10),
            ) {
                let a = seq1d(&a);
                let b = seq1d(&b);
                let (dist, path) = dtw_path(&a, &b);
                let cost: f64 = path.iter().map(|&(i, j)| euclidean(&a[i], &b[j])).sum();
                prop_assert!((cost - dist).abs() < 1e-9);
            }
        }
    }
}
