//! Property tests for the snapshot codec: encode→decode identity for
//! arbitrary section sets, and *no input* — random bytes, truncations,
//! bit flips, mangled headers — may panic the parser or hand back a
//! snapshot that fails checksum validation silently.

use proptest::prelude::*;
use starsense_checkpoint::{
    fnv1a, ByteReader, ByteWriter, CheckpointError, Snapshot, SnapshotBuilder, MAGIC, VERSION,
};

fn build(sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let mut b = SnapshotBuilder::new();
    for (id, payload) in sections {
        b.add_section(*id, payload.clone());
    }
    b.finish().expect("ids deduplicated by generator")
}

fn section_set() -> impl Strategy<Value = Vec<(u32, Vec<u8>)>> {
    proptest::collection::vec((0u32..50, proptest::collection::vec((0u8..=255), 0..200)), 0..6)
        .prop_map(|mut sections| {
            // Deduplicate ids, keeping first occurrence, so finish() succeeds.
            let mut seen = Vec::new();
            sections.retain(|(id, _)| {
                if seen.contains(id) {
                    false
                } else {
                    seen.push(*id);
                    true
                }
            });
            sections
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode→parse returns exactly the sections that went in, ids and
    /// payload bytes alike.
    #[test]
    fn round_trip_identity(sections in section_set()) {
        let bytes = build(&sections);
        let snap = Snapshot::parse(&bytes).expect("freshly built snapshot must parse");
        let ids: Vec<u32> = sections.iter().map(|(id, _)| *id).collect();
        prop_assert_eq!(snap.section_ids(), ids);
        for (id, payload) in &sections {
            prop_assert_eq!(snap.section(*id).expect("present"), payload.as_slice());
        }
    }

    /// Serialization is a pure function of the section list.
    #[test]
    fn encoding_is_deterministic(sections in section_set()) {
        prop_assert_eq!(build(&sections), build(&sections));
    }

    /// Truncating a valid snapshot anywhere fails validation cleanly.
    #[test]
    fn truncation_always_errors(sections in section_set(), cut in 0usize..10_000) {
        let bytes = build(&sections);
        let keep = cut % bytes.len();
        prop_assert!(Snapshot::parse(&bytes[..keep]).is_err());
    }

    /// Flipping any single bit fails validation cleanly.
    #[test]
    fn bit_flip_always_detected(sections in section_set(), pos in 0usize..10_000, bit in 0u8..8) {
        let mut bytes = build(&sections);
        let i = pos % bytes.len();
        bytes[i] ^= 1 << bit;
        prop_assert!(Snapshot::parse(&bytes).is_err());
    }

    /// Arbitrary garbage never panics the parser (it may occasionally be
    /// rejected with any error variant, but must always return).
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec((0u8..=255), 0..400)) {
        let _ = Snapshot::parse(&bytes);
    }

    /// Garbage prefixed with a valid-looking header start still never
    /// panics — exercises the table/checksum paths rather than dying on
    /// the magic check.
    #[test]
    fn magic_prefixed_garbage_never_panics(tail in proptest::collection::vec((0u8..=255), 0..400)) {
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&tail);
        let _ = Snapshot::parse(&bytes);
    }

    /// The primitive reader tolerates arbitrary input for every getter.
    #[test]
    fn byte_reader_never_panics(bytes in proptest::collection::vec((0u8..=255), 0..64)) {
        let mut r = ByteReader::new(&bytes);
        let _ = r.get_u8("a");
        let _ = r.get_bool("b");
        let _ = r.get_u32("c");
        let _ = r.get_u64("d");
        let _ = r.get_i64("e");
        let _ = r.get_f64_bits("f");
        let _ = r.get_bytes("g");
        let _ = r.get_str("h");
        let _ = r.expect_exhausted("i");
    }
}

#[test]
fn writer_reader_agree_on_mixed_stream() {
    let mut w = ByteWriter::with_capacity(64);
    w.put_usize(3);
    w.put_bytes(&[0xFF, 0x00]);
    w.put_f64_bits(f64::INFINITY);
    let buf = w.into_bytes();
    let mut r = ByteReader::new(&buf);
    assert_eq!(r.get_usize("n").expect("usize"), 3);
    assert_eq!(r.get_bytes("blob").expect("bytes"), &[0xFF, 0x00]);
    assert_eq!(r.get_f64_bits("inf").expect("f64"), f64::INFINITY);
    r.expect_exhausted("end").expect("consumed");
}

#[test]
fn fnv1a_matches_reference_vectors() {
    // Standard FNV-1a test vectors (64-bit).
    assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
}

#[test]
fn version_is_pinned() {
    // Bumping the format version is a deliberate act: it invalidates every
    // snapshot in the field. This pin makes that show up in review.
    assert_eq!(VERSION, 1);
    assert_eq!(&MAGIC, b"SSCP");
    let err = {
        let mut bytes = build(&[(1, vec![1, 2, 3])]);
        bytes[4..8].copy_from_slice(&(VERSION + 1).to_le_bytes());
        Snapshot::parse(&bytes).expect_err("future version must be rejected")
    };
    assert_eq!(err, CheckpointError::UnsupportedVersion { found: VERSION + 1 });
}
