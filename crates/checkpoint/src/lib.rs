//! Versioned, checksummed binary snapshots with atomic persistence.
//!
//! This crate is the *wire-format* half of campaign checkpoint/restore
//! (the campaign-state encoding itself lives in `starsense-core`, which
//! owns the types being persisted). It is deliberately dependency-free —
//! the workspace builds offline — and hand-rolls the three pieces a
//! crash-safe snapshot needs:
//!
//! 1. **Primitive codec** ([`ByteWriter`] / [`ByteReader`]): little-endian
//!    fixed-width integers, `f64` persisted as raw bit patterns (so restore
//!    is bit-identical, NaNs and signed zeros included), and length-prefixed
//!    byte strings. Every read is bounds-checked and returns
//!    [`CheckpointError`] — corrupted input can never panic the decoder.
//! 2. **Container format** ([`SnapshotBuilder`] / [`Snapshot`]): a magic
//!    tag, a format version, a section table (id → offset/length), and
//!    FNV-1a checksums over both the header and every section payload.
//!    A single flipped bit anywhere in the file fails validation.
//! 3. **Atomic persistence** ([`write_rotating`] / [`load_latest`]): temp
//!    file + fsync + rename so a crash mid-write never tears the current
//!    snapshot, plus a rotating `.prev` last-good copy so a corrupted
//!    primary degrades to the previous checkpoint instead of a cold start.
//!
//! The on-disk layout is specified in DESIGN.md ("Snapshot wire format");
//! the summary:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SSCP"
//! 4       4     version (u32 LE)
//! 8       4     section count N (u32 LE)
//! 12      28·N  section table: { id: u32, offset: u64, len: u64, fnv: u64 }
//! 12+28N  8     FNV-1a of bytes [0, 12+28N)           (header checksum)
//! ...           section payloads, in table order, contiguous
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// First four bytes of every snapshot file: "SSCP" (StarSense CheckPoint).
pub const MAGIC: [u8; 4] = *b"SSCP";

/// Current snapshot format version. Bump on any layout change; readers
/// reject versions they do not understand rather than guessing.
pub const VERSION: u32 = 1;

/// Bytes per section-table entry: id (4) + offset (8) + len (8) + fnv (8).
const TABLE_ENTRY_LEN: usize = 28;

/// Fixed header bytes before the section table: magic + version + count.
const HEADER_PREFIX_LEN: usize = 12;

/// Everything that can go wrong encoding, decoding, or persisting a
/// snapshot. Corruption maps to a typed error — never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Input ended before a fixed-width field; `context` names the field.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The version field is not one this reader understands.
    UnsupportedVersion {
        /// The version actually found.
        found: u32,
    },
    /// The header checksum does not match the header bytes.
    HeaderChecksum {
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum recomputed from the bytes.
        computed: u64,
    },
    /// A section's checksum does not match its payload bytes.
    SectionChecksum {
        /// Section id from the table.
        id: u32,
        /// Checksum recorded in the table.
        stored: u64,
        /// Checksum recomputed from the payload.
        computed: u64,
    },
    /// A section's table entry points outside the file or overlaps the
    /// header.
    SectionBounds {
        /// Section id from the table.
        id: u32,
    },
    /// The same section id appears twice in the table.
    DuplicateSection {
        /// The repeated id.
        id: u32,
    },
    /// A section the decoder requires is absent.
    MissingSection {
        /// The absent id.
        id: u32,
    },
    /// Structurally valid bytes that decode to an impossible value;
    /// `context` says which invariant failed.
    Malformed {
        /// The violated invariant.
        context: &'static str,
    },
    /// The snapshot was written by a campaign with a different
    /// configuration fingerprint and cannot resume this one.
    ConfigMismatch {
        /// Fingerprint of the running campaign.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
    /// An OS-level I/O failure (message carried as text so the error type
    /// stays `Eq` and cheap to assert on in tests).
    Io {
        /// The formatted `std::io::Error`.
        message: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            CheckpointError::BadMagic { found } => {
                write!(f, "bad snapshot magic {found:?} (expected {MAGIC:?})")
            }
            CheckpointError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found} (reader speaks {VERSION})")
            }
            CheckpointError::HeaderChecksum { stored, computed } => {
                write!(f, "header checksum mismatch: stored {stored:#x}, computed {computed:#x}")
            }
            CheckpointError::SectionChecksum { id, stored, computed } => write!(
                f,
                "section {id} checksum mismatch: stored {stored:#x}, computed {computed:#x}"
            ),
            CheckpointError::SectionBounds { id } => {
                write!(f, "section {id} extends outside the snapshot")
            }
            CheckpointError::DuplicateSection { id } => {
                write!(f, "section {id} appears twice in the table")
            }
            CheckpointError::MissingSection { id } => {
                write!(f, "required section {id} is missing")
            }
            CheckpointError::Malformed { context } => {
                write!(f, "malformed snapshot: {context}")
            }
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot belongs to a different campaign: fingerprint {found:#x}, \
                 expected {expected:#x}"
            ),
            CheckpointError::Io { message } => write!(f, "snapshot I/O error: {message}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io { message: e.to_string() }
    }
}

/// 64-bit FNV-1a over `bytes` — the same hash the golden-trace
/// fingerprints use, chosen for simplicity and zero dependencies. This is
/// an integrity check against torn writes and bit rot, not an
/// authenticity check.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian primitive encoder backing every section payload.
#[derive(Clone, Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter { buf: Vec::new() }
    }

    /// An empty writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> ByteWriter {
        ByteWriter { buf: Vec::with_capacity(cap) }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as `0`/`1`.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64` (the format is 64-bit on every
    /// platform).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its raw bit pattern, so restore is
    /// bit-identical (NaN payloads and `-0.0` survive).
    pub fn put_f64_bits(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes with a `u64` length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string with a `u64` length prefix.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian decoder over a byte slice. Every getter
/// returns [`CheckpointError::Truncated`] instead of panicking when the
/// input runs out.
#[derive(Clone, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated { context })?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated { context });
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, CheckpointError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a bool, rejecting anything but `0`/`1`.
    pub fn get_bool(&mut self, context: &'static str) -> Result<bool, CheckpointError> {
        match self.get_u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Malformed { context }),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, CheckpointError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, CheckpointError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self, context: &'static str) -> Result<i64, CheckpointError> {
        Ok(self.get_u64(context)? as i64)
    }

    /// Reads a `u64` and narrows it to `usize`, rejecting values that do
    /// not fit the platform.
    pub fn get_usize(&mut self, context: &'static str) -> Result<usize, CheckpointError> {
        usize::try_from(self.get_u64(context)?).map_err(|_| CheckpointError::Malformed { context })
    }

    /// Reads an `f64` bit pattern written by [`ByteWriter::put_f64_bits`].
    pub fn get_f64_bits(&mut self, context: &'static str) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.get_u64(context)?))
    }

    /// Reads a `u64`-length-prefixed byte string.
    pub fn get_bytes(&mut self, context: &'static str) -> Result<&'a [u8], CheckpointError> {
        let n = self.get_usize(context)?;
        self.take(n, context)
    }

    /// Reads a `u64`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self, context: &'static str) -> Result<&'a str, CheckpointError> {
        std::str::from_utf8(self.get_bytes(context)?)
            .map_err(|_| CheckpointError::Malformed { context })
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the reader has consumed its whole input.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless the input was consumed exactly — trailing garbage in
    /// a section is corruption, not padding.
    pub fn expect_exhausted(&self, context: &'static str) -> Result<(), CheckpointError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(CheckpointError::Malformed { context })
        }
    }
}

/// Accumulates section payloads and serializes the container.
#[derive(Clone, Debug, Default)]
pub struct SnapshotBuilder {
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// An empty builder.
    pub fn new() -> SnapshotBuilder {
        SnapshotBuilder { sections: Vec::new() }
    }

    /// Adds a section payload. Ids must be unique; duplicates are
    /// reported by [`SnapshotBuilder::finish`].
    pub fn add_section(&mut self, id: u32, payload: Vec<u8>) {
        self.sections.push((id, payload));
    }

    /// Serializes magic, version, section table, header checksum, and
    /// payloads into one buffer.
    pub fn finish(self) -> Result<Vec<u8>, CheckpointError> {
        for (i, (id, _)) in self.sections.iter().enumerate() {
            if self.sections[..i].iter().any(|(other, _)| other == id) {
                return Err(CheckpointError::DuplicateSection { id: *id });
            }
        }
        let header_len = HEADER_PREFIX_LEN + TABLE_ENTRY_LEN * self.sections.len();
        let total: usize =
            header_len + 8 + self.sections.iter().map(|(_, p)| p.len()).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = (header_len + 8) as u64;
        for (id, payload) in &self.sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        let header_fnv = fnv1a(&out);
        out.extend_from_slice(&header_fnv.to_le_bytes());
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        Ok(out)
    }
}

/// A parsed, fully validated snapshot. Construction verifies the magic,
/// version, header checksum, section bounds, and every section checksum,
/// so holders can read payloads without re-checking integrity.
#[derive(Clone, Debug)]
pub struct Snapshot<'a> {
    sections: Vec<(u32, &'a [u8])>,
}

impl<'a> Snapshot<'a> {
    /// Validates `bytes` and indexes its sections.
    pub fn parse(bytes: &'a [u8]) -> Result<Snapshot<'a>, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take(4, "magic")?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic {
                found: [magic[0], magic[1], magic[2], magic[3]],
            });
        }
        let version = r.get_u32("version")?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        let count = r.get_u32("section count")? as usize;
        // Cap before allocating: a corrupted count must not OOM the reader.
        if count > (bytes.len().saturating_sub(HEADER_PREFIX_LEN)) / TABLE_ENTRY_LEN {
            return Err(CheckpointError::Truncated { context: "section table" });
        }
        let mut table = Vec::with_capacity(count);
        for _ in 0..count {
            let id = r.get_u32("section id")?;
            let offset = r.get_u64("section offset")?;
            let len = r.get_u64("section length")?;
            let fnv = r.get_u64("section checksum")?;
            table.push((id, offset, len, fnv));
        }
        let header_len = HEADER_PREFIX_LEN + TABLE_ENTRY_LEN * count;
        let stored = r.get_u64("header checksum")?;
        let computed = fnv1a(&bytes[..header_len]);
        if stored != computed {
            return Err(CheckpointError::HeaderChecksum { stored, computed });
        }
        let body_start = (header_len + 8) as u64;
        let mut sections = Vec::with_capacity(count);
        for (id, offset, len, fnv) in table {
            if sections.iter().any(|(other, _)| *other == id) {
                return Err(CheckpointError::DuplicateSection { id });
            }
            let end = offset.checked_add(len).ok_or(CheckpointError::SectionBounds { id })?;
            if offset < body_start || end > bytes.len() as u64 {
                return Err(CheckpointError::SectionBounds { id });
            }
            let payload = &bytes[offset as usize..end as usize];
            let computed = fnv1a(payload);
            if computed != fnv {
                return Err(CheckpointError::SectionChecksum { id, stored: fnv, computed });
            }
            sections.push((id, payload));
        }
        Ok(Snapshot { sections })
    }

    /// The payload of section `id`, if present.
    pub fn section(&self, id: u32) -> Option<&'a [u8]> {
        self.sections.iter().find(|(other, _)| *other == id).map(|(_, p)| *p)
    }

    /// The payload of section `id`, or [`CheckpointError::MissingSection`].
    pub fn require_section(&self, id: u32) -> Result<&'a [u8], CheckpointError> {
        self.section(id).ok_or(CheckpointError::MissingSection { id })
    }

    /// Section ids present, in file order.
    pub fn section_ids(&self) -> Vec<u32> {
        self.sections.iter().map(|(id, _)| *id).collect()
    }
}

/// Where [`load_latest`] found a usable snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadedFrom {
    /// The primary snapshot file.
    Primary,
    /// The rotating `.prev` last-good copy (the primary was missing or
    /// failed validation).
    Backup,
}

/// Result of [`load_latest`]: the newest snapshot that validates, plus
/// how many corrupt files were passed over to find it.
#[derive(Clone, Debug)]
pub struct LoadOutcome {
    /// Validated snapshot bytes and their origin, or `None` when neither
    /// file yields a valid snapshot.
    pub snapshot: Option<(Vec<u8>, LoadedFrom)>,
    /// Files that existed but failed validation (0, 1, or 2). Non-zero
    /// with `snapshot: None` means all history was lost to corruption.
    pub corrupt_discarded: u32,
}

/// The rotating last-good path for `path`: `<path>.prev` (suffix
/// appended, existing extension kept).
pub fn backup_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".prev");
    PathBuf::from(os)
}

fn temp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Writes `bytes` to `path` atomically: write to `<path>.tmp`, fsync,
/// rename over `path`, then best-effort fsync of the parent directory.
/// A crash at any point leaves either the old file or the new one —
/// never a torn mix.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let tmp = temp_path(path);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Directory fsync makes the rename itself durable; failure here
        // (e.g. exotic filesystems) costs durability, not atomicity.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Rotates the current snapshot (if any) to `<path>.prev`, then
/// atomically writes `bytes` as the new primary. After every successful
/// call the previous checkpoint survives as the backup, so corruption of
/// the newest file costs one interval, not the whole campaign.
pub fn write_rotating(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    if path.exists() {
        fs::rename(path, backup_path(path))?;
    }
    atomic_write(path, bytes)
}

/// Loads the newest snapshot that passes full validation: the primary if
/// it parses, else the `.prev` backup if it parses, else nothing.
/// Corrupt files are counted, never propagated as panics or parse errors
/// — only genuine I/O failures (permissions, bad descriptors) error.
pub fn load_latest(path: &Path) -> Result<LoadOutcome, CheckpointError> {
    let mut corrupt = 0u32;
    for (candidate, origin) in
        [(path.to_path_buf(), LoadedFrom::Primary), (backup_path(path), LoadedFrom::Backup)]
    {
        match fs::read(&candidate) {
            Ok(bytes) => {
                if Snapshot::parse(&bytes).is_ok() {
                    return Ok(LoadOutcome {
                        snapshot: Some((bytes, origin)),
                        corrupt_discarded: corrupt,
                    });
                }
                corrupt += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(LoadOutcome { snapshot: None, corrupt_discarded: corrupt })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f64_bits(-0.0);
        w.put_f64_bits(f64::NAN);
        w.put_str("terminal");
        let mut b = SnapshotBuilder::new();
        b.add_section(1, w.into_bytes());
        b.add_section(2, Vec::new());
        b.add_section(9, vec![1, 2, 3]);
        b.finish().expect("unique sections")
    }

    #[test]
    fn round_trip_preserves_primitives_bit_for_bit() {
        let bytes = sample();
        let snap = Snapshot::parse(&bytes).expect("valid snapshot");
        assert_eq!(snap.section_ids(), vec![1, 2, 9]);
        let mut r = ByteReader::new(snap.require_section(1).expect("section 1"));
        assert_eq!(r.get_u8("a").expect("u8"), 7);
        assert!(r.get_bool("b").expect("bool"));
        assert_eq!(r.get_u32("c").expect("u32"), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("d").expect("u64"), u64::MAX);
        assert_eq!(r.get_i64("e").expect("i64"), -42);
        assert_eq!(r.get_f64_bits("f").expect("f64").to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64_bits("g").expect("f64").is_nan());
        assert_eq!(r.get_str("h").expect("str"), "terminal");
        r.expect_exhausted("tail").expect("fully consumed");
        assert_eq!(snap.section(2).expect("section 2"), &[] as &[u8]);
        assert_eq!(snap.section(9).expect("section 9"), &[1, 2, 3]);
        assert!(snap.section(3).is_none());
        assert_eq!(snap.require_section(3), Err(CheckpointError::MissingSection { id: 3 }));
    }

    #[test]
    fn duplicate_sections_rejected_at_build_and_parse() {
        let mut b = SnapshotBuilder::new();
        b.add_section(4, vec![1]);
        b.add_section(4, vec![2]);
        assert_eq!(b.finish(), Err(CheckpointError::DuplicateSection { id: 4 }));
    }

    #[test]
    fn every_truncation_errors_never_panics() {
        let bytes = sample();
        for keep in 0..bytes.len() {
            let err = Snapshot::parse(&bytes[..keep]);
            assert!(err.is_err(), "truncation to {keep} bytes must fail validation");
        }
        assert!(Snapshot::parse(&bytes).is_ok());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    Snapshot::parse(&corrupt).is_err(),
                    "flip of byte {byte} bit {bit} must fail validation"
                );
            }
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert_eq!(
            Snapshot::parse(&bytes).expect_err("magic"),
            CheckpointError::BadMagic { found: [b'X', b'S', b'C', b'P'] }
        );
        let mut bytes = sample();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            Snapshot::parse(&bytes).expect_err("version"),
            CheckpointError::UnsupportedVersion { found: 99 }
        );
    }

    #[test]
    fn reader_bounds_and_bad_bool() {
        let mut r = ByteReader::new(&[2]);
        assert_eq!(r.clone().get_u32("x"), Err(CheckpointError::Truncated { context: "x" }));
        assert_eq!(r.get_bool("flag"), Err(CheckpointError::Malformed { context: "flag" }));
        let huge_len = u64::MAX.to_le_bytes();
        let mut r = ByteReader::new(&huge_len);
        assert!(r.get_bytes("blob").is_err());
    }

    #[test]
    fn atomic_write_rotate_and_backup_recovery() {
        let dir = std::env::temp_dir().join(format!("sscp-test-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("campaign.ckpt");

        let first = sample();
        write_rotating(&path, &first).expect("first write");
        let out = load_latest(&path).expect("load");
        let (bytes, from) = out.snapshot.expect("snapshot present");
        assert_eq!((bytes, from, out.corrupt_discarded), (first.clone(), LoadedFrom::Primary, 0));

        let mut b = SnapshotBuilder::new();
        b.add_section(1, vec![9, 9]);
        let second = b.finish().expect("build");
        write_rotating(&path, &second).expect("second write");
        assert!(backup_path(&path).exists(), "rotation must keep the previous file");

        // Corrupt the primary: load falls back to the previous checkpoint.
        let mut torn = second.clone();
        torn[6] ^= 0x40;
        fs::write(&path, &torn).expect("corrupt primary");
        let out = load_latest(&path).expect("load");
        let (bytes, from) = out.snapshot.expect("backup survives");
        assert_eq!((bytes, from, out.corrupt_discarded), (first, LoadedFrom::Backup, 1));

        // Corrupt both: nothing loadable, both counted, no panic.
        fs::write(backup_path(&path), b"junk").expect("corrupt backup");
        let out = load_latest(&path).expect("load");
        assert!(out.snapshot.is_none());
        assert_eq!(out.corrupt_discarded, 2);

        // Missing both: clean empty outcome.
        fs::remove_file(&path).expect("rm");
        fs::remove_file(backup_path(&path)).expect("rm");
        let out = load_latest(&path).expect("load");
        assert!(out.snapshot.is_none());
        assert_eq!(out.corrupt_discarded, 0);

        let _ = fs::remove_dir_all(&dir);
    }
}
