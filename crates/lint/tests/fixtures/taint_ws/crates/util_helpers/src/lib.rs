//! Fixture helper crate, opted out of the simulation role via
//! `[package.metadata.starlint] role = "tooling"`: its determinism
//! sources escape the per-file D-series and must be caught by the
//! interprocedural taint pass when simulation code calls in.
#![warn(missing_docs)]

use std::collections::HashMap;
use std::time::Instant;

/// Milliseconds since an arbitrary epoch — two hops from the caller to
/// the clock read, exercising multi-hop chain reporting.
pub fn stamp_ms() -> u64 {
    now_raw()
}

fn now_raw() -> u64 {
    Instant::now().elapsed().as_millis() as u64
}

/// Spreads values through a `HashMap` and folds them in iteration order —
/// the classic order-nondeterminism the X103 rule exists for.
pub fn spread(xs: &[u64]) -> u64 {
    let mut m: HashMap<u64, u64> = HashMap::new();
    for (i, x) in xs.iter().enumerate() {
        m.insert(i as u64, *x);
    }
    let mut acc = 0u64;
    for (k, v) in m.iter() {
        acc = acc.wrapping_mul(31).wrapping_add(k ^ v);
    }
    acc
}

/// A clock read justified where it happens: the allow directive at the
/// source suppresses every call chain through it.
pub fn logged_at(tick: u64) -> u64 {
    // starlint: allow(X101, reason = "diagnostic timestamp; never fed back into simulation state")
    let _wall = Instant::now();
    tick
}
