//! Fixture simulation crate: never touches a determinism source itself,
//! but calls into `util_helpers`, which does. The cross-crate taint pass
//! must attribute the helper's sources to these entry points.
#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// One simulation step; transitively reaches a wall-clock read two calls
/// away (`util_helpers::stamp_ms` → `util_helpers::now_raw`).
pub fn step(tick: u64) -> u64 {
    util_helpers::stamp_ms() + tick
}

/// Tallies values through the helper's hash-order iteration.
pub fn tally(xs: &[u64]) -> u64 {
    util_helpers::spread(xs)
}

/// Logging path: the helper justifies its clock read at the source with
/// an allow directive, so no finding may surface here.
pub fn trace(tick: u64) -> u64 {
    util_helpers::logged_at(tick)
}
