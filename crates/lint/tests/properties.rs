//! Property tests for the starlint lexer and rule engine.
//!
//! Two families of invariants:
//!
//! 1. **No false positives from literal context.** Banned names that appear
//!    only inside string literals, raw strings, or (nested) comments must
//!    never produce a finding, no matter how pathological the surrounding
//!    quoting is.
//! 2. **Span round-tripping.** Every token's `(start, text)` pair must slice
//!    back out of the original source exactly, tokens must be in order, and
//!    concatenating all token texts with the skipped whitespace must rebuild
//!    the input.

use proptest::prelude::*;

use starsense_lint::graph::WorkspaceGraph;
use starsense_lint::lexer::{lex, Token, TokenKind};
use starsense_lint::parser::parse_items;
use starsense_lint::rules::{check_file, FileContext, FileKind};

/// A lib-file context in a simulation crate: the strictest configuration,
/// with every rule family (D, P, Q) active.
fn strict_ctx() -> FileContext {
    FileContext {
        path: "crates/fake/src/gen.rs".to_string(),
        kind: FileKind::Lib,
        simulation: true,
        crate_root: false,
    }
}

/// Names that trigger D- or P-series rules when used as real code.
fn banned_names() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "thread_rng",
        "from_entropy",
        "unwrap",
        "expect",
        "panic!",
        "unimplemented!",
        "todo!",
        "dbg!",
        "println!",
        "SystemTime",
        "Instant",
    ])
}

/// Benign filler that cannot terminate a string or comment early: no quotes,
/// no backslashes, no `*`/`/` pairs, no `#`.
fn filler() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(vec![
            'a', 'b', 'z', 'X', '0', '9', ' ', '_', '.', ',', ';', ':', '(', ')', '<', '>', '=',
            '+', '-', '!', '?', '%', '\t',
        ]),
        0..=24,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// Filler additionally safe inside a plain (non-raw) string literal and a
/// line comment (no newline).
fn inline_filler() -> impl Strategy<Value = String> {
    filler()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// A banned call spelled inside a plain string literal is data, not code.
    #[test]
    fn banned_names_in_strings_are_ignored(
        name in banned_names(),
        pre in inline_filler(),
        post in inline_filler(),
    ) {
        let src = format!(
            "fn f() -> String {{\n    let s = \"{pre}{name}(){post}\";\n    s.into()\n}}\n"
        );
        let findings = check_file(&src, &strict_ctx());
        prop_assert!(
            findings.is_empty(),
            "string literal leaked findings for `{}` in {:?}: {:?}",
            name, src, findings
        );
    }

    /// Raw strings with arbitrary hash fences are just as inert.
    #[test]
    fn banned_names_in_raw_strings_are_ignored(
        name in banned_names(),
        hashes in 0usize..=4,
        pre in inline_filler(),
    ) {
        let fence = "#".repeat(hashes);
        let src = format!(
            "fn f() {{\n    let _s = r{fence}\"{pre} x.{name}() {pre}\"{fence};\n}}\n"
        );
        let findings = check_file(&src, &strict_ctx());
        prop_assert!(
            findings.is_empty(),
            "raw string leaked findings for `{}` in {:?}: {:?}",
            name, src, findings
        );
    }

    /// Line comments never produce findings (and plain `//` text never parses
    /// as an allow-directive unless it uses the directive syntax).
    #[test]
    fn banned_names_in_line_comments_are_ignored(
        name in banned_names(),
        pre in inline_filler(),
    ) {
        let src = format!("// {pre} uses {name}() internally\nfn f() {{}}\n");
        let findings = check_file(&src, &strict_ctx());
        prop_assert!(
            findings.is_empty(),
            "line comment leaked findings for `{}`: {:?}",
            name, findings
        );
    }

    /// Block comments nest in Rust; banned names stay inert at any depth.
    #[test]
    fn banned_names_in_nested_block_comments_are_ignored(
        name in banned_names(),
        depth in 1usize..=5,
        pre in inline_filler(),
    ) {
        let open = "/* ".repeat(depth);
        let close = " */".repeat(depth);
        let src = format!("{open}{pre} {name}() {pre}{close}\nfn f() {{}}\n");
        let findings = check_file(&src, &strict_ctx());
        prop_assert!(
            findings.is_empty(),
            "nested comment (depth {}) leaked findings for `{}`: {:?}",
            depth, name, findings
        );
    }

    /// The same banned call as *real code* right next to the quoted copies
    /// is still caught — literal immunity must not bleed into code.
    #[test]
    fn real_violation_next_to_quoted_copy_is_still_caught(
        pre in inline_filler(),
    ) {
        let src = format!(
            "// {pre} thread_rng
fn f() -> u64 {{
    let _doc = \"{pre}thread_rng(){pre}\";
    let mut rng = rand::thread_rng();
    rng.next_u64()
}}
"
        );
        let findings = check_file(&src, &strict_ctx());
        prop_assert_eq!(
            findings.len(), 1,
            "expected exactly the one real call to be flagged: {:?}", &findings
        );
        prop_assert_eq!(findings[0].code, "D103");
    }
}

/// Source fragments that are individually valid token sequences; random
/// concatenations (whitespace-separated) exercise the lexer's maximal-munch
/// and literal handling together.
fn fragments() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "fn",
        "let",
        "ident_0",
        "x",
        "'a",
        "'a'",
        "'\\n'",
        "0",
        "1.5",
        "1.",
        "0x_ff",
        "1e10",
        "1..2",
        "\"str\"",
        "\"\\\"esc\\\"\"",
        "r\"raw\"",
        "r#\"fen\"ce\"#",
        "b\"bytes\"",
        "// line\n",
        "/* blk */",
        "/* a /* b */ c */",
        "/// doc\n",
        "::",
        "->",
        "=>",
        "..=",
        "<<=",
        ">>",
        "&&",
        "||",
        "==",
        "!=",
        "+",
        "{",
        "}",
        "(",
        ")",
        "[",
        "]",
        ";",
        ",",
        "#",
        "!",
        "?",
        "@",
        "0b01",
        "0o7",
        "12_345u64",
        "3.14f32",
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Every token's span slices back out of the source verbatim, spans are
    /// strictly ordered, and the gaps between them are pure whitespace — so
    /// tokens plus whitespace reconstruct the input byte-for-byte.
    #[test]
    fn token_spans_round_trip(parts in prop::collection::vec(fragments(), 0..40)) {
        let src: String = parts.join(" ");
        let tokens = lex(&src);
        let mut cursor = 0usize;
        for t in &tokens {
            prop_assert!(
                t.start >= cursor,
                "token {:?} starts at {} before cursor {}", t.text, t.start, cursor
            );
            prop_assert!(
                src[cursor..t.start].chars().all(char::is_whitespace),
                "non-whitespace gap {:?} before token {:?}",
                &src[cursor..t.start], t.text
            );
            let end = t.start + t.text.len();
            prop_assert!(end <= src.len());
            prop_assert_eq!(
                &src[t.start..end], t.text,
                "span [{}, {}) does not slice back to the token text", t.start, end
            );
            cursor = end;
        }
        prop_assert!(
            src[cursor..].chars().all(char::is_whitespace),
            "trailing non-whitespace {:?} left untokenized", &src[cursor..]
        );
        prop_assert!(
            tokens.iter().all(|t| !matches!(t.kind, TokenKind::Unknown)),
            "valid fragments must not lex to Unknown: {:?}",
            tokens.iter().filter(|t| matches!(t.kind, TokenKind::Unknown)).collect::<Vec<_>>()
        );
    }

    /// Line/column bookkeeping agrees with an independent count of newlines
    /// up to each token's byte offset.
    #[test]
    fn line_numbers_match_newline_count(parts in prop::collection::vec(fragments(), 0..30)) {
        let src: String = parts.join("\n");
        for t in lex(&src) {
            let expected_line = 1 + src[..t.start].matches('\n').count() as u32;
            prop_assert_eq!(
                t.line, expected_line,
                "token {:?} at byte {} reports line {} but source has {} newlines before it",
                t.text, t.start, t.line, expected_line - 1
            );
        }
    }

    /// The item parser and graph builder accept *any* token stream without
    /// panicking: malformed streams just yield fewer items. This is the one
    /// invariant the parser promises (it has no error path at all).
    #[test]
    fn parser_and_graph_never_panic(parts in prop::collection::vec(fragments(), 0..60)) {
        let src: String = parts.join(" ");
        let tokens = lex(&src);
        let sig: Vec<Token<'_>> = tokens
            .into_iter()
            .filter(|t| !matches!(
                t.kind,
                TokenKind::LineComment | TokenKind::BlockComment | TokenKind::DocComment
            ))
            .collect();
        let _ = parse_items(&sig);
        let mut g = WorkspaceGraph::default();
        g.add_file(&src, &strict_ctx(), "fuzz-crate");
        let _ = g.resolve_edges();
    }
}

/// Base sources for the perturbation property: each pairs a snippet with
/// the finding codes it must always produce (comments and whitespace must
/// never change *what* is found, only where).
const PERTURBATION_BASES: &[(&str, &[&str])] = &[
    ("fn f() -> u64 { let mut rng = rand::thread_rng(); rng.next_u64() }", &["D103"]),
    ("fn f(x: Option<u8>) -> u8 { x.unwrap() }", &["P101"]),
    ("fn f(a: f64) -> bool { a == 0.3 }", &["Q101"]),
    ("fn f(x: u8) -> u8 { x + 1 }", &[]),
];

/// Token separators that are pure noise to the rule engine: whitespace and
/// comments that are not allow directives.
fn noise_separators() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![" ", "  ", "\n", "\n\n", "\t", " /* note */ ", " /* a /* b */ c */ "])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Re-spacing a file and sprinkling comments between its tokens must
    /// leave the finding codes exactly unchanged: rules see significant
    /// tokens, never layout.
    #[test]
    fn findings_are_invariant_under_comment_and_whitespace_perturbation(
        base in 0usize..PERTURBATION_BASES.len(),
        seps in prop::collection::vec(noise_separators(), 64),
    ) {
        let (src, expected) = PERTURBATION_BASES[base];
        let tokens = lex(src);
        let mut perturbed = String::new();
        for (i, t) in tokens.iter().enumerate() {
            perturbed.push_str(seps[i % seps.len()]);
            perturbed.push_str(t.text);
        }
        perturbed.push_str(seps[tokens.len() % seps.len()]);
        let codes: Vec<&str> =
            check_file(&perturbed, &strict_ctx()).iter().map(|f| f.code).collect();
        prop_assert_eq!(
            &codes[..], expected,
            "perturbation changed findings for {:?}:\n{}", src, perturbed
        );
    }
}
