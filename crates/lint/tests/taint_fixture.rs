//! End-to-end checks of the cross-crate taint pass against the fixture
//! workspace in `tests/fixtures/taint_ws`: a simulation crate (`sim_app`)
//! calling into a helper crate (`util_helpers`) whose manifest opts it
//! out of the simulation role, so only the interprocedural pass can see
//! its clock reads and hash-order iteration.

use std::path::{Path, PathBuf};

use starsense_lint::lint_workspace;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures").join("taint_ws")
}

#[test]
fn cross_crate_taint_chains_are_detected_with_full_chains() {
    let report = lint_workspace(&fixture_root()).expect("fixture workspace lints");
    let codes: Vec<&str> = report.findings.iter().map(|f| f.code).collect();
    assert_eq!(codes, ["X101", "X103"], "unexpected findings: {:#?}", report.findings);

    let x101 = &report.findings[0];
    assert_eq!(x101.path, "crates/util_helpers/src/lib.rs");
    assert!(x101.message.contains("Instant::now()"), "{}", x101.message);
    assert!(x101.message.contains("sim_app::step"), "{}", x101.message);
    let chain = x101.chain.join(" -> ");
    assert!(chain.contains("sim_app::step (crates/sim_app/src/lib.rs:"), "{chain}");
    assert!(chain.contains("util_helpers::stamp_ms"), "{chain}");
    assert!(chain.contains("util_helpers::now_raw"), "{chain}");
    assert_eq!(x101.chain.len(), 3, "{chain}");

    let x103 = &report.findings[1];
    assert!(x103.message.contains("hash-order iteration"), "{}", x103.message);
    assert!(x103.chain.join(" -> ").contains("sim_app::tally"), "{:?}", x103.chain);
}

#[test]
fn allow_at_the_source_suppresses_every_chain_through_it() {
    let report = lint_workspace(&fixture_root()).expect("fixture workspace lints");
    // `sim_app::trace` reaches `util_helpers::logged_at`'s clock read, but
    // the allow directive at the source kills the whole chain.
    assert!(
        report.findings.iter().all(|f| !f.message.contains("logged_at")),
        "suppressed source leaked: {:#?}",
        report.findings
    );
}

#[test]
fn manifest_role_override_disables_the_per_file_d_series() {
    let report = lint_workspace(&fixture_root()).expect("fixture workspace lints");
    // `util_helpers` reads Instant::now and iterates a HashMap in library
    // code; were it classified as a simulation crate, D102/D201 would
    // fire. Only X-series findings may appear.
    assert!(
        report.findings.iter().all(|f| f.code.starts_with('X')),
        "per-file D-series leaked into the tooling crate: {:#?}",
        report.findings
    );
}

#[test]
fn chains_appear_in_both_output_formats() {
    let report = lint_workspace(&fixture_root()).expect("fixture workspace lints");
    let text = report.to_text();
    assert!(text.contains("    via sim_app::step"), "{text}");
    let json = report.to_json();
    assert!(json.contains("\"code\":\"X101\""), "{json}");
    assert!(json.contains("\"chain\":[\"sim_app::step"), "{json}");
}

#[test]
fn fixture_reports_are_byte_identical_across_runs() {
    let a = lint_workspace(&fixture_root()).expect("fixture workspace lints");
    let b = lint_workspace(&fixture_root()).expect("fixture workspace lints");
    assert_eq!(a.to_text(), b.to_text());
    assert_eq!(a.to_json(), b.to_json());
}
