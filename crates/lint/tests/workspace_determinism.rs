//! The linter must hold itself to its own standard: two runs over the
//! real workspace produce byte-identical reports (finding order, text and
//! JSON rendering all deterministic), and the workspace dogfoods to zero
//! unsuppressed findings under the full rule set — per-file families plus
//! the call-graph taint and lock-order passes.

use std::path::Path;

use starsense_lint::lint_workspace;

#[test]
fn real_workspace_runs_are_byte_identical_and_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let a = lint_workspace(&root).expect("workspace lints");
    let b = lint_workspace(&root).expect("workspace lints");
    assert_eq!(a.to_text(), b.to_text(), "text report differs between runs");
    assert_eq!(a.to_json(), b.to_json(), "json report differs between runs");
    assert!(a.files_scanned > 0, "workspace walk found no files");
    assert!(a.findings.is_empty(), "workspace must dogfood clean:\n{}", a.to_text());
}
