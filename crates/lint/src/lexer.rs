//! A minimal, self-contained Rust lexer.
//!
//! The offline dependency policy forbids `syn` and friends, so `starlint`
//! carries its own tokenizer. It understands exactly enough of the
//! language to make token-stream linting sound: string literals (with
//! escapes), raw strings with arbitrary `#` fences, byte/C strings, char
//! literals vs. lifetimes, nested block comments, doc comments, numeric
//! literals (including the `1.` / `1..2` / `1.max(2)` ambiguities), and
//! maximal-munch multi-character operators.
//!
//! Every token carries its byte span into the original source, so
//! `&src[tok.start..tok.start + tok.text.len()] == tok.text` always holds
//! — the property suite round-trips this on pathological inputs.

/// Lexical class of a token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the engine matches on the text).
    Ident,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
    /// Integer literal, including hex/octal/binary forms and suffixes.
    Int,
    /// Float literal, including exponent forms and `f32`/`f64` suffixes.
    Float,
    /// String literal `"..."`, byte string `b"..."`, or C string `c"..."`.
    Str,
    /// Raw string literal `r"..."` / `r#"..."#` (and `br`/`cr` forms).
    RawStr,
    /// Character literal such as `'x'` or `'\n'`.
    Char,
    /// Non-doc line comment `// ...`.
    LineComment,
    /// Doc line comment `/// ...` or `//! ...`.
    DocComment,
    /// Block comment `/* ... */` (nested), doc or not.
    BlockComment,
    /// Operator or delimiter, possibly multi-character (`==`, `..=`, …).
    Punct,
    /// A byte sequence the lexer does not recognize (kept, never dropped).
    Unknown,
}

/// One lexed token with its position in the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token<'a> {
    /// Lexical class.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: &'a str,
    /// Byte offset of the token's first byte in the source.
    pub start: usize,
    /// 1-based source line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte within its line.
    pub col: u32,
}

/// Multi-character operators, longest first so munching is maximal.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor { src, bytes: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    /// Advances past one char, maintaining line/column bookkeeping.
    fn bump(&mut self) {
        if let Some(c) = self.peek() {
            self.pos += c.len_utf8();
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    fn eof(&self) -> bool {
        self.pos >= self.bytes.len()
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `src` in full. Never fails: unrecognized bytes become
/// [`TokenKind::Unknown`] tokens and unterminated literals or comments
/// extend to end of input.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while !cur.eof() {
        // Skip whitespace between tokens.
        while let Some(c) = cur.peek() {
            if c.is_whitespace() {
                cur.bump();
            } else {
                break;
            }
        }
        if cur.eof() {
            break;
        }
        let start = cur.pos;
        let (line, col) = (cur.line, cur.col);
        let kind = lex_one(&mut cur);
        debug_assert!(cur.pos > start, "lexer must always make progress");
        out.push(Token { kind, text: &src[start..cur.pos], start, line, col });
    }
    out
}

/// Lexes the single token starting at the cursor (not on whitespace/EOF).
fn lex_one(cur: &mut Cursor<'_>) -> TokenKind {
    let c = match cur.peek() {
        Some(c) => c,
        None => return TokenKind::Unknown,
    };

    if cur.starts_with("//") {
        return lex_line_comment(cur);
    }
    if cur.starts_with("/*") {
        return lex_block_comment(cur);
    }
    if c == '"' {
        cur.bump();
        lex_string_body(cur);
        return TokenKind::Str;
    }
    if c == '\'' {
        return lex_quote(cur);
    }
    if c.is_ascii_digit() {
        return lex_number(cur);
    }
    if is_ident_start(c) {
        return lex_ident_or_prefixed(cur);
    }
    // Maximal-munch operators, then any single char as punctuation.
    for op in OPERATORS {
        if cur.starts_with(op) {
            cur.bump_n(op.chars().count());
            return TokenKind::Punct;
        }
    }
    cur.bump();
    if c.is_ascii_punctuation() {
        TokenKind::Punct
    } else {
        TokenKind::Unknown
    }
}

fn lex_line_comment(cur: &mut Cursor<'_>) -> TokenKind {
    // `///` (but not `////`) and `//!` are doc comments.
    let doc = (cur.starts_with("///") && !cur.starts_with("////")) || cur.starts_with("//!");
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        cur.bump();
    }
    if doc {
        TokenKind::DocComment
    } else {
        TokenKind::LineComment
    }
}

fn lex_block_comment(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump_n(2); // consume `/*`
    let mut depth = 1u32;
    while depth > 0 && !cur.eof() {
        if cur.starts_with("/*") {
            depth += 1;
            cur.bump_n(2);
        } else if cur.starts_with("*/") {
            depth -= 1;
            cur.bump_n(2);
        } else {
            cur.bump();
        }
    }
    TokenKind::BlockComment
}

/// Consumes a double-quoted string body after the opening quote.
fn lex_string_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.peek() {
        cur.bump();
        if c == '\\' {
            // The escaped character (incl. `\"` and `\\`) is part of the
            // literal; `\u{..}` needs no special casing because `u` is the
            // escaped char and braces are ordinary body chars.
            cur.bump();
        } else if c == '"' {
            return;
        }
    }
}

/// Consumes a raw string starting at `r`/`br`/`cr` + fences. Assumes the
/// caller verified the shape. Terminates at `"` followed by the same
/// number of `#` fences.
fn lex_raw_string_body(cur: &mut Cursor<'_>, hashes: usize) {
    // Opening quote.
    cur.bump();
    while !cur.eof() {
        if cur.peek() == Some('"') {
            let mut ok = true;
            for k in 0..hashes {
                if cur.peek_at(1 + k) != Some('#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                cur.bump_n(1 + hashes);
                return;
            }
        }
        cur.bump();
    }
}

fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    // Disambiguate lifetime `'a` from char `'a'`.
    let next = cur.peek_at(1);
    let after = cur.peek_at(2);
    match next {
        Some(n) if is_ident_start(n) && after != Some('\'') => {
            // Lifetime: consume `'` then the identifier.
            cur.bump();
            while let Some(c) = cur.peek() {
                if is_ident_continue(c) {
                    cur.bump();
                } else {
                    break;
                }
            }
            TokenKind::Lifetime
        }
        _ => {
            // Char literal. Consume opening quote, then body with escapes.
            cur.bump();
            while let Some(c) = cur.peek() {
                cur.bump();
                if c == '\\' {
                    cur.bump();
                } else if c == '\'' {
                    break;
                }
            }
            TokenKind::Char
        }
    }
}

fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    let mut float = false;
    if cur.starts_with("0x") || cur.starts_with("0o") || cur.starts_with("0b") {
        cur.bump_n(2);
        while let Some(c) = cur.peek() {
            if c.is_ascii_hexdigit() || c == '_' {
                cur.bump();
            } else {
                break;
            }
        }
        consume_suffix(cur);
        return TokenKind::Int;
    }
    consume_digits(cur);
    // A `.` continues the number only if it is not `..` (range) and not
    // followed by an identifier (method call like `1.max(2)`).
    if cur.peek() == Some('.') {
        match cur.peek_at(1) {
            Some(c2) if c2 == '.' || is_ident_start(c2) => {}
            _ => {
                float = true;
                cur.bump();
                consume_digits(cur);
            }
        }
    }
    // Exponent.
    if matches!(cur.peek(), Some('e') | Some('E')) {
        let (a, b) = (cur.peek_at(1), cur.peek_at(2));
        let exp_digits = matches!(a, Some(d) if d.is_ascii_digit())
            || (matches!(a, Some('+') | Some('-')) && matches!(b, Some(d) if d.is_ascii_digit()));
        if exp_digits {
            float = true;
            cur.bump(); // e
            if matches!(cur.peek(), Some('+') | Some('-')) {
                cur.bump();
            }
            consume_digits(cur);
        }
    }
    // Type suffix (`u32`, `f64`, …).
    let suffix_start = cur.pos;
    consume_suffix(cur);
    let suffix = &cur.src[suffix_start..cur.pos];
    if suffix.starts_with('f') {
        float = true;
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

fn consume_digits(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.peek() {
        if c.is_ascii_digit() || c == '_' {
            cur.bump();
        } else {
            break;
        }
    }
}

fn consume_suffix(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            cur.bump();
        } else {
            break;
        }
    }
}

/// Lexes either a plain identifier or a prefixed string literal
/// (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`, `cr"…"`, raw identifiers).
fn lex_ident_or_prefixed(cur: &mut Cursor<'_>) -> TokenKind {
    let start = cur.pos;
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            cur.bump();
        } else {
            break;
        }
    }
    let ident = &cur.src[start..cur.pos];
    let raw_capable = matches!(ident, "r" | "br" | "cr");
    let plain_str_prefix = matches!(ident, "b" | "c");

    if raw_capable {
        // Count fences, then require a quote.
        let mut hashes = 0usize;
        while cur.peek_at(hashes) == Some('#') {
            hashes += 1;
        }
        if cur.peek_at(hashes) == Some('"') {
            cur.bump_n(hashes);
            lex_raw_string_body(cur, hashes);
            return TokenKind::RawStr;
        }
        if ident == "r" && hashes == 1 {
            // Raw identifier `r#foo`: consume the fence and the name.
            if matches!(cur.peek_at(1), Some(c) if is_ident_start(c)) {
                cur.bump(); // '#'
                while let Some(c) = cur.peek() {
                    if is_ident_continue(c) {
                        cur.bump();
                    } else {
                        break;
                    }
                }
                return TokenKind::Ident;
            }
        }
    } else if plain_str_prefix && cur.peek() == Some('"') {
        cur.bump();
        lex_string_body(cur);
        return TokenKind::Str;
    }
    TokenKind::Ident
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn spans_slice_back_to_source() {
        let src = "let x = 1.5e3; // done\nfn f(a: &str) -> u8 { b\"hi\" }";
        for t in lex(src) {
            assert_eq!(&src[t.start..t.start + t.text.len()], t.text);
        }
    }

    #[test]
    fn strings_swallow_escapes_and_quotes() {
        let toks = kinds(r#"let s = "he said \"unwrap()\" loudly"; x"#);
        assert!(toks.contains(&(TokenKind::Str, r#""he said \"unwrap()\" loudly""#)));
        assert!(toks.contains(&(TokenKind::Ident, "x")));
    }

    #[test]
    fn raw_strings_respect_fences() {
        let src = r###"let s = r#"contains "quotes" and \ slashes"# ;"###;
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::RawStr && t.contains("quotes")));
        assert_eq!(toks.last(), Some(&(TokenKind::Punct, ";")));
    }

    #[test]
    fn byte_and_c_strings_lex_as_strings() {
        let toks = kinds(r####"(b"bytes", c"cstr", br##"raw"##)"####);
        let strs: Vec<_> =
            toks.iter().filter(|(k, _)| matches!(k, TokenKind::Str | TokenKind::RawStr)).collect();
        assert_eq!(strs.len(), 3);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = kinds("before /* outer /* inner */ still outer */ after");
        assert_eq!(toks.first().map(|(k, t)| (*k, *t)), Some((TokenKind::Ident, "before")));
        assert_eq!(toks.last().map(|(k, t)| (*k, *t)), Some((TokenKind::Ident, "after")));
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::BlockComment);
    }

    #[test]
    fn doc_comments_are_distinguished() {
        let toks = kinds("/// outer docs\n//! inner docs\n// plain\n//// not doc");
        let ks: Vec<TokenKind> = toks.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            ks,
            vec![
                TokenKind::DocComment,
                TokenKind::DocComment,
                TokenKind::LineComment,
                TokenKind::LineComment
            ]
        );
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let toks = kinds(r"fn f<'a>(x: &'a str) { let c = 'x'; let q = '\''; let u = '_'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(), 2);
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).map(|(_, t)| *t).collect();
        assert_eq!(chars, vec!["'x'", r"'\''", "'_'"]);
    }

    #[test]
    fn numbers_floats_ranges_and_method_calls() {
        let toks = kinds("1.5 + 2. + 3e4 + 0x1f + 1..2 + 1.max(2) + 7f64 + 1_000");
        let floats: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Float).map(|(_, t)| *t).collect();
        assert_eq!(floats, vec!["1.5", "2.", "3e4", "7f64"]);
        assert!(toks.contains(&(TokenKind::Punct, "..")));
        assert!(toks.contains(&(TokenKind::Int, "0x1f")));
        assert!(toks.contains(&(TokenKind::Int, "1_000")));
    }

    #[test]
    fn operators_munch_maximally() {
        let toks = kinds("a == b != c ..= d ; e <= f >= g && h");
        assert!(toks.contains(&(TokenKind::Punct, "==")));
        assert!(toks.contains(&(TokenKind::Punct, "!=")));
        assert!(toks.contains(&(TokenKind::Punct, "..=")));
        assert!(toks.contains(&(TokenKind::Punct, "<=")));
        assert!(toks.contains(&(TokenKind::Punct, ">=")));
        assert!(toks.contains(&(TokenKind::Punct, "&&")));
    }

    #[test]
    fn unterminated_constructs_reach_eof_without_panic() {
        for src in ["\"never closed", "/* never closed", "r#\"never closed", "'"] {
            let toks = lex(src);
            assert!(!toks.is_empty());
        }
    }

    #[test]
    fn line_and_col_are_one_based_and_track_newlines() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn raw_identifiers_stay_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "r#type")));
    }
}
