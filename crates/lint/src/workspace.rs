//! Workspace discovery and whole-tree linting.
//!
//! `starlint` finds crates the same way cargo does — by reading the root
//! `Cargo.toml`'s `members` globs — but with a deliberately tiny
//! hand-rolled parser (the offline policy vendors no TOML crate, and the
//! workspace's own manifests are the only input it must handle).

use std::fs;
use std::path::{Path, PathBuf};

use crate::graph::WorkspaceGraph;
use crate::rules::{allow_directives, check_file, FileContext, FileKind, Finding};
use crate::taint::{self, AllowMap};

/// How a crate is classified for rule scoping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrateRole {
    /// Produces figures/results: determinism (D-series) rules apply.
    Simulation,
    /// Developer tooling (the linter itself, benches, vendored shims):
    /// may read clocks, so the D-series is skipped. P/Q still apply.
    Tooling,
}

/// Crates whose *job* is nondeterministic-by-nature tooling. Everything
/// else — including every future crate — defaults to `Simulation`, so new
/// code is held to the strict rules unless this list says otherwise. A
/// crate can also opt out explicitly in its own manifest:
///
/// ```toml
/// [package.metadata.starlint]
/// role = "tooling"
/// ```
const TOOLING_CRATES: &[&str] =
    &["starsense-lint", "starsense-bench", "rand", "proptest", "criterion"];

/// One crate discovered in the workspace.
#[derive(Clone, Debug)]
pub struct CrateInfo {
    /// Package name from `Cargo.toml`.
    pub name: String,
    /// Directory containing the crate's `Cargo.toml`.
    pub dir: PathBuf,
    /// Rule-scoping classification.
    pub role: CrateRole,
}

/// Result of linting the whole workspace.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All unsuppressed findings, sorted by path then position.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Names of the crates scanned.
    pub crates: Vec<String>,
}

impl LintReport {
    /// Renders findings one per line as `path:line:col CODE message`,
    /// followed by indented `via` lines for X-series call chains.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{}:{}:{} {} {}\n", f.path, f.line, f.col, f.code, f.message));
            for hop in &f.chain {
                out.push_str(&format!("    via {hop}\n"));
            }
        }
        out.push_str(&format!(
            "starlint: {} finding(s) in {} file(s) across {} crate(s)\n",
            self.findings.len(),
            self.files_scanned,
            self.crates.len()
        ));
        out
    }

    /// Renders the report as a single JSON object (machine-readable).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let chain =
                f.chain.iter().map(|hop| format!("\"{}\"", esc(hop))).collect::<Vec<_>>().join(",");
            out.push_str(&format!(
                "{{\"path\":\"{}\",\"line\":{},\"col\":{},\"code\":\"{}\",\"message\":\"{}\",\
                 \"chain\":[{}]}}",
                esc(&f.path),
                f.line,
                f.col,
                f.code,
                esc(&f.message),
                chain
            ));
        }
        out.push_str(&format!(
            "],\"files_scanned\":{},\"crates\":{}}}",
            self.files_scanned,
            self.crates.len()
        ));
        out
    }
}

/// Extracts `key = "value"` style entries from a (workspace-local) TOML
/// section without a real TOML parser.
fn toml_string_value(toml: &str, section: &str, key: &str) -> Option<String> {
    let mut in_section = false;
    for line in toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_section = line == format!("[{section}]");
            continue;
        }
        if !in_section {
            continue;
        }
        if let Some(rest) = line.strip_prefix(key) {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let rest = rest.trim();
                let rest = rest.strip_prefix('"')?;
                let end = rest.find('"')?;
                return Some(rest[..end].to_string());
            }
        }
    }
    None
}

/// Extracts the `members = [...]` array from the `[workspace]` section.
fn workspace_members(toml: &str) -> Vec<String> {
    let Some(at) = toml.find("members") else {
        return Vec::new();
    };
    let rest = &toml[at..];
    let Some(open) = rest.find('[') else {
        return Vec::new();
    };
    let Some(close) = rest[open..].find(']') else {
        return Vec::new();
    };
    rest[open + 1..open + close]
        .split(',')
        .map(|s| s.trim().trim_matches('"').to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Expands one member pattern (either a literal path or `dir/*`).
fn expand_member(root: &Path, pattern: &str) -> Vec<PathBuf> {
    if let Some(prefix) = pattern.strip_suffix("/*") {
        let base = root.join(prefix);
        let Ok(entries) = fs::read_dir(&base) else {
            return Vec::new();
        };
        let mut dirs: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        dirs.sort();
        dirs
    } else {
        let dir = root.join(pattern);
        if dir.join("Cargo.toml").is_file() {
            vec![dir]
        } else {
            Vec::new()
        }
    }
}

/// Discovers every crate in the workspace rooted at `root` (the root
/// package itself included, when present).
pub fn discover_crates(root: &Path) -> std::io::Result<Vec<CrateInfo>> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut crates = Vec::new();
    // The root manifest may also declare a package (this workspace does).
    if let Some(name) = toml_string_value(&manifest, "package", "name") {
        crates.push(CrateInfo { role: role_of(&name, &manifest), name, dir: root.to_path_buf() });
    }
    for pattern in workspace_members(&manifest) {
        for dir in expand_member(root, &pattern) {
            let Ok(member_toml) = fs::read_to_string(dir.join("Cargo.toml")) else {
                continue;
            };
            let Some(name) = toml_string_value(&member_toml, "package", "name") else {
                continue;
            };
            crates.push(CrateInfo { role: role_of(&name, &member_toml), name, dir });
        }
    }
    Ok(crates)
}

fn role_of(name: &str, manifest: &str) -> CrateRole {
    match toml_string_value(manifest, "package.metadata.starlint", "role").as_deref() {
        Some("tooling") => CrateRole::Tooling,
        Some("simulation") => CrateRole::Simulation,
        _ if TOOLING_CRATES.contains(&name) => CrateRole::Tooling,
        _ => CrateRole::Simulation,
    }
}

/// Collects `.rs` files under `dir` recursively, sorted for stable output.
fn rs_files_under(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            out.extend(rs_files_under(&p));
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    out
}

/// Classifies one file of a crate by its path relative to the crate dir.
fn classify(rel: &Path) -> (FileKind, bool) {
    let mut parts = rel.components().map(|c| c.as_os_str().to_string_lossy().to_string());
    let first = parts.next().unwrap_or_default();
    let second = parts.next().unwrap_or_default();
    match first.as_str() {
        "src" => {
            if second == "bin" || second == "main.rs" {
                (FileKind::Bin, false)
            } else {
                (FileKind::Lib, second == "lib.rs")
            }
        }
        "tests" => (FileKind::Test, false),
        "benches" => (FileKind::Bench, false),
        "examples" => (FileKind::Example, false),
        _ => (FileKind::Lib, false),
    }
}

/// Lints every crate of the workspace rooted at `root`: the per-file rule
/// engine on every `.rs` file, then the call-graph passes (X-series
/// taint, C102 lock order) over all library code together.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let crates = discover_crates(root)?;
    let mut report = LintReport::default();
    let mut graph = WorkspaceGraph::default();
    let mut allows = AllowMap::new();
    for info in &crates {
        report.crates.push(info.name.clone());
        let mut files = Vec::new();
        for sub in ["src", "tests", "benches", "examples"] {
            files.extend(rs_files_under(&info.dir.join(sub)));
        }
        for file in files {
            let Ok(src) = fs::read_to_string(&file) else {
                continue;
            };
            let rel_to_crate = file.strip_prefix(&info.dir).unwrap_or(&file);
            let (kind, crate_root) = classify(rel_to_crate);
            let display = file.strip_prefix(root).unwrap_or(&file).to_string_lossy().to_string();
            let ctx = FileContext {
                path: display,
                kind,
                simulation: info.role == CrateRole::Simulation,
                crate_root,
            };
            if kind == FileKind::Lib {
                graph.add_file(&src, &ctx, &info.name);
                allows.insert(ctx.path.clone(), allow_directives(&src));
            }
            report.files_scanned += 1;
            report.findings.extend(check_file(&src, &ctx));
        }
    }
    report.findings.extend(taint::workspace_findings(&graph, &allows));
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.code).cmp(&(&b.path, b.line, b.col, b.code)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_globs_and_literals_expand() {
        let toml = r#"
            [workspace]
            members = ["crates/*", "tools/one"]
        "#;
        assert_eq!(workspace_members(toml), vec!["crates/*", "tools/one"]);
    }

    #[test]
    fn toml_string_values_parse() {
        let toml = "[package]\nname = \"demo\"\nversion = \"1.0\"\n[lib]\nname = \"other\"\n";
        assert_eq!(toml_string_value(toml, "package", "name").as_deref(), Some("demo"));
        assert_eq!(toml_string_value(toml, "lib", "name").as_deref(), Some("other"));
        assert_eq!(toml_string_value(toml, "package", "missing"), None);
    }

    #[test]
    fn classification_follows_cargo_layout() {
        assert_eq!(classify(Path::new("src/lib.rs")), (FileKind::Lib, true));
        assert_eq!(classify(Path::new("src/slots.rs")), (FileKind::Lib, false));
        assert_eq!(classify(Path::new("src/bin/fig3.rs")), (FileKind::Bin, false));
        assert_eq!(classify(Path::new("src/main.rs")), (FileKind::Bin, false));
        assert_eq!(classify(Path::new("tests/t.rs")), (FileKind::Test, false));
        assert_eq!(classify(Path::new("benches/b.rs")), (FileKind::Bench, false));
        assert_eq!(classify(Path::new("examples/e.rs")), (FileKind::Example, false));
    }

    #[test]
    fn tooling_roles_cover_the_shims_and_linter() {
        assert_eq!(role_of("starsense-lint", ""), CrateRole::Tooling);
        assert_eq!(role_of("criterion", ""), CrateRole::Tooling);
        assert_eq!(role_of("starsense-scheduler", ""), CrateRole::Simulation);
        assert_eq!(role_of("a-brand-new-crate", ""), CrateRole::Simulation);
    }

    #[test]
    fn manifest_metadata_overrides_the_role_list() {
        let tooling =
            "[package]\nname = \"helpers\"\n[package.metadata.starlint]\nrole = \"tooling\"\n";
        assert_eq!(role_of("helpers", tooling), CrateRole::Tooling);
        let sim =
            "[package]\nname = \"rand\"\n[package.metadata.starlint]\nrole = \"simulation\"\n";
        assert_eq!(role_of("rand", sim), CrateRole::Simulation);
        let junk = "[package.metadata.starlint]\nrole = \"whatever\"\n";
        assert_eq!(role_of("rand", junk), CrateRole::Tooling);
    }

    #[test]
    fn report_renders_text_and_json() {
        let report = LintReport {
            findings: vec![
                crate::rules::Finding {
                    code: "P101",
                    message: "msg with \"quotes\"".to_string(),
                    path: "a/b.rs".to_string(),
                    line: 3,
                    col: 7,
                    chain: Vec::new(),
                },
                crate::rules::Finding {
                    code: "X101",
                    message: "clock read".to_string(),
                    path: "c/d.rs".to_string(),
                    line: 9,
                    col: 1,
                    chain: vec![
                        "sim::step (a/b.rs:2)".to_string(),
                        "util::now (c/d.rs:8)".to_string(),
                    ],
                },
            ],
            files_scanned: 1,
            crates: vec!["demo".to_string()],
        };
        let text = report.to_text();
        assert!(text.contains("a/b.rs:3:7 P101"));
        assert!(text.contains("    via sim::step (a/b.rs:2)\n    via util::now (c/d.rs:8)\n"));
        assert!(text.contains("2 finding(s)"));
        let json = report.to_json();
        assert!(json.contains("\"code\":\"P101\""));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"chain\":[]"));
        assert!(json.contains("\"chain\":[\"sim::step (a/b.rs:2)\",\"util::now (c/d.rs:8)\"]"));
    }
}
