//! Token-stream lint rules and the per-file checking engine.
//!
//! Rules are grouped in three families (DESIGN.md §5/§7):
//!
//! | Code | Meaning |
//! |------|---------|
//! | D101 | `SystemTime::now` in simulation library code |
//! | D102 | `Instant::now` in simulation library code |
//! | D103 | entropy-seeded RNG (`thread_rng`, `rand::rng`, `from_entropy`) |
//! | D201 | iteration over `HashMap`/`HashSet` (nondeterministic order) |
//! | P101 | `.unwrap()` in library code |
//! | P102 | `.expect()` in library code |
//! | P103 | `panic!` in library code |
//! | P104 | `unimplemented!` / `todo!` in library code |
//! | F101 | `.unwrap()` / `.expect()` on a fault-handling path |
//! | R101 | `std::process::exit` / `abort` in library code |
//! | Q101 | `==` / `!=` with a float operand |
//! | Q201 | `println!`/`print!`/`eprintln!`/`eprint!`/`dbg!` in library code |
//! | Q301 | crate root missing `#![warn(missing_docs)]` |
//! | C101 | order-sensitive accumulation in a spawned-thread closure |
//! | C102 | inconsistent two-lock acquisition order across functions |
//! | C103 | `Ordering::Relaxed` outside counter-only atomic operations |
//! | U101 | simulation crate root missing `#![forbid(unsafe_code)]` |
//! | X101 | clock read transitively reachable from simulation code |
//! | X102 | entropy RNG transitively reachable from simulation code |
//! | X103 | hash-order source transitively reachable from simulation code |
//! | A001 | `starlint: allow` directive without a non-empty reason |
//! | A002 | `starlint: allow` directive naming an unknown rule code |
//!
//! A finding is suppressed by `// starlint: allow(CODE, reason = "...")`
//! placed on the same line or the line directly above. A-series findings
//! (directive hygiene) are never suppressible. The C102 and X-series
//! findings come from the workspace-level call-graph pass
//! ([`crate::taint`]); an allow directive at the flagged *source* site
//! suppresses every call chain through it.

use crate::lexer::{lex, Token, TokenKind};

/// What kind of source file is being checked; decides rule applicability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `src/` (strictest: all families apply).
    Lib,
    /// Binary targets (`src/bin/**`, `src/main.rs`): P/Q201 exempt.
    Bin,
    /// Integration tests under `tests/`.
    Test,
    /// Benches under `benches/`.
    Bench,
    /// Examples under `examples/`.
    Example,
}

/// Per-file checking context.
#[derive(Clone, Debug)]
pub struct FileContext {
    /// Workspace-relative display path.
    pub path: String,
    /// File classification.
    pub kind: FileKind,
    /// True for simulation crates: the D-series applies.
    pub simulation: bool,
    /// True for the crate root (`lib.rs`): Q301 applies.
    pub crate_root: bool,
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Machine-readable rule code (`D101`, `P103`, …).
    pub code: &'static str,
    /// Human-readable explanation, including the offending text.
    pub message: String,
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// 1-based column of the finding.
    pub col: u32,
    /// For X-series (taint) findings: the call chain from the simulation
    /// entry point to the flagged source, rendered as
    /// `crate::path::fn (file:line)` entries. Empty for per-file findings.
    pub chain: Vec<String>,
}

/// The canonical crate-root attribute Q301 demands.
pub const CRATE_ROOT_ATTR: &str = "#![warn(missing_docs)]";

/// The crate-root attribute U101 demands of simulation crates.
pub const UNSAFE_ROOT_ATTR: &str = "#![forbid(unsafe_code)]";

/// All known rule codes with one-line descriptions (drives `A002`
/// validation, `--explain`, and the README table).
pub const RULES: &[(&str, &str)] = &[
    ("D101", "wall-clock read (SystemTime::now) in simulation code"),
    ("D102", "monotonic clock read (Instant::now) in simulation code"),
    ("D103", "entropy-seeded RNG (thread_rng / rand::rng / from_entropy) in simulation code"),
    ("D201", "iteration over HashMap/HashSet in simulation code (nondeterministic order)"),
    ("P101", ".unwrap() in library code"),
    ("P102", ".expect() in library code"),
    ("P103", "panic! in library code"),
    ("P104", "unimplemented!/todo! in library code"),
    ("F101", "unwrap()/expect() on a fault-handling path (file uses fault-injection types)"),
    (
        "R101",
        "process::exit / process::abort in library code (kills the process without unwinding; \
         checkpoints, panic isolation, and Drop cleanup are all bypassed)",
    ),
    ("Q101", "== or != comparison with a float operand"),
    ("Q201", "debug printing (println!/print!/eprintln!/eprint!/dbg!) in library code"),
    ("Q301", "crate root missing #![warn(missing_docs)]"),
    (
        "C101",
        "order-sensitive accumulation (push / +=) on a captured binding inside a \
         thread::spawn / scope.spawn closure without an indexed merge",
    ),
    (
        "C102",
        "two locks acquired in opposite orders by different functions of one crate \
         (deadlock and merge-order nondeterminism risk)",
    ),
    (
        "C103",
        "Ordering::Relaxed on a non-counter atomic operation (only fetch_add/fetch_sub/load \
         counters may be relaxed)",
    ),
    ("U101", "simulation crate root missing #![forbid(unsafe_code)]"),
    (
        "X101",
        "clock read (SystemTime::now / Instant::now) transitively reachable from simulation \
         code through the workspace call graph",
    ),
    (
        "X102",
        "entropy-seeded RNG (thread_rng / rand::rng / from_entropy) transitively reachable \
         from simulation code through the workspace call graph",
    ),
    (
        "X103",
        "hash-order iteration or pointer-identity hashing transitively reachable from \
         simulation code through the workspace call graph",
    ),
    ("A001", "starlint allow directive without a non-empty reason"),
    ("A002", "starlint allow directive naming an unknown rule code"),
];

fn known_code(code: &str) -> Option<&'static str> {
    RULES.iter().map(|(c, _)| *c).find(|c| *c == code)
}

/// Type and function names whose presence in a file's library code marks
/// it as a fault-handling path: code here is expected to degrade
/// gracefully, so `F101` demands a second, fault-specific justification
/// for every `unwrap()`/`expect()` on top of the generic P-series allow.
const FAULT_PATH_MARKERS: &[&str] = &[
    "FaultPlan",
    "FaultRates",
    "FaultRng",
    "FrameFault",
    "FrameFetch",
    "FrameStatus",
    "TleFault",
    "ProbeBurst",
    "PropagationSchedule",
    "SlotOutcome",
    "DegradeReason",
    "DegradationStats",
    "LossCause",
    "CatalogDefect",
    "CatalogLoad",
    "parse_catalog_lossy",
    "IdentVerdict",
];

/// A parsed `starlint: allow(...)` directive.
#[derive(Clone, Debug)]
struct Directive {
    /// Raw code text as written (may be unknown).
    code: String,
    /// Non-empty reason supplied?
    has_reason: bool,
    /// First line of the carrying comment.
    line: u32,
    /// Last line of the carrying comment (block comments span several).
    end_line: u32,
    col: u32,
}

/// Parses `starlint: allow(CODE, reason = "...")` out of a comment body.
fn parse_directive(tok: &Token<'_>) -> Option<Directive> {
    let body = tok.text;
    let at = body.find("starlint:")?;
    let rest = body[at + "starlint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    // The code runs to the first `,` or `)`; parsing the reason by its
    // quotes (rather than scanning for `)`) lets reasons contain parens.
    let code_end = rest.find([',', ')'])?;
    let code = rest[..code_end].trim().to_string();
    let has_reason = rest[code_end..]
        .strip_prefix(',')
        .and_then(|p| {
            let p = p.trim_start();
            let p = p.strip_prefix("reason")?.trim_start();
            let p = p.strip_prefix('=')?.trim_start();
            let p = p.strip_prefix('"')?;
            let end = p.find('"')?;
            Some(!p[..end].trim().is_empty())
        })
        .unwrap_or(false);
    let end_line = tok.line + tok.text.matches('\n').count() as u32;
    Some(Directive { code, has_reason, line: tok.line, end_line, col: tok.col })
}

/// A validated `starlint: allow` directive, exposed so the workspace-level
/// call-graph pass ([`crate::taint`]) can honor suppressions placed at a
/// taint source or a lock-acquisition site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowDirective {
    /// The (known) rule code the directive names.
    pub code: String,
    /// First line of the carrying comment.
    pub line: u32,
    /// Last line the directive suppresses findings on (one past the
    /// carrying comment's last line).
    pub end_line: u32,
}

impl AllowDirective {
    /// Whether this directive suppresses `code` findings on `line`.
    pub fn covers(&self, code: &str, line: u32) -> bool {
        self.code == code && line >= self.line && line <= self.end_line
    }
}

/// Extracts every *valid* allow directive (known code, non-empty reason)
/// from a source file. Invalid directives are reported by [`check_file`]
/// as A-series findings and never suppress anything.
pub fn allow_directives(src: &str) -> Vec<AllowDirective> {
    lex(src)
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .filter_map(parse_directive)
        .filter(|d| d.has_reason && known_code(&d.code).is_some())
        .map(|d| AllowDirective { code: d.code, line: d.line, end_line: d.end_line + 1 })
        .collect()
}

/// Byte ranges covered by `#[cfg(test)] mod … { … }` blocks.
pub(crate) fn test_regions(sig: &[Token<'_>]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 4 < sig.len() {
        let is_cfg_test = sig[i].text == "#"
            && sig[i + 1].text == "["
            && sig[i + 2].text == "cfg"
            && sig[i + 3].text == "("
            && sig[i + 4].text == "test";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Find the closing `]` of the attribute.
        let mut j = i + 5;
        while j < sig.len() && sig[j].text != "]" {
            j += 1;
        }
        // Optional visibility, then `mod name {`.
        let mut k = j + 1;
        while k < sig.len() && matches!(sig[k].text, "pub" | "(" | "crate" | ")") {
            k += 1;
        }
        if k + 2 < sig.len()
            && sig[k].text == "mod"
            && sig[k + 1].kind == TokenKind::Ident
            && sig[k + 2].text == "{"
        {
            let open = k + 2;
            let mut depth = 0i64;
            let mut end = sig.len() - 1;
            for (n, t) in sig.iter().enumerate().skip(open) {
                match t.text {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end = n;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            regions.push((sig[i].start, sig[end].start + sig[end].text.len()));
            i = end + 1;
        } else {
            i = j + 1;
        }
    }
    regions
}

/// Iterator-producing methods on hash collections (order-observable).
pub(crate) const HASH_ITERS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Names bound to `HashMap`/`HashSet` values in this file (heuristic:
/// `name: HashMap<...>` annotations/fields and `name = HashMap::new()`
/// style initializers, looking through `&` and `mut`).
pub(crate) fn hash_bound_names<'a>(sig: &[Token<'a>]) -> Vec<&'a str> {
    let mut names = Vec::new();
    for (i, t) in sig.iter().enumerate() {
        if !(t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet")) {
            continue;
        }
        // Walk back over `&`, `mut`, `std :: collections ::` path prefixes.
        let mut j = i;
        while j > 0 && matches!(sig[j - 1].text, "&" | "mut" | "::" | "std" | "collections") {
            j -= 1;
        }
        if j >= 2 && matches!(sig[j - 1].text, ":" | "=") && sig[j - 2].kind == TokenKind::Ident {
            let name = sig[j - 2].text;
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    names
}

struct Engine<'a> {
    ctx: &'a FileContext,
    sig: Vec<Token<'a>>,
    regions: Vec<(usize, usize)>,
    findings: Vec<Finding>,
}

impl<'a> Engine<'a> {
    fn in_test_region(&self, tok: &Token<'_>) -> bool {
        self.regions.iter().any(|&(s, e)| tok.start >= s && tok.start < e)
    }

    /// True when `tok` sits in library (non-test) code of this file.
    fn lib_code(&self, tok: &Token<'_>) -> bool {
        self.ctx.kind == FileKind::Lib && !self.in_test_region(tok)
    }

    fn sim_code(&self, tok: &Token<'_>) -> bool {
        self.ctx.simulation && self.lib_code(tok)
    }

    fn emit(&mut self, code: &'static str, tok: &Token<'_>, message: String) {
        self.findings.push(Finding {
            code,
            message,
            path: self.ctx.path.clone(),
            line: tok.line,
            col: tok.col,
            chain: Vec::new(),
        });
    }

    fn text(&self, i: usize) -> &'a str {
        match self.sig.get(i) {
            Some(t) => t.text,
            None => "",
        }
    }

    fn run(&mut self) {
        self.check_determinism();
        self.check_panics();
        self.check_quality();
        self.check_concurrency();
        self.check_crate_root_attr();
    }

    fn check_determinism(&mut self) {
        let hash_names = hash_bound_names(&self.sig);
        for i in 0..self.sig.len() {
            let tok = self.sig[i];
            if !self.sim_code(&tok) {
                continue;
            }
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let t2 = self.text(i + 1);
            let t3 = self.text(i + 2);
            match tok.text {
                "SystemTime" if t2 == "::" && t3 == "now" => self.emit(
                    "D101",
                    &tok,
                    "SystemTime::now() reads the wall clock; simulation time must come from \
                     explicit JulianDate inputs"
                        .to_string(),
                ),
                "Instant" if t2 == "::" && t3 == "now" => self.emit(
                    "D102",
                    &tok,
                    "Instant::now() reads a clock; simulation timing must be modeled, not \
                     measured"
                        .to_string(),
                ),
                "thread_rng" | "from_entropy" => self.emit(
                    "D103",
                    &tok,
                    format!(
                        "`{}` draws OS entropy; all randomness must flow from explicit StdRng \
                         seeds",
                        tok.text
                    ),
                ),
                "rng" if i >= 2 && self.text(i - 1) == "::" && self.text(i - 2) == "rand" => self
                    .emit(
                        "D103",
                        &tok,
                        "`rand::rng()` draws OS entropy; all randomness must flow from explicit \
                         StdRng seeds"
                            .to_string(),
                    ),
                name if hash_names.contains(&name) => {
                    // Iterator-producing method call on a hash collection.
                    if t2 == "." && HASH_ITERS.contains(&t3) {
                        self.emit(
                            "D201",
                            &tok,
                            format!(
                                "`{}.{}()` iterates a hash collection in nondeterministic \
                                 order; collect and sort, or use BTreeMap/BTreeSet",
                                tok.text, t3
                            ),
                        );
                    }
                    // `for x in &name {` / `for x in name {` headers.
                    if i >= 1
                        && (self.text(i - 1) == "in"
                            || (self.text(i - 1) == "&" && self.text(i.wrapping_sub(2)) == "in")
                            || (self.text(i - 1) == "mut"
                                && self.text(i.wrapping_sub(2)) == "&"
                                && self.text(i.wrapping_sub(3)) == "in"))
                        && t2 == "{"
                    {
                        self.emit(
                            "D201",
                            &tok,
                            format!(
                                "`for … in {}` iterates a hash collection in nondeterministic \
                                 order; collect and sort, or use BTreeMap/BTreeSet",
                                tok.text
                            ),
                        );
                    }
                }
                _ => {}
            }
        }
    }

    /// Whether this file's library code references any fault-injection or
    /// degradation type — making every panic site in it an `F101` as well.
    fn on_fault_path(&self) -> bool {
        self.sig.iter().any(|t| {
            t.kind == TokenKind::Ident && FAULT_PATH_MARKERS.contains(&t.text) && self.lib_code(t)
        })
    }

    fn check_panics(&mut self) {
        let fault_path = self.on_fault_path();
        for i in 0..self.sig.len() {
            let tok = self.sig[i];
            if !self.lib_code(&tok) {
                continue;
            }
            let t2 = self.text(i + 1);
            let t3 = self.text(i + 2);
            if tok.text == "." && t3 == "(" {
                if t2 == "unwrap" {
                    let t = self.sig[i + 1];
                    self.emit(
                        "P101",
                        &t,
                        ".unwrap() can panic; return an error or match explicitly".to_string(),
                    );
                } else if t2 == "expect" {
                    let t = self.sig[i + 1];
                    self.emit(
                        "P102",
                        &t,
                        ".expect() can panic; return an error or match explicitly".to_string(),
                    );
                }
                if fault_path && (t2 == "unwrap" || t2 == "expect") {
                    let t = self.sig[i + 1];
                    self.emit(
                        "F101",
                        &t,
                        format!(
                            ".{t2}() on a fault-handling path; faults must degrade into \
                             outcome/defect buckets, not abort — allow(F101) needs its own \
                             fault-specific reason"
                        ),
                    );
                }
            }
            if tok.kind == TokenKind::Ident && t2 == "!" {
                match tok.text {
                    "panic" => self.emit(
                        "P103",
                        &tok,
                        "panic! in library code; return an error instead".to_string(),
                    ),
                    "unimplemented" | "todo" => {
                        self.emit("P104", &tok, format!("{}! left in library code", tok.text))
                    }
                    _ => {}
                }
            }
            // R101: hard process termination from library code. Unlike a
            // panic (which the supervised shard workers catch and turn
            // into a retry/quarantine decision), `process::exit`/`abort`
            // skip unwinding entirely — no checkpoint flush, no Drop, no
            // typed error. Only binaries get to decide the exit status.
            if tok.kind == TokenKind::Ident
                && tok.text == "process"
                && t2 == "::"
                && matches!(t3, "exit" | "abort")
            {
                self.emit(
                    "R101",
                    &tok,
                    format!(
                        "process::{t3} kills the process from library code, bypassing \
                         unwinding, checkpoint flushes, and Drop cleanup; return an error \
                         and let the binary choose the exit status"
                    ),
                );
            }
        }
    }

    fn check_quality(&mut self) {
        for i in 0..self.sig.len() {
            let tok = self.sig[i];
            if !self.lib_code(&tok) {
                continue;
            }
            if tok.kind == TokenKind::Punct && (tok.text == "==" || tok.text == "!=") {
                let prev_float = i >= 1 && self.sig[i - 1].kind == TokenKind::Float;
                let next_float =
                    matches!(self.sig.get(i + 1), Some(t) if t.kind == TokenKind::Float);
                if prev_float || next_float {
                    self.emit(
                        "Q101",
                        &tok,
                        format!(
                            "float `{}` comparison is exact; compare with an explicit epsilon",
                            tok.text
                        ),
                    );
                }
            }
            if tok.kind == TokenKind::Ident
                && self.text(i + 1) == "!"
                && matches!(tok.text, "println" | "print" | "eprintln" | "eprint" | "dbg")
            {
                self.emit(
                    "Q201",
                    &tok,
                    format!("{}! left in library code; route output through the caller", tok.text),
                );
            }
        }
    }

    /// C101 + C103: per-file concurrency determinism rules, simulation
    /// library code only (the cross-function C102 lock-order rule runs in
    /// the workspace pass, [`crate::taint`]).
    fn check_concurrency(&mut self) {
        // C101: order-sensitive accumulation inside spawned closures.
        let mut i = 0usize;
        while i < self.sig.len() {
            let tok = self.sig[i];
            if tok.kind == TokenKind::Ident
                && tok.text == "spawn"
                && self.text(i + 1) == "("
                && self.sim_code(&tok)
            {
                if let Some(close) = self.matching_paren(i + 1) {
                    self.check_spawn_region(i + 2, close);
                }
            }
            i += 1;
        }
        // C103: Relaxed atomics outside counter-only operations.
        const RELAXED_OK: &[&str] = &["fetch_add", "fetch_sub", "load"];
        for i in 2..self.sig.len() {
            let tok = self.sig[i];
            if !(tok.kind == TokenKind::Ident
                && tok.text == "Relaxed"
                && self.text(i - 1) == "::"
                && self.sig[i - 2].text == "Ordering"
                && self.sim_code(&tok))
            {
                continue;
            }
            let method = self.enclosing_call_name(i);
            if !method.as_deref().is_some_and(|m| RELAXED_OK.contains(&m)) {
                self.emit(
                    "C103",
                    &tok,
                    format!(
                        "Ordering::Relaxed on `{}` is not a counter-only use; relaxed \
                         ordering is reserved for fetch_add/fetch_sub/load counters — use \
                         Acquire/Release (or SeqCst) where the value gates control flow",
                        method.as_deref().unwrap_or("<non-call context>")
                    ),
                );
            }
        }
    }

    /// Finds the name of the call whose argument list encloses token `i`
    /// (the ident directly before the nearest unmatched `(` scanning left).
    fn enclosing_call_name(&self, i: usize) -> Option<String> {
        let mut depth = 0i64;
        let mut j = i;
        while j > 0 {
            j -= 1;
            match self.sig[j].text {
                ")" => depth += 1,
                "(" => {
                    if depth == 0 {
                        let name = self.sig.get(j.checked_sub(1)?)?;
                        if name.kind == TokenKind::Ident {
                            return Some(name.text.to_string());
                        }
                        return None;
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        None
    }

    /// Index of the `)` matching the `(` at `open`, if any.
    fn matching_paren(&self, open: usize) -> Option<usize> {
        let mut depth = 0i64;
        for (k, t) in self.sig.iter().enumerate().skip(open) {
            match t.text {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Scans one spawn-argument region `[start, end)` for accumulation on
    /// bindings captured from the enclosing scope: `x.push(..)` and
    /// `x += ..` where `x` is neither `let`-bound, a closure parameter,
    /// nor a loop variable inside the region. Such writes merge in thread
    /// completion order unless the caller reassembles by index, so they
    /// are flagged for an explicit sorted/indexed merge (or an allow).
    fn check_spawn_region(&mut self, start: usize, end: usize) {
        let end = end.min(self.sig.len());
        let mut bound: Vec<&str> = Vec::new();
        let mut k = start;
        while k < end {
            match self.sig[k].text {
                "let" => {
                    // `let [mut] name`; tuple/struct patterns bind every
                    // ident up to `=` or `:`.
                    let mut m = k + 1;
                    while m < end && !matches!(self.sig[m].text, "=" | ":" | ";") {
                        if self.sig[m].kind == TokenKind::Ident && self.sig[m].text != "mut" {
                            bound.push(self.sig[m].text);
                        }
                        m += 1;
                    }
                    k = m;
                }
                "for" => {
                    // Loop pattern idents up to `in`.
                    let mut m = k + 1;
                    while m < end && self.sig[m].text != "in" && self.sig[m].text != "{" {
                        if self.sig[m].kind == TokenKind::Ident {
                            bound.push(self.sig[m].text);
                        }
                        m += 1;
                    }
                    k = m;
                }
                "|" => {
                    // Closure parameter list `|a, (b, c)|`.
                    let mut m = k + 1;
                    while m < end && self.sig[m].text != "|" {
                        if self.sig[m].kind == TokenKind::Ident && self.sig[m].text != "mut" {
                            bound.push(self.sig[m].text);
                        }
                        m += 1;
                    }
                    k = m + 1;
                }
                _ => k += 1,
            }
        }
        for k in start..end {
            let tok = self.sig[k];
            if tok.kind != TokenKind::Ident || bound.contains(&tok.text) {
                continue;
            }
            let push_call =
                self.text(k + 1) == "." && self.text(k + 2) == "push" && self.text(k + 3) == "(";
            let add_assign = self.text(k + 1) == "+=";
            if push_call || add_assign {
                let how = if push_call { ".push(..)" } else { "+=" };
                self.emit(
                    "C101",
                    &tok,
                    format!(
                        "`{} {how}` on a binding captured by a spawned closure accumulates \
                         in thread completion order; collect (index, value) pairs and merge \
                         sorted/indexed outside the parallel region",
                        tok.text
                    ),
                );
            }
        }
    }

    fn check_crate_root_attr(&mut self) {
        if !self.ctx.crate_root {
            return;
        }
        if !self.has_inner_attr("warn", "missing_docs") {
            self.findings.push(Finding {
                code: "Q301",
                message: format!("crate root lacks `{CRATE_ROOT_ATTR}`"),
                path: self.ctx.path.clone(),
                line: 1,
                col: 1,
                chain: Vec::new(),
            });
        }
        if self.ctx.simulation && !self.has_inner_attr("forbid", "unsafe_code") {
            self.findings.push(Finding {
                code: "U101",
                message: format!("simulation crate root lacks `{UNSAFE_ROOT_ATTR}`"),
                path: self.ctx.path.clone(),
                line: 1,
                col: 1,
                chain: Vec::new(),
            });
        }
    }

    /// Whether the file carries the inner attribute `#![outer(inner)]`.
    fn has_inner_attr(&self, outer: &str, inner: &str) -> bool {
        self.sig.windows(8).any(|w| {
            w[0].text == "#"
                && w[1].text == "!"
                && w[2].text == "["
                && w[3].text == outer
                && w[4].text == "("
                && w[5].text == inner
                && w[6].text == ")"
                && w[7].text == "]"
        })
    }
}

/// Checks one source file, returning unsuppressed findings sorted by
/// position.
pub fn check_file(src: &str, ctx: &FileContext) -> Vec<Finding> {
    let tokens = lex(src);
    let mut directives = Vec::new();
    let mut findings = Vec::new();
    for t in &tokens {
        // Directives live in plain comments only; doc comments merely
        // *describe* the syntax (and must not trigger it).
        if matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            if let Some(d) = parse_directive(t) {
                if known_code(&d.code).is_none() {
                    findings.push(Finding {
                        code: "A002",
                        message: format!("allow directive names unknown rule code `{}`", d.code),
                        path: ctx.path.clone(),
                        line: d.line,
                        col: d.col,
                        chain: Vec::new(),
                    });
                } else if !d.has_reason {
                    findings.push(Finding {
                        code: "A001",
                        message: format!(
                            "allow({}) requires a non-empty reason = \"...\" string",
                            d.code
                        ),
                        path: ctx.path.clone(),
                        line: d.line,
                        col: d.col,
                        chain: Vec::new(),
                    });
                } else {
                    directives.push(d);
                }
            }
        }
    }

    let sig: Vec<Token<'_>> = tokens
        .iter()
        .copied()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::LineComment | TokenKind::BlockComment | TokenKind::DocComment
            )
        })
        .collect();
    let regions = test_regions(&sig);
    let mut engine = Engine { ctx, sig, regions, findings: Vec::new() };
    engine.run();

    // Apply suppression: a valid directive covers its own lines plus the
    // one after the comment ends.
    for f in engine.findings {
        let suppressed = directives
            .iter()
            .any(|d| d.code == f.code && f.line >= d.line && f.line <= d.end_line + 1);
        if !suppressed {
            findings.push(f);
        }
    }
    findings.sort_by_key(|f| (f.line, f.col, f.code));
    // Nested spawn regions are scanned once per enclosing region; identical
    // findings collapse to one.
    findings.dedup();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx() -> FileContext {
        FileContext {
            path: "crates/demo/src/lib.rs".to_string(),
            kind: FileKind::Lib,
            simulation: true,
            crate_root: false,
        }
    }

    fn codes(src: &str, ctx: &FileContext) -> Vec<&'static str> {
        check_file(src, ctx).into_iter().map(|f| f.code).collect()
    }

    // ---- planted violations (acceptance criteria) -------------------

    #[test]
    fn planted_thread_rng_is_detected() {
        let src = "fn f() -> u64 { let mut r = thread_rng(); r.random() }";
        assert_eq!(codes(src, &lib_ctx()), vec!["D103"]);
    }

    #[test]
    fn planted_rand_rng_and_from_entropy_are_detected() {
        let src = "fn f() { let a = rand::rng(); let b = StdRng::from_entropy(); }";
        assert_eq!(codes(src, &lib_ctx()), vec!["D103", "D103"]);
    }

    #[test]
    fn planted_clock_reads_are_detected() {
        let src = "fn f() { let t = SystemTime::now(); let i = Instant::now(); }";
        assert_eq!(codes(src, &lib_ctx()), vec!["D101", "D102"]);
    }

    #[test]
    fn planted_unwrap_in_lib_is_detected() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(codes(src, &lib_ctx()), vec!["P101"]);
    }

    #[test]
    fn planted_float_equality_is_detected() {
        let src = "fn f(a: f64) -> bool { a == 0.3 }";
        assert_eq!(codes(src, &lib_ctx()), vec!["Q101"]);
        let src2 = "fn f(a: f64) -> bool { 0.3 != a }";
        assert_eq!(codes(src2, &lib_ctx()), vec!["Q101"]);
    }

    #[test]
    fn planted_panics_and_prints_are_detected() {
        let src = r#"
            fn f(n: u8) {
                if n > 3 { panic!("boom"); }
                if n > 2 { todo!(); }
                if n > 1 { unimplemented!(); }
                println!("n = {n}");
            }
        "#;
        let got = codes(src, &lib_ctx());
        assert_eq!(got, vec!["P103", "P104", "P104", "Q201"]);
    }

    #[test]
    fn planted_expect_is_detected() {
        let src = "fn f(x: Option<u8>) -> u8 { x.expect(\"present\") }";
        assert_eq!(codes(src, &lib_ctx()), vec!["P102"]);
    }

    #[test]
    fn hashmap_iteration_is_detected() {
        let src = r#"
            fn f() -> Vec<u32> {
                let mut m: HashMap<u32, u32> = HashMap::new();
                m.insert(1, 2);
                let mut out = Vec::new();
                for (k, v) in m.iter() { out.push(k + v); }
                for k in m.keys() { out.push(*k); }
                out
            }
        "#;
        assert_eq!(codes(src, &lib_ctx()), vec!["D201", "D201"]);
    }

    #[test]
    fn hashset_for_loop_is_detected() {
        let src = r#"
            fn f(s: &HashSet<u32>) -> u32 {
                let mut acc = 0;
                for v in s { acc += v; }
                acc
            }
        "#;
        assert_eq!(codes(src, &lib_ctx()), vec!["D201"]);
    }

    // ---- F101: fault-handling paths ---------------------------------

    #[test]
    fn unwrap_on_fault_path_carries_both_codes() {
        let src = "fn f(p: &FaultPlan, x: Option<u8>) -> u8 { let _ = p; x.unwrap() }";
        assert_eq!(codes(src, &lib_ctx()), vec!["F101", "P101"]);
        let src2 = "fn g(o: SlotOutcome, x: Option<u8>) -> u8 { let _ = o; x.expect(\"set\") }";
        assert_eq!(codes(src2, &lib_ctx()), vec!["F101", "P102"]);
    }

    #[test]
    fn files_without_fault_types_stay_p_series_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(codes(src, &lib_ctx()), vec!["P101"]);
    }

    #[test]
    fn fault_markers_inside_tests_do_not_mark_the_file() {
        let src = r#"
            fn lib_fn(x: Option<u8>) -> u8 { x.unwrap() }
            #[cfg(test)]
            mod tests {
                fn t() { let _ = FaultPlan::none(); }
            }
        "#;
        assert_eq!(codes(src, &lib_ctx()), vec!["P101"]);
    }

    #[test]
    fn fault_markers_in_strings_or_comments_do_not_mark_the_file() {
        let src = r#"
            // FaultPlan is discussed here only.
            fn f(x: Option<u8>) -> u8 {
                let _doc = "FaultRates";
                x.unwrap()
            }
        "#;
        assert_eq!(codes(src, &lib_ctx()), vec!["P101"]);
    }

    #[test]
    fn f101_needs_its_own_allow_on_top_of_the_p_series_one() {
        // A pre-existing generic allow no longer suffices on fault paths.
        let partial = r#"
            fn f(p: &FaultPlan, x: Option<u8>) -> u8 {
                let _ = p;
                // starlint: allow(P101, reason = "validated above")
                x.unwrap()
            }
        "#;
        assert_eq!(codes(partial, &lib_ctx()), vec!["F101"]);
        // The allowlist pattern: generic reason above, fault-specific
        // reason inline.
        let full = r#"
            fn f(p: &FaultPlan, x: Option<u8>) -> u8 {
                let _ = p;
                // starlint: allow(P101, reason = "validated above")
                x.unwrap() // starlint: allow(F101, reason = "pre-existing site; value checked before any fault can clear it")
            }
        "#;
        assert!(codes(full, &lib_ctx()).is_empty());
    }

    #[test]
    fn f101_applies_to_non_simulation_crates_too() {
        // Graceful degradation is a P/F concern, not a determinism one.
        let src = "fn f(s: &PropagationSchedule, x: Option<u8>) -> u8 { let _ = s; x.unwrap() }";
        let ctx = FileContext { simulation: false, ..lib_ctx() };
        assert_eq!(codes(src, &ctx), vec!["F101", "P101"]);
    }

    // ---- R101: hard process termination ------------------------------

    #[test]
    fn planted_process_exit_and_abort_are_detected() {
        let src = "fn f() { std::process::exit(1); }";
        assert_eq!(codes(src, &lib_ctx()), vec!["R101"]);
        let src2 = "fn g() { process::abort(); }";
        assert_eq!(codes(src2, &lib_ctx()), vec!["R101"]);
    }

    #[test]
    fn process_exit_in_binaries_tests_and_benches_is_fine() {
        let src = "fn main() { std::process::exit(3); }";
        for kind in [FileKind::Bin, FileKind::Test, FileKind::Bench, FileKind::Example] {
            let ctx = FileContext { kind, ..lib_ctx() };
            assert!(codes(src, &ctx).is_empty(), "kind {kind:?}");
        }
    }

    #[test]
    fn process_exit_applies_to_non_simulation_lib_crates_too() {
        let src = "fn f() { std::process::exit(0); }";
        let ctx = FileContext { simulation: false, ..lib_ctx() };
        assert_eq!(codes(src, &ctx), vec!["R101"]);
    }

    #[test]
    fn process_ident_without_exit_or_abort_is_fine() {
        let src = "fn f(id: u32) -> String { std::process::id().to_string() }";
        assert!(codes(src, &lib_ctx()).is_empty());
        let src2 = "fn g(process: &P) { process.exit_handler(); }";
        assert!(codes(src2, &lib_ctx()).is_empty());
    }

    #[test]
    fn process_exit_honors_allow_directives() {
        let src = r#"
            fn f() {
                // starlint: allow(R101, reason = "ffi teardown demands a hard stop")
                std::process::exit(0);
            }
        "#;
        assert!(codes(src, &lib_ctx()).is_empty());
    }

    // ---- no false positives in strings and comments -----------------

    #[test]
    fn banned_names_inside_strings_are_ignored() {
        let src = r#"
            fn f() -> &'static str {
                "thread_rng() and .unwrap() and panic! are banned words"
            }
        "#;
        assert!(codes(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn banned_names_inside_raw_strings_are_ignored() {
        let src = r####"
            fn f() -> &'static str {
                r#"SystemTime::now() "quoted" .unwrap()"#
            }
        "####;
        assert!(codes(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn banned_names_inside_comments_are_ignored() {
        let src = r#"
            // thread_rng() would be nondeterministic; .unwrap() would panic.
            /* nested /* block with panic!("x") inside */ still a comment */
            /// Doc text mentioning Instant::now() and 1.0 == 2.0.
            fn f() {}
        "#;
        assert!(codes(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(3).min(x.unwrap_or_default()) }";
        assert!(codes(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn char_literal_quote_does_not_derail_lexer() {
        // A `'"'` char literal must not open a string that swallows the
        // rest of the file and hide the planted unwrap.
        let src = "fn f(c: char, x: Option<u8>) -> u8 { if c == '\"' { 0 } else { x.unwrap() } }";
        assert_eq!(codes(src, &lib_ctx()), vec!["P101"]);
    }

    // ---- exemptions -------------------------------------------------

    #[test]
    fn cfg_test_modules_inside_lib_are_exempt() {
        let src = r#"
            fn lib_fn() -> u8 { 1 }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let x: Option<u8> = Some(1);
                    assert_eq!(x.unwrap(), 1);
                    println!("fine in tests");
                }
            }
        "#;
        assert!(codes(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn code_after_cfg_test_module_is_still_checked() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn helper(x: Option<u8>) -> u8 { x.unwrap() }
            }
            fn lib_fn(x: Option<u8>) -> u8 { x.unwrap() }
        "#;
        assert_eq!(codes(src, &lib_ctx()), vec!["P101"]);
    }

    #[test]
    fn tests_benches_and_bins_are_exempt_from_panic_rules() {
        let src = "fn main() { let x: Option<u8> = None; x.unwrap(); println!(\"hi\"); }";
        for kind in [FileKind::Bin, FileKind::Test, FileKind::Bench, FileKind::Example] {
            let ctx = FileContext { kind, ..lib_ctx() };
            assert!(codes(src, &ctx).is_empty(), "kind {kind:?}");
        }
    }

    #[test]
    fn non_simulation_crates_skip_d_series_only() {
        let src = "fn f(x: Option<Instant>) -> Instant { let t = Instant::now(); x.unwrap() }";
        let ctx = FileContext { simulation: false, ..lib_ctx() };
        assert_eq!(codes(src, &ctx), vec!["P101"]);
    }

    // ---- allow directives -------------------------------------------

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        let src = r#"
            fn f(x: Option<u8>) -> u8 {
                // starlint: allow(P101, reason = "validated two lines up")
                x.unwrap()
            }
            fn g(x: Option<u8>) -> u8 {
                x.unwrap() // starlint: allow(P101, reason = "validated by caller")
            }
        "#;
        assert!(codes(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn allow_without_reason_is_its_own_finding_and_does_not_suppress() {
        let src = r#"
            fn f(x: Option<u8>) -> u8 {
                // starlint: allow(P101)
                x.unwrap()
            }
        "#;
        assert_eq!(codes(src, &lib_ctx()), vec!["A001", "P101"]);
    }

    #[test]
    fn allow_with_empty_reason_is_rejected() {
        let src = r#"
            fn f(x: Option<u8>) -> u8 {
                // starlint: allow(P101, reason = "  ")
                x.unwrap()
            }
        "#;
        assert_eq!(codes(src, &lib_ctx()), vec!["A001", "P101"]);
    }

    #[test]
    fn allow_with_unknown_code_is_rejected() {
        let src = r#"
            // starlint: allow(Z999, reason = "no such rule")
            fn f() {}
        "#;
        assert_eq!(codes(src, &lib_ctx()), vec!["A002"]);
    }

    #[test]
    fn allow_only_suppresses_its_own_code() {
        let src = r#"
            fn f(x: Option<u8>) -> u8 {
                // starlint: allow(P102, reason = "wrong code on purpose")
                x.unwrap()
            }
        "#;
        assert_eq!(codes(src, &lib_ctx()), vec!["P101"]);
    }

    // ---- Q301 -------------------------------------------------------

    #[test]
    fn missing_docs_attr_required_in_crate_roots() {
        let ctx = FileContext { crate_root: true, ..lib_ctx() };
        assert_eq!(codes("pub fn f() {}", &ctx), vec!["Q301", "U101"]);
        assert_eq!(codes("#![warn(missing_docs)]\npub fn f() {}", &ctx), vec!["U101"]);
        let both = "#![warn(missing_docs)]\n#![forbid(unsafe_code)]\npub fn f() {}";
        assert!(codes(both, &ctx).is_empty());
    }

    // ---- U101 -------------------------------------------------------

    #[test]
    fn forbid_unsafe_required_in_simulation_roots_only() {
        let sim = FileContext { crate_root: true, ..lib_ctx() };
        let tooling = FileContext { crate_root: true, simulation: false, ..lib_ctx() };
        let src = "#![warn(missing_docs)]\npub fn f() {}";
        assert_eq!(codes(src, &sim), vec!["U101"]);
        assert!(codes(src, &tooling).is_empty());
    }

    // ---- C101: accumulation in spawned closures ---------------------

    #[test]
    fn captured_push_inside_spawn_closure_is_flagged() {
        let src = r#"
            fn f(scope: &S, out: &mut Vec<u8>) {
                scope.spawn(move || { out.push(1); });
            }
        "#;
        assert_eq!(codes(src, &lib_ctx()), vec!["C101"]);
    }

    #[test]
    fn captured_float_accumulation_inside_spawn_closure_is_flagged() {
        let src = r#"
            fn f(scope: &S, total: &mut f64) {
                scope.spawn(move || { *total += 0.1; });
            }
        "#;
        assert_eq!(codes(src, &lib_ctx()), vec!["C101"]);
    }

    #[test]
    fn local_accumulators_inside_spawn_closures_are_fine() {
        // The workspace's own idiom: per-worker locals, indexed reassembly
        // outside the closure.
        let src = r#"
            fn f(scope: &S, items: &[u8]) {
                let handle = scope.spawn(move || {
                    let mut part = Vec::new();
                    for (k, v) in items.iter().enumerate() {
                        part.push((k, v));
                    }
                    part
                });
            }
        "#;
        assert!(codes(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn closure_parameters_are_not_captures() {
        let src = r#"
            fn f(scope: &S, items: &[u8]) {
                scope.spawn(move || items.iter().map(|(k, acc)| acc.min(k)).count());
            }
        "#;
        assert!(codes(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn push_outside_the_spawn_argument_is_fine() {
        let src = r#"
            fn f(scope: &S, handles: &mut Vec<H>) {
                handles.push(scope.spawn(move || 1));
            }
        "#;
        assert!(codes(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn spawn_rules_skip_non_simulation_crates() {
        let src = r#"
            fn f(scope: &S, out: &mut Vec<u8>) {
                scope.spawn(move || { out.push(1); });
            }
        "#;
        let ctx = FileContext { simulation: false, ..lib_ctx() };
        assert!(codes(src, &ctx).is_empty());
    }

    // ---- C103: relaxed atomics --------------------------------------

    #[test]
    fn relaxed_counters_are_fine_but_stores_are_not() {
        let ok = r#"
            fn f(c: &AtomicUsize) -> usize {
                c.fetch_add(1, Ordering::Relaxed);
                c.load(Ordering::Relaxed)
            }
        "#;
        assert!(codes(ok, &lib_ctx()).is_empty());
        let bad = r#"
            fn f(c: &AtomicUsize) {
                c.store(7, Ordering::Relaxed);
            }
        "#;
        assert_eq!(codes(bad, &lib_ctx()), vec!["C103"]);
        let cas = r#"
            fn f(c: &AtomicUsize) {
                let _ = c.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);
            }
        "#;
        assert_eq!(codes(cas, &lib_ctx()), vec!["C103", "C103"]);
    }

    #[test]
    fn float_comparison_against_integer_literal_not_flagged() {
        let src = "fn f(a: u64) -> bool { a == 3 }";
        assert!(codes(src, &lib_ctx()).is_empty());
    }
}
