//! `starlint`: from-scratch static analysis for the starsense workspace.
//!
//! DESIGN.md §5 promises that every figure is exactly reproducible — all
//! randomness flows from explicit seeds and no wall-clock time leaks into
//! the simulation — and §7 promises documented, panic-free library code.
//! The compiler checks none of that, so this crate does. It ships its own
//! minimal lexer (no `syn`, no `clippy`; the offline dependency policy
//! forbids both), a token-stream rule engine, and a workspace-level
//! static analyzer (item parser → call graph → interprocedural taint):
//!
//! * **D-series (determinism)** — entropy sources, wall-clock reads, and
//!   hash-order iteration in simulation crates;
//! * **P-series (panic-safety)** — `unwrap`/`expect`/`panic!` and friends
//!   in library code;
//! * **Q-series (quality)** — float `==`, missing `#![warn(missing_docs)]`
//!   crate attributes, and leftover debug printing in library code;
//! * **C-series (concurrency)** — order-sensitive accumulation in spawn
//!   closures, inconsistent lock order, non-counter `Ordering::Relaxed`;
//! * **U-series (unsafety)** — simulation crate roots must carry
//!   `#![forbid(unsafe_code)]`;
//! * **X-series (taint)** — determinism sources in non-simulation code
//!   transitively reachable from simulation crates, found by walking the
//!   cross-crate call graph ([`graph`], [`taint`]) and reported with the
//!   full call chain.
//!
//! Findings can be suppressed, one site at a time, with
//! `// starlint: allow(CODE, reason = "...")` on the offending line or the
//! line above it; the reason string must be non-empty. For X-series
//! findings the directive goes at the *source* line and suppresses every
//! call chain through it.
#![warn(missing_docs)]

pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod taint;
pub mod workspace;

pub use lexer::{lex, Token, TokenKind};
pub use rules::{check_file, FileContext, FileKind, Finding, CRATE_ROOT_ATTR};
pub use workspace::{lint_workspace, CrateRole, LintReport};
