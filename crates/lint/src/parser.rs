//! Lightweight item parser on top of the [`crate::lexer`].
//!
//! The cross-crate determinism analyzer needs to know *which function* a
//! token belongs to and *what that function calls* — not full Rust
//! semantics. This module extracts exactly that from a comment-filtered
//! token stream: `fn` items (with their `impl`/`trait`/`mod` context and
//! body token range), and `use` declarations (flattened, with aliases and
//! globs). It is not an AST: generics, patterns, and expressions are
//! skipped over with balanced-delimiter scanning, and anything the parser
//! does not understand is ignored rather than failed on. The property
//! suite holds it to one invariant only: **never panic**, on any token
//! stream, however malformed.

use crate::lexer::{Token, TokenKind};

/// One `fn` item (free function, inherent/trait-impl method, or trait
/// default method) found in a file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl`/`trait` self-type name (`PropagationCache`,
    /// `Rng`, …) when the fn is a method; `None` for free functions.
    pub self_type: Option<String>,
    /// Names of the enclosing inline `mod` blocks, outermost first.
    pub module_path: Vec<String>,
    /// Token-index range `[start, end)` of the body (the braces included)
    /// within the significant-token stream the parser was handed.
    pub body: (usize, usize),
    /// Byte offset of the `fn` keyword in the source.
    pub start: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
}

/// One flattened `use` entry: `use a::b::{c, d as e};` yields two items.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseItem {
    /// Path segments as written (`["a", "b", "c"]`); for a glob import
    /// the trailing `*` is dropped and [`UseItem::glob`] is set.
    pub segments: Vec<String>,
    /// Local rename from `as`, when present.
    pub alias: Option<String>,
    /// True for `use path::*`.
    pub glob: bool,
}

impl UseItem {
    /// The name this import binds locally: the alias if renamed, the last
    /// path segment otherwise (empty for globs).
    pub fn local_name(&self) -> &str {
        match &self.alias {
            Some(a) => a,
            None => self.segments.last().map(String::as_str).unwrap_or(""),
        }
    }
}

/// Items extracted from one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` with a body, in source order.
    pub fns: Vec<FnItem>,
    /// Every flattened `use` entry, in source order.
    pub uses: Vec<UseItem>,
}

/// Scope context maintained while walking the token stream.
#[derive(Clone, Debug)]
enum Scope {
    /// Inline `mod name { … }`.
    Mod(String),
    /// `impl [Trait for] Type { … }` or `trait Name { … }`; the string is
    /// the self-type (the `Type` of a trait impl, the trait name itself
    /// for trait blocks).
    Item(Option<String>),
    /// Any other brace group (fn bodies, match arms, struct literals, …).
    Other,
}

/// Extracts items from a significant-token stream (comments already
/// filtered out, as produced by the rule engine). Never panics; malformed
/// streams simply yield fewer items.
pub fn parse_items(sig: &[Token<'_>]) -> ParsedFile {
    let mut out = ParsedFile::default();
    // Stack of open brace scopes, pushed at `{`, popped at `}`.
    let mut scopes: Vec<Scope> = Vec::new();
    // Scope to assign to the *next* `{` encountered (set by mod/impl/fn
    // headers, cleared once consumed or invalidated by a `;`).
    let mut pending: Option<Scope> = None;
    let mut i = 0usize;
    while i < sig.len() {
        let tok = sig[i];
        match (tok.kind, tok.text) {
            (TokenKind::Punct, "{") => {
                scopes.push(pending.take().unwrap_or(Scope::Other));
                i += 1;
            }
            (TokenKind::Punct, "}") => {
                scopes.pop();
                i += 1;
            }
            (TokenKind::Punct, ";") => {
                // `mod name;` / trait method declarations: drop any header.
                pending = None;
                i += 1;
            }
            (TokenKind::Ident, "mod") => {
                if let Some(name) = sig.get(i + 1).filter(|t| t.kind == TokenKind::Ident) {
                    pending = Some(Scope::Mod(name.text.to_string()));
                    i += 2;
                } else {
                    i += 1;
                }
            }
            (TokenKind::Ident, "impl" | "trait") => {
                let (ty, next) = parse_impl_header(sig, i + 1);
                pending = Some(Scope::Item(ty));
                i = next;
            }
            (TokenKind::Ident, "use") => {
                let next = parse_use(sig, i + 1, &mut out.uses);
                i = next;
            }
            (TokenKind::Ident, "fn") => {
                if let Some(item) = parse_fn(sig, i, &scopes) {
                    // Do not skip the body: nested fns inside it must be
                    // found too. The body `{` will push Scope::Other.
                    out.fns.push(item);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Parses the header after `impl`/`trait` up to (not including) the body
/// `{` or a terminating `;`/EOF. Returns the self-type name and the index
/// to resume from.
fn parse_impl_header<'a>(sig: &[Token<'a>], mut i: usize) -> (Option<String>, usize) {
    let mut angle = 0i64;
    let mut last_ident: Option<&'a str> = None;
    let mut after_for: Option<&'a str> = None;
    let mut seen_for = false;
    while i < sig.len() {
        let t = sig[i];
        match (t.kind, t.text) {
            (TokenKind::Punct, "{") | (TokenKind::Punct, ";") => break,
            (TokenKind::Punct, "<") | (TokenKind::Punct, "<<") => {
                angle += if t.text == "<<" { 2 } else { 1 }
            }
            (TokenKind::Punct, ">") | (TokenKind::Punct, ">>") => {
                angle -= if t.text == ">>" { 2 } else { 1 }
            }
            (TokenKind::Ident, "where") if angle <= 0 => {
                // Bounds after `where` are not part of the type path.
                while i < sig.len() && sig[i].text != "{" && sig[i].text != ";" {
                    i += 1;
                }
                break;
            }
            (TokenKind::Ident, "for") if angle <= 0 => seen_for = true,
            (TokenKind::Ident, name) if angle <= 0 => {
                // Skip keywords that can precede the path.
                if !matches!(name, "dyn" | "unsafe" | "const" | "mut") {
                    last_ident = Some(name);
                    if seen_for {
                        after_for = Some(name);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    let ty = after_for.or(last_ident).map(str::to_string);
    (ty, i)
}

/// Parses one `fn` item starting at the `fn` keyword. Returns `None` for
/// bodyless declarations (trait signatures, extern blocks).
fn parse_fn(sig: &[Token<'_>], at: usize, scopes: &[Scope]) -> Option<FnItem> {
    let kw = sig[at];
    let name = sig.get(at + 1).filter(|t| t.kind == TokenKind::Ident)?;
    // Scan to the body `{` or a `;`, skipping balanced (), [] and <> (the
    // signature may contain parenthesized types, defaults, and where
    // clauses, but no braces before the body in practice).
    let mut j = at + 2;
    let mut paren = 0i64;
    let mut angle = 0i64;
    let body_open = loop {
        let t = sig.get(j)?;
        match t.text {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            "<" => angle += 1,
            ">" => angle -= 1,
            "<<" => angle += 2,
            ">>" => angle -= 2,
            "->" => {}
            "{" if paren <= 0 && angle <= 0 => break j,
            ";" if paren <= 0 => return None,
            _ => {}
        }
        j += 1;
    };
    // Match the body braces.
    let mut depth = 0i64;
    let mut end = sig.len();
    let mut k = body_open;
    while k < sig.len() {
        match sig[k].text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    end = k + 1;
                    break;
                }
            }
            _ => {}
        }
        k += 1;
    }
    let self_type = scopes
        .iter()
        .rev()
        .find_map(|s| match s {
            Scope::Item(ty) => Some(ty.clone()),
            _ => None,
        })
        .flatten();
    let module_path = scopes
        .iter()
        .filter_map(|s| match s {
            Scope::Mod(m) => Some(m.clone()),
            _ => None,
        })
        .collect();
    Some(FnItem {
        name: name.text.to_string(),
        self_type,
        module_path,
        body: (body_open, end),
        start: kw.start,
        line: kw.line,
        col: kw.col,
    })
}

/// Parses a `use` declaration starting after the `use` keyword; appends
/// flattened entries to `out` and returns the index past the closing `;`.
fn parse_use(sig: &[Token<'_>], start: usize, out: &mut Vec<UseItem>) -> usize {
    // Find the terminating `;` (bounded by EOF).
    let mut end = start;
    let mut depth = 0i64;
    while end < sig.len() {
        match sig[end].text {
            "{" => depth += 1,
            "}" => depth -= 1,
            ";" if depth <= 0 => break,
            _ => {}
        }
        end += 1;
    }
    flatten_use(&sig[start..end.min(sig.len())], &[], out, 0);
    end + 1
}

/// Recursively flattens one use-tree token slice, prefixed by `prefix`.
fn flatten_use(toks: &[Token<'_>], prefix: &[String], out: &mut Vec<UseItem>, depth: u32) {
    if depth > 16 {
        return; // pathological nesting: give up rather than recurse forever
    }
    let mut segs: Vec<String> = prefix.to_vec();
    let mut i = 0usize;
    while i < toks.len() {
        let t = toks[i];
        match (t.kind, t.text) {
            (TokenKind::Ident, "as") => {
                if let Some(alias) = toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) {
                    out.push(UseItem {
                        segments: segs,
                        alias: Some(alias.text.to_string()),
                        glob: false,
                    });
                    return;
                }
                i += 1;
            }
            (TokenKind::Ident, name) => {
                segs.push(name.to_string());
                i += 1;
            }
            (TokenKind::Punct, "*") => {
                out.push(UseItem { segments: segs, alias: None, glob: true });
                return;
            }
            (TokenKind::Punct, "::") => i += 1,
            (TokenKind::Punct, "{") => {
                // Split the balanced group on top-level commas; each part
                // recurses with the accumulated prefix.
                let mut d = 0i64;
                let mut j = i;
                let mut part_start = i + 1;
                while j < toks.len() {
                    match toks[j].text {
                        "{" => d += 1,
                        "}" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        "," if d == 1 => {
                            flatten_use(&toks[part_start..j], &segs, out, depth + 1);
                            part_start = j + 1;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                flatten_use(&toks[part_start..j.min(toks.len())], &segs, out, depth + 1);
                return;
            }
            _ => i += 1,
        }
    }
    if segs.len() > prefix.len() {
        out.push(UseItem { segments: segs, alias: None, glob: false });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        let toks = lex(src);
        let sig: Vec<Token<'_>> = toks
            .into_iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokenKind::LineComment | TokenKind::BlockComment | TokenKind::DocComment
                )
            })
            .collect();
        parse_items(&sig)
    }

    #[test]
    fn free_fns_and_methods_are_found() {
        let src = r#"
            pub fn alpha(x: u8) -> u8 { x + 1 }
            struct S;
            impl S {
                pub fn beta(&self) -> u8 { 2 }
            }
            impl std::fmt::Display for S {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
            }
            trait T {
                fn declared(&self);
                fn defaulted(&self) -> u8 { 3 }
            }
        "#;
        let p = parse(src);
        let names: Vec<(&str, Option<&str>)> =
            p.fns.iter().map(|f| (f.name.as_str(), f.self_type.as_deref())).collect();
        assert_eq!(
            names,
            vec![
                ("alpha", None),
                ("beta", Some("S")),
                ("fmt", Some("S")),
                ("defaulted", Some("T")),
            ]
        );
    }

    #[test]
    fn generic_impls_resolve_the_self_type() {
        let src = r#"
            impl<'a, T: Clone> Cache<'a, T> where T: Send {
                fn get(&self) -> u8 { 0 }
            }
            impl<T> From<T> for Wrapper<T> {
                fn from(t: T) -> Self { Wrapper(t) }
            }
        "#;
        let p = parse(src);
        assert_eq!(p.fns[0].self_type.as_deref(), Some("Cache"));
        assert_eq!(p.fns[1].self_type.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn inline_mods_contribute_to_the_module_path() {
        let src = "mod outer { mod inner { fn deep() {} } fn shallow() {} }";
        let p = parse(src);
        assert_eq!(p.fns[0].module_path, vec!["outer", "inner"]);
        assert_eq!(p.fns[1].module_path, vec!["outer"]);
    }

    #[test]
    fn nested_fns_are_both_found() {
        let src = "fn outer() { fn inner() { } inner(); }";
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        // inner's body range nests inside outer's.
        assert!(p.fns[1].body.0 > p.fns[0].body.0 && p.fns[1].body.1 < p.fns[0].body.1);
    }

    #[test]
    fn bodyless_declarations_are_skipped() {
        let src = "trait T { fn sig(&self); } extern \"C\" { fn c_fn(); }";
        let p = parse(src);
        assert!(p.fns.is_empty());
    }

    #[test]
    fn use_trees_flatten_with_aliases_and_globs() {
        let src = r#"
            use std::collections::HashMap;
            use crate::rules::{check_file, Finding as F};
            use starsense_astro::time::*;
            pub use a::b;
        "#;
        let p = parse(src);
        let rendered: Vec<String> = p
            .uses
            .iter()
            .map(|u| {
                format!(
                    "{}{}{}",
                    u.segments.join("::"),
                    if u.glob { "::*" } else { "" },
                    u.alias.as_deref().map(|a| format!(" as {a}")).unwrap_or_default()
                )
            })
            .collect();
        assert_eq!(
            rendered,
            vec![
                "std::collections::HashMap",
                "crate::rules::check_file",
                "crate::rules::Finding as F",
                "starsense_astro::time::*",
                "a::b",
            ]
        );
        assert_eq!(p.uses[2].local_name(), "F");
        assert_eq!(p.uses[0].local_name(), "HashMap");
    }

    #[test]
    fn fn_signature_with_generics_and_where_clause_finds_its_body() {
        let src = r#"
            fn tricky<T: Into<Vec<u8>>>(x: T, f: impl Fn(u8) -> u8) -> Vec<u8>
            where
                T: Clone,
            {
                f(1);
                x.into()
            }
        "#;
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "tricky");
    }

    #[test]
    fn malformed_streams_do_not_panic() {
        for src in
            ["fn", "fn (", "impl", "use ::{{{", "mod", "fn f(", "impl X { fn }", "use a::{b,"]
        {
            let _ = parse(src);
        }
    }
}
