//! Interprocedural determinism taint pass and cross-function lock-order
//! analysis over the [`crate::graph`] call graph.
//!
//! **Taint (X-series).** Every simulation-crate library function is a
//! root. A breadth-first walk over the resolved call edges finds every
//! function transitively reachable from a root; any *non-simulation*
//! function in that set that touches a determinism source directly (a
//! clock read, entropy-seeded RNG, or hash-order iteration) yields an
//! `X101`–`X103` finding at the source site, carrying the full call chain
//! from the root. Sources inside simulation crates themselves are not
//! re-reported here — the per-file D-series already flags those at the
//! line that commits them.
//!
//! **Lock order (C102).** Within one crate, two functions that acquire
//! the same pair of locks in opposite orders can deadlock — and, worse
//! for this workspace, make merge order depend on the thread schedule.
//! Each function's lock-acquisition sequence is reduced to ordered
//! receiver pairs; a pair observed both ways yields `C102` at every
//! acquisition site involved, each naming a function that disagrees.
//!
//! Both passes honor `// starlint: allow(CODE, reason = "...")` placed at
//! the flagged line (the taint *source* or the lock acquisition), which
//! suppresses every chain or pairing through that site.

use std::collections::BTreeMap;

use crate::graph::WorkspaceGraph;
use crate::rules::{AllowDirective, Finding};

/// Valid allow directives per workspace-relative file path.
pub type AllowMap = BTreeMap<String, Vec<AllowDirective>>;

fn suppressed(allows: &AllowMap, path: &str, code: &str, line: u32) -> bool {
    allows.get(path).is_some_and(|ds| ds.iter().any(|d| d.covers(code, line)))
}

/// Runs the taint pass: X-series findings for determinism sources in
/// non-simulation code reachable from simulation entry points.
pub fn taint_findings(graph: &WorkspaceGraph, allows: &AllowMap) -> Vec<Finding> {
    let adj = graph.resolve_edges();
    let n = graph.fns.len();
    // Multi-source BFS from every simulation fn, in index order, with
    // parent pointers: each reachable fn gets exactly one (deterministic,
    // shortest) chain back to a root.
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for i in 0..n {
        if graph.is_simulation(i) {
            visited[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        for &j in &adj[i] {
            if !visited[j] {
                visited[j] = true;
                parent[j] = Some(i);
                queue.push_back(j);
            }
        }
    }
    let mut findings = Vec::new();
    for i in 0..n {
        if !visited[i] || graph.is_simulation(i) {
            continue;
        }
        let f = &graph.fns[i];
        if f.sources.is_empty() {
            continue;
        }
        // Render the chain root → … → this fn, as `qual (path:line)`.
        let mut chain_ids = vec![i];
        let mut cur = i;
        while let Some(p) = parent[cur] {
            chain_ids.push(p);
            cur = p;
        }
        chain_ids.reverse();
        let chain: Vec<String> = chain_ids
            .iter()
            .map(|&k| {
                let g = &graph.fns[k];
                format!("{} ({}:{})", g.qual, graph.files[g.file].path, g.line)
            })
            .collect();
        let root = &graph.fns[chain_ids[0]].qual;
        let path = &graph.files[f.file].path;
        for s in &f.sources {
            let code = s.kind.code();
            if suppressed(allows, path, code, s.line) {
                continue;
            }
            findings.push(Finding {
                code,
                message: format!(
                    "{} in `{}` is reachable from simulation entry `{}` \
                     ({} call(s) away); determinism sources must not leak into \
                     simulation call chains",
                    s.what,
                    f.qual,
                    root,
                    chain_ids.len() - 1
                ),
                path: path.clone(),
                line: s.line,
                col: s.col,
                chain: chain.clone(),
            });
        }
    }
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.code).cmp(&(&b.path, b.line, b.col, b.code)));
    findings.dedup();
    findings
}

/// One recorded ordered lock pair occurrence.
#[derive(Clone, Debug)]
struct PairSite {
    fn_idx: usize,
    line: u32,
    col: u32,
}

/// Runs the lock-order pass: C102 findings for lock pairs acquired in
/// opposite orders by different functions of the same crate.
pub fn lock_order_findings(graph: &WorkspaceGraph, allows: &AllowMap) -> Vec<Finding> {
    // (crate, first receiver, second receiver) → acquisition sites of the
    // *first* lock of the pair, one per function.
    let mut pairs: BTreeMap<(String, String, String), Vec<PairSite>> = BTreeMap::new();
    for (i, f) in graph.fns.iter().enumerate() {
        let crate_name = &graph.files[f.file].crate_name;
        let mut seen: Vec<(String, String)> = Vec::new();
        for (a_idx, a) in f.locks.iter().enumerate() {
            for b in f.locks.iter().skip(a_idx + 1) {
                if a.receiver == b.receiver {
                    continue;
                }
                let key = (a.receiver.clone(), b.receiver.clone());
                if seen.contains(&key) {
                    continue; // one record per (fn, ordered pair)
                }
                seen.push(key);
                pairs
                    .entry((crate_name.clone(), a.receiver.clone(), b.receiver.clone()))
                    .or_default()
                    .push(PairSite { fn_idx: i, line: a.line, col: a.col });
            }
        }
    }
    let mut findings = Vec::new();
    for ((crate_name, a, b), sites) in &pairs {
        if a >= b {
            continue; // visit each unordered pair once, via its sorted key
        }
        let Some(rev_sites) = pairs.get(&(crate_name.clone(), b.clone(), a.clone())) else {
            continue;
        };
        let mut emit = |here: &[PairSite], there: &[PairSite], first: &str, second: &str| {
            for s in here {
                let f = &graph.fns[s.fn_idx];
                let path = &graph.files[f.file].path;
                if suppressed(allows, path, "C102", s.line) {
                    continue;
                }
                let other = &graph.fns[there[0].fn_idx];
                findings.push(Finding {
                    code: "C102",
                    message: format!(
                        "`{}` acquires lock `{}` before `{}`, but `{}` ({}:{}) acquires \
                         them in the opposite order; pick one order crate-wide",
                        f.qual,
                        first,
                        second,
                        other.qual,
                        graph.files[other.file].path,
                        there[0].line
                    ),
                    path: path.clone(),
                    line: s.line,
                    col: s.col,
                    chain: Vec::new(),
                });
            }
        };
        emit(sites, rev_sites, a, b);
        emit(rev_sites, sites, b, a);
    }
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.code).cmp(&(&b.path, b.line, b.col, b.code)));
    findings.dedup();
    findings
}

/// Convenience: both workspace-level passes, concatenated.
pub fn workspace_findings(graph: &WorkspaceGraph, allows: &AllowMap) -> Vec<Finding> {
    let mut out = taint_findings(graph, allows);
    out.extend(lock_order_findings(graph, allows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{allow_directives, FileContext, FileKind};

    fn ctx(path: &str, simulation: bool) -> FileContext {
        FileContext { path: path.to_string(), kind: FileKind::Lib, simulation, crate_root: false }
    }

    fn graph_and_allows(files: &[(&str, &str, bool, &str)]) -> (WorkspaceGraph, AllowMap) {
        let mut g = WorkspaceGraph::default();
        let mut allows = AllowMap::new();
        for (crate_name, path, simulation, src) in files {
            g.add_file(src, &ctx(path, *simulation), crate_name);
            allows.insert(path.to_string(), allow_directives(src));
        }
        (g, allows)
    }

    const SIM: &str = r#"
        use util_helpers::stamp_ms;
        pub fn step() -> u64 { stamp_ms() }
    "#;

    #[test]
    fn cross_crate_clock_chain_is_reported_with_the_full_chain() {
        let helper = r#"
            pub fn stamp_ms() -> u64 { now_raw() }
            fn now_raw() -> u64 { Instant::now().elapsed().as_millis() as u64 }
        "#;
        let (g, allows) = graph_and_allows(&[
            ("sim-app", "crates/sim_app/src/lib.rs", true, SIM),
            ("util-helpers", "crates/util_helpers/src/lib.rs", false, helper),
        ]);
        let fs = taint_findings(&g, &allows);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].code, "X101");
        assert_eq!(fs[0].path, "crates/util_helpers/src/lib.rs");
        let chain = fs[0].chain.join(" -> ");
        assert!(chain.contains("sim-app::step"), "{chain}");
        assert!(chain.contains("util-helpers::stamp_ms"), "{chain}");
        assert!(chain.contains("util-helpers::now_raw"), "{chain}");
    }

    #[test]
    fn unreachable_sources_and_sim_internal_sources_are_not_x_findings() {
        let helper = r#"
            pub fn never_called() -> u64 { Instant::now().elapsed().as_millis() as u64 }
        "#;
        let sim_with_source = r#"
            pub fn step() -> u64 { Instant::now().elapsed().as_millis() as u64 }
        "#;
        let (g, allows) = graph_and_allows(&[
            ("sim-app", "crates/sim_app/src/lib.rs", true, sim_with_source),
            ("util-helpers", "crates/util_helpers/src/lib.rs", false, helper),
        ]);
        // The sim-internal clock is D-series territory; the helper is
        // unreachable. Neither produces an X finding.
        assert!(taint_findings(&g, &allows).is_empty());
    }

    #[test]
    fn an_allow_at_the_source_suppresses_every_chain_through_it() {
        let helper = r#"
            pub fn stamp_ms() -> u64 {
                // starlint: allow(X101, reason = "log timestamps only, never in sim state")
                Instant::now().elapsed().as_millis() as u64
            }
        "#;
        let (g, allows) = graph_and_allows(&[
            ("sim-app", "crates/sim_app/src/lib.rs", true, SIM),
            ("util-helpers", "crates/util_helpers/src/lib.rs", false, helper),
        ]);
        assert!(taint_findings(&g, &allows).is_empty());
    }

    #[test]
    fn opposite_lock_orders_raise_c102_both_ways() {
        let src = r#"
            impl Cache {
                pub fn publish(&self) {
                    let a = self.truth.write();
                    let b = self.published.write();
                }
                pub fn refresh(&self) {
                    let b = self.published.write();
                    let a = self.truth.write();
                }
            }
        "#;
        let (g, allows) = graph_and_allows(&[("sim-app", "crates/a/src/lib.rs", true, src)]);
        let fs = lock_order_findings(&g, &allows);
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().all(|f| f.code == "C102"));
        assert!(fs[0].message.contains("opposite order"));
    }

    #[test]
    fn consistent_lock_orders_are_fine() {
        let src = r#"
            impl Cache {
                pub fn publish(&self) {
                    let a = self.truth.write();
                    let b = self.published.write();
                }
                pub fn refresh(&self) {
                    let a = self.truth.read();
                    let b = self.published.read();
                }
            }
        "#;
        let (g, allows) = graph_and_allows(&[("sim-app", "crates/a/src/lib.rs", true, src)]);
        assert!(lock_order_findings(&g, &allows).is_empty());
    }

    #[test]
    fn lock_pairs_do_not_conflict_across_crates() {
        let one = r#"
            pub fn f(&self) { let a = self.x.lock(); let b = self.y.lock(); }
        "#;
        let two = r#"
            pub fn g(&self) { let b = self.y.lock(); let a = self.x.lock(); }
        "#;
        let (g, allows) = graph_and_allows(&[
            ("crate-one", "a/src/lib.rs", true, one),
            ("crate-two", "b/src/lib.rs", true, two),
        ]);
        assert!(lock_order_findings(&g, &allows).is_empty());
    }
}
