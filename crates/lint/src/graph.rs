//! Cross-crate symbol table and call graph.
//!
//! The per-file D-series rules only see a source *inside* the file that
//! commits it; a wall-clock read in a helper crate that the scheduler
//! calls escapes them entirely. This module builds the workspace-level
//! view the interprocedural pass ([`crate::taint`]) walks: every `fn` in
//! every crate's library code becomes a [`FnNode`] carrying the
//! determinism **sources** it touches directly, the **calls** it makes,
//! and the **locks** it acquires; [`WorkspaceGraph::resolve_edges`] then
//! links call sites to candidate callees by crate + name + imports.
//!
//! Resolution is deliberately conservative: where a call is ambiguous
//! (several workspace functions share a name, a method receiver's type is
//! unknown), *every* candidate gets an edge — over-approximating
//! reachability can only produce an extra finding to justify, never a
//! silently missed nondeterminism. Calls into `std` or other
//! non-workspace code resolve to nothing and are ignored. Method calls
//! cross crates only when the callee's type (or the whole crate, via a
//! glob) is imported by the calling file, which keeps ubiquitous names
//! like `.iter()` from linking every file to every crate.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Token, TokenKind};
use crate::parser::{parse_items, UseItem};
use crate::rules::{hash_bound_names, test_regions, FileContext, HASH_ITERS};

/// The kind of determinism source a function touches directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SourceKind {
    /// Wall-clock or monotonic clock read (`SystemTime::now`,
    /// `Instant::now`).
    Clock,
    /// Entropy-seeded RNG (`thread_rng`, `rand::rng`, `from_entropy`).
    Entropy,
    /// Hash-order iteration over `HashMap`/`HashSet`, or pointer-identity
    /// hashing (`ptr::hash`).
    HashOrder,
}

impl SourceKind {
    /// The X-series rule code reporting this source kind.
    pub fn code(self) -> &'static str {
        match self {
            SourceKind::Clock => "X101",
            SourceKind::Entropy => "X102",
            SourceKind::HashOrder => "X103",
        }
    }
}

/// One direct determinism source inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceSite {
    /// What kind of source this is.
    pub kind: SourceKind,
    /// The offending construct, for the finding message.
    pub what: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CalleeRef {
    /// `foo(..)` — unqualified call.
    Bare(String),
    /// `a::b::foo(..)` — path-qualified call (segments as written).
    Path(Vec<String>),
    /// `recv.foo(..)` — method call.
    Method(String),
}

/// One lock acquisition inside a function body: `x.lock()` / `x.read()` /
/// `x.write()` with no arguments (argument-taking `io::Read::read` style
/// calls are excluded), or the workspace's unpoisoned-guard helper idiom
/// `read_unpoisoned(&x)` / `write_unpoisoned(&x)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockSite {
    /// Dotted receiver path naming the lock (`self.truth`).
    pub receiver: String,
    /// 1-based source line of the acquisition.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// One function in the workspace graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Index of the owning file in [`WorkspaceGraph::files`].
    pub file: usize,
    /// The function's name.
    pub name: String,
    /// `impl`/`trait` self-type, when the fn is a method.
    pub self_type: Option<String>,
    /// Display path: `crate::mod::Type::name`.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Determinism sources touched directly by this function's body.
    pub sources: Vec<SourceSite>,
    /// Call sites in this function's body. Attribution is by body range,
    /// so a nested fn's calls also count against its enclosing fn — a
    /// harmless over-approximation.
    pub calls: Vec<CalleeRef>,
    /// Lock acquisitions, in source order.
    pub locks: Vec<LockSite>,
}

/// One library file contributing functions to the graph.
#[derive(Clone, Debug)]
pub struct FileInfo {
    /// Workspace-relative display path.
    pub path: String,
    /// Owning crate's package name (as in `Cargo.toml`, dashes kept).
    pub crate_name: String,
    /// True when the owning crate is a simulation crate (graph roots).
    pub simulation: bool,
    /// Flattened `use` entries of the file.
    pub uses: Vec<UseItem>,
}

/// The workspace call graph: all library functions plus their files.
#[derive(Clone, Debug, Default)]
pub struct WorkspaceGraph {
    /// Every library function, in (file, source) order.
    pub fns: Vec<FnNode>,
    /// Every library file scanned into the graph.
    pub files: Vec<FileInfo>,
}

impl WorkspaceGraph {
    /// Whether fn `i` lives in simulation-crate library code (a taint
    /// root, already covered by the per-file D-series).
    pub fn is_simulation(&self, i: usize) -> bool {
        self.files[self.fns[i].file].simulation
    }

    /// Adds one library file's functions to the graph. `crate_name` is
    /// the owning package name; `ctx` carries the display path and role.
    /// Functions inside `#[cfg(test)]` modules are skipped — test code
    /// may read clocks freely.
    pub fn add_file(&mut self, src: &str, ctx: &FileContext, crate_name: &str) {
        let tokens = lex(src);
        let sig: Vec<Token<'_>> = tokens
            .into_iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokenKind::LineComment | TokenKind::BlockComment | TokenKind::DocComment
                )
            })
            .collect();
        let regions = test_regions(&sig);
        let parsed = parse_items(&sig);
        let file_idx = self.files.len();
        let hash_names = hash_bound_names(&sig);
        for item in &parsed.fns {
            if regions.iter().any(|&(s, e)| item.start >= s && item.start < e) {
                continue;
            }
            let body = &sig[item.body.0.min(sig.len())..item.body.1.min(sig.len())];
            let mut qual = String::from(crate_name);
            for m in &item.module_path {
                qual.push_str("::");
                qual.push_str(m);
            }
            if let Some(ty) = &item.self_type {
                qual.push_str("::");
                qual.push_str(ty);
            }
            qual.push_str("::");
            qual.push_str(&item.name);
            self.fns.push(FnNode {
                file: file_idx,
                name: item.name.clone(),
                self_type: item.self_type.clone(),
                qual,
                line: item.line,
                col: item.col,
                sources: extract_sources(body, &hash_names),
                calls: extract_calls(body),
                locks: extract_locks(body),
            });
        }
        self.files.push(FileInfo {
            path: ctx.path.clone(),
            crate_name: crate_name.to_string(),
            simulation: ctx.simulation,
            uses: parsed.uses,
        });
    }

    /// Resolves every call site to candidate callees, returning a sorted,
    /// deduplicated adjacency list over fn indices.
    pub fn resolve_edges(&self) -> Vec<Vec<usize>> {
        let ix = Indexes::build(self);
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.fns.len()];
        for (i, f) in self.fns.iter().enumerate() {
            let file = &self.files[f.file];
            let imports = ix.file_imports(file);
            let own = norm(&file.crate_name);
            let mut out: Vec<usize> = Vec::new();
            for call in &f.calls {
                match call {
                    CalleeRef::Bare(name) => {
                        ix.free(&own, name, &mut out);
                        if let Some(crates) = imports.named.get(name.as_str()) {
                            for c in crates {
                                ix.free(c, name, &mut out);
                            }
                        }
                        for c in &imports.globs {
                            ix.free(c, name, &mut out);
                        }
                    }
                    CalleeRef::Path(segs) => {
                        self.resolve_path(segs, f, &own, &imports, &ix, &mut out)
                    }
                    CalleeRef::Method(name) => {
                        ix.methods(&own, name, &mut out);
                        for (ty, crates) in &imports.named {
                            for c in crates {
                                ix.typed(c, ty, name, &mut out);
                            }
                        }
                        for c in &imports.globs {
                            ix.methods(c, name, &mut out);
                        }
                    }
                }
            }
            out.retain(|&j| j != i);
            out.sort_unstable();
            out.dedup();
            adj[i] = out;
        }
        adj
    }

    /// Resolves one path-qualified call (`a::b::foo`) to candidates.
    fn resolve_path(
        &self,
        segs: &[String],
        f: &FnNode,
        own: &str,
        imports: &Imports<'_>,
        ix: &Indexes<'_>,
        out: &mut Vec<usize>,
    ) {
        let Some(name) = segs.last() else { return };
        // `Self::helper()` → methods of the current impl type, own crate.
        if segs.len() == 2 && segs[0] == "Self" {
            if let Some(ty) = &f.self_type {
                ix.typed(own, ty, name, out);
            }
            return;
        }
        let head = segs[0].as_str();
        let (crate_norm, rest): (Option<String>, &[String]) =
            if head == "crate" || head == "self" || head == "super" {
                (Some(own.to_string()), &segs[1..])
            } else if ix.crates.contains(norm(head).as_str()) {
                (Some(norm(head)), &segs[1..])
            } else if let Some(crates) = imports.named.get(head) {
                // Imported name as path head: `use b::T; T::new()` or
                // `use b::module; module::f()`. Ambiguity → all candidates
                // in every import-source crate.
                for c in crates {
                    if segs.len() == 2 {
                        ix.typed(c, head, name, out);
                        ix.free(c, name, out);
                    } else {
                        ix.free(c, name, out);
                    }
                }
                return;
            } else {
                (None, segs)
            };
        let prev = rest.len().checked_sub(2).map(|k| rest[k].as_str());
        match crate_norm {
            Some(c) => {
                // Known crate: free fns named `name` anywhere in it, plus
                // `Type::name` methods when the prior segment is a type.
                ix.free(&c, name, out);
                if let Some(ty) = prev {
                    ix.typed(&c, ty, name, out);
                }
            }
            None => {
                // Unknown head (std, external, or a local type used
                // unqualified): only a trailing `Type::name` pair against
                // workspace-defined types can resolve. Prefer the calling
                // crate when it defines the type; over-approximate across
                // all defining crates otherwise.
                let Some(ty) = prev else { return };
                let Some(defining) = ix.type_crates.get(ty) else { return };
                if defining.contains(&own.to_string()) {
                    ix.typed(own, ty, name, out);
                } else {
                    for c in defining {
                        ix.typed(c, ty, name, out);
                    }
                }
            }
        }
    }
}

/// Normalizes a crate/package name for comparison with path segments
/// (`starsense-core` → `starsense_core`).
fn norm(name: &str) -> String {
    name.replace('-', "_")
}

/// Per-file import summary: locally bound names → source crates (normed),
/// plus glob-imported crates.
#[derive(Clone, Debug, Default)]
struct Imports<'g> {
    named: BTreeMap<&'g str, Vec<String>>,
    globs: Vec<String>,
}

/// Lookup tables over the graph, keyed by normalized crate name. All maps
/// are `BTreeMap`s: iteration order feeds finding order, which must be
/// byte-identical across runs.
struct Indexes<'g> {
    /// All workspace crate names, normalized.
    crates: BTreeSet<String>,
    /// (crate, fn name) → free fns.
    free: BTreeMap<(String, &'g str), Vec<usize>>,
    /// (crate, fn name) → methods (any self type).
    method: BTreeMap<(String, &'g str), Vec<usize>>,
    /// (crate, self type, fn name) → methods.
    typed_method: BTreeMap<(String, &'g str, &'g str), Vec<usize>>,
    /// type name → crates defining an impl/trait of that name.
    type_crates: BTreeMap<&'g str, Vec<String>>,
}

impl<'g> Indexes<'g> {
    fn build(g: &'g WorkspaceGraph) -> Indexes<'g> {
        let mut ix = Indexes {
            crates: g.files.iter().map(|f| norm(&f.crate_name)).collect(),
            free: BTreeMap::new(),
            method: BTreeMap::new(),
            typed_method: BTreeMap::new(),
            type_crates: BTreeMap::new(),
        };
        for (i, f) in g.fns.iter().enumerate() {
            let c = norm(&g.files[f.file].crate_name);
            match &f.self_type {
                None => ix.free.entry((c, f.name.as_str())).or_default().push(i),
                Some(ty) => {
                    ix.method.entry((c.clone(), f.name.as_str())).or_default().push(i);
                    ix.typed_method
                        .entry((c.clone(), ty.as_str(), f.name.as_str()))
                        .or_default()
                        .push(i);
                    let crates = ix.type_crates.entry(ty.as_str()).or_default();
                    if !crates.contains(&c) {
                        crates.push(c);
                    }
                }
            }
        }
        ix
    }

    fn free(&self, crate_norm: &str, name: &str, out: &mut Vec<usize>) {
        if let Some(v) = self.free.get(&(crate_norm.to_string(), name)) {
            out.extend_from_slice(v);
        }
    }

    fn methods(&self, crate_norm: &str, name: &str, out: &mut Vec<usize>) {
        if let Some(v) = self.method.get(&(crate_norm.to_string(), name)) {
            out.extend_from_slice(v);
        }
    }

    fn typed(&self, crate_norm: &str, ty: &str, name: &str, out: &mut Vec<usize>) {
        if let Some(v) = self.typed_method.get(&(crate_norm.to_string(), ty, name)) {
            out.extend_from_slice(v);
        }
    }

    /// Summarizes a file's imports against the workspace crate set.
    fn file_imports(&self, file: &'g FileInfo) -> Imports<'g> {
        let mut imports = Imports::default();
        for u in &file.uses {
            let Some(head) = u.segments.first() else { continue };
            let source = if head == "crate" || head == "self" || head == "super" {
                Some(norm(&file.crate_name))
            } else {
                let n = norm(head);
                self.crates.contains(&n).then_some(n)
            };
            let Some(source) = source else { continue };
            if u.glob {
                if !imports.globs.contains(&source) {
                    imports.globs.push(source);
                }
            } else {
                let local = u.local_name();
                if !local.is_empty() {
                    let e = imports.named.entry(local).or_default();
                    if !e.contains(&source) {
                        e.push(source);
                    }
                }
            }
        }
        imports
    }
}

/// Rust keywords that can directly precede a parenthesis and must never
/// be mistaken for call names.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "return", "for", "loop", "in", "as", "move", "let", "else", "fn",
    "impl", "dyn", "where", "pub", "unsafe", "break", "continue", "await",
];

/// Extracts call sites from one function body's token slice.
fn extract_calls(body: &[Token<'_>]) -> Vec<CalleeRef> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        let tok = body[i];
        if tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let prev = if i == 0 { "" } else { body[i - 1].text };
        if prev == "." {
            // Method call: `.name(`, optionally with a turbofish.
            if let Some(j) = after_turbofish(body, i + 1) {
                if body.get(j).is_some_and(|t| t.text == "(") {
                    out.push(CalleeRef::Method(tok.text.to_string()));
                }
            }
            i += 1;
            continue;
        }
        if prev == "::" || prev == "fn" {
            // Continuation of a path handled at its head, or a definition.
            i += 1;
            continue;
        }
        // Collect a path `a::b::c` forward from the head.
        let mut segs = vec![tok.text.to_string()];
        let mut j = i + 1;
        while body.get(j).is_some_and(|t| t.text == "::")
            && body.get(j + 1).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            segs.push(body[j + 1].text.to_string());
            j += 2;
        }
        if let Some(k) = after_turbofish(body, j) {
            if body.get(k).is_some_and(|t| t.text == "(") {
                if segs.len() > 1 {
                    out.push(CalleeRef::Path(segs));
                } else if !NON_CALL_KEYWORDS.contains(&tok.text) {
                    out.push(CalleeRef::Bare(tok.text.to_string()));
                }
            }
        }
        i = j.max(i + 1);
    }
    out
}

/// Skips a `::<...>` turbofish starting at `i`, returning the index after
/// it (`i` unchanged when there is none; `None` on an unterminated angle
/// group).
fn after_turbofish(body: &[Token<'_>], i: usize) -> Option<usize> {
    if !(body.get(i).is_some_and(|t| t.text == "::")
        && body.get(i + 1).is_some_and(|t| t.text == "<"))
    {
        return Some(i);
    }
    let mut depth = 0i64;
    let mut j = i + 1; // at the `<`
    while j < body.len() {
        match body[j].text {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            _ => {}
        }
        j += 1;
        if depth <= 0 {
            return Some(j);
        }
    }
    None
}

/// Extracts direct determinism sources from one function body.
/// `hash_names` is the file-wide list of bindings known to hold
/// `HashMap`/`HashSet` values.
fn extract_sources(body: &[Token<'_>], hash_names: &[&str]) -> Vec<SourceSite> {
    let mut out = Vec::new();
    let text = |k: usize| body.get(k).map_or("", |t| t.text);
    for (i, tok) in body.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let t2 = text(i + 1);
        let t3 = text(i + 2);
        let site = |kind: SourceKind, what: String| SourceSite {
            kind,
            what,
            line: tok.line,
            col: tok.col,
        };
        match tok.text {
            "SystemTime" | "Instant" if t2 == "::" && t3 == "now" => {
                out.push(site(SourceKind::Clock, format!("{}::now()", tok.text)));
            }
            "thread_rng" | "from_entropy" if t2 == "(" => {
                out.push(site(SourceKind::Entropy, format!("{}()", tok.text)));
            }
            "rng" if i >= 2 && text(i - 1) == "::" && body[i - 2].text == "rand" && t2 == "(" => {
                out.push(site(SourceKind::Entropy, "rand::rng()".to_string()));
            }
            "hash" if i >= 2 && text(i - 1) == "::" && body[i - 2].text == "ptr" => {
                out.push(site(SourceKind::HashOrder, "ptr::hash()".to_string()));
            }
            name if hash_names.contains(&name) => {
                let iter_call = t2 == "." && HASH_ITERS.contains(&t3);
                let for_header = i >= 1
                    && (text(i.wrapping_sub(1)) == "in"
                        || (text(i.wrapping_sub(1)) == "&" && text(i.wrapping_sub(2)) == "in"))
                    && t2 == "{";
                if iter_call || for_header {
                    out.push(site(
                        SourceKind::HashOrder,
                        format!("hash-order iteration over `{name}`"),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

/// Extracts lock acquisitions from one function body.
fn extract_locks(body: &[Token<'_>]) -> Vec<LockSite> {
    let mut out = Vec::new();
    let text = |k: usize| body.get(k).map_or("", |t| t.text);
    for (i, tok) in body.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        match tok.text {
            // `recv.lock()` / `recv.read()` / `recv.write()` with zero
            // arguments (io `read(buf)` / `write(buf)` take arguments).
            "lock" | "read" | "write"
                if i >= 1 && text(i - 1) == "." && text(i + 1) == "(" && text(i + 2) == ")" =>
            {
                if let Some(receiver) = dotted_receiver(body, i - 1) {
                    out.push(LockSite { receiver, line: tok.line, col: tok.col });
                }
            }
            // Unpoisoned-guard helpers: `read_unpoisoned(&self.truth)`.
            _ if tok.text.ends_with("_unpoisoned") && text(i + 1) == "(" => {
                let mut j = i + 2;
                if text(j) == "&" {
                    j += 1;
                }
                let mut segs: Vec<&str> = Vec::new();
                while body.get(j).is_some_and(|t| t.kind == TokenKind::Ident) {
                    segs.push(body[j].text);
                    if text(j + 1) != "." {
                        j += 1;
                        break;
                    }
                    j += 2;
                }
                if !segs.is_empty() && text(j) == ")" {
                    out.push(LockSite { receiver: segs.join("."), line: tok.line, col: tok.col });
                }
            }
            _ => {}
        }
    }
    out
}

/// Walks a dotted receiver path left from the `.` at `dot`, returning
/// `a.b.c` when every hop is a plain ident (field/variable chain).
fn dotted_receiver(body: &[Token<'_>], dot: usize) -> Option<String> {
    let mut segs: Vec<&str> = Vec::new();
    let mut j = dot; // points at a `.`
    loop {
        let prev = j.checked_sub(1)?;
        if body[prev].kind != TokenKind::Ident {
            return None;
        }
        segs.push(body[prev].text);
        match prev.checked_sub(1) {
            Some(p) if body[p].text == "." => j = p,
            _ => break,
        }
    }
    segs.reverse();
    Some(segs.join("."))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileKind;

    fn ctx(path: &str, simulation: bool) -> FileContext {
        FileContext { path: path.to_string(), kind: FileKind::Lib, simulation, crate_root: false }
    }

    fn graph(files: &[(&str, &str, bool, &str)]) -> WorkspaceGraph {
        let mut g = WorkspaceGraph::default();
        for (crate_name, path, simulation, src) in files {
            g.add_file(src, &ctx(path, *simulation), crate_name);
        }
        g
    }

    fn fn_idx(g: &WorkspaceGraph, qual: &str) -> usize {
        g.fns
            .iter()
            .position(|f| f.qual == qual)
            .unwrap_or_else(|| panic!("no fn {qual} in {:?}", qs(g)))
    }

    fn qs(g: &WorkspaceGraph) -> Vec<&str> {
        g.fns.iter().map(|f| f.qual.as_str()).collect()
    }

    #[test]
    fn sources_are_attributed_to_functions() {
        let g = graph(&[(
            "helper",
            "crates/helper/src/lib.rs",
            false,
            r#"
                use std::time::Instant;
                use std::collections::HashMap;
                pub fn stamp() -> Instant { Instant::now() }
                pub fn tally(m: &HashMap<u32, u32>) -> u32 {
                    let mut acc = 0;
                    for (k, v) in m.iter() { acc += k + v; }
                    acc
                }
                pub fn pure(x: u32) -> u32 { x + 1 }
            "#,
        )]);
        let stamp = &g.fns[fn_idx(&g, "helper::stamp")];
        assert_eq!(stamp.sources.len(), 1);
        assert_eq!(stamp.sources[0].kind, SourceKind::Clock);
        let tally = &g.fns[fn_idx(&g, "helper::tally")];
        assert_eq!(tally.sources.len(), 1);
        assert_eq!(tally.sources[0].kind, SourceKind::HashOrder);
        assert!(g.fns[fn_idx(&g, "helper::pure")].sources.is_empty());
    }

    #[test]
    fn bare_and_path_calls_resolve_within_and_across_crates() {
        let g = graph(&[
            (
                "sim-app",
                "crates/sim/src/lib.rs",
                true,
                r#"
                    use util_helpers::stamp_ms;
                    pub fn run() -> u64 { local() + stamp_ms() + util_helpers::direct() }
                    fn local() -> u64 { 1 }
                "#,
            ),
            (
                "util-helpers",
                "crates/util/src/lib.rs",
                false,
                r#"
                    pub fn stamp_ms() -> u64 { 2 }
                    pub fn direct() -> u64 { 3 }
                "#,
            ),
        ]);
        let adj = g.resolve_edges();
        let run = fn_idx(&g, "sim-app::run");
        let callees: Vec<&str> = adj[run].iter().map(|&j| g.fns[j].qual.as_str()).collect();
        assert_eq!(
            callees,
            vec!["sim-app::local", "util-helpers::stamp_ms", "util-helpers::direct"]
        );
    }

    #[test]
    fn method_calls_need_a_type_import_to_cross_crates() {
        let src_import = r#"
            use cachecrate::Cache;
            pub fn uses(c: &Cache) -> u8 { c.get() }
        "#;
        let src_no_import = r#"
            pub fn uses(c: &SomethingElse) -> u8 { c.get() }
        "#;
        let cache = r#"
            pub struct Cache;
            impl Cache { pub fn get(&self) -> u8 { 0 } }
        "#;
        let g = graph(&[
            ("sim-a", "a/src/lib.rs", true, src_import),
            ("sim-b", "b/src/lib.rs", true, src_no_import),
            ("cachecrate", "c/src/lib.rs", false, cache),
        ]);
        let adj = g.resolve_edges();
        let get = fn_idx(&g, "cachecrate::Cache::get");
        assert!(adj[fn_idx(&g, "sim-a::uses")].contains(&get));
        assert!(!adj[fn_idx(&g, "sim-b::uses")].contains(&get));
    }

    #[test]
    fn self_and_type_qualified_methods_resolve() {
        let g = graph(&[(
            "one",
            "one/src/lib.rs",
            true,
            r#"
                pub struct S;
                impl S {
                    pub fn entry(&self) -> u8 { Self::helper() + S::other() }
                    fn helper() -> u8 { 1 }
                    fn other() -> u8 { 2 }
                }
            "#,
        )]);
        let adj = g.resolve_edges();
        let entry = fn_idx(&g, "one::S::entry");
        assert!(adj[entry].contains(&fn_idx(&g, "one::S::helper")));
        assert!(adj[entry].contains(&fn_idx(&g, "one::S::other")));
    }

    #[test]
    fn test_module_fns_stay_out_of_the_graph() {
        let g = graph(&[(
            "one",
            "one/src/lib.rs",
            true,
            r#"
                pub fn real() {}
                #[cfg(test)]
                mod tests {
                    fn helper() { super::real(); }
                }
            "#,
        )]);
        assert_eq!(qs(&g), vec!["one::real"]);
    }

    #[test]
    fn locks_are_extracted_with_receivers() {
        let g = graph(&[(
            "one",
            "one/src/lib.rs",
            true,
            r#"
                pub fn a(&self) {
                    let g = self.truth.write();
                    let h = read_unpoisoned(&self.published);
                    reader.read(&mut buf);
                }
            "#,
        )]);
        let recv: Vec<&str> = g.fns[0].locks.iter().map(|l| l.receiver.as_str()).collect();
        assert_eq!(recv, vec!["self.truth", "self.published"]);
    }

    #[test]
    fn turbofish_calls_are_still_calls() {
        let g = graph(&[(
            "one",
            "one/src/lib.rs",
            true,
            r#"
                pub fn entry(xs: &[u8]) -> Vec<u8> { helper::<u8>(xs) }
                fn helper<T>(xs: &[T]) -> Vec<T> { xs.to_vec() }
            "#,
        )]);
        let adj = g.resolve_edges();
        assert!(adj[fn_idx(&g, "one::entry")].contains(&fn_idx(&g, "one::helper")));
    }
}
