//! `starlint` — static analysis for the starsense workspace.
//!
//! Usage:
//!
//! ```text
//! starlint [--root <dir>] [--format text|json] [--explain [CODE]]
//! ```
//!
//! Walks the workspace's `Cargo.toml` members, lints every `.rs` file, and
//! exits with the finding count (capped at 100) so shells and CI can gate
//! on it. `--format json` emits one machine-readable object on stdout.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use starsense_lint::rules::RULES;
use starsense_lint::workspace::lint_workspace;

/// Maximum process exit code; larger finding counts saturate here.
const MAX_EXIT: u8 = 100;

fn usage() -> &'static str {
    "usage: starlint [--root <dir>] [--format text|json] [--explain [CODE]]"
}

/// Ascends from `start` to the nearest directory whose Cargo.toml declares
/// a `[workspace]`, falling back to `start` itself.
fn find_workspace_root(start: &Path) -> PathBuf {
    // A relative start (the default `.`) has no parent chain to ascend, so
    // resolve it first; keep the original on canonicalization failure and
    // let lint_workspace surface the IO error.
    let mut dir = start.canonicalize().unwrap_or_else(|_| start.to_path_buf());
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(body) = std::fs::read_to_string(&manifest) {
            if body.contains("[workspace]") {
                return dir;
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent.to_path_buf(),
            None => return start.to_path_buf(),
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => {
                    eprintln!("{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--explain" => {
                let filter = args.next();
                let mut matched = false;
                for (code, desc) in RULES {
                    if filter.as_deref().map_or(true, |f| f.eq_ignore_ascii_case(code)) {
                        println!("{code}  {desc}");
                        matched = true;
                    }
                }
                if !matched {
                    eprintln!("starlint: unknown rule code `{}`", filter.unwrap_or_default());
                    return ExitCode::from(2);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("starlint: unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let start = root.unwrap_or_else(|| PathBuf::from("."));
    let root = find_workspace_root(&start);
    let report = match lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("starlint: cannot lint {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    ExitCode::from(report.findings.len().min(MAX_EXIT as usize) as u8)
}
