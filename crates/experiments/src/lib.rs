//! Shared scaffolding for the experiment binaries.
//!
//! Every figure and table of the paper has a binary in `src/bin` that
//! regenerates it against the simulated system:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig2` | Figure 2 (RTT time series) + the §3 Mann-Whitney window test |
//! | `fig3` | Figure 3 (obstruction maps, XOR) + the §4.1 calibration table |
//! | `fig4` | Figure 4 (angle-of-elevation CDFs) |
//! | `fig5` | Figure 5 (azimuth CDFs and quadrant shares) |
//! | `fig6` | Figure 6 (launch-date preference) |
//! | `fig7` | Figure 7 + §5.3 (sunlit preference) |
//! | `fig8` | Figure 8 (model vs baseline top-k accuracy) |
//! | `tab_ident` | §4.1 validation (identification accuracy, staleness sweep) |
//! | `tab_importance` | §6 feature-importance table |
//! | `chaos_soak` | robustness soak: seeded fault tiers, degradation monotonicity |
//! | `sweep_scale` | terminal-scale throughput sweep on gen1 (DESIGN §5 numbers) |
//!
//! All binaries share one deterministic world (seed 42, constellation and
//! campaign window below), print the figure's series as an aligned table,
//! and drop CSV/PGM artifacts under `results/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use starsense_astro::time::JulianDate;
use starsense_constellation::{Constellation, ConstellationBuilder};
use starsense_core::campaign::{Campaign, CampaignConfig, SlotObservation};
use starsense_core::vantage::paper_terminals;
use std::path::PathBuf;

/// The seed every experiment derives its world from.
pub const WORLD_SEED: u64 = 42;

/// Campaign start: 2023-06-01 00:00 UTC (mid-constellation-era, matching
/// the paper's measurement period).
pub fn campaign_start() -> JulianDate {
    JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0)
}

/// The standard full-scale constellation.
pub fn standard_constellation() -> Constellation {
    ConstellationBuilder::starlink_gen1().seed(WORLD_SEED).build()
}

/// Number of campaign slots: `STARSENSE_SLOTS` env var or the default.
pub fn slots_from_env(default: usize) -> usize {
    std::env::var("STARSENSE_SLOTS").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Runs the standard four-terminal oracle campaign.
pub fn standard_campaign(constellation: &Constellation, slots: usize) -> Vec<SlotObservation> {
    let campaign =
        Campaign::oracle(constellation, paper_terminals(), CampaignConfig::default(), WORLD_SEED);
    campaign.run(campaign_start(), slots)
}

/// Output directory for CSV/PGM artifacts (`results/`, created on demand).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    // starlint: allow(P102, reason = "experiment harness helper; the bins have no recovery path for an unwritable working directory")
    std::fs::create_dir_all(&dir).expect("create results/");
    dir
}

/// Writes an artifact under `results/` and logs the path.
pub fn write_artifact(name: &str, contents: &str) {
    let path = out_dir().join(name);
    // starlint: allow(P102, reason = "experiment harness helper; losing an artifact silently would invalidate the run")
    std::fs::write(&path, contents).expect("write artifact");
    // starlint: allow(Q201, reason = "experiment bins report artifact paths on stdout by design")
    println!("[wrote {}]", path.display());
}

/// Formats an `(x, F(x))` CDF curve as CSV rows with a label column.
pub fn cdf_rows(label: &str, curve: &[(f64, f64)]) -> Vec<Vec<String>> {
    curve
        .iter()
        .map(|(x, y)| vec![label.to_string(), format!("{x:.2}"), format!("{y:.4}")])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_env_default_applies() {
        std::env::remove_var("STARSENSE_SLOTS");
        assert_eq!(slots_from_env(77), 77);
    }

    #[test]
    fn cdf_rows_format() {
        let rows = cdf_rows("Iowa", &[(25.0, 0.0), (90.0, 1.0)]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec!["Iowa".to_string(), "25.00".into(), "0.0000".into()]);
    }
}
