//! §4.1 validation table: identification accuracy of the obstruction-map
//! pipeline against ground truth, with a TLE-staleness sweep.
//!
//! The paper validated its matcher on 500 trajectory sets with >99%
//! agreement against manual inspection. The reproduction scores against
//! the hidden scheduler's actual assignments instead, and additionally
//! sweeps the published-TLE staleness — the pipeline's main error source —
//! which the paper could not vary.

use starsense_astro::frames::Geodetic;
use starsense_constellation::ConstellationBuilder;
use starsense_core::report::{csv, num, pct, text_table};
use starsense_experiments::{campaign_start, slots_from_env, write_artifact, WORLD_SEED};
use starsense_ident::run_validation;
use starsense_scheduler::{GlobalScheduler, SchedulerPolicy, Terminal};

fn main() {
    println!("== §4.1: identification-pipeline validation ==\n");
    // 500 slots ≈ the paper's 500-set pilot study.
    let slots = slots_from_env(500);
    let location = Geodetic::new(41.66, -91.53, 0.2); // Iowa

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (lo, hi) in [(0.0, 0.5), (0.0, 6.0), (6.0, 12.0), (12.0, 24.0)] {
        let constellation =
            ConstellationBuilder::starlink_gen1().seed(WORLD_SEED).staleness_hours(lo, hi).build();
        let terminals = vec![Terminal::new(0, "Iowa", location)];
        let mut scheduler = GlobalScheduler::new(SchedulerPolicy::default(), terminals, WORLD_SEED);
        let report = run_validation(&constellation, &mut scheduler, 0, campaign_start(), slots);

        rows.push(vec![
            format!("{lo:.0}-{hi:.0} h"),
            report.slots_played.to_string(),
            report.attempted.to_string(),
            report.correct.to_string(),
            report.wrong.to_string(),
            report.skipped.to_string(),
            pct(report.accuracy()),
            num(report.mean_margin, 3),
        ]);
        csv_rows.push(vec![
            format!("{lo}"),
            format!("{hi}"),
            report.attempted.to_string(),
            format!("{:.5}", report.accuracy()),
        ]);

        if hi <= 6.0 {
            assert!(
                report.accuracy() > 0.9,
                "CelesTrak-like staleness must identify >90%: got {}",
                pct(report.accuracy())
            );
        }
    }

    println!(
        "{}",
        text_table(
            &[
                "TLE staleness",
                "slots",
                "attempted",
                "correct",
                "wrong",
                "skipped",
                "accuracy",
                "mean margin"
            ],
            &rows
        )
    );
    println!("\npaper: DTW matching agreed with manual inspection on >99% of 500 sets");
    println!("(the 0-6 h row is the CelesTrak regime the paper operated in)");

    write_artifact(
        "tab_ident_staleness.csv",
        &csv(&["staleness_lo_h", "staleness_hi_h", "attempted", "accuracy"], &csv_rows),
    );
}
