//! §6 feature-importance table: gini importances of the trained model.
//!
//! Paper observations to reproduce in shape: `local_hour` ranks among the
//! most important features; tuples with sunlit=1 and age below the mean
//! (`(x,y,-1,1)`) recur; high-AOE tuples (`(x,2,y,z)`) are favored.

use starsense_core::model::{default_grid, train_and_evaluate};
use starsense_core::report::{csv, num, text_table};
use starsense_core::vantage::paper_terminals;
use starsense_experiments::{
    slots_from_env, standard_campaign, standard_constellation, write_artifact, WORLD_SEED,
};

fn main() {
    println!("== §6: gini feature importances ==\n");
    let constellation = standard_constellation();
    let slots = slots_from_env(2400);
    let obs = standard_campaign(&constellation, slots);
    let names: Vec<String> = paper_terminals().iter().map(|t| t.name.clone()).collect();
    let grid = default_grid();

    let mut csv_rows = Vec::new();
    for (tid, name) in names.iter().enumerate() {
        let eval = train_and_evaluate(&obs, tid, &grid, WORLD_SEED ^ tid as u64);
        let top: Vec<Vec<String>> =
            eval.importances.iter().take(12).map(|(n, v)| vec![n.clone(), num(*v, 4)]).collect();
        println!("--- {name} ---\n{}", text_table(&["feature", "gini importance"], &top));

        let local_hour_rank = eval
            .importances
            .iter()
            .position(|(n, _)| n == "local_hour")
            .expect("local_hour feature exists");
        println!("local_hour rank: {} of {}\n", local_hour_rank + 1, eval.importances.len());

        for (n, v) in &eval.importances {
            csv_rows.push(vec![name.clone(), n.clone(), format!("{v:.6}")]);
        }

        // Shape check: high-AOE clusters ((x,2,y,z) tuples) must carry real
        // importance — the scheduler's strongest preference.
        let high_aoe_mass: f64 = eval
            .importances
            .iter()
            .filter(|(n, _)| n.split(',').nth(1) == Some("2"))
            .map(|(_, v)| v)
            .sum();
        println!("total importance on (x,2,y,z) high-AOE clusters: {}\n", num(high_aoe_mass, 3));
        assert!(high_aoe_mass > 0.05, "{name}: high-AOE clusters must matter");
    }
    println!("({slots} slots per location)");

    write_artifact("tab_importance.csv", &csv(&["location", "feature", "importance"], &csv_rows));
}
