//! Figure 2 + §3: high-frequency RTT trace from the EU (Madrid) terminal,
//! 15-second latency regimes anchored at :12/:27/:42/:57, parallel MAC
//! bands, and the Mann-Whitney distinctness test between consecutive
//! windows.

use starsense_core::report::{num, pct, text_table};
use starsense_core::vantage::{paper_terminals, MADRID};
use starsense_experiments::{standard_constellation, write_artifact, WORLD_SEED};
use starsense_netemu::groundstation::paper_pops;
use starsense_netemu::{Emulator, EmulatorConfig};
use starsense_scheduler::GlobalScheduler;
use starsense_scheduler::SchedulerPolicy;
use starsense_stats::mannwhitney::mann_whitney_u;
use starsense_stats::Summary;

fn main() {
    println!("== Figure 2: measured RTT from the EU terminal ==\n");
    let constellation = standard_constellation();
    let terminals = paper_terminals();
    let pops = paper_pops();

    let scheduler = GlobalScheduler::new(SchedulerPolicy::default(), terminals, WORLD_SEED);
    let mut emu =
        Emulator::new(&constellation, scheduler, pops, EmulatorConfig::default(), WORLD_SEED);

    // The paper's Figure 2 spans ~3 minutes starting at 05:37:30 UTC.
    let from = starsense_astro::time::JulianDate::from_ymd_hms(2023, 6, 1, 5, 37, 30.0);
    let trace = emu.probe_trace(MADRID, from, 180.0);

    // Emit the full series as CSV (seconds, rtt_ms).
    let rows: Vec<Vec<String>> =
        trace.series().iter().map(|(t, r)| vec![format!("{t:.3}"), format!("{r:.3}")]).collect();
    write_artifact(
        "fig2_rtt_series.csv",
        &starsense_core::report::csv(&["seconds", "rtt_ms"], &rows),
    );

    // Per-window summary: regime levels and where the boundaries fall.
    let windows = trace.windows();
    let mut table = Vec::new();
    for w in &windows {
        let Some(s) = Summary::of(&w.rtts) else { continue };
        let boundary_sec = w.start.to_civil().second;
        table.push(vec![
            format!("{}", w.slot),
            format!(":{:04.1}", boundary_sec),
            w.serving_sat.map(|x| x.to_string()).unwrap_or_else(|| "-".into()),
            num(s.median, 2),
            num(s.p25, 2),
            num(s.p75, 2),
            pct(w.loss_rate()),
        ]);
    }
    println!(
        "{}",
        text_table(&["slot", "starts", "serving sat", "median rtt", "p25", "p75", "loss"], &table)
    );

    // §3's claim 1: boundaries at :12/:27/:42/:57.
    let anchors: Vec<u32> = windows
        .iter()
        .skip(1) // first window is partial
        .map(|w| w.start.to_civil().second.round() as u32 % 60)
        .collect();
    println!("window boundaries (seconds past the minute): {anchors:?}");
    assert!(
        anchors.iter().all(|s| [12, 27, 42, 57].contains(s)),
        "boundaries must fall on the paper's anchors"
    );

    // §3's claim 2: consecutive windows statistically distinct
    // (Mann-Whitney U, p < .05) whenever the satellite actually changed.
    let mut rows = Vec::new();
    let mut significant = 0;
    let mut tested = 0;
    for pair in windows.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if a.rtts.len() < 100 || b.rtts.len() < 100 || a.serving_sat == b.serving_sat {
            continue;
        }
        let Some(t) = mann_whitney_u(&a.rtts, &b.rtts) else { continue };
        tested += 1;
        if t.is_significant(0.05) {
            significant += 1;
        }
        rows.push(vec![
            format!("{} vs {}", a.slot, b.slot),
            format!("{:.1}", t.u),
            format!("{:.2}", t.z),
            format!("{:.2e}", t.p_value),
            (if t.is_significant(0.05) { "yes" } else { "no" }).to_string(),
        ]);
    }
    println!(
        "\n== Mann-Whitney U between consecutive windows (satellite changed) ==\n{}",
        text_table(&["windows", "U", "z", "p", "p < .05"], &rows)
    );
    println!("distinct: {significant}/{tested} window pairs");

    // The MAC-band observation: spread of RTT inside a single window.
    let full: Vec<&starsense_netemu::SlotWindow> =
        windows.iter().filter(|w| w.rtts.len() > 500).collect();
    if let Some(w) = full.first() {
        let mut sorted = w.rtts.clone();
        sorted.sort_by(f64::total_cmp);
        let spread = sorted[sorted.len() * 95 / 100] - sorted[sorted.len() * 5 / 100];
        println!("\nwithin-window p5–p95 RTT spread (slot {}): {:.2} ms", w.slot, spread);
        println!("(parallel bands a few ms apart: MAC round-robin frame queueing)");
    }
}
