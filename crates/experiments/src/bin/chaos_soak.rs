//! Chaos soak: the whole measurement pipeline under escalating seeded
//! fault tiers.
//!
//! Not a paper figure — a robustness harness. For each fault tier the
//! soak replays a seed sweep of identified-mode campaigns on the mini
//! constellation, a probe-emulation window, and a catalog-feed load, all
//! driven by one [`FaultPlan`] per (seed, tier). It aggregates the
//! campaign [`DegradationStats`] per tier and asserts the invariants the
//! `tests/chaos.rs` suite pins:
//!
//! * the pipeline finishes every run — faults degrade, never abort;
//! * the fault-free tier is bit-identical to a fault-unaware campaign;
//! * degradation (no-data slots, probe losses, broken catalog records)
//!   is monotone in the injected rate.
//!
//! A final kill/resume tier replays the mid-rate campaigns through the
//! resumable engine, crashing (in-process) after every
//! `STARSENSE_CHAOS_KILL` checkpoints (default 1) and resuming from the
//! snapshot until done — the surviving stream must be bit-identical to
//! the one-shot engine's, for every seed.
//!
//! Env knobs: `STARSENSE_CHAOS_SEEDS` (seed-sweep width, default 8),
//! `STARSENSE_SLOTS` (slots per campaign, default 40), and
//! `STARSENSE_CHAOS_KILL` (checkpoints between kills, default 1).

use starsense_constellation::{load_catalog_text, Constellation, ConstellationBuilder};
use starsense_core::campaign::{Campaign, CampaignConfig, SlotObservation};
use starsense_core::degrade::DegradationStats;
use starsense_core::report::{csv, pct, text_table};
use starsense_core::resume::{fingerprint_observations, ResumeConfig};
use starsense_core::vantage::paper_terminals;
use starsense_experiments::{campaign_start, slots_from_env, write_artifact, WORLD_SEED};
use starsense_faults::{FaultPlan, FaultRates};
use starsense_ident::DEFAULT_MIN_MARGIN;
use starsense_netemu::groundstation::paper_pops;
use starsense_netemu::{Emulator, EmulatorConfig, LossCause};
use starsense_scheduler::{GlobalScheduler, SchedulerPolicy, Terminal};

/// Escalating uniform fault tiers (tier 0 must stay fault-free: it is
/// the bit-identity control).
const TIER_RATES: &[f64] = &[0.0, 0.05, 0.15, 0.35];

/// Probe-emulation window per seed, seconds (12 scheduling slots).
const PROBE_WINDOW_S: f64 = 180.0;

fn chaos_seeds() -> Vec<u64> {
    let n = std::env::var("STARSENSE_CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8usize)
        .max(1);
    (0..n as u64).map(|i| 101 + i).collect()
}

/// The per-(seed, tier) fault plan. The plan seed is decorrelated from
/// the world seed so fault placement does not track scheduler draws.
fn plan(seed: u64, rate: f64) -> FaultPlan {
    FaultPlan::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15), FaultRates::uniform(rate))
}

fn chaos_config(seed: u64, rate: f64) -> CampaignConfig {
    CampaignConfig {
        faults: plan(seed, rate),
        min_margin: DEFAULT_MIN_MARGIN,
        quarantine_after: 3,
        ..CampaignConfig::default()
    }
}

fn one_terminal() -> Vec<Terminal> {
    let mut t = paper_terminals();
    t.truncate(1);
    t
}

fn run_campaign(
    constellation: &Constellation,
    config: CampaignConfig,
    seed: u64,
    slots: usize,
) -> (Vec<SlotObservation>, DegradationStats) {
    Campaign::identified(constellation, one_terminal(), config, seed)
        .run_with_stats(campaign_start(), slots)
}

/// Probe losses and record count for one seed under one tier.
fn run_probes(constellation: &Constellation, seed: u64, rate: f64) -> (usize, usize, usize) {
    let scheduler = GlobalScheduler::new(SchedulerPolicy::default(), one_terminal(), seed);
    let mut pops = paper_pops();
    pops.truncate(1);
    let config = EmulatorConfig { faults: plan(seed, rate), ..EmulatorConfig::default() };
    let mut emulator = Emulator::new(constellation, scheduler, pops, config, seed);
    let trace = emulator.probe_trace(0, campaign_start(), PROBE_WINDOW_S);
    for r in &trace.records {
        assert_eq!(
            r.loss.is_some(),
            r.rtt_ms.is_none(),
            "loss-attribution invariant broken at seed {seed} rate {rate}"
        );
    }
    let lost = trace.records.iter().filter(|r| r.rtt_ms.is_none()).count();
    let burst = trace.losses_by_cause(LossCause::FaultBurst);
    (trace.records.len(), lost, burst)
}

fn main() {
    println!("== chaos soak: pipeline under escalating fault tiers ==\n");
    let slots = slots_from_env(40);
    let seeds = chaos_seeds();
    let constellation = ConstellationBuilder::starlink_mini().seed(WORLD_SEED).build();
    let catalog_text = constellation.published_catalog_text();

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut prev_no_data = 0usize;
    let mut prev_burst = 0usize;
    for (tier, &rate) in TIER_RATES.iter().enumerate() {
        let mut agg = DegradationStats::default();
        let mut probes = 0usize;
        let mut lost = 0usize;
        let mut burst = 0usize;
        let mut usable = 0usize;
        let mut records = 0usize;
        for &seed in &seeds {
            let (obs, stats) = run_campaign(&constellation, chaos_config(seed, rate), seed, slots);
            assert_eq!(obs.len(), slots, "campaign truncated at seed {seed} rate {rate}");
            for w in obs.windows(2) {
                assert_eq!(w[1].slot, w[0].slot + 1, "slot sequence broken");
            }
            agg.merge(&stats);

            let (p, l, b) = run_probes(&constellation, seed, rate);
            probes += p;
            lost += l;
            burst += b;

            let load = load_catalog_text(&plan(seed, rate).corrupt_catalog_text(&catalog_text));
            usable += load.usable.len();
            records += load.total();
        }

        // Tier 0 is the control: bit-identical to a fault-unaware run.
        if tier == 0 {
            let seed = seeds[0];
            let (faulted, _) = run_campaign(&constellation, chaos_config(seed, 0.0), seed, slots);
            let (plain, _) = run_campaign(
                &constellation,
                CampaignConfig { min_margin: DEFAULT_MIN_MARGIN, ..CampaignConfig::default() },
                seed,
                slots,
            );
            for (x, y) in faulted.iter().zip(&plain) {
                assert_eq!(x.truth_id, y.truth_id, "fault-free tier diverged from plain run");
                assert_eq!(
                    x.chosen.as_ref().map(|c| c.norad_id),
                    y.chosen.as_ref().map(|c| c.norad_id),
                    "fault-free tier diverged from plain run"
                );
                assert_eq!(x.outcome, y.outcome, "fault-free tier diverged from plain run");
            }
            assert_eq!(lost, {
                let mut l0 = 0;
                for &seed in &seeds {
                    l0 += run_probes(&constellation, seed, 0.0).1;
                }
                l0
            });
            assert_eq!(usable, records, "fault-free catalog must load clean");
        }

        assert!(
            agg.no_data >= prev_no_data,
            "no-data slots not monotone at rate {rate}: {} < {prev_no_data}",
            agg.no_data
        );
        assert!(
            burst >= prev_burst,
            "burst losses not monotone at rate {rate}: {burst} < {prev_burst}"
        );
        prev_no_data = agg.no_data;
        prev_burst = burst;

        rows.push(vec![
            format!("{rate:.2}"),
            agg.slots.to_string(),
            agg.observed.to_string(),
            agg.ambiguous.to_string(),
            agg.no_data.to_string(),
            agg.frame_dropped.to_string(),
            agg.stale_frames.to_string(),
            agg.quarantined_sats.to_string(),
            pct(agg.observed_rate()),
            pct(lost as f64 / probes.max(1) as f64),
            pct(usable as f64 / records.max(1) as f64),
        ]);
        csv_rows.push(vec![
            format!("{rate}"),
            agg.slots.to_string(),
            agg.observed.to_string(),
            agg.ambiguous.to_string(),
            agg.no_data.to_string(),
            agg.frame_dropped.to_string(),
            agg.stale_frames.to_string(),
            agg.outages.to_string(),
            agg.quarantined_sats.to_string(),
            agg.masked_propagations.to_string(),
            format!("{:.5}", agg.observed_rate()),
            format!("{:.5}", lost as f64 / probes.max(1) as f64),
            burst.to_string(),
            format!("{:.5}", usable as f64 / records.max(1) as f64),
        ]);
    }

    println!(
        "{}",
        text_table(
            &[
                "fault rate",
                "slots",
                "observed",
                "ambiguous",
                "no data",
                "frames dropped",
                "stale",
                "quarantined",
                "observed %",
                "probe loss %",
                "catalog usable %",
            ],
            &rows
        )
    );
    // Kill/resume tier: the same mid-rate campaigns through the
    // resumable engine, crashed after every STARSENSE_CHAOS_KILL
    // checkpoints and resumed, must reassemble the one-shot stream bit
    // for bit.
    let kill_every = std::env::var("STARSENSE_CHAOS_KILL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1usize)
        .max(1);
    let mid_rate = TIER_RATES[TIER_RATES.len() / 2];
    let mut total_lives = 0usize;
    for &seed in &seeds {
        let campaign = Campaign::identified(
            &constellation,
            one_terminal(),
            chaos_config(seed, mid_rate),
            seed,
        );
        let one_shot = fingerprint_observations(&campaign.run(campaign_start(), slots));
        let path = std::env::temp_dir()
            .join(format!("starsense-chaos-soak-{}-{seed}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(starsense_checkpoint::backup_path(&path));
        let opts = ResumeConfig {
            checkpoint_every: (slots / 5).max(1),
            stop_after_checkpoints: Some(kill_every),
            ..ResumeConfig::new(path.clone())
        };
        let mut lives = 0usize;
        let resumed = loop {
            lives += 1;
            assert!(lives <= slots + 2, "kill/resume chain failed to converge at seed {seed}");
            let (obs, _, report) = campaign
                .run_resumable(campaign_start(), slots, &opts)
                .expect("resumable campaign must never abort");
            if report.completed {
                break fingerprint_observations(&obs);
            }
        };
        assert_eq!(
            resumed, one_shot,
            "kill/resume stream diverged from one-shot at seed {seed} rate {mid_rate}"
        );
        total_lives += lives;
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(starsense_checkpoint::backup_path(&path));
    }
    println!(
        "\nkill/resume tier: {} seeds at rate {mid_rate:.2}, killed every {kill_every} \
         checkpoint(s), {total_lives} total process lives — all bit-identical to one-shot",
        seeds.len()
    );

    println!(
        "\n{} seeds x {} tiers, {} campaign slots + {:.0} s probe window each; \
         zero panics, fault-free tier bit-identical, degradation monotone",
        seeds.len(),
        TIER_RATES.len(),
        slots,
        PROBE_WINDOW_S
    );

    write_artifact(
        "chaos_soak.csv",
        &csv(
            &[
                "fault_rate",
                "slots",
                "observed",
                "ambiguous",
                "no_data",
                "frame_dropped",
                "stale_frames",
                "outages",
                "quarantined_sats",
                "masked_propagations",
                "observed_rate",
                "probe_loss_rate",
                "burst_losses",
                "catalog_usable_rate",
            ],
            &csv_rows,
        ),
    );
}
