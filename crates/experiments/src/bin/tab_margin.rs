//! Identification confidence analysis: precision vs. coverage as a
//! function of the DTW decision margin.
//!
//! The paper accepts every lowest-DTW match (validated manually at >99%).
//! With simulator ground truth we can quantify the margin signal the
//! pipeline exposes: requiring the winner to beat the runner-up by a
//! larger margin trades coverage (fraction of slots answered) for
//! precision (fraction of answers correct) — the knob an operator of this
//! methodology would actually tune.

use starsense_astro::frames::Geodetic;
use starsense_constellation::ConstellationBuilder;
use starsense_core::report::{csv, pct, text_table};
use starsense_experiments::{campaign_start, slots_from_env, write_artifact, WORLD_SEED};
use starsense_ident::{identify_slot, DishSimulator};
use starsense_scheduler::slots::SLOT_PERIOD_SECONDS;
use starsense_scheduler::{slots::slot_start, GlobalScheduler, SchedulerPolicy, Terminal};

fn main() {
    println!("== identification margin: precision vs coverage ==\n");
    let slots = slots_from_env(400);
    let location = Geodetic::new(41.66, -91.53, 0.2);

    // Run under moderately stale TLEs so errors exist to be filtered.
    let constellation =
        ConstellationBuilder::starlink_gen1().seed(WORLD_SEED).staleness_hours(4.0, 10.0).build();
    let terminals = vec![Terminal::new(0, "Iowa", location)];
    let mut scheduler = GlobalScheduler::new(SchedulerPolicy::default(), terminals, WORLD_SEED);

    // Collect (margin, correct) pairs for every attempted slot.
    let mut attempts: Vec<(f64, bool)> = Vec::new();
    let mut dish = DishSimulator::new(location);
    let first_mid = slot_start(campaign_start()).plus_seconds(SLOT_PERIOD_SECONDS / 2.0);
    let mut prev = None;
    for k in 0..slots {
        let at = first_mid.plus_seconds(k as f64 * SLOT_PERIOD_SECONDS);
        let alloc = scheduler.allocate(&constellation, at).swap_remove(0);
        let capture =
            dish.play_slot(&constellation, alloc.slot, alloc.slot_start, alloc.chosen_id());
        let usable_prev = if capture.after_reset { None } else { prev.as_ref() };
        if let (Some(p), Some(truth)) = (usable_prev, alloc.chosen_id()) {
            if let Some(id) = identify_slot(
                &(p as &starsense_ident::SlotCapture).map,
                &capture.map,
                &constellation,
                location,
                alloc.slot_start,
            ) {
                attempts.push((id.margin(), id.norad_id == truth));
            }
        }
        prev = Some(capture);
    }

    let total = attempts.len();
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for threshold in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7] {
        let kept: Vec<&(f64, bool)> = attempts.iter().filter(|(m, _)| *m >= threshold).collect();
        let correct = kept.iter().filter(|(_, ok)| *ok).count();
        let coverage = kept.len() as f64 / total.max(1) as f64;
        let precision = if kept.is_empty() { f64::NAN } else { correct as f64 / kept.len() as f64 };
        rows.push(vec![
            format!("{threshold:.1}"),
            kept.len().to_string(),
            pct(coverage),
            pct(precision),
        ]);
        csv_rows.push(vec![
            format!("{threshold}"),
            format!("{coverage:.4}"),
            format!("{precision:.4}"),
        ]);
    }

    println!("{}", text_table(&["margin ≥", "answered", "coverage", "precision"], &rows));
    println!("({total} attempted slots under 4-10 h TLE staleness)");
    write_artifact(
        "tab_margin.csv",
        &csv(&["margin_threshold", "coverage", "precision"], &csv_rows),
    );

    // Shape: precision is monotone-ish in the threshold and exceeds the
    // unfiltered rate at high margins.
    let p0: f64 = {
        let ok = attempts.iter().filter(|(_, c)| *c).count();
        ok as f64 / total.max(1) as f64
    };
    let high: Vec<&(f64, bool)> = attempts.iter().filter(|(m, _)| *m >= 0.5).collect();
    if high.len() >= 20 {
        let p_high = high.iter().filter(|(_, c)| *c).count() as f64 / high.len() as f64;
        assert!(p_high >= p0, "high-margin precision {p_high:.3} must not fall below base {p0:.3}");
        println!("\nbase precision {} → {} at margin ≥ 0.5", pct(p0), pct(p_high));
    }
}
