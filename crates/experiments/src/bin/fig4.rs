//! Figure 4: CDFs of the angle of elevation of available (dotted in the
//! paper) vs. selected (solid) satellites, for all four locations.
//!
//! Paper shape targets: selected median ≈ +22.9° over available; ~80% of
//! picks from the 45–90° band that holds only ~30% of availability.

use starsense_core::characterize::aoe_analysis;
use starsense_core::report::{csv, num, pct, text_table};
use starsense_core::vantage::paper_terminals;
use starsense_experiments::{
    cdf_rows, slots_from_env, standard_campaign, standard_constellation, write_artifact,
};

fn main() {
    println!("== Figure 4: angle-of-elevation preference ==\n");
    let constellation = standard_constellation();
    let slots = slots_from_env(2400);
    let obs = standard_campaign(&constellation, slots);
    let names: Vec<String> = paper_terminals().iter().map(|t| t.name.clone()).collect();

    let mut summary = Vec::new();
    let mut csv_rows = Vec::new();
    let mut shifts = Vec::new();
    for (tid, name) in names.iter().enumerate() {
        let a = aoe_analysis(&obs, tid);
        summary.push(vec![
            name.clone(),
            num(a.available_median_deg, 1),
            num(a.chosen_median_deg, 1),
            num(a.median_shift_deg, 1),
            pct(a.available_high_band),
            pct(a.chosen_high_band),
        ]);
        shifts.push(a.median_shift_deg);
        csv_rows.extend(cdf_rows(
            &format!("{name}/available"),
            &a.available_ecdf.curve(25.0, 90.0, 66),
        ));
        csv_rows.extend(cdf_rows(&format!("{name}/chosen"), &a.chosen_ecdf.curve(25.0, 90.0, 66)));
    }

    println!(
        "{}",
        text_table(
            &[
                "location",
                "avail median°",
                "chosen median°",
                "shift°",
                "avail 45-90°",
                "chosen 45-90°"
            ],
            &summary
        )
    );
    let mean_shift = shifts.iter().sum::<f64>() / shifts.len() as f64;
    println!("mean median shift: {mean_shift:.1}° (paper: ≈ +22.9°)");
    println!("({slots} slots per location)");

    write_artifact("fig4_aoe_cdfs.csv", &csv(&["series", "aoe_deg", "cdf"], &csv_rows));

    assert!(mean_shift > 10.0, "selected satellites must sit well above available");
}
