//! Ablation study: zero each scheduler preference and measure which paper
//! finding collapses.
//!
//! DESIGN.md calls out the hidden scheduler's parameterization as the key
//! design choice of the reproduction; this table demonstrates that each
//! §5 observation is driven by exactly the policy term built for it:
//!
//! * `w_elevation = 0` → the Figure 4 median shift collapses,
//! * GSO zone + margin off → the Figure 5 north skew collapses,
//! * `w_age = 0` → the Figure 6 Pearson correlation collapses,
//! * sunlit terms off → the §5.3 sunlit preference collapses.

use starsense_core::campaign::{Campaign, CampaignConfig};
use starsense_core::characterize::{
    aoe_analysis, azimuth_analysis, launch_analysis, sunlit_analysis,
};
use starsense_core::report::{csv, num, text_table};
use starsense_core::vantage::{paper_terminals, IOWA};
use starsense_experiments::{
    campaign_start, slots_from_env, standard_constellation, write_artifact, WORLD_SEED,
};
use starsense_scheduler::SchedulerPolicy;

struct Metrics {
    aoe_shift: f64,
    north_delta: f64,
    pearson: f64,
    sunlit_share: f64,
}

fn measure(policy: SchedulerPolicy, slots: usize) -> Metrics {
    let constellation = standard_constellation();
    let campaign = Campaign::oracle(
        &constellation,
        paper_terminals(),
        CampaignConfig { policy, ..CampaignConfig::default() },
        WORLD_SEED,
    );
    let obs = campaign.run(campaign_start(), slots);
    let aoe = aoe_analysis(&obs, IOWA);
    let az = azimuth_analysis(&obs, IOWA);
    let launch = launch_analysis(&obs, IOWA);
    let sun = sunlit_analysis(&obs, IOWA);
    Metrics {
        aoe_shift: aoe.median_shift_deg,
        north_delta: az.chosen_north - az.available_north,
        pearson: launch.pearson.unwrap_or(f64::NAN),
        sunlit_share: sun.sunlit_pick_share,
    }
}

fn main() {
    println!("== Ablation study: which finding does each policy term drive? ==\n");
    let slots = slots_from_env(1600);

    let base = SchedulerPolicy::default();
    let variants: Vec<(&str, SchedulerPolicy)> = vec![
        ("full policy", base.clone()),
        ("w_elevation = 0", SchedulerPolicy { w_elevation: 0.0, ..base.clone() }),
        (
            "GSO zone + margin off",
            SchedulerPolicy { gso_half_angle_deg: None, w_gso_margin: 0.0, ..base.clone() },
        ),
        ("w_age = 0", SchedulerPolicy { w_age: 0.0, ..base.clone() }),
        (
            "sunlit terms off",
            SchedulerPolicy { w_sunlit: 0.0, w_dark_low_elevation: 0.0, ..base.clone() },
        ),
    ];

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut results = Vec::new();
    for (name, policy) in variants {
        let m = measure(policy, slots);
        rows.push(vec![
            name.to_string(),
            num(m.aoe_shift, 1),
            num(m.north_delta, 3),
            num(m.pearson, 3),
            num(m.sunlit_share, 3),
        ]);
        csv_rows.push(vec![
            name.to_string(),
            format!("{:.3}", m.aoe_shift),
            format!("{:.4}", m.north_delta),
            format!("{:.4}", m.pearson),
            format!("{:.4}", m.sunlit_share),
        ]);
        results.push((name, m));
    }

    println!(
        "{}",
        text_table(
            &["policy", "fig4 AOE shift°", "fig5 north Δ", "fig6 Pearson", "§5.3 sunlit share"],
            &rows
        )
    );
    println!("(Iowa terminal, {slots} slots per variant)");
    write_artifact(
        "tab_ablation.csv",
        &csv(&["policy", "aoe_shift", "north_delta", "pearson", "sunlit_share"], &csv_rows),
    );

    // Each ablation must gut its own finding while leaving the others
    // substantially intact.
    let full = &results[0].1;
    let no_el = &results[1].1;
    let no_gso = &results[2].1;
    let no_age = &results[3].1;

    assert!(no_el.aoe_shift < full.aoe_shift * 0.5, "elevation ablation must collapse fig4");
    assert!(no_gso.north_delta < full.north_delta * 0.5, "GSO ablation must collapse fig5");
    assert!(no_age.pearson < full.pearson * 0.5, "age ablation must collapse fig6");
    println!("\nall ablation checks passed");
}
