//! Figure 3 + §4.1: obstruction-map captures for consecutive slots, their
//! XOR, the 2-day saturated map, and the blind calibration that recovers
//! the polar-plot parameters (center 62×62, radius 45 px).

use starsense_core::report::text_table;
use starsense_core::vantage::{paper_terminals, IOWA};
use starsense_experiments::{campaign_start, standard_constellation, write_artifact, WORLD_SEED};
use starsense_ident::DishSimulator;
use starsense_obstruction::render::{to_ascii, to_pgm};
use starsense_obstruction::{calibrate, isolate};
use starsense_scheduler::slots::{slot_start, SLOT_PERIOD_SECONDS};
use starsense_scheduler::{GlobalScheduler, SchedulerPolicy};

fn main() {
    println!("== Figure 3: obstruction maps ==\n");
    let constellation = standard_constellation();
    let terminals = paper_terminals();
    let location = terminals[IOWA].location;
    let mut scheduler = GlobalScheduler::new(SchedulerPolicy::default(), terminals, WORLD_SEED);

    // (b), (c), (d): two consecutive 15-second slots and their XOR.
    let mut dish = DishSimulator::new(location);
    let first_mid = slot_start(campaign_start()).plus_seconds(SLOT_PERIOD_SECONDS / 2.0);
    let mut captures = Vec::new();
    for k in 0..8 {
        let at = first_mid.plus_seconds(k as f64 * SLOT_PERIOD_SECONDS);
        let allocs = scheduler.allocate(&constellation, at);
        let alloc = &allocs[IOWA];
        captures.push(dish.play_slot(
            &constellation,
            alloc.slot,
            alloc.slot_start,
            alloc.chosen_id(),
        ));
    }
    let prev = &captures[captures.len() - 2];
    let curr = &captures[captures.len() - 1];
    let xor = isolate(&prev.map, &curr.map);

    write_artifact("fig3b_gRPC_t_minus_1.pgm", &to_pgm(&prev.map));
    write_artifact("fig3c_gRPC_t.pgm", &to_pgm(&curr.map));
    write_artifact("fig3d_xor.pgm", &to_pgm(&xor));

    println!(
        "gRPC(t-1): {} px   gRPC(t): {} px   XOR: {} px\n",
        prev.map.count_set(),
        curr.map.count_set(),
        xor.count_set()
    );
    println!("XOR of the two consecutive slot maps (isolated trajectory):\n{}", to_ascii(&xor));

    // (e): the 2-day saturation run — no resets, 11520 slots (or fewer via
    // STARSENSE_SLOTS for a quick look).
    let slots = starsense_experiments::slots_from_env(2000);
    let mut sat_dish = DishSimulator::new(location).with_reset_every_slots(0);
    let mut last = None;
    for k in 0..slots {
        let at = first_mid.plus_seconds(k as f64 * SLOT_PERIOD_SECONDS);
        let allocs = scheduler.allocate(&constellation, at);
        let alloc = &allocs[IOWA];
        last = Some(sat_dish.play_slot(
            &constellation,
            alloc.slot,
            alloc.slot_start,
            alloc.chosen_id(),
        ));
    }
    let saturated = last.expect("at least one slot").map;
    write_artifact("fig3e_saturated.pgm", &to_pgm(&saturated));
    println!(
        "saturated map after {} slots ({:.1} h): {} px set, fill {:.1}%\n{}",
        slots,
        slots as f64 * 15.0 / 3600.0,
        saturated.count_set(),
        100.0 * saturated.fill_fraction(),
        to_ascii(&saturated)
    );

    // §4.1 calibration: bounding-box recovery of the plot parameters.
    println!("== §4.1 blind calibration (bounding box on the saturated map) ==\n");
    match calibrate(&saturated) {
        Some(c) => {
            let rows = vec![
                vec![
                    "center x (px)".into(),
                    format!("{:.1}", c.center_x),
                    "61 (\"62\" 1-based)".into(),
                ],
                vec![
                    "center y (px)".into(),
                    format!("{:.1}", c.center_y),
                    "61 (\"62\" 1-based)".into(),
                ],
                vec!["plot radius (px)".into(), format!("{:.1}", c.radius_px), "45".into()],
                vec!["support (px)".into(), format!("{}", c.support), "-".into()],
            ];
            println!("{}", text_table(&["parameter", "recovered", "paper / truth"], &rows));
            assert!((c.center_x - 61.0).abs() < 3.0 && (c.radius_px - 45.0).abs() < 3.0);
        }
        None => println!("map not yet saturated enough to calibrate — raise STARSENSE_SLOTS"),
    }
}
