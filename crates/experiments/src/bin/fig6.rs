//! Figure 6: probability of a satellite from a launch being picked versus
//! the launch date, per location, with the Pearson correlation.
//!
//! Paper shape targets: positive correlation (average ≈ 0.41 over the
//! three unobstructed locations), with a small absolute rise from the
//! earliest to the latest launches.

use starsense_core::characterize::launch_analysis;
use starsense_core::report::{csv, num, text_table};
use starsense_core::vantage::{paper_terminals, UNOBSTRUCTED};
use starsense_experiments::{
    slots_from_env, standard_campaign, standard_constellation, write_artifact,
};

fn main() {
    println!("== Figure 6: launch-date preference ==\n");
    let constellation = standard_constellation();
    let slots = slots_from_env(2400);
    let obs = standard_campaign(&constellation, slots);
    let names: Vec<String> = paper_terminals().iter().map(|t| t.name.clone()).collect();

    let mut csv_rows = Vec::new();
    let mut pearson_rows = Vec::new();
    let mut unobstructed_r = Vec::new();
    for (tid, name) in names.iter().enumerate() {
        let a = launch_analysis(&obs, tid);
        for b in &a.bins {
            csv_rows.push(vec![
                name.clone(),
                b.label.clone(),
                b.available.to_string(),
                b.picked.to_string(),
                format!("{:.5}", b.ratio),
            ]);
        }
        let r = a.pearson.unwrap_or(f64::NAN);
        if UNOBSTRUCTED.contains(&tid) {
            unobstructed_r.push(r);
        }
        pearson_rows.push(vec![name.clone(), num(r, 3), a.bins.len().to_string()]);
    }

    println!("{}", text_table(&["location", "Pearson r", "launch bins"], &pearson_rows));
    let mean_r = unobstructed_r.iter().sum::<f64>() / unobstructed_r.len() as f64;
    println!(
        "mean Pearson over unobstructed locations: {mean_r:.3} (paper: ≈ 0.41, New York discarded)"
    );

    // Show one location's bins as the figure's series.
    let iowa = launch_analysis(&obs, 0);
    let rows: Vec<Vec<String>> = iowa
        .bins
        .iter()
        .map(|b| {
            vec![
                b.label.clone(),
                b.available.to_string(),
                b.picked.to_string(),
                format!("{:.4}", b.ratio),
            ]
        })
        .collect();
    println!(
        "\nIowa launch bins:\n{}",
        text_table(&["launch", "avail", "picked", "picked/avail"], &rows)
    );
    println!("({slots} slots per location)");

    write_artifact(
        "fig6_launch_bins.csv",
        &csv(&["location", "launch", "available", "picked", "ratio"], &csv_rows),
    );

    assert!(mean_r > 0.1, "launch-date preference must correlate positively");
}
