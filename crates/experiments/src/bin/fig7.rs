//! Figure 7 + §5.3: sunlit preference and the AOE split between dark and
//! sunlit picks.
//!
//! Paper shape targets: sunlit satellites picked ≈72.3% of mixed slots;
//! dark satellites picked only when the dark share of availability is
//! substantial; picked dark satellites sit much higher than picked sunlit
//! ones (≈82% vs ≈54% above 60°).

use starsense_core::characterize::sunlit_analysis;
use starsense_core::report::{csv, num, pct, text_table};
use starsense_core::vantage::paper_terminals;
use starsense_experiments::{
    cdf_rows, slots_from_env, standard_campaign, standard_constellation, write_artifact,
};

fn main() {
    println!("== Figure 7 / §5.3: sunlit preference ==\n");
    let constellation = standard_constellation();
    // Sunlit analysis needs night coverage: default to a full day of slots.
    let slots = slots_from_env(5760);
    let obs = standard_campaign(&constellation, slots);
    let names: Vec<String> = paper_terminals().iter().map(|t| t.name.clone()).collect();

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut shares = Vec::new();
    for (tid, name) in names.iter().enumerate() {
        let a = sunlit_analysis(&obs, tid);
        rows.push(vec![
            name.clone(),
            a.mixed_slots.to_string(),
            pct(a.sunlit_pick_share),
            a.min_dark_share_when_dark_picked.map(|x| pct(x)).unwrap_or_else(|| "-".into()),
            pct(a.dark_chosen_above_60),
            pct(a.sunlit_chosen_above_60),
            a.n_dark_chosen.to_string(),
        ]);
        if a.mixed_slots > 0 {
            shares.push(a.sunlit_pick_share);
        }
        // Figure 7 plots the four AOE CDFs for three locations; emit all.
        for (label, ecdf) in [
            ("dark+chosen", &a.dark_chosen_aoe),
            ("sunlit+chosen", &a.sunlit_chosen_aoe),
            ("dark+available", &a.dark_available_aoe),
            ("sunlit+available", &a.sunlit_available_aoe),
        ] {
            if !ecdf.is_empty() {
                csv_rows.extend(cdf_rows(&format!("{name}/{label}"), &ecdf.curve(25.0, 90.0, 66)));
            }
        }
    }

    println!(
        "{}",
        text_table(
            &[
                "location",
                "mixed slots",
                "sunlit picked",
                "min dark share @ dark pick",
                "dark>60°",
                "sunlit>60°",
                "n dark picks"
            ],
            &rows
        )
    );
    let mean_share = shares.iter().sum::<f64>() / shares.len().max(1) as f64;
    println!(
        "\nmean sunlit pick share over locations with mixed slots: {} (paper: 72.3%)",
        pct(mean_share)
    );
    println!("({slots} slots per location; set STARSENSE_SLOTS to adjust)");

    write_artifact("fig7_sunlit_aoe_cdfs.csv", &csv(&["series", "aoe_deg", "cdf"], &csv_rows));

    assert!(mean_share > 0.5, "sunlit preference must hold on average: {}", num(mean_share, 3));
}
