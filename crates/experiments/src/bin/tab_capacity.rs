//! §3 measurement companion: the iPerf side of the setup.
//!
//! The paper probed with iRTT *and* ran iPerf3 at 50% of the upstream
//! rate. This experiment reports what that load sees in the emulator:
//! per-slot uplink capacity stepping at every 15-second reallocation
//! (driven by the new satellite's elevation and MAC share), and the
//! per-slot loss profile showing the handover burst at slot boundaries.

use starsense_astro::time::JulianDate;
use starsense_core::report::{csv, num, pct, text_table};
use starsense_core::vantage::{paper_terminals, IOWA};
use starsense_experiments::{slots_from_env, standard_constellation, write_artifact, WORLD_SEED};
use starsense_netemu::groundstation::paper_pops;
use starsense_netemu::{Emulator, EmulatorConfig, IperfSender};
use starsense_scheduler::{GlobalScheduler, SchedulerPolicy};

fn main() {
    println!("== §3 companion: per-slot uplink capacity and handover loss ==\n");
    let constellation = standard_constellation();
    let from = JulianDate::from_ymd_hms(2023, 6, 1, 15, 0, 0.0);
    let slots = slots_from_env(40);

    // Capacity trace.
    let scheduler = GlobalScheduler::new(SchedulerPolicy::default(), paper_terminals(), WORLD_SEED);
    let mut emu = Emulator::new(
        &constellation,
        scheduler,
        paper_pops(),
        EmulatorConfig::default(),
        WORLD_SEED,
    );
    let recs = emu.throughput_trace(IOWA, from, slots);

    // The paper's iPerf at 50% of a 40 Mbit/s-class upstream.
    let sender = IperfSender::paper_nominal(40.0);

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut sustainable = 0usize;
    let mut served = 0usize;
    for r in recs.iter().take(16) {
        match r.throughput {
            Some(t) => rows.push(vec![
                r.slot.to_string(),
                r.serving_sat.map(|s| s.to_string()).unwrap_or_default(),
                num(t.link_capacity_mbps, 1),
                t.mac_share.to_string(),
                num(t.terminal_share_mbps, 1),
                (if sender.sustainable(&t) { "yes" } else { "no" }).to_string(),
            ]),
            None => rows.push(vec![
                r.slot.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    for r in &recs {
        if let Some(t) = r.throughput {
            served += 1;
            if sender.sustainable(&t) {
                sustainable += 1;
            }
            csv_rows.push(vec![
                r.slot.to_string(),
                format!("{:.3}", t.link_capacity_mbps),
                t.mac_share.to_string(),
                format!("{:.3}", t.terminal_share_mbps),
            ]);
        }
    }
    println!(
        "{}",
        text_table(
            &["slot", "sat", "link Mbit/s", "MAC share", "terminal Mbit/s", "20 Mbit/s iPerf ok"],
            &rows
        )
    );
    println!(
        "iPerf at {} Mbit/s sustainable in {}/{} served slots\n",
        sender.rate_mbps, sustainable, served
    );
    write_artifact(
        "tab_capacity.csv",
        &csv(&["slot", "link_mbps", "mac_share", "terminal_mbps"], &csv_rows),
    );

    // Handover loss profile: loss rate by offset within the slot.
    let scheduler = GlobalScheduler::new(SchedulerPolicy::default(), paper_terminals(), WORLD_SEED);
    let mut emu = Emulator::new(
        &constellation,
        scheduler,
        paper_pops(),
        EmulatorConfig::default(),
        WORLD_SEED,
    );
    let trace = emu.probe_trace(IOWA, from, slots as f64 * 15.0);

    let mut bins = vec![(0usize, 0usize); 15]; // (lost, total) per 1 s offset
    for rec in &trace.records {
        let offset =
            rec.at.seconds_since(starsense_scheduler::slots::slot_start(rec.at)).clamp(0.0, 14.999);
        let bin = offset as usize;
        bins[bin].1 += 1;
        if rec.rtt_ms.is_none() {
            bins[bin].0 += 1;
        }
    }
    let rows: Vec<Vec<String>> = bins
        .iter()
        .enumerate()
        .map(|(s, (lost, total))| {
            vec![
                format!("{s}-{} s", s + 1),
                total.to_string(),
                pct(*lost as f64 / (*total).max(1) as f64),
            ]
        })
        .collect();
    println!(
        "loss rate by offset within the 15 s slot (handover burst in the first second):\n{}",
        text_table(&["offset", "probes", "loss"], &rows)
    );

    let first = bins[0].0 as f64 / bins[0].1.max(1) as f64;
    let rest: f64 =
        bins[1..].iter().map(|(l, t)| *l as f64 / (*t).max(1) as f64).sum::<f64>() / 14.0;
    println!("first-second loss {} vs steady-state {}", pct(first), pct(rest));
    assert!(first > 2.0 * rest, "handover burst must dominate steady-state loss");
}
