//! Figure 5: CDFs of the azimuths of available vs. selected satellites,
//! with the four compass quadrants, plus the Ithaca obstruction diagnostic.
//!
//! Paper shape targets: picks skew north (≈82% north vs ≈58% availability)
//! everywhere except Ithaca, whose tree-obstructed north-west quadrant
//! receives ≈9.7% of picks vs ≈55.4% at the other sites (NW+NE combined
//! share in the paper's phrasing; the shape — strong suppression — is what
//! must hold).

use starsense_core::characterize::azimuth_analysis;
use starsense_core::report::{csv, pct, text_table};
use starsense_core::vantage::{paper_terminals, ITHACA};
use starsense_experiments::{
    cdf_rows, slots_from_env, standard_campaign, standard_constellation, write_artifact,
};

fn main() {
    println!("== Figure 5: azimuth preference ==\n");
    let constellation = standard_constellation();
    let slots = slots_from_env(2400);
    let obs = standard_campaign(&constellation, slots);
    let names: Vec<String> = paper_terminals().iter().map(|t| t.name.clone()).collect();

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut analyses = Vec::new();
    for (tid, name) in names.iter().enumerate() {
        let a = azimuth_analysis(&obs, tid);
        rows.push(vec![
            name.clone(),
            pct(a.available_north),
            pct(a.chosen_north),
            pct(a.chosen_quadrants[0]),
            pct(a.chosen_quadrants[1]),
            pct(a.chosen_quadrants[2]),
            pct(a.chosen_quadrants[3]),
        ]);
        csv_rows.extend(cdf_rows(
            &format!("{name}/available"),
            &a.available_ecdf.curve(0.0, 360.0, 73),
        ));
        csv_rows.extend(cdf_rows(&format!("{name}/chosen"), &a.chosen_ecdf.curve(0.0, 360.0, 73)));
        analyses.push(a);
    }

    println!(
        "{}",
        text_table(&["location", "avail north", "chosen north", "NE", "SE", "SW", "NW"], &rows)
    );

    // The Ithaca diagnostic.
    let others_nw: f64 = analyses
        .iter()
        .enumerate()
        .filter(|(tid, _)| *tid != ITHACA)
        .map(|(_, a)| a.chosen_northwest)
        .sum::<f64>()
        / 3.0;
    println!(
        "\nNW-quadrant pick share: Ithaca {} vs other sites {} (paper: 9.7% vs 55.4% for the obstructed region)",
        pct(analyses[ITHACA].chosen_northwest),
        pct(others_nw)
    );
    println!("({slots} slots per location)");

    write_artifact("fig5_azimuth_cdfs.csv", &csv(&["series", "azimuth_deg", "cdf"], &csv_rows));

    assert!(
        analyses[ITHACA].chosen_northwest < others_nw * 0.6,
        "Ithaca's trees must suppress north-west picks"
    );
    for (tid, a) in analyses.iter().enumerate() {
        if tid != ITHACA {
            assert!(a.chosen_north > a.available_north, "north preference must hold at {tid}");
        }
    }
}
