//! §8 future work, implemented: a southern-hemisphere vantage point.
//!
//! The paper's limitation section predicts that "the global scheduler can
//! be forced to make different decisions in other latitudes e.g., in the
//! southern hemisphere, because of a change in the GSO exclusion zone".
//! With the simulated system, that vantage point costs nothing: this
//! experiment places a mirror terminal at 41.66°S and shows the azimuth
//! preference flipping from north to south while the elevation preference
//! is unchanged — exactly the GSO-geometry prediction.

use starsense_astro::frames::Geodetic;
use starsense_core::campaign::{Campaign, CampaignConfig};
use starsense_core::characterize::{aoe_analysis, azimuth_analysis};
use starsense_core::report::{csv, num, pct, text_table};
use starsense_experiments::{
    campaign_start, slots_from_env, standard_constellation, write_artifact, WORLD_SEED,
};
use starsense_scheduler::Terminal;

fn main() {
    println!("== §8 future work: southern-hemisphere vantage point ==\n");
    let constellation = standard_constellation();
    let slots = slots_from_env(1600);

    // Iowa and its mirror across the equator, same longitude.
    let terminals = vec![
        Terminal::new(0, "Iowa (41.66N)", Geodetic::new(41.66, -91.53, 0.2)),
        Terminal::new(1, "Mirror (41.66S)", Geodetic::new(-41.66, -91.53, 0.2)),
    ];
    let names: Vec<String> = terminals.iter().map(|t| t.name.clone()).collect();
    let campaign =
        Campaign::oracle(&constellation, terminals, CampaignConfig::default(), WORLD_SEED);
    let obs = campaign.run(campaign_start(), slots);

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut south_share = [0.0f64; 2];
    let mut shifts = [0.0f64; 2];
    for tid in 0..2 {
        let az = azimuth_analysis(&obs, tid);
        let aoe = aoe_analysis(&obs, tid);
        let south = az.chosen_quadrants[1] + az.chosen_quadrants[2];
        south_share[tid] = south;
        shifts[tid] = aoe.median_shift_deg;
        rows.push(vec![
            names[tid].clone(),
            pct(az.chosen_north),
            pct(south),
            num(aoe.median_shift_deg, 1),
        ]);
        csv_rows.push(vec![
            names[tid].clone(),
            format!("{:.4}", az.chosen_north),
            format!("{:.4}", south),
            format!("{:.3}", aoe.median_shift_deg),
        ]);
    }

    println!("{}", text_table(&["terminal", "chosen north", "chosen south", "AOE shift°"], &rows));
    println!("({slots} slots per terminal)");
    write_artifact(
        "tab_southern.csv",
        &csv(&["terminal", "chosen_north", "chosen_south", "aoe_shift"], &csv_rows),
    );

    // The prediction: the azimuth skew flips with the hemisphere while the
    // elevation preference survives.
    assert!(
        south_share[1] > south_share[0] + 0.15,
        "southern terminal must skew south: {} vs {}",
        pct(south_share[1]),
        pct(south_share[0])
    );
    assert!(
        shifts[1] > 10.0,
        "elevation preference must survive the hemisphere flip: {:.1}°",
        shifts[1]
    );
    println!(
        "\nconfirmed: azimuth preference flips with the hemisphere, elevation preference does not"
    );
}
