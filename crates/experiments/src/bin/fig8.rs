//! Figure 8: top-k accuracy of the random-forest scheduler model against
//! the most-available-cluster baseline, k = 1…9.
//!
//! Paper shape targets: the model beats the baseline at every k, reaching
//! ≈65% at k=5 vs ≈22% for the baseline, and holdout accuracy close to
//! the cross-validated accuracy (robustness to over-fitting).

use starsense_core::model::{default_grid, train_and_evaluate};
use starsense_core::report::{csv, num, pct, text_table};
use starsense_core::vantage::paper_terminals;
use starsense_experiments::{
    slots_from_env, standard_campaign, standard_constellation, write_artifact, WORLD_SEED,
};

fn main() {
    println!("== Figure 8: scheduler model vs baseline (top-k accuracy) ==\n");
    let constellation = standard_constellation();
    let slots = slots_from_env(2400);
    let obs = standard_campaign(&constellation, slots);
    let names: Vec<String> = paper_terminals().iter().map(|t| t.name.clone()).collect();
    let grid = default_grid();

    let mut csv_rows = Vec::new();
    for (tid, name) in names.iter().enumerate() {
        let eval = train_and_evaluate(&obs, tid, &grid, WORLD_SEED ^ tid as u64);
        let mut rows = Vec::new();
        for (i, &k) in eval.k_values.iter().enumerate() {
            rows.push(vec![
                k.to_string(),
                pct(eval.rf_top_k[i]),
                pct(eval.baseline_top_k[i]),
                num(eval.rf_top_k[i] / eval.baseline_top_k[i].max(1e-9), 2),
            ]);
            csv_rows.push(vec![
                name.clone(),
                k.to_string(),
                format!("{:.4}", eval.rf_top_k[i]),
                format!("{:.4}", eval.baseline_top_k[i]),
            ]);
        }
        println!(
            "--- {name} ({} train rows, {} holdout rows, {} clusters) ---",
            eval.n_train, eval.n_holdout, eval.n_classes
        );
        println!("{}", text_table(&["k", "RF model", "baseline", "ratio"], &rows));
        println!(
            "cv accuracy {} vs holdout top-1 {} vs OOB {} (over-fitting checks)\n",
            pct(eval.cv_accuracy),
            pct(eval.holdout_accuracy),
            eval.oob_accuracy.map(pct).unwrap_or_else(|| "n/a".into())
        );

        assert!(
            eval.rf_top_k[4] > eval.baseline_top_k[4],
            "{name}: model must beat baseline at k=5"
        );
    }
    println!("({slots} slots per location; paper: RF ≈65% vs baseline ≈22% at k=5)");

    write_artifact("fig8_topk.csv", &csv(&["location", "k", "rf", "baseline"], &csv_rows));
}
