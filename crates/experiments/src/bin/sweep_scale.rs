//! Terminal-scale campaign sweep on the full gen1 constellation.
//!
//! Not a paper figure — the throughput harness behind the DESIGN §5 and
//! EXPERIMENTS.md scaling numbers. For each terminal count it runs an
//! oracle-mode campaign (the hidden scheduler observed directly, so the
//! measurement isolates the prepare + sharded-schedule + observe phases
//! from the DTW pipeline) over the ~4k-satellite gen1 catalog and
//! reports slots/s and slot·terminals/s, then re-runs the largest point
//! single-threaded/single-sharded to confirm bit-identity of the merged
//! allocation stream.
//!
//! Env knobs:
//!
//! * `STARSENSE_SWEEP_TERMINALS` — comma-separated terminal counts
//!   (default `100,1000,10000`);
//! * `STARSENSE_SLOTS` — slots per campaign (default 4);
//! * `STARSENSE_THREADS` — worker threads (default 0 = auto-detect);
//! * `STARSENSE_SHARDS` — terminal shards (default 0 = derive from the
//!   thread count);
//! * `STARSENSE_SWEEP_COHORTS` — 1 (default) runs the terminal-cohort
//!   fast path, 0 the per-terminal reference engine. Either way the
//!   final cross-check re-runs the largest point serially with cohorts
//!   *off*, so the sweep's own numbers are always validated against the
//!   per-terminal engine bit for bit.

use starsense_astro::frames::Geodetic;
use starsense_core::campaign::{Campaign, CampaignConfig, SlotObservation};
use starsense_core::report::{csv, text_table};
use starsense_experiments::{
    campaign_start, slots_from_env, standard_constellation, write_artifact, WORLD_SEED,
};
use starsense_scheduler::Terminal;
use std::time::Instant;

/// `n` terminals on a deterministic golden-ratio lattice over the
/// populated latitudes — the same synthetic workload the bench sweep
/// uses, so numbers are comparable across harnesses.
fn sweep_terminals(n: usize) -> Vec<Terminal> {
    (0..n)
        .map(|i| {
            let lat = -55.0 + 110.0 * ((i as f64 * 0.618_033_988_749_895).fract());
            let lon = -180.0 + 360.0 * ((i as f64 * 0.754_877_666_246_693).fract());
            Terminal::new(i, format!("sweep{i}"), Geodetic::new(lat, lon, 0.1))
        })
        .collect()
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn terminal_counts() -> Vec<usize> {
    let raw =
        std::env::var("STARSENSE_SWEEP_TERMINALS").unwrap_or_else(|_| "100,1000,10000".to_string());
    let counts: Vec<usize> =
        raw.split(',').filter_map(|s| s.trim().parse().ok()).filter(|&n| n > 0).collect();
    assert!(!counts.is_empty(), "STARSENSE_SWEEP_TERMINALS parsed to no positive counts: {raw:?}");
    counts
}

fn config(threads: usize, shards: usize, cohorts: bool) -> CampaignConfig {
    CampaignConfig { threads, shards, cohorts, ..CampaignConfig::default() }
}

/// Runs one oracle campaign and returns `(observations, seconds)`.
fn timed_run(
    constellation: &starsense_constellation::Constellation,
    n: usize,
    slots: usize,
    threads: usize,
    shards: usize,
    cohorts: bool,
) -> (Vec<SlotObservation>, f64) {
    let campaign = Campaign::oracle(
        constellation,
        sweep_terminals(n),
        config(threads, shards, cohorts),
        WORLD_SEED,
    );
    let start = Instant::now();
    let obs = campaign.run(campaign_start(), slots);
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(obs.len(), slots * n, "every (slot, terminal) cell must be observed");
    (obs, elapsed)
}

/// Bit-level equality of two observation streams (outcomes compared
/// structurally; the streams come from the same world so any divergence
/// is a sharding bug, not noise).
fn identical(a: &[SlotObservation], b: &[SlotObservation]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.slot == y.slot
                && x.terminal_id == y.terminal_id
                && x.slot_start.0.to_bits() == y.slot_start.0.to_bits()
                && x.chosen == y.chosen
                && x.truth_id == y.truth_id
                && x.outcome == y.outcome
        })
}

fn main() {
    let slots = slots_from_env(4);
    let threads = env_usize("STARSENSE_THREADS", 0);
    let shards = env_usize("STARSENSE_SHARDS", 0);
    let cohorts = env_usize("STARSENSE_SWEEP_COHORTS", 1) != 0;
    let counts = terminal_counts();
    let constellation = standard_constellation();

    // starlint: allow(Q201, reason = "experiment bins report their configuration on stdout by design")
    println!(
        "terminal-scale sweep: {} satellites, {slots} slots, threads={threads}, \
         shards={shards}, cohorts={cohorts}",
        constellation.len()
    );

    let mut rows = Vec::new();
    let mut largest: Option<(usize, Vec<SlotObservation>)> = None;
    for &n in &counts {
        let (obs, secs) = timed_run(&constellation, n, slots, threads, shards, cohorts);
        let slots_per_sec = slots as f64 / secs;
        let cells_per_sec = (slots * n) as f64 / secs;
        rows.push(vec![
            n.to_string(),
            slots.to_string(),
            format!("{secs:.3}"),
            format!("{slots_per_sec:.1}"),
            format!("{cells_per_sec:.1}"),
        ]);
        largest = Some((n, obs));
    }

    let header = ["terminals", "slots", "seconds", "slots_per_sec", "slot_terminals_per_sec"];
    // starlint: allow(Q201, reason = "experiment bins print their result table on stdout by design")
    println!("{}", text_table(&header, &rows));
    write_artifact("sweep_scale.csv", &csv(&header, &rows));

    // Cross-check: the largest point re-run serially with the cohort
    // fast path OFF must merge to the exact same observation stream —
    // the sharded workers and the cohort/per-terminal engine choice are
    // implementation details, never semantic ones.
    // starlint: allow(P102, reason = "the sweep always has at least one point; terminal_counts asserts non-empty")
    let (n, parallel_obs) = largest.expect("at least one sweep point");
    let (serial_obs, _) = timed_run(&constellation, n, slots, 1, 1, false);
    assert!(
        identical(&parallel_obs, &serial_obs),
        "sharded/cohort run diverged from the serial per-terminal reference at {n} terminals"
    );
    // starlint: allow(Q201, reason = "experiment bins report their verdict on stdout by design")
    println!(
        "bit-identity: ok ({n} terminals, threads={threads}/shards={shards}/cohorts={cohorts} \
         vs 1/1/off)"
    );
}
