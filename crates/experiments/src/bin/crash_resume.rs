//! Crash/resume drill: kill a checkpointing campaign over and over and
//! prove the reassembled stream is bit-identical to an uninterrupted run.
//!
//! Not a paper figure — the robustness recipe behind `EXPERIMENTS.md`'s
//! "kill a campaign mid-flight" walkthrough. The binary plays both roles:
//!
//! * **supervisor** (no `STARSENSE_CHAOS_KILL` in the environment) —
//!   computes each seed's uninterrupted fingerprint in-process, then
//!   re-spawns *itself* as a worker that dies after every checkpoint,
//!   restarting it until the campaign completes. Asserts the surviving
//!   stream's fingerprint matches the uninterrupted one, per seed;
//! * **worker** (`STARSENSE_CHAOS_KILL=<n>` set) — runs the resumable
//!   campaign, hard-exits with status 3 after writing `n` checkpoints
//!   (the checkpoint is already durable — an atomic rename — so this is
//!   equivalent to `kill -9` at the boundary), or prints the final
//!   fingerprint and exits 0.
//!
//! Because snapshots are written atomically and validated by checksum on
//! load, an external `kill -9` at *any* moment (not just boundaries) is
//! also safe: the campaign resumes from the last completed checkpoint.
//! Env knobs: `STARSENSE_SLOTS` (default 24), `STARSENSE_CHAOS_KILL`
//! (worker role: checkpoints before the simulated crash).

use std::path::PathBuf;
use std::process::Command;

use starsense_constellation::ConstellationBuilder;
use starsense_core::campaign::{Campaign, CampaignConfig};
use starsense_core::resume::{fingerprint_observations, ResumeConfig};
use starsense_core::vantage::paper_terminals;
use starsense_experiments::{campaign_start, slots_from_env, write_artifact, WORLD_SEED};
use starsense_faults::{FaultPlan, FaultRates};
use starsense_ident::DEFAULT_MIN_MARGIN;
use starsense_scheduler::Terminal;

const SEEDS: [u64; 3] = [201, 202, 203];
const CHECKPOINT_EVERY: usize = 4;

fn terminals() -> Vec<Terminal> {
    let mut t = paper_terminals();
    t.truncate(2);
    t
}

fn config(seed: u64) -> CampaignConfig {
    CampaignConfig {
        faults: FaultPlan::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15), FaultRates::uniform(0.1)),
        min_margin: DEFAULT_MIN_MARGIN,
        quarantine_after: 3,
        ..CampaignConfig::default()
    }
}

fn scratch_path(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("starsense-crash-resume-{seed}.ckpt"))
}

fn resume_opts(seed: u64) -> ResumeConfig {
    ResumeConfig { checkpoint_every: CHECKPOINT_EVERY, ..ResumeConfig::new(scratch_path(seed)) }
}

/// Worker role: run until `kill_after` checkpoints are durable, then die
/// the hard way. Prints the fingerprint and exits 0 when the campaign
/// actually finishes.
fn worker(seed: u64, slots: usize, kill_after: usize) -> ! {
    let constellation = ConstellationBuilder::starlink_mini().seed(WORLD_SEED).build();
    let campaign = Campaign::identified(&constellation, terminals(), config(seed), seed);
    let opts = ResumeConfig { stop_after_checkpoints: Some(kill_after), ..resume_opts(seed) };
    let (obs, stats, report) = campaign
        .run_resumable(campaign_start(), slots, &opts)
        .expect("worker campaign must never abort");
    if report.completed {
        println!("fingerprint={:#018x}", fingerprint_observations(&obs));
        println!("observed_rate={:.5}", stats.observed_rate());
        std::process::exit(0);
    }
    // The checkpoint is already on disk; dying here loses nothing. Exit
    // status 3 tells the supervisor this was a planned crash.
    std::process::exit(3);
}

fn main() {
    let slots = slots_from_env(24);
    if let Ok(kill) = std::env::var("STARSENSE_CHAOS_KILL") {
        let kill_after = kill.parse().unwrap_or(1).max(1);
        let seed = std::env::var("STARSENSE_CRASH_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(SEEDS[0]);
        worker(seed, slots, kill_after);
    }

    println!("== crash/resume drill: die at every checkpoint, lose nothing ==\n");
    let constellation = ConstellationBuilder::starlink_mini().seed(WORLD_SEED).build();
    let exe = std::env::current_exe().expect("own executable path");
    let mut csv_rows = Vec::new();
    for seed in SEEDS {
        let path = scratch_path(seed);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(starsense_checkpoint::backup_path(&path));

        let campaign = Campaign::identified(&constellation, terminals(), config(seed), seed);
        let (baseline_obs, _, report) = campaign
            .run_resumable(
                campaign_start(),
                slots,
                &ResumeConfig {
                    checkpoint_path: path.with_extension("baseline"),
                    ..resume_opts(seed)
                },
            )
            .expect("baseline campaign");
        assert!(report.completed);
        let baseline = fingerprint_observations(&baseline_obs);
        let _ = std::fs::remove_file(path.with_extension("baseline"));
        let _ = std::fs::remove_file(starsense_checkpoint::backup_path(
            &path.with_extension("baseline"),
        ));

        let mut lives = 0usize;
        let survived = loop {
            lives += 1;
            assert!(lives <= slots + 2, "kill/resume chain failed to converge");
            let output = Command::new(&exe)
                .env("STARSENSE_CHAOS_KILL", "1")
                .env("STARSENSE_CRASH_SEED", seed.to_string())
                .env("STARSENSE_SLOTS", slots.to_string())
                .output()
                .expect("spawn worker");
            match output.status.code() {
                Some(3) => continue, // planned crash after a checkpoint
                Some(0) => {
                    let stdout = String::from_utf8_lossy(&output.stdout);
                    let fp = stdout
                        .lines()
                        .find_map(|l| l.strip_prefix("fingerprint="))
                        .and_then(|h| u64::from_str_radix(h.trim_start_matches("0x"), 16).ok())
                        .expect("worker must print its fingerprint");
                    break fp;
                }
                other => panic!("worker died unexpectedly: {other:?}"),
            }
        };
        assert_eq!(
            survived, baseline,
            "seed {seed}: kill/resume stream diverged from the uninterrupted run"
        );
        println!(
            "seed {seed}: {lives} process lives, {} checkpoints, fingerprint {survived:#018x} — \
             bit-identical to uninterrupted",
            slots.div_ceil(CHECKPOINT_EVERY),
        );
        csv_rows.push(vec![
            seed.to_string(),
            lives.to_string(),
            slots.div_ceil(CHECKPOINT_EVERY).to_string(),
            format!("{survived:#018x}"),
        ]);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(starsense_checkpoint::backup_path(&path));
    }

    println!(
        "\n{} seeds x {} slots each, killed after every {CHECKPOINT_EVERY}-slot checkpoint; \
         zero bits lost",
        SEEDS.len(),
        slots
    );
    write_artifact(
        "crash_resume.csv",
        &starsense_core::report::csv(
            &["seed", "process_lives", "checkpoints", "fingerprint"],
            &csv_rows,
        ),
    );
}
