//! Property-based tests for the astrodynamics primitives.

use proptest::prelude::*;
use starsense_astro::angles::{angular_separation_deg, wrap_deg, wrap_pi, wrap_tau};
use starsense_astro::frames::{
    ecef_to_geodetic, geodetic_to_ecef, look_angles, teme_to_ecef, Geodetic,
};
use starsense_astro::time::{CivilTime, JulianDate};
use starsense_astro::vec3::Vec3;

proptest! {
    #[test]
    fn wrap_tau_lands_in_range(a in -1e6f64..1e6) {
        let w = wrap_tau(a);
        prop_assert!((0.0..std::f64::consts::TAU).contains(&w));
        // Wrapping preserves the angle modulo 2π.
        prop_assert!(((a - w) / std::f64::consts::TAU).rem_euclid(1.0) < 1e-6
            || ((a - w) / std::f64::consts::TAU).rem_euclid(1.0) > 1.0 - 1e-6);
    }

    #[test]
    fn wrap_pi_lands_in_range(a in -1e6f64..1e6) {
        let w = wrap_pi(a);
        prop_assert!(w > -std::f64::consts::PI - 1e-12);
        prop_assert!(w <= std::f64::consts::PI + 1e-12);
    }

    #[test]
    fn wrap_deg_lands_in_range(a in -1e7f64..1e7) {
        let w = wrap_deg(a);
        prop_assert!((0.0..360.0).contains(&w));
    }

    #[test]
    fn angular_separation_is_symmetric_and_bounded(a in 0.0f64..720.0, b in -360.0f64..360.0) {
        let s1 = angular_separation_deg(a, b);
        let s2 = angular_separation_deg(b, a);
        prop_assert!((s1 - s2).abs() < 1e-9);
        prop_assert!((0.0..=180.0).contains(&s1));
    }

    #[test]
    fn geodetic_ecef_round_trip(
        lat in -89.0f64..89.0,
        lon in -179.9f64..179.9,
        alt in 0.0f64..2000.0,
    ) {
        let geo = Geodetic::new(lat, lon, alt);
        let back = ecef_to_geodetic(geodetic_to_ecef(geo));
        prop_assert!((back.lat_deg - lat).abs() < 1e-6, "lat {} vs {}", back.lat_deg, lat);
        prop_assert!((back.lon_deg - lon).abs() < 1e-6, "lon {} vs {}", back.lon_deg, lon);
        prop_assert!((back.alt_km - alt).abs() < 1e-5, "alt {} vs {}", back.alt_km, alt);
    }

    #[test]
    fn look_angles_are_always_in_valid_ranges(
        lat in -80.0f64..80.0,
        lon in -180.0f64..180.0,
        tx in -8000.0f64..8000.0,
        ty in -8000.0f64..8000.0,
        tz in -8000.0f64..8000.0,
    ) {
        // Keep the target off the observer itself.
        let target = Vec3::new(tx, ty, tz + 9000.0);
        let la = look_angles(Geodetic::new(lat, lon, 0.0), target);
        prop_assert!((-90.0..=90.0).contains(&la.elevation_deg));
        prop_assert!((0.0..360.0).contains(&la.azimuth_deg));
        prop_assert!(la.range_km > 0.0);
    }

    #[test]
    fn teme_to_ecef_is_an_isometry(
        x in -8000.0f64..8000.0,
        y in -8000.0f64..8000.0,
        z in -8000.0f64..8000.0,
        minutes in 0.0f64..52_560_0.0,
    ) {
        let at = JulianDate::from_ymd_hms(2022, 1, 1, 0, 0, 0.0).plus_minutes(minutes);
        let v = Vec3::new(x, y, z);
        let e = teme_to_ecef(v, at);
        prop_assert!((e.norm() - v.norm()).abs() < 1e-6);
        prop_assert!((e.z - v.z).abs() < 1e-9, "pole axis is invariant");
    }

    #[test]
    fn civil_round_trip(
        year in 1990i32..2050,
        month in 1u32..=12,
        day in 1u32..=28,
        hour in 0u32..24,
        minute in 0u32..60,
        second in 0.0f64..59.9,
    ) {
        let c = CivilTime { year, month, day, hour, minute, second };
        let back = c.to_julian().to_civil();
        prop_assert_eq!((back.year, back.month, back.day), (year, month, day));
        prop_assert_eq!((back.hour, back.minute), (hour, minute));
        prop_assert!((back.second - second).abs() < 1e-3);
    }

    #[test]
    fn julian_ordering_matches_civil_ordering(
        s1 in 0.0f64..86_400.0,
        s2 in 0.0f64..86_400.0,
    ) {
        let base = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
        let a = base.plus_seconds(s1);
        let b = base.plus_seconds(s2);
        prop_assert_eq!(a.0 < b.0, s1 < s2);
    }

    #[test]
    fn cross_product_is_orthogonal(
        ax in -10.0f64..10.0, ay in -10.0f64..10.0, az in -10.0f64..10.0,
        bx in -10.0f64..10.0, by in -10.0f64..10.0, bz in -10.0f64..10.0,
    ) {
        let a = Vec3::new(ax, ay, az);
        let b = Vec3::new(bx, by, bz);
        let c = a.cross(b);
        prop_assert!(c.dot(a).abs() < 1e-9 * (1.0 + a.norm() * b.norm()));
        prop_assert!(c.dot(b).abs() < 1e-9 * (1.0 + a.norm() * b.norm()));
    }
}
