//! Reference-frame transforms.
//!
//! Three frames matter for the reproduction:
//!
//! * **TEME** — the true-equator/mean-equinox inertial frame SGP4 outputs,
//! * **ECEF** — Earth-centred Earth-fixed, rotating with the planet,
//! * **topocentric SEZ** at a terminal, from which look angles
//!   (angle-of-elevation, azimuth, range) are derived.
//!
//! Polar motion and UT1−UTC are neglected (tens of metres / milliseconds),
//! far below the obstruction-map pixel quantization (~1.4° per pixel) that
//! dominates the paper's identification error budget.

use crate::mat3::Mat3;
use crate::time::JulianDate;
use crate::vec3::Vec3;
use crate::{EARTH_FLATTENING, EARTH_RADIUS_KM};

/// Geodetic coordinates on the WGS-84 ellipsoid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geodetic {
    /// Geodetic latitude in degrees, north positive.
    pub lat_deg: f64,
    /// Longitude in degrees, east positive, `(-180, 180]`.
    pub lon_deg: f64,
    /// Height above the ellipsoid in kilometres.
    pub alt_km: f64,
}

impl Geodetic {
    /// Creates a geodetic position.
    pub const fn new(lat_deg: f64, lon_deg: f64, alt_km: f64) -> Self {
        Geodetic { lat_deg, lon_deg, alt_km }
    }
}

/// Topocentric look angles from an observer to a target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookAngles {
    /// Angle of elevation above the local horizon, degrees, `[-90, 90]`.
    pub elevation_deg: f64,
    /// Azimuth measured clockwise from true north, degrees, `[0, 360)`.
    pub azimuth_deg: f64,
    /// Slant range to the target in kilometres.
    pub range_km: f64,
}

/// Rotates a TEME position to ECEF at the given instant.
///
/// The TEME→PEF rotation is a single spin about the pole by GMST; PEF≈ECEF
/// under the neglect of polar motion.
pub fn teme_to_ecef(r_teme: Vec3, at: JulianDate) -> Vec3 {
    Mat3::rot_z(at.gmst_rad()) * r_teme
}

/// Rotates an ECEF position back to TEME at the given instant.
pub fn ecef_to_teme(r_ecef: Vec3, at: JulianDate) -> Vec3 {
    Mat3::rot_z(-at.gmst_rad()) * r_ecef
}

/// Converts geodetic coordinates to an ECEF position vector (km).
pub fn geodetic_to_ecef(geo: Geodetic) -> Vec3 {
    let lat = geo.lat_deg.to_radians();
    let lon = geo.lon_deg.to_radians();
    let e2 = EARTH_FLATTENING * (2.0 - EARTH_FLATTENING);
    let sin_lat = lat.sin();
    let n = EARTH_RADIUS_KM / (1.0 - e2 * sin_lat * sin_lat).sqrt();
    Vec3::new(
        (n + geo.alt_km) * lat.cos() * lon.cos(),
        (n + geo.alt_km) * lat.cos() * lon.sin(),
        (n * (1.0 - e2) + geo.alt_km) * sin_lat,
    )
}

/// Converts an ECEF position to geodetic coordinates (iterative, converges in
/// a handful of iterations for any point outside the Earth's core).
pub fn ecef_to_geodetic(r: Vec3) -> Geodetic {
    let e2 = EARTH_FLATTENING * (2.0 - EARTH_FLATTENING);
    let p = (r.x * r.x + r.y * r.y).sqrt();
    let lon = r.y.atan2(r.x);

    let mut lat = (r.z / (p * (1.0 - e2))).atan();
    let mut alt = 0.0;
    for _ in 0..8 {
        let sin_lat = lat.sin();
        let n = EARTH_RADIUS_KM / (1.0 - e2 * sin_lat * sin_lat).sqrt();
        alt = if lat.abs() < 1.3 { p / lat.cos() - n } else { r.z / sin_lat - n * (1.0 - e2) };
        lat = (r.z / (p * (1.0 - e2 * n / (n + alt)))).atan();
    }

    Geodetic { lat_deg: lat.to_degrees(), lon_deg: lon.to_degrees(), alt_km: alt }
}

/// A precomputed observer frame for repeated look-angle queries from one
/// site: the observer's ECEF position and the four latitude/longitude
/// trigonometric factors of the ECEF→SEZ rotation, hoisted out of the
/// per-target evaluation.
///
/// [`Topocentric::look_angles`] runs the exact arithmetic of the free
/// [`look_angles`] function (which delegates here), so answering a query
/// through a cached frame is bit-identical to calling the free function —
/// only the per-call recomputation of the observer-side factors goes away.
#[derive(Debug, Clone, Copy)]
pub struct Topocentric {
    ecef: Vec3,
    sin_lat: f64,
    cos_lat: f64,
    sin_lon: f64,
    cos_lon: f64,
}

impl Topocentric {
    /// Builds the frame for an observer at `geo`.
    pub fn new(geo: Geodetic) -> Topocentric {
        let ecef = geodetic_to_ecef(geo);
        let lat = geo.lat_deg.to_radians();
        let lon = geo.lon_deg.to_radians();
        let (sin_lat, cos_lat) = lat.sin_cos();
        let (sin_lon, cos_lon) = lon.sin_cos();
        Topocentric { ecef, sin_lat, cos_lat, sin_lon, cos_lon }
    }

    /// The observer's ECEF position, km.
    pub fn ecef(&self) -> Vec3 {
        self.ecef
    }

    /// Look angles from this observer to `target_ecef` — the shared
    /// implementation behind the free [`look_angles`] function.
    pub fn look_angles(&self, target_ecef: Vec3) -> LookAngles {
        let rho = target_ecef - self.ecef;

        // ECEF → SEZ (south, east, zenith) at the observer.
        let s = self.sin_lat * self.cos_lon * rho.x + self.sin_lat * self.sin_lon * rho.y
            - self.cos_lat * rho.z;
        let e = -self.sin_lon * rho.x + self.cos_lon * rho.y;
        let z = self.cos_lat * self.cos_lon * rho.x
            + self.cos_lat * self.sin_lon * rho.y
            + self.sin_lat * rho.z;

        let range = rho.norm();
        let elevation = (z / range).asin();
        // Azimuth clockwise from north: atan2(east, north) with north = -south.
        let azimuth = e.atan2(-s);

        LookAngles {
            elevation_deg: elevation.to_degrees(),
            azimuth_deg: azimuth.to_degrees().rem_euclid(360.0),
            range_km: range,
        }
    }
}

/// Computes look angles from an observer to a target, both in ECEF.
///
/// The azimuth convention matches the obstruction map: 0° = true north,
/// increasing clockwise (90° = east), exactly as recovered in §4.1 of the
/// paper.
pub fn look_angles(observer_geo: Geodetic, target_ecef: Vec3) -> LookAngles {
    Topocentric::new(observer_geo).look_angles(target_ecef)
}

/// Look angles to a satellite given in TEME at a known instant.
pub fn look_angles_teme(observer_geo: Geodetic, sat_teme: Vec3, at: JulianDate) -> LookAngles {
    look_angles(observer_geo, teme_to_ecef(sat_teme, at))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geodetic_ecef_round_trip() {
        for &(lat, lon, alt) in &[
            (0.0, 0.0, 0.0),
            (41.66, -91.53, 0.2),   // Iowa City
            (42.44, -76.50, 0.3),   // Ithaca
            (40.42, -3.70, 0.65),   // Madrid
            (-33.86, 151.21, 0.05), // Sydney
            (78.0, 15.0, 0.0),      // Svalbard
        ] {
            let geo = Geodetic::new(lat, lon, alt);
            let back = ecef_to_geodetic(geodetic_to_ecef(geo));
            assert!((back.lat_deg - lat).abs() < 1e-6, "lat for {geo:?}");
            assert!((back.lon_deg - lon).abs() < 1e-6, "lon for {geo:?}");
            assert!((back.alt_km - alt).abs() < 1e-6, "alt for {geo:?}");
        }
    }

    #[test]
    fn equator_ecef_has_expected_radius() {
        let r = geodetic_to_ecef(Geodetic::new(0.0, 0.0, 0.0));
        assert!((r.x - EARTH_RADIUS_KM).abs() < 1e-9);
        assert!(r.y.abs() < 1e-9 && r.z.abs() < 1e-9);
    }

    #[test]
    fn zenith_target_has_90_elevation() {
        let geo = Geodetic::new(45.0, 10.0, 0.0);
        let obs = geodetic_to_ecef(geo);
        let target = obs * ((obs.norm() + 550.0) / obs.norm());
        let la = look_angles(geo, target);
        // Straight up along the geocentric radial is within a fraction of a
        // degree of geodetic zenith at 45° latitude (deflection ~0.19°·h/R).
        assert!(la.elevation_deg > 89.0, "elevation {}", la.elevation_deg);
    }

    #[test]
    fn due_north_target_has_zero_azimuth() {
        let geo = Geodetic::new(40.0, 0.0, 0.0);
        // A point further north at satellite altitude.
        let target = geodetic_to_ecef(Geodetic::new(48.0, 0.0, 550.0));
        let la = look_angles(geo, target);
        assert!(la.azimuth_deg < 1.0 || la.azimuth_deg > 359.0, "az {}", la.azimuth_deg);
        assert!(la.elevation_deg > 0.0);
    }

    #[test]
    fn due_east_target_has_90_azimuth() {
        let geo = Geodetic::new(0.0, 0.0, 0.0);
        let target = geodetic_to_ecef(Geodetic::new(0.0, 5.0, 550.0));
        let la = look_angles(geo, target);
        assert!((la.azimuth_deg - 90.0).abs() < 1.0, "az {}", la.azimuth_deg);
    }

    #[test]
    fn cached_topocentric_frame_is_bit_identical_to_look_angles() {
        for &(lat, lon, alt) in &[
            (0.0, 0.0, 0.0),
            (41.66, -91.53, 0.2),
            (-33.86, 151.21, 0.05),
            (78.0, 15.0, 0.0),
            (-89.5, 179.9, 0.0),
        ] {
            let geo = Geodetic::new(lat, lon, alt);
            let frame = Topocentric::new(geo);
            assert_eq!(frame.ecef(), geodetic_to_ecef(geo));
            for k in 0..40 {
                let t = k as f64;
                let target = Vec3::new(
                    6900.0 * (t * 0.37).cos(),
                    6900.0 * (t * 0.37).sin(),
                    3000.0 * (t * 0.11).sin(),
                );
                let a = look_angles(geo, target);
                let b = frame.look_angles(target);
                assert_eq!(a.elevation_deg.to_bits(), b.elevation_deg.to_bits());
                assert_eq!(a.azimuth_deg.to_bits(), b.azimuth_deg.to_bits());
                assert_eq!(a.range_km.to_bits(), b.range_km.to_bits());
            }
        }
    }

    #[test]
    fn teme_ecef_round_trip() {
        let at = JulianDate::from_ymd_hms(2023, 4, 2, 10, 30, 0.0);
        let r = Vec3::new(-4400.594, 1932.87, 4760.712);
        let back = ecef_to_teme(teme_to_ecef(r, at), at);
        assert!((back - r).norm() < 1e-9);
    }

    #[test]
    fn teme_to_ecef_preserves_norm_and_z() {
        let at = JulianDate::from_ymd_hms(2023, 4, 2, 10, 30, 0.0);
        let r = Vec3::new(-4400.594, 1932.87, 4760.712);
        let e = teme_to_ecef(r, at);
        assert!((e.norm() - r.norm()).abs() < 1e-9);
        assert!((e.z - r.z).abs() < 1e-12); // rotation is about the pole
    }

    #[test]
    fn range_to_overhead_leo_satellite_is_its_altitude() {
        let geo = Geodetic::new(30.0, -100.0, 0.0);
        let obs = geodetic_to_ecef(geo);
        let target = obs.unit() * (obs.norm() + 550.0);
        let la = look_angles(geo, target);
        assert!((la.range_km - 550.0).abs() < 1.0);
    }
}
