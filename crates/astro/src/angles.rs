//! Angle helpers: wrapping, conversion, and azimuth quadrants.

use std::f64::consts::{PI, TAU};

/// Converts degrees to radians.
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * PI / 180.0
}

/// Converts radians to degrees.
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / PI
}

/// Wraps an angle in radians to `[0, 2π)`.
pub fn wrap_tau(angle: f64) -> f64 {
    let a = angle % TAU;
    if a < 0.0 {
        a + TAU
    } else {
        a
    }
}

/// Wraps an angle in radians to `(-π, π]`.
pub fn wrap_pi(angle: f64) -> f64 {
    let a = wrap_tau(angle);
    if a > PI {
        a - TAU
    } else {
        a
    }
}

/// Wraps an angle in degrees to `[0, 360)`.
pub fn wrap_deg(angle: f64) -> f64 {
    let a = angle % 360.0;
    if a < 0.0 {
        a + 360.0
    } else {
        a
    }
}

/// Smallest absolute difference between two angles in degrees, in `[0, 180]`.
pub fn angular_separation_deg(a: f64, b: f64) -> f64 {
    let d = (wrap_deg(a) - wrap_deg(b)).abs();
    if d > 180.0 {
        360.0 - d
    } else {
        d
    }
}

/// Compass quadrant of an azimuth, using the paper's Figure 5 convention:
/// azimuth is measured clockwise from north, and each quadrant spans 90°.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quadrant {
    /// Azimuth in `[0°, 90°)`.
    NorthEast,
    /// Azimuth in `[90°, 180°)`.
    SouthEast,
    /// Azimuth in `[180°, 270°)`.
    SouthWest,
    /// Azimuth in `[270°, 360°)`.
    NorthWest,
}

impl Quadrant {
    /// All four quadrants in Figure 5 order (left to right on the x-axis).
    pub const ALL: [Quadrant; 4] =
        [Quadrant::NorthEast, Quadrant::SouthEast, Quadrant::SouthWest, Quadrant::NorthWest];

    /// This quadrant's position in [`Quadrant::ALL`] (declaration order
    /// matches the discriminant, so this is total and never searches).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Classifies an azimuth given in degrees.
    pub fn of_azimuth_deg(az: f64) -> Quadrant {
        match wrap_deg(az) {
            a if a < 90.0 => Quadrant::NorthEast,
            a if a < 180.0 => Quadrant::SouthEast,
            a if a < 270.0 => Quadrant::SouthWest,
            _ => Quadrant::NorthWest,
        }
    }

    /// True for the two quadrants facing north.
    pub fn is_northern(self) -> bool {
        matches!(self, Quadrant::NorthEast | Quadrant::NorthWest)
    }

    /// Human-readable label matching the paper's figure annotations.
    pub fn label(self) -> &'static str {
        match self {
            Quadrant::NorthEast => "North East",
            Quadrant::SouthEast => "South East",
            Quadrant::SouthWest => "South West",
            Quadrant::NorthWest => "North West",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_tau_handles_negative_angles() {
        assert!((wrap_tau(-PI / 2.0) - 3.0 * PI / 2.0).abs() < 1e-12);
        assert!((wrap_tau(5.0 * TAU + 0.25) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn wrap_pi_is_symmetric() {
        assert!((wrap_pi(3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_pi(-3.5 * PI) - 0.5 * PI).abs() < 1e-12);
    }

    #[test]
    fn wrap_deg_examples() {
        assert_eq!(wrap_deg(-90.0), 270.0);
        assert_eq!(wrap_deg(720.0), 0.0);
        assert_eq!(wrap_deg(359.0), 359.0);
    }

    #[test]
    fn angular_separation_crosses_north() {
        assert!((angular_separation_deg(350.0, 10.0) - 20.0).abs() < 1e-12);
        assert!((angular_separation_deg(10.0, 350.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn quadrant_boundaries_follow_figure_five() {
        assert_eq!(Quadrant::of_azimuth_deg(0.0), Quadrant::NorthEast);
        assert_eq!(Quadrant::of_azimuth_deg(89.9), Quadrant::NorthEast);
        assert_eq!(Quadrant::of_azimuth_deg(90.0), Quadrant::SouthEast);
        assert_eq!(Quadrant::of_azimuth_deg(180.0), Quadrant::SouthWest);
        assert_eq!(Quadrant::of_azimuth_deg(270.0), Quadrant::NorthWest);
        assert_eq!(Quadrant::of_azimuth_deg(359.9), Quadrant::NorthWest);
    }

    #[test]
    fn northern_quadrants() {
        assert!(Quadrant::NorthEast.is_northern());
        assert!(Quadrant::NorthWest.is_northern());
        assert!(!Quadrant::SouthEast.is_northern());
        assert!(!Quadrant::SouthWest.is_northern());
    }

    #[test]
    fn deg_rad_round_trip() {
        for d in [-720.0, -1.0, 0.0, 45.0, 180.0, 359.0, 1080.0] {
            assert!((rad_to_deg(deg_to_rad(d)) - d).abs() < 1e-9);
        }
    }
}
