//! 3×3 matrices for frame rotations.

use crate::vec3::Vec3;
use std::ops::Mul;

/// A row-major 3×3 matrix of `f64`.
///
/// Used exclusively for rotation matrices between reference frames, so the
/// API is limited to construction, transposition and multiplication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Rows of the matrix.
    pub rows: [[f64; 3]; 3],
}

impl Mat3 {
    /// Identity matrix.
    pub const IDENTITY: Mat3 = Mat3 { rows: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]] };

    /// Builds a matrix from three rows.
    pub const fn from_rows(r0: [f64; 3], r1: [f64; 3], r2: [f64; 3]) -> Self {
        Mat3 { rows: [r0, r1, r2] }
    }

    /// Rotation about the Z axis by `angle` radians.
    ///
    /// This is the classical "R3" rotation: applying it to a vector rotates
    /// the *frame* by `+angle`, i.e. the vector components by `-angle`.
    pub fn rot_z(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([c, s, 0.0], [-s, c, 0.0], [0.0, 0.0, 1.0])
    }

    /// Rotation about the X axis by `angle` radians (frame rotation, "R1").
    pub fn rot_x(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([1.0, 0.0, 0.0], [0.0, c, s], [0.0, -s, c])
    }

    /// Rotation about the Y axis by `angle` radians (frame rotation, "R2").
    pub fn rot_y(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([c, 0.0, -s], [0.0, 1.0, 0.0], [s, 0.0, c])
    }

    /// Matrix transpose (inverse, for rotation matrices).
    pub fn transpose(self) -> Mat3 {
        let r = self.rows;
        Mat3::from_rows(
            [r[0][0], r[1][0], r[2][0]],
            [r[0][1], r[1][1], r[2][1]],
            [r[0][2], r[1][2], r[2][2]],
        )
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        let r = self.rows;
        Vec3::new(
            r[0][0] * v.x + r[0][1] * v.y + r[0][2] * v.z,
            r[1][0] * v.x + r[1][1] * v.y + r[1][2] * v.z,
            r[2][0] * v.x + r[2][1] * v.y + r[2][2] * v.z,
        )
    }
}

impl Mul<Mat3> for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| self.rows[i][k] * rhs.rows[k][j]).sum();
            }
        }
        Mat3 { rows: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn close(a: Vec3, b: Vec3) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn identity_preserves_vectors() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!(close(Mat3::IDENTITY * v, v));
    }

    #[test]
    fn rot_z_quarter_turn_moves_x_axis_components() {
        // Frame rotation by +90° about Z maps inertial +X onto rotated-frame -Y... i.e.
        // the components of the +X vector expressed in the rotated frame are (0, -1, 0).
        let v = Mat3::rot_z(FRAC_PI_2) * Vec3::X;
        assert!(close(v, Vec3::new(0.0, -1.0, 0.0)));
    }

    #[test]
    fn transpose_inverts_rotation() {
        let r = Mat3::rot_z(0.7) * Mat3::rot_x(-0.3);
        let v = Vec3::new(0.2, -1.5, 4.0);
        assert!(close(r.transpose() * (r * v), v));
    }

    #[test]
    fn rotation_preserves_norm() {
        let r = Mat3::rot_y(1.1) * Mat3::rot_z(2.2);
        let v = Vec3::new(3.0, -4.0, 12.0);
        assert!(((r * v).norm() - v.norm()).abs() < 1e-12);
    }
}
