//! Three-dimensional vectors.
//!
//! A deliberately small, dependency-free vector type. Operations are the
//! handful the astrodynamics code actually needs; anything exotic belongs in
//! the caller.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-vector of `f64` components.
///
/// Used for positions (km), velocities (km/s) and unit direction vectors in
/// whatever frame the caller is working in. The type itself is frame-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Unit vector along +X.
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };

    /// Unit vector along +Y.
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };

    /// Unit vector along +Z.
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Returns the unit vector in this direction.
    ///
    /// # Panics
    ///
    /// Panics if the vector is (numerically) zero; callers normalize only
    /// vectors with physical magnitude.
    pub fn unit(self) -> Vec3 {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        self / n
    }

    /// Angle between two vectors in radians, in `[0, π]`.
    ///
    /// Numerically robust near 0 and π (uses `atan2` of the cross/dot pair
    /// rather than `acos`).
    pub fn angle_to(self, rhs: Vec3) -> f64 {
        self.cross(rhs).norm().atan2(self.dot(rhs))
    }

    /// Euclidean distance between two points.
    pub fn distance(self, rhs: Vec3) -> f64 {
        (self - rhs).norm()
    }

    /// Linear interpolation: `self + t * (rhs - self)`.
    pub fn lerp(self, rhs: Vec3, t: f64) -> Vec3 {
        self + (rhs - self) * t
    }

    /// True when every component is finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn dot_of_orthogonal_axes_is_zero() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::Y.dot(Vec3::Z), 0.0);
    }

    #[test]
    fn cross_follows_right_hand_rule() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn norm_of_pythagorean_triple() {
        assert!((Vec3::new(3.0, 4.0, 0.0).norm() - 5.0).abs() < EPS);
    }

    #[test]
    fn unit_vector_has_norm_one() {
        let v = Vec3::new(1.0, -2.0, 3.0).unit();
        assert!((v.norm() - 1.0).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn unit_of_zero_panics() {
        let _ = Vec3::ZERO.unit();
    }

    #[test]
    fn angle_between_axes_is_right_angle() {
        assert!((Vec3::X.angle_to(Vec3::Y) - std::f64::consts::FRAC_PI_2).abs() < EPS);
    }

    #[test]
    fn angle_to_is_robust_for_antiparallel() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(-1.0, 1e-14, 0.0);
        assert!((a.angle_to(b) - std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn arithmetic_ops_compose() {
        let v = (Vec3::X + Vec3::Y * 2.0 - Vec3::Z) / 2.0;
        assert_eq!(v, Vec3::new(0.5, 1.0, -0.5));
        assert_eq!(-v, Vec3::new(-0.5, -1.0, 0.5));
    }
}
