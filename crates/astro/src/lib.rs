//! Astrodynamics primitives for the `starsense` workspace.
//!
//! This crate provides the low-level building blocks every other crate in the
//! reproduction relies on:
//!
//! * [`Vec3`] / [`Mat3`] — small fixed-size linear algebra,
//! * [`JulianDate`] and civil-time conversions, Greenwich sidereal time,
//! * reference-frame transforms (TEME ↔ ECEF, geodetic ↔ ECEF, topocentric
//!   look angles),
//! * a low-precision solar ephemeris and an Earth-shadow ("sunlit") test.
//!
//! The paper ("Making Sense of Constellations", CoNEXT Companion '23) relies
//! on SGP4-propagated satellite positions expressed as angle-of-elevation and
//! azimuth relative to a user terminal, and on whether satellites are sunlit.
//! Everything needed for those computations, except SGP4 itself (see the
//! `starsense-sgp4` crate), lives here.
//!
//! # Conventions
//!
//! * Distances are kilometres, angles are radians unless a name says
//!   otherwise (`*_deg`), times are UTC.
//! * Earth-fixed coordinates are ECEF (IAU-76/WGS-84 ellipsoid for geodesy).
//! * Inertial satellite states are TEME (the frame SGP4 natively produces).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod angles;
pub mod frames;
pub mod mat3;
pub mod sun;
pub mod time;
pub mod vec3;

pub use frames::{ecef_to_geodetic, geodetic_to_ecef, teme_to_ecef, Geodetic, LookAngles};
pub use mat3::Mat3;
pub use sun::{is_sunlit, sun_position_teme};
pub use time::{CivilTime, JulianDate};
pub use vec3::Vec3;

/// Mean equatorial Earth radius in kilometres (WGS-84).
pub const EARTH_RADIUS_KM: f64 = 6378.137;

/// WGS-84 flattening factor of the Earth ellipsoid.
pub const EARTH_FLATTENING: f64 = 1.0 / 298.257223563;

/// Astronomical unit in kilometres.
pub const AU_KM: f64 = 149_597_870.7;

/// Mean solar radius in kilometres.
pub const SUN_RADIUS_KM: f64 = 695_700.0;
