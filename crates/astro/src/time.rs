//! Time scales: Julian dates, civil time, sidereal time.
//!
//! The whole workspace represents instants as [`JulianDate`] (UTC). The
//! paper's measurement cadence — 15-second global-scheduler slots anchored at
//! :12/:27/:42/:57 past each minute, 20 ms probe intervals — only needs
//! millisecond-level resolution over a span of days, which a single `f64`
//! Julian date provides comfortably (≈ 40 µs resolution near J2000).

use crate::angles::wrap_tau;

/// Seconds per day.
pub const SECONDS_PER_DAY: f64 = 86_400.0;

/// Minutes per day.
pub const MINUTES_PER_DAY: f64 = 1_440.0;

/// Julian date of the J2000.0 epoch (2000-01-01 12:00:00 UTC).
pub const JD_J2000: f64 = 2_451_545.0;

/// An instant in time expressed as a UTC Julian date.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct JulianDate(pub f64);

impl JulianDate {
    /// The J2000.0 reference epoch.
    pub const J2000: JulianDate = JulianDate(JD_J2000);

    /// Builds a Julian date from a civil UTC timestamp.
    pub fn from_civil(civil: CivilTime) -> JulianDate {
        civil.to_julian()
    }

    /// Convenience constructor from date and time-of-day components.
    pub fn from_ymd_hms(
        year: i32,
        month: u32,
        day: u32,
        hour: u32,
        minute: u32,
        second: f64,
    ) -> JulianDate {
        CivilTime { year, month, day, hour, minute, second }.to_julian()
    }

    /// Converts back to civil UTC components.
    pub fn to_civil(self) -> CivilTime {
        // Fliegel & Van Flandern inverse algorithm.
        let jd = self.0 + 0.5;
        let z = jd.floor();
        let f = jd - z;
        let a = if z < 2_299_161.0 {
            z
        } else {
            let alpha = ((z - 1_867_216.25) / 36_524.25).floor();
            z + 1.0 + alpha - (alpha / 4.0).floor()
        };
        let b = a + 1524.0;
        let c = ((b - 122.1) / 365.25).floor();
        let d = (365.25 * c).floor();
        let e = ((b - d) / 30.6001).floor();

        let day_frac = b - d - (30.6001 * e).floor() + f;
        let day = day_frac.floor();
        let month = if e < 14.0 { e - 1.0 } else { e - 13.0 };
        let year = if month > 2.0 { c - 4716.0 } else { c - 4715.0 };

        let mut secs = (day_frac - day) * SECONDS_PER_DAY;
        // Clamp accumulated floating error away from 86400.
        if secs >= SECONDS_PER_DAY {
            secs = SECONDS_PER_DAY - 1e-6;
        }
        let hour = (secs / 3600.0).floor();
        secs -= hour * 3600.0;
        let minute = (secs / 60.0).floor();
        secs -= minute * 60.0;

        CivilTime {
            year: year as i32,
            month: month as u32,
            day: day as u32,
            hour: hour as u32,
            minute: minute as u32,
            second: secs,
        }
    }

    /// Returns this instant advanced by `secs` seconds.
    pub fn plus_seconds(self, secs: f64) -> JulianDate {
        JulianDate(self.0 + secs / SECONDS_PER_DAY)
    }

    /// Returns this instant advanced by `mins` minutes.
    pub fn plus_minutes(self, mins: f64) -> JulianDate {
        JulianDate(self.0 + mins / MINUTES_PER_DAY)
    }

    /// Returns this instant advanced by `days` days.
    pub fn plus_days(self, days: f64) -> JulianDate {
        JulianDate(self.0 + days)
    }

    /// Signed difference `self - other` in seconds.
    pub fn seconds_since(self, other: JulianDate) -> f64 {
        (self.0 - other.0) * SECONDS_PER_DAY
    }

    /// Signed difference `self - other` in minutes (the unit SGP4 uses).
    pub fn minutes_since(self, other: JulianDate) -> f64 {
        (self.0 - other.0) * MINUTES_PER_DAY
    }

    /// Julian centuries elapsed since J2000.0.
    pub fn centuries_since_j2000(self) -> f64 {
        (self.0 - JD_J2000) / 36_525.0
    }

    /// Greenwich Mean Sidereal Time in radians, `[0, 2π)`.
    ///
    /// IAU-1982 model (Vallado, *Fundamentals of Astrodynamics*, eq. 3-47).
    /// This is the rotation angle used to go from the TEME frame SGP4 emits
    /// to the Earth-fixed ECEF frame.
    pub fn gmst_rad(self) -> f64 {
        let t = self.centuries_since_j2000();
        let gmst_sec =
            67_310.54841 + (876_600.0 * 3600.0 + 8_640_184.812866) * t + 0.093104 * t * t
                - 6.2e-6 * t * t * t;
        let gmst_deg = (gmst_sec % SECONDS_PER_DAY) / 240.0; // 86400 s / 360°
        wrap_tau(gmst_deg.to_radians())
    }

    /// Seconds past the top of the current UTC minute, in `[0, 60)`.
    ///
    /// The paper observes global reallocation at seconds :12/:27/:42/:57 —
    /// the scheduler crate uses this to anchor slot boundaries.
    pub fn seconds_past_minute(self) -> f64 {
        let c = self.to_civil();
        c.second
    }

    /// Local mean solar hour at longitude `lon_deg` (east positive), `[0, 24)`.
    ///
    /// Used as the `local_hour` model feature in §6: one hour per 15° of
    /// longitude offset from UTC.
    pub fn local_solar_hour(self, lon_deg: f64) -> f64 {
        let c = self.to_civil();
        let utc_hours = c.hour as f64 + c.minute as f64 / 60.0 + c.second / 3600.0;
        let local = utc_hours + lon_deg / 15.0;
        local.rem_euclid(24.0)
    }
}

/// Civil (calendar) UTC timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CivilTime {
    /// Calendar year (Gregorian).
    pub year: i32,
    /// Month, 1–12.
    pub month: u32,
    /// Day of month, 1–31.
    pub day: u32,
    /// Hour, 0–23.
    pub hour: u32,
    /// Minute, 0–59.
    pub minute: u32,
    /// Second with fraction, `[0, 60)`.
    pub second: f64,
}

impl CivilTime {
    /// Converts to a Julian date (valid for Gregorian dates, year ≥ 1901).
    pub fn to_julian(self) -> JulianDate {
        // Vallado's JDAY algorithm.
        let y = self.year as f64;
        let m = self.month as f64;
        let d = self.day as f64;
        let jd = 367.0 * y - ((7.0 * (y + ((m + 9.0) / 12.0).floor())) / 4.0).floor()
            + (275.0 * m / 9.0).floor()
            + d
            + 1_721_013.5;
        let frac =
            (self.second + self.minute as f64 * 60.0 + self.hour as f64 * 3600.0) / SECONDS_PER_DAY;
        JulianDate(jd + frac)
    }

    /// Day of year (1-based), including the fractional part of the day.
    ///
    /// This is the epoch format TLE lines use ("day 264.51782528").
    pub fn day_of_year(self) -> f64 {
        const CUM_DAYS: [u32; 12] = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334];
        let leap = (self.year % 4 == 0 && self.year % 100 != 0) || self.year % 400 == 0;
        let mut doy = CUM_DAYS[(self.month - 1) as usize] + self.day;
        if leap && self.month > 2 {
            doy += 1;
        }
        doy as f64
            + (self.hour as f64 * 3600.0 + self.minute as f64 * 60.0 + self.second)
                / SECONDS_PER_DAY
    }

    /// Builds a civil time from a year and a (fractional, 1-based) day of
    /// year — the inverse of [`CivilTime::day_of_year`], used when parsing
    /// TLE epochs.
    pub fn from_year_and_doy(year: i32, doy: f64) -> CivilTime {
        let jan1 = CivilTime { year, month: 1, day: 1, hour: 0, minute: 0, second: 0.0 };
        jan1.to_julian().plus_days(doy - 1.0).to_civil()
    }
}

impl std::fmt::Display for CivilTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:04}-{:02}-{:02} {:02}:{:02}:{:06.3}",
            self.year, self.month, self.day, self.hour, self.minute, self.second
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn j2000_round_trips() {
        let jd = JulianDate::from_ymd_hms(2000, 1, 1, 12, 0, 0.0);
        assert!((jd.0 - JD_J2000).abs() < 1e-9);
        let c = jd.to_civil();
        assert_eq!((c.year, c.month, c.day, c.hour, c.minute), (2000, 1, 1, 12, 0));
    }

    #[test]
    fn known_julian_date_vallado_example() {
        // Vallado example 3-4: 1996-10-26 14:20:00 UTC = JD 2450383.09722222.
        let jd = JulianDate::from_ymd_hms(1996, 10, 26, 14, 20, 0.0);
        assert!((jd.0 - 2_450_383.097_222_22).abs() < 1e-6);
    }

    #[test]
    fn civil_round_trip_over_many_instants() {
        for k in 0..500 {
            let jd = JulianDate(2_460_000.25 + k as f64 * 1.7381);
            let back = JulianDate::from_civil(jd.to_civil());
            assert!((back.0 - jd.0).abs() < 1e-8, "k={k}");
        }
    }

    #[test]
    fn gmst_known_value() {
        // Vallado example 3-5: 1992-08-20 12:14:00 UT1 → GMST 152.578788°.
        let jd = JulianDate::from_ymd_hms(1992, 8, 20, 12, 14, 0.0);
        let gmst_deg = jd.gmst_rad().to_degrees();
        assert!((gmst_deg - 152.578_788_10).abs() < 1e-4, "got {gmst_deg}");
    }

    #[test]
    fn plus_seconds_and_difference_agree() {
        let a = JulianDate::from_ymd_hms(2023, 3, 15, 0, 0, 0.0);
        let b = a.plus_seconds(15.0);
        // f64 Julian dates resolve ~40 µs near the present epoch.
        assert!((b.seconds_since(a) - 15.0).abs() < 1e-4);
        assert!((b.minutes_since(a) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn day_of_year_handles_leap_years() {
        let c = CivilTime { year: 2020, month: 3, day: 1, hour: 0, minute: 0, second: 0.0 };
        assert_eq!(c.day_of_year(), 61.0); // 31 + 29 + 1
        let c = CivilTime { year: 2021, month: 3, day: 1, hour: 0, minute: 0, second: 0.0 };
        assert_eq!(c.day_of_year(), 60.0);
        let c = CivilTime { year: 2000, month: 12, day: 31, hour: 0, minute: 0, second: 0.0 };
        assert_eq!(c.day_of_year(), 366.0); // 2000 was a leap year (divisible by 400)
    }

    #[test]
    fn doy_round_trip() {
        let c = CivilTime { year: 2023, month: 6, day: 27, hour: 18, minute: 30, second: 12.5 };
        let back = CivilTime::from_year_and_doy(2023, c.day_of_year());
        assert_eq!(
            (back.year, back.month, back.day, back.hour, back.minute),
            (2023, 6, 27, 18, 30)
        );
        assert!((back.second - 12.5).abs() < 1e-3);
    }

    #[test]
    fn local_solar_hour_offsets_by_longitude() {
        let jd = JulianDate::from_ymd_hms(2023, 6, 1, 12, 0, 0.0);
        assert!((jd.local_solar_hour(0.0) - 12.0).abs() < 1e-6);
        assert!((jd.local_solar_hour(-90.0) - 6.0).abs() < 1e-6); // Iowa-ish
        assert!((jd.local_solar_hour(180.0) - 0.0).abs() < 1e-6);
    }

    #[test]
    fn seconds_past_minute_tracks_probe_cadence() {
        let jd = JulianDate::from_ymd_hms(2023, 5, 5, 5, 38, 12.0);
        assert!((jd.seconds_past_minute() - 12.0).abs() < 1e-4);
    }
}
