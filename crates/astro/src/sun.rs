//! Low-precision solar ephemeris and the Earth-shadow ("sunlit") test.
//!
//! §5.3 of the paper shows the global scheduler prefers *sunlit* satellites.
//! The authors computed sunlit status with the SkyField library; we implement
//! the standard low-precision solar position (Meeus, *Astronomical
//! Algorithms*, ch. 25 — accurate to ~0.01°) and a conical Earth-shadow
//! model. For a yes/no sunlit decision on a LEO satellite, both are far more
//! accurate than required: the penumbra transit of a Starlink satellite lasts
//! only a few seconds.

use crate::time::JulianDate;
use crate::vec3::Vec3;
use crate::{AU_KM, EARTH_RADIUS_KM, SUN_RADIUS_KM};

/// Apparent position of the Sun in the TEME frame (km), at UTC instant `at`.
///
/// Mean-of-date and TEME differ by well under 0.01° across the years the
/// reproduction simulates, so the mean-equinox position is used directly.
pub fn sun_position_teme(at: JulianDate) -> Vec3 {
    let t = at.centuries_since_j2000();

    // Geometric mean longitude and mean anomaly of the Sun (degrees).
    let l0 = 280.460_46 + 36_000.770_05 * t;
    let m = (357.529_11 + 35_999.050_29 * t).to_radians();

    // Equation of centre.
    let c = (1.914_602 - 0.004_817 * t) * m.sin()
        + (0.019_993 - 0.000_101 * t) * (2.0 * m).sin()
        + 0.000_289 * (3.0 * m).sin();

    let ecliptic_lon = (l0 + c).to_radians();
    let obliquity = (23.439_291 - 0.013_004_2 * t).to_radians();

    // Distance in AU.
    let e = 0.016_708_617 - 0.000_042_037 * t;
    let nu = m + c.to_radians();
    let r_au = 1.000_140_612 * (1.0 - e * e) / (1.0 + e * nu.cos());

    let r = r_au * AU_KM;
    Vec3::new(
        r * ecliptic_lon.cos(),
        r * ecliptic_lon.sin() * obliquity.cos(),
        r * ecliptic_lon.sin() * obliquity.sin(),
    )
}

/// Whether a satellite at TEME position `sat` (km) is illuminated by the Sun
/// at instant `at`.
///
/// Uses the umbral cone of a spherical Earth: the satellite is dark only if
/// it is behind the terminator plane *and* inside the shadow cone. Penumbra
/// is treated as sunlit (a satellite in penumbra still receives most solar
/// flux, and the transit lasts seconds at LEO).
pub fn is_sunlit(sat: Vec3, at: JulianDate) -> bool {
    is_sunlit_given_sun(sat, sun_position_teme(at))
}

/// [`is_sunlit`] with an externally supplied sun vector, for callers that
/// evaluate many satellites at one instant.
pub fn is_sunlit_given_sun(sat: Vec3, sun: Vec3) -> bool {
    let sun_dir = sun.unit();

    // Component of the satellite position along the Sun direction. Positive
    // means the satellite is on the day side: always lit.
    let along = sat.dot(sun_dir);
    if along >= 0.0 {
        return true;
    }

    // Perpendicular distance from the Earth-Sun axis.
    let perp = (sat - sun_dir * along).norm();

    // Umbra cone: apex beyond the Earth at distance d_u, half-angle α_u.
    // tan α_u = (R_sun − R_earth) / d_sun ; cone radius at |along| behind the
    // terminator shrinks linearly from R_earth.
    let d_sun = sun.norm();
    let shrink = (SUN_RADIUS_KM - EARTH_RADIUS_KM) / d_sun;
    let umbra_radius = EARTH_RADIUS_KM + along * shrink; // along < 0 shrinks it
    perp > umbra_radius
}

/// Fraction of satellites in `positions` that are sunlit at `at`.
///
/// Convenience for the §5.3 analyses, which repeatedly ask "what share of the
/// field of view is dark right now".
pub fn sunlit_fraction(positions: &[Vec3], at: JulianDate) -> f64 {
    if positions.is_empty() {
        return 0.0;
    }
    let sun = sun_position_teme(at);
    let lit = positions.iter().filter(|&&p| is_sunlit_given_sun(p, sun)).count();
    lit as f64 / positions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sun_distance_is_about_one_au() {
        for month in 1..=12 {
            let at = JulianDate::from_ymd_hms(2023, month, 15, 0, 0, 0.0);
            let d = sun_position_teme(at).norm();
            assert!((0.983 * AU_KM..1.017 * AU_KM).contains(&d), "month {month}: {} AU", d / AU_KM);
        }
    }

    #[test]
    fn sun_declination_matches_seasons() {
        // June solstice: sun well north of the equator (decl ≈ +23.4°).
        let summer = sun_position_teme(JulianDate::from_ymd_hms(2023, 6, 21, 12, 0, 0.0));
        let decl_summer = (summer.z / summer.norm()).asin().to_degrees();
        assert!((decl_summer - 23.4).abs() < 0.5, "summer decl {decl_summer}");

        // December solstice: decl ≈ −23.4°.
        let winter = sun_position_teme(JulianDate::from_ymd_hms(2023, 12, 21, 12, 0, 0.0));
        let decl_winter = (winter.z / winter.norm()).asin().to_degrees();
        assert!((decl_winter + 23.4).abs() < 0.5, "winter decl {decl_winter}");

        // Equinox: decl ≈ 0°.
        let spring = sun_position_teme(JulianDate::from_ymd_hms(2023, 3, 20, 12, 0, 0.0));
        let decl_spring = (spring.z / spring.norm()).asin().to_degrees();
        assert!(decl_spring.abs() < 0.6, "equinox decl {decl_spring}");
    }

    #[test]
    fn satellite_between_earth_and_sun_is_lit() {
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
        let sun_dir = sun_position_teme(at).unit();
        let sat = sun_dir * (EARTH_RADIUS_KM + 550.0);
        assert!(is_sunlit(sat, at));
    }

    #[test]
    fn satellite_directly_behind_earth_is_dark() {
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
        let sun_dir = sun_position_teme(at).unit();
        let sat = -sun_dir * (EARTH_RADIUS_KM + 550.0);
        assert!(!is_sunlit(sat, at));
    }

    #[test]
    fn satellite_behind_but_offset_above_shadow_is_lit() {
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
        let sun = sun_position_teme(at);
        let sun_dir = sun.unit();
        // Perpendicular direction.
        let perp = sun_dir.cross(Vec3::Z).unit();
        // Behind the Earth but 8000 km off-axis: outside the ~6378 km cone.
        let sat = -sun_dir * 2000.0 + perp * 8000.0;
        assert!(is_sunlit(sat, at));
    }

    #[test]
    fn umbra_cone_narrows_behind_earth() {
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
        let sun = sun_position_teme(at);
        let sun_dir = sun.unit();
        let perp = sun_dir.cross(Vec3::Z).unit();
        // Just inside the Earth radius right at the terminator plane → dark;
        // the same perpendicular offset far behind the Earth → lit, because
        // the cone has narrowed.
        let near = -sun_dir * 10.0 + perp * (EARTH_RADIUS_KM - 50.0);
        assert!(!is_sunlit(near, at));
        let far = -sun_dir * 1_000_000.0 + perp * (EARTH_RADIUS_KM - 50.0);
        assert!(is_sunlit(far, at));
    }

    #[test]
    fn sunlit_fraction_counts() {
        let at = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
        let sun_dir = sun_position_teme(at).unit();
        let lit = sun_dir * (EARTH_RADIUS_KM + 550.0);
        let dark = -sun_dir * (EARTH_RADIUS_KM + 550.0);
        let f = sunlit_fraction(&[lit, dark, lit, lit], at);
        assert!((f - 0.75).abs() < 1e-12);
        assert_eq!(sunlit_fraction(&[], at), 0.0);
    }
}
