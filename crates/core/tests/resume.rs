//! Crash-resilience tier: bit-identical checkpoint/resume, supervised
//! worker retry/quarantine, and corruption recovery.
//!
//! The central claim under test: killing a campaign at *any* checkpoint
//! boundary and resuming it — possibly with a different thread count,
//! shard count, or cohort setting — produces an observation stream
//! byte-for-byte identical to an uninterrupted run, in oracle mode,
//! identified mode, and under measurement-fault injection.

use std::path::PathBuf;

use starsense_astro::frames::Geodetic;
use starsense_astro::time::JulianDate;
use starsense_checkpoint::{CheckpointError, LoadedFrom};
use starsense_constellation::{Constellation, ConstellationBuilder};
use starsense_core::campaign::{Campaign, CampaignConfig, CampaignError, ShardFailure};
use starsense_core::resume::{fingerprint_observations, ResumeConfig};
use starsense_core::{DegradeReason, SlotOutcome};
use starsense_faults::{bit_flipped_copy, FaultPlan, FaultRates, FaultRng};
use starsense_scheduler::Terminal;

const SLOTS: usize = 10;

fn start() -> JulianDate {
    JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0)
}

fn mini() -> Constellation {
    ConstellationBuilder::starlink_mini().seed(33).build()
}

fn terminals() -> Vec<Terminal> {
    vec![
        Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2)),
        Terminal::new(1, "Seattle", Geodetic::new(47.61, -122.33, 0.1)),
    ]
}

/// The three observation modes the matrix ranges over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Oracle,
    Identified,
    Faulted,
}

fn campaign(c: &Constellation, mode: Mode, threads: usize, shards: usize) -> Campaign<'_> {
    let mut config = CampaignConfig { threads, shards, ..CampaignConfig::default() };
    match mode {
        Mode::Oracle => Campaign::oracle(c, terminals(), config, 33),
        Mode::Identified => Campaign::identified(c, terminals(), config, 33),
        Mode::Faulted => {
            config.faults = FaultPlan::new(99, FaultRates::uniform(0.12));
            config.min_margin = starsense_ident::DEFAULT_MIN_MARGIN;
            config.quarantine_after = 2;
            Campaign::identified(c, terminals(), config, 33)
        }
    }
}

/// A unique checkpoint path under the target-scoped temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("starsense-resume-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join("campaign.ckpt")
}

fn opts(path: PathBuf, every: usize) -> ResumeConfig {
    ResumeConfig { checkpoint_every: every, ..ResumeConfig::new(path) }
}

/// Runs the campaign as a kill/resume chain: every call is stopped after
/// one checkpoint (an in-process crash at the boundary), then a new call
/// resumes from disk, until completion. Returns the final stream's
/// fingerprint and the number of process "lives" used.
fn run_killed_at_every_checkpoint(campaign: &Campaign<'_>, opts: &ResumeConfig) -> (u64, usize) {
    let chain = ResumeConfig { stop_after_checkpoints: Some(1), ..opts.clone() };
    let mut lives = 0;
    loop {
        lives += 1;
        assert!(lives <= SLOTS + 2, "kill/resume chain failed to converge");
        let (obs, _, report) = campaign
            .run_resumable(start(), SLOTS, &chain)
            .expect("interrupted segment must succeed");
        if report.completed {
            return (fingerprint_observations(&obs), lives);
        }
    }
}

#[test]
fn resumable_matches_one_shot_bit_for_bit() {
    let c = mini();
    for mode in [Mode::Oracle, Mode::Identified, Mode::Faulted] {
        let campaign = campaign(&c, mode, 1, 1);
        let (one_shot, one_shot_stats) = campaign.run_with_stats(start(), SLOTS);
        let path = scratch(&format!("oneshot-{mode:?}"));
        let (resumed, stats, report) = campaign
            .run_resumable(start(), SLOTS, &opts(path, 3))
            .expect("resumable run must succeed");
        assert!(report.completed && report.resumed_at_slot.is_none());
        assert_eq!(report.checkpoints_written, 4, "ceil(10 / 3) segments");
        assert_eq!(
            fingerprint_observations(&resumed),
            fingerprint_observations(&one_shot),
            "mode {mode:?}: segmented engine must reproduce the one-shot stream"
        );
        assert_eq!(stats.observed, one_shot_stats.observed);
        assert_eq!(stats.quarantined_sats, one_shot_stats.quarantined_sats);
        assert_eq!(stats.masked_propagations, one_shot_stats.masked_propagations);
    }
}

#[test]
fn kill_resume_matrix_is_bit_identical() {
    let c = mini();
    for mode in [Mode::Oracle, Mode::Identified, Mode::Faulted] {
        let baseline = {
            let campaign = campaign(&c, mode, 1, 1);
            let path = scratch(&format!("matrix-base-{mode:?}"));
            let (obs, _, report) = campaign
                .run_resumable(start(), SLOTS, &opts(path, 2))
                .expect("baseline run must succeed");
            assert!(report.completed);
            fingerprint_observations(&obs)
        };
        for (threads, shards) in [(1, 1), (2, 1), (2, 4), (4, 4)] {
            let campaign = campaign(&c, mode, threads, shards);
            let path = scratch(&format!("matrix-{mode:?}-{threads}x{shards}"));
            let (fp, lives) = run_killed_at_every_checkpoint(&campaign, &opts(path, 2));
            assert!(lives >= SLOTS / 2, "every checkpoint must actually interrupt");
            assert_eq!(
                fp, baseline,
                "mode {mode:?}, {threads} threads x {shards} shards: \
                 kill/resume must not move a bit"
            );
        }
    }
}

#[test]
fn resume_after_completion_returns_stored_stream() {
    let c = mini();
    let campaign = campaign(&c, Mode::Oracle, 1, 1);
    let path = scratch("complete");
    let config = opts(path, 4);
    let (first, _, report) = campaign.run_resumable(start(), SLOTS, &config).expect("first run");
    assert!(report.completed);
    let (second, _, report) = campaign.run_resumable(start(), SLOTS, &config).expect("second run");
    assert_eq!(report.resumed_at_slot, Some(SLOTS));
    assert_eq!(report.segments_run, 0, "a complete snapshot needs no recompute");
    assert_eq!(fingerprint_observations(&second), fingerprint_observations(&first));
}

#[test]
fn corrupt_primary_falls_back_to_last_good_and_converges() {
    let c = mini();
    let campaign = campaign(&c, Mode::Identified, 2, 2);
    let base_path = scratch("corrupt-primary");
    let config = opts(base_path.clone(), 2);
    let baseline = {
        let path = scratch("corrupt-primary-baseline");
        let (obs, _, _) = campaign.run_resumable(start(), SLOTS, &opts(path, 2)).expect("baseline");
        fingerprint_observations(&obs)
    };

    // Two checkpoints in: primary and .prev both exist.
    let stopped = ResumeConfig { stop_after_checkpoints: Some(2), ..config.clone() };
    let (_, _, report) = campaign.run_resumable(start(), SLOTS, &stopped).expect("partial run");
    assert_eq!(report.checkpoints_written, 2);
    assert!(!report.completed);

    // A torn/corrupted primary (any flipped bit breaks a checksum).
    let good = std::fs::read(&base_path).expect("read primary");
    let mut rng = FaultRng::from_salt(7);
    let bad = bit_flipped_copy(&good, &mut rng);
    std::fs::write(&base_path, bad).expect("corrupt primary");

    let (obs, _, report) = campaign.run_resumable(start(), SLOTS, &config).expect("recovery run");
    assert!(report.completed);
    assert_eq!(report.loaded_from, Some(LoadedFrom::Backup));
    assert_eq!(report.corrupt_discarded, 1);
    assert_eq!(report.resumed_at_slot, Some(2), "backup is one interval older");
    assert_eq!(
        fingerprint_observations(&obs),
        baseline,
        "recovering from the older checkpoint recomputes to the same bits"
    );
}

#[test]
fn corruption_of_all_history_restarts_cleanly() {
    let c = mini();
    let campaign = campaign(&c, Mode::Oracle, 1, 1);
    let path = scratch("corrupt-all");
    let config = opts(path.clone(), 2);
    let stopped = ResumeConfig { stop_after_checkpoints: Some(2), ..config.clone() };
    let (_, _, _) = campaign.run_resumable(start(), SLOTS, &stopped).expect("partial run");

    let mut rng = FaultRng::from_salt(8);
    for file in [path.clone(), starsense_checkpoint::backup_path(&path)] {
        let good = std::fs::read(&file).expect("read snapshot");
        std::fs::write(&file, bit_flipped_copy(&good, &mut rng)).expect("corrupt snapshot");
    }

    let (obs, _, report) = campaign.run_resumable(start(), SLOTS, &config).expect("fresh restart");
    assert!(report.completed);
    assert_eq!(report.resumed_at_slot, None, "nothing valid to resume from");
    assert_eq!(report.corrupt_discarded, 2);
    let (one_shot, _) = campaign.run_with_stats(start(), SLOTS);
    assert_eq!(fingerprint_observations(&obs), fingerprint_observations(&one_shot));
}

#[test]
fn foreign_snapshot_is_rejected_not_resumed() {
    let c = mini();
    let path = scratch("foreign");
    let config = opts(path, 2);
    let stopped = ResumeConfig { stop_after_checkpoints: Some(1), ..config.clone() };
    let (_, _, _) = campaign(&c, Mode::Oracle, 1, 1)
        .run_resumable(start(), SLOTS, &stopped)
        .expect("partial run");

    // Same path, different campaign seed: resuming would fabricate data.
    let other = Campaign::oracle(
        &c,
        terminals(),
        CampaignConfig { threads: 1, shards: 1, ..CampaignConfig::default() },
        34,
    );
    let err = other.run_resumable(start(), SLOTS, &config).expect_err("must refuse");
    assert!(
        matches!(err, CampaignError::Checkpoint(CheckpointError::ConfigMismatch { .. })),
        "got {err:?}"
    );
}

#[test]
fn injected_panics_retry_transparently() {
    // Worker-fault channels perturb only the supervisor: as long as one
    // attempt in the budget survives, the measurement stream is
    // bit-identical to a run with no worker faults at all.
    let c = mini();
    let clean = campaign(&c, Mode::Oracle, 1, 2);
    let clean_fp = {
        let path = scratch("retry-clean");
        let (obs, stats, _) =
            clean.run_resumable(start(), SLOTS, &opts(path, 4)).expect("clean run");
        assert_eq!(stats.worker_retries, 0);
        fingerprint_observations(&obs)
    };

    let rates = FaultRates { worker_panic: 0.35, ..FaultRates::none() };
    let flaky = Campaign::oracle(
        &c,
        terminals(),
        CampaignConfig {
            threads: 1,
            shards: 2,
            faults: FaultPlan::new(99, rates),
            ..CampaignConfig::default()
        },
        33,
    );
    let path = scratch("retry-flaky");
    let config = ResumeConfig { worker_retries: 6, ..opts(path, 4) };
    let (obs, stats, report) =
        flaky.run_resumable(start(), SLOTS, &config).expect("flaky run must recover");
    assert!(report.completed);
    assert!(stats.worker_retries > 0, "the fault plan must actually bite");
    assert_eq!(stats.quarantined_workers, 0, "a 6-retry budget outlasts p=0.35 streaks");
    assert_eq!(stats.worker_failed, 0);
    assert_eq!(
        fingerprint_observations(&obs),
        clean_fp,
        "retried panics must not leak into the measurement stream"
    );
}

#[test]
fn exhausted_units_quarantine_and_degrade_visibly() {
    // Every attempt panics: each schedule shard burns its budget once,
    // is quarantined (K = 1), and every slot degrades to WorkerFailed.
    let c = mini();
    let rates = FaultRates { worker_panic: 1.0, ..FaultRates::none() };
    let campaign = Campaign::oracle(
        &c,
        terminals(),
        CampaignConfig {
            threads: 2,
            shards: 2,
            faults: FaultPlan::new(5, rates),
            ..CampaignConfig::default()
        },
        33,
    );
    let path = scratch("quarantine");
    let config = ResumeConfig { worker_retries: 1, worker_quarantine_after: 1, ..opts(path, 5) };
    let (obs, stats, report) = campaign.run_resumable(start(), SLOTS, &config).expect("degrades");
    assert!(report.completed);
    assert_eq!(obs.len(), SLOTS * 2);
    assert!(obs.iter().all(|o| o.outcome == SlotOutcome::NoData(DegradeReason::WorkerFailed)));
    assert_eq!(stats.worker_failed, SLOTS * 2);
    assert_eq!(stats.quarantined_workers, 2, "both schedule shards");
    // Each shard failed 2 attempts in segment 1 (1 retry each), then was
    // quarantined — segment 2 never attempts them.
    assert_eq!(stats.worker_retries, 2);
}

#[test]
fn overruns_fail_fast_when_quarantine_is_disabled() {
    let c = mini();
    let rates = FaultRates { worker_overrun: 1.0, ..FaultRates::none() };
    let campaign = Campaign::oracle(
        &c,
        terminals(),
        CampaignConfig {
            threads: 1,
            shards: 1,
            faults: FaultPlan::new(5, rates),
            ..CampaignConfig::default()
        },
        33,
    );
    let path = scratch("fail-fast");
    let config = ResumeConfig { worker_retries: 2, worker_quarantine_after: 0, ..opts(path, 5) };
    let err = campaign.run_resumable(start(), SLOTS, &config).expect_err("must fail fast");
    match err {
        CampaignError::WorkerExhausted { unit, attempts, failure } => {
            assert_eq!(unit, 0);
            assert_eq!(attempts, 3, "one try plus two retries");
            assert_eq!(failure, ShardFailure::DeadlineOverrun);
        }
        other => panic!("expected WorkerExhausted, got {other:?}"),
    }
}

#[test]
fn backoff_schedule_is_deterministic_bounded_and_inert_at_zero() {
    let a = ResumeConfig { backoff_base_ms: 10, backoff_cap_ms: 80, ..ResumeConfig::new("x") };
    let b = a.clone();
    for unit in 0..8u64 {
        for attempt in 1..6u32 {
            let d = a.backoff_delay_ms(33, unit, attempt);
            assert_eq!(d, b.backoff_delay_ms(33, unit, attempt), "deterministic");
            assert!(d <= 80 + 10, "cap plus one jitter quantum");
        }
    }
    // Exponential ramp until the cap dominates.
    assert!(a.backoff_delay_ms(33, 1, 3) >= a.backoff_delay_ms(33, 1, 1));
    let zero = ResumeConfig::new("y");
    assert_eq!(zero.backoff_base_ms, 0);
    for attempt in 1..4 {
        assert_eq!(zero.backoff_delay_ms(33, 7, attempt), 0, "zero base never sleeps");
    }
}
