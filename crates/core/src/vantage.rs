//! The paper's vantage points.
//!
//! "We perform our measurement using four Starlink terminals — one each in
//! Western Europe, Northeast US, Midwest US, and Northwest US" (§3), later
//! named in the figures as Iowa, New York (Ithaca), Madrid, and Washington.
//! The Ithaca terminal's north-west sky was "severely obstructed by trees"
//! (§5.1).

use starsense_astro::frames::Geodetic;
use starsense_obstruction::SkyMask;
use starsense_scheduler::Terminal;

/// Index of the Iowa terminal in [`paper_terminals`].
pub const IOWA: usize = 0;
/// Index of the Ithaca, NY terminal.
pub const ITHACA: usize = 1;
/// Index of the Madrid terminal.
pub const MADRID: usize = 2;
/// Index of the Washington-state terminal.
pub const WASHINGTON: usize = 3;

/// The four terminals of the study, ids 0–3, Figure-label names.
pub fn paper_terminals() -> Vec<Terminal> {
    vec![
        Terminal::new(IOWA, "Iowa", Geodetic::new(41.66, -91.53, 0.20)),
        Terminal::new(ITHACA, "New York", Geodetic::new(42.44, -76.50, 0.30))
            .with_mask(SkyMask::ithaca_trees()),
        Terminal::new(MADRID, "Madrid", Geodetic::new(40.42, -3.70, 0.65)),
        Terminal::new(WASHINGTON, "Washington", Geodetic::new(47.61, -122.33, 0.05)),
    ]
}

/// The terminal indices with unobstructed skies — §5.2 "discarding the New
/// York location because of significant obstructions".
pub const UNOBSTRUCTED: [usize; 3] = [IOWA, MADRID, WASHINGTON];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_terminals_with_expected_names() {
        let t = paper_terminals();
        assert_eq!(t.len(), 4);
        let names: Vec<&str> = t.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["Iowa", "New York", "Madrid", "Washington"]);
        for (i, term) in t.iter().enumerate() {
            assert_eq!(term.id, i);
        }
    }

    #[test]
    fn only_ithaca_is_obstructed() {
        let t = paper_terminals();
        assert!(t[IOWA].mask.is_clear());
        assert!(!t[ITHACA].mask.is_clear());
        assert!(t[MADRID].mask.is_clear());
        assert!(t[WASHINGTON].mask.is_clear());
    }

    #[test]
    fn all_terminals_are_north_of_40_degrees() {
        // §5.1's GSO rationale applies "at latitudes more than 40°N, the
        // approximate latitude of our terminals".
        for t in paper_terminals() {
            assert!(t.location.lat_deg > 40.0, "{} at {}", t.name, t.location.lat_deg);
        }
    }
}
