//! The §6 feature engineering: z-score clusters.
//!
//! "Given a set of satellites S available at time t for location l, the
//! satellite s ∈ S with parameters (θₛ, φₛ, aₛ, Lₛ) is placed in the
//! cluster ((θₛ−μ(θ))/σ(θ), (φₛ−μ(φ))/σ(φ), (aₛ−μ(a))/σ(a), L)" — i.e.
//! each satellite is described by how many standard deviations its
//! azimuth, angle of elevation and age sit from the mean of the satellites
//! currently in view, plus its sunlit bit. The model's features are the
//! local time and the count of available satellites per cluster; the label
//! is the chosen satellite's cluster.

use crate::campaign::{SatObs, SlotObservation};
use starsense_stats::describe::{mean, std_dev_population};
use std::collections::BTreeMap;

/// A quantized z-score cluster: (azimuth, AOE, age) z-scores rounded to
/// integers and clamped to ±2, plus the sunlit flag — the "(1, 0, 2, 1)"
/// tuples of §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterKey {
    /// Quantized azimuth z-score, −2..=2.
    pub az: i8,
    /// Quantized angle-of-elevation z-score, −2..=2.
    pub aoe: i8,
    /// Quantized age z-score, −2..=2.
    pub age: i8,
    /// Sunlit flag.
    pub sunlit: bool,
}

impl ClusterKey {
    /// Renders the tuple the way the paper prints it, e.g. `(1,-1,-1,1)`.
    pub fn label(&self) -> String {
        format!("({},{},{},{})", self.az, self.aoe, self.age, u8::from(self.sunlit))
    }
}

/// Per-slot z-score context: the mean and population σ of each feature
/// over the slot's available set.
#[derive(Debug, Clone, Copy)]
struct SlotStats {
    az: (f64, f64),
    aoe: (f64, f64),
    age: (f64, f64),
}

fn slot_stats(available: &[SatObs]) -> SlotStats {
    let azs: Vec<f64> = available.iter().map(|s| s.azimuth_deg).collect();
    let aoes: Vec<f64> = available.iter().map(|s| s.elevation_deg).collect();
    let ages: Vec<f64> = available.iter().map(|s| s.age_days).collect();
    SlotStats {
        az: (mean(&azs), std_dev_population(&azs)),
        aoe: (mean(&aoes), std_dev_population(&aoes)),
        age: (mean(&ages), std_dev_population(&ages)),
    }
}

fn quantize(value: f64, (mu, sigma): (f64, f64)) -> i8 {
    if !sigma.is_finite() || sigma < 1e-9 {
        return 0;
    }
    ((value - mu) / sigma).round().clamp(-2.0, 2.0) as i8
}

/// Assigns a satellite to its cluster within a slot's available set.
pub fn cluster_of(sat: &SatObs, available: &[SatObs]) -> ClusterKey {
    let stats = slot_stats(available);
    ClusterKey {
        az: quantize(sat.azimuth_deg, stats.az),
        aoe: quantize(sat.elevation_deg, stats.aoe),
        age: quantize(sat.age_days, stats.age),
        sunlit: sat.sunlit,
    }
}

/// The set of clusters seen in a training corpus, with a stable index per
/// cluster (labels and count features refer to these indices).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterVocabulary {
    index: BTreeMap<ClusterKey, usize>,
}

impl ClusterVocabulary {
    /// Builds the vocabulary from observations: every cluster that appears
    /// in any slot's available set.
    pub fn build(observations: &[SlotObservation]) -> ClusterVocabulary {
        let mut keys = std::collections::BTreeSet::new();
        for o in observations {
            for s in &o.available {
                keys.insert(cluster_of(s, &o.available));
            }
        }
        ClusterVocabulary { index: keys.into_iter().enumerate().map(|(i, k)| (k, i)).collect() }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no clusters were observed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Index of a cluster, if it is in the vocabulary.
    pub fn index_of(&self, key: &ClusterKey) -> Option<usize> {
        self.index.get(key).copied()
    }

    /// Cluster keys in index order.
    pub fn keys(&self) -> Vec<ClusterKey> {
        let mut v: Vec<(usize, ClusterKey)> = self.index.iter().map(|(k, &i)| (i, *k)).collect();
        v.sort_by_key(|(i, _)| *i);
        v.into_iter().map(|(_, k)| k).collect()
    }
}

/// Turns slot observations into model rows.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    vocab: ClusterVocabulary,
}

impl FeatureExtractor {
    /// Creates an extractor over a vocabulary.
    pub fn new(vocab: ClusterVocabulary) -> FeatureExtractor {
        FeatureExtractor { vocab }
    }

    /// The vocabulary in use.
    pub fn vocabulary(&self) -> &ClusterVocabulary {
        &self.vocab
    }

    /// Feature names: `local_hour` followed by one count feature per
    /// cluster, named with the paper's tuple notation.
    pub fn feature_names(&self) -> Vec<String> {
        let mut names = vec!["local_hour".to_string()];
        names.extend(self.vocab.keys().iter().map(|k| k.label()));
        names
    }

    /// Feature vector for one slot: `[local_hour, count per cluster…]`.
    pub fn features(&self, o: &SlotObservation) -> Vec<f64> {
        let mut row = vec![0.0; 1 + self.vocab.len()];
        row[0] = o.local_hour;
        for s in &o.available {
            if let Some(i) = self.vocab.index_of(&cluster_of(s, &o.available)) {
                row[1 + i] += 1.0;
            }
        }
        row
    }

    /// Label for one slot: the chosen satellite's cluster index. `None`
    /// when the slot has no chosen satellite or its cluster is unseen.
    pub fn label(&self, o: &SlotObservation) -> Option<usize> {
        let chosen = o.chosen.as_ref()?;
        self.vocab.index_of(&cluster_of(chosen, &o.available))
    }

    /// The baseline's ranked guesses for a slot: cluster indices by
    /// descending available count ("the baseline model... simply returns
    /// the (top-k) cluster(s) with the most number of available
    /// satellites").
    pub fn baseline_ranking(&self, features: &[f64]) -> Vec<usize> {
        let counts = &features[1..];
        let mut idx: Vec<usize> = (0..counts.len()).collect();
        idx.sort_by(|&a, &b| counts[b].total_cmp(&counts[a]));
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starsense_astro::time::JulianDate;

    fn sat(az: f64, el: f64, age: f64, sunlit: bool) -> SatObs {
        SatObs {
            norad_id: (az * 10.0) as u32 + 44_000,
            elevation_deg: el,
            azimuth_deg: az,
            age_days: age,
            sunlit,
            launch_year: 2021,
            launch_month: 6,
        }
    }

    fn slot(available: Vec<SatObs>, chosen: Option<SatObs>) -> SlotObservation {
        SlotObservation {
            terminal_id: 0,
            slot: 1,
            slot_start: JulianDate::J2000,
            local_hour: 13.5,
            available,
            chosen,
            truth_id: None,
            outcome: crate::degrade::SlotOutcome::Unrecorded,
        }
    }

    #[test]
    fn cluster_of_mean_satellite_is_zero_tuple() {
        let avail = vec![
            sat(0.0, 30.0, 100.0, true),
            sat(120.0, 60.0, 500.0, true),
            sat(240.0, 90.0, 900.0, true),
        ];
        // The middle satellite is exactly at the mean of every feature.
        let k = cluster_of(&avail[1], &avail);
        assert_eq!((k.az, k.aoe, k.age), (0, 0, 0));
        assert!(k.sunlit);
    }

    #[test]
    fn clusters_clamp_at_two_sigma() {
        let mut avail: Vec<SatObs> =
            (0..20).map(|i| sat(100.0 + i as f64, 50.0, 300.0, true)).collect();
        avail.push(sat(359.0, 50.0, 300.0, true)); // extreme azimuth outlier
        let k = cluster_of(avail.last().unwrap(), &avail);
        assert_eq!(k.az, 2);
    }

    #[test]
    fn zero_variance_features_quantize_to_zero() {
        let avail = vec![sat(10.0, 50.0, 300.0, false), sat(10.0, 50.0, 300.0, false)];
        let k = cluster_of(&avail[0], &avail);
        assert_eq!((k.az, k.aoe, k.age, k.sunlit), (0, 0, 0, false));
    }

    #[test]
    fn label_format_matches_paper_notation() {
        let k = ClusterKey { az: 1, aoe: -1, age: -1, sunlit: true };
        assert_eq!(k.label(), "(1,-1,-1,1)");
    }

    #[test]
    fn vocabulary_indexes_every_observed_cluster() {
        let obs =
            vec![slot(vec![sat(0.0, 30.0, 100.0, true), sat(180.0, 80.0, 900.0, false)], None)];
        let vocab = ClusterVocabulary::build(&obs);
        assert!(!vocab.is_empty());
        assert_eq!(vocab.len(), vocab.keys().len());
        for k in vocab.keys() {
            assert!(vocab.index_of(&k).is_some());
        }
    }

    #[test]
    fn features_count_per_cluster_and_lead_with_local_hour() {
        let available = vec![
            sat(0.0, 30.0, 100.0, true),
            sat(120.0, 60.0, 500.0, true),
            sat(240.0, 90.0, 900.0, true),
        ];
        let o = slot(available.clone(), Some(available[1].clone()));
        let vocab = ClusterVocabulary::build(std::slice::from_ref(&o));
        let fx = FeatureExtractor::new(vocab);
        let row = fx.features(&o);
        assert_eq!(row.len(), 1 + fx.vocabulary().len());
        assert_eq!(row[0], 13.5);
        let total: f64 = row[1..].iter().sum();
        assert_eq!(total, 3.0, "every available satellite lands in a cluster");
        // Label exists and is a valid index.
        let label = fx.label(&o).expect("chosen cluster in vocab");
        assert!(label < fx.vocabulary().len());
    }

    #[test]
    fn label_is_none_without_chosen() {
        let o = slot(vec![sat(0.0, 30.0, 100.0, true)], None);
        let vocab = ClusterVocabulary::build(std::slice::from_ref(&o));
        let fx = FeatureExtractor::new(vocab);
        assert!(fx.label(&o).is_none());
    }

    #[test]
    fn baseline_ranking_orders_by_count() {
        let available = vec![
            sat(10.0, 30.0, 100.0, true),
            sat(11.0, 30.5, 101.0, true),
            sat(200.0, 80.0, 900.0, false),
        ];
        let o = slot(available, None);
        let vocab = ClusterVocabulary::build(std::slice::from_ref(&o));
        let fx = FeatureExtractor::new(vocab);
        let row = fx.features(&o);
        let ranking = fx.baseline_ranking(&row);
        assert_eq!(ranking.len(), fx.vocabulary().len());
        // The top-ranked cluster holds the most satellites.
        let counts = &row[1..];
        assert!(counts[ranking[0]] >= counts[ranking[ranking.len() - 1]]);
    }

    #[test]
    fn feature_names_align_with_width() {
        let o = slot(vec![sat(0.0, 30.0, 100.0, true)], None);
        let vocab = ClusterVocabulary::build(std::slice::from_ref(&o));
        let fx = FeatureExtractor::new(vocab);
        assert_eq!(fx.feature_names().len(), fx.features(&o).len());
        assert_eq!(fx.feature_names()[0], "local_hour");
    }
}
