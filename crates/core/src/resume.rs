//! Crash-resilient campaign execution: versioned checkpoint/restore with
//! bit-identical resume, plus a supervision layer that retries, backs
//! off, and quarantines failing shard workers instead of letting one
//! panic sink a multi-hour run.
//!
//! # Execution model
//!
//! [`Campaign::run_resumable`] splits the slot window into *segments* of
//! [`ResumeConfig::checkpoint_every`] slots. Each segment runs the same
//! three phases as the one-shot engine (prepare → schedule → observe),
//! but every stateful component is owned by the engine between segments:
//!
//! * per-terminal scheduler state ([`TerminalSchedState`]: RNG stream +
//!   hysteresis key), kept shard-layout free so a resume may use a
//!   different shard or thread count and still produce the same bits;
//! * per-terminal dish state ([`DishState`]) and the previous slot
//!   capture the XOR differencing baselines against;
//! * the accumulated observation stream and the supervisor's failure
//!   ledger.
//!
//! After each segment the full state is serialized into a checksummed
//! [`starsense_checkpoint`] snapshot and persisted with
//! [`write_rotating`] (atomic rename + a rotating last-good backup). A
//! later call with the same campaign finds the snapshot via
//! [`load_latest`], validates a configuration fingerprint, restores, and
//! continues — the resumed run's observation stream is byte-identical to
//! an uninterrupted one because segmentation never crosses a slot and
//! every cache rebuilt per segment (propagation table, track cache) is a
//! pure function of the catalog.
//!
//! # Supervision
//!
//! Each schedule shard and each observation terminal is a supervised
//! *work unit*. An attempt can fail by panicking (caught with
//! `catch_unwind`, including panics injected by the deterministic
//! [`starsense_faults::FaultPlan::worker_fault`] channel) or by a *virtual* deadline
//! overrun reported by the same fault plan — no wall clock ever feeds a
//! decision, so chaos campaigns stay bit-reproducible. Failed attempts
//! are retried up to [`ResumeConfig::worker_retries`] times with bounded
//! exponential backoff (deterministically jittered; the sleep is skipped
//! entirely when the base is zero). A unit that exhausts its budget is
//! charged one *unit failure*; after
//! [`ResumeConfig::worker_quarantine_after`] unit failures the unit is
//! quarantined for the rest of the campaign and its slots degrade to
//! [`DegradeReason::WorkerFailed`] — visible in [`DegradationStats`],
//! never silently dropped. With quarantine disabled (`0`) the engine
//! fails fast with [`CampaignError::WorkerExhausted`].
//!
//! # Wire format
//!
//! The snapshot payload is five sections in the checkpoint container
//! (see `DESIGN.md` for the byte-level layout): campaign metadata and
//! fingerprint ([`SEC_META`]), scheduler states ([`SEC_SCHED`]), dish
//! states and baselines ([`SEC_DISH`]), accumulated observations
//! ([`SEC_OBS`]), and the supervisor ledger ([`SEC_STATS`]).

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use crate::campaign::{
    payload_message, Campaign, CampaignError, SatObs, ShardFailure, SlotObservation,
};
use crate::degrade::{DegradationStats, DegradeReason, SlotOutcome};
use starsense_astro::time::JulianDate;
use starsense_checkpoint::{
    fnv1a, load_latest, write_rotating, ByteReader, ByteWriter, CheckpointError, LoadedFrom,
    Snapshot, SnapshotBuilder,
};
use starsense_constellation::PropagationCache;
use starsense_faults::{FaultRng, PropagationSchedule, WorkerFault};
use starsense_ident::{
    slot_boundary_epochs, DishSimulator, DishState, SlotCapture, CANDIDATE_SAMPLES_PER_SLOT,
};
use starsense_obstruction::ObstructionMap;
use starsense_scheduler::slots::{slot_index, slot_start, SLOT_PERIOD_SECONDS};
use starsense_scheduler::{Allocation, GlobalScheduler, TerminalSchedState};

/// Campaign-state payload layout version (inside the checkpoint
/// container, which versions itself separately).
pub const CAMPAIGN_STATE_VERSION: u32 = 1;

/// Section id: campaign metadata + configuration fingerprint.
pub const SEC_META: u32 = 1;
/// Section id: per-terminal scheduler states (RNG + hysteresis).
pub const SEC_SCHED: u32 = 2;
/// Section id: per-terminal dish states + differencing baselines.
pub const SEC_DISH: u32 = 3;
/// Section id: accumulated slot observations.
pub const SEC_OBS: u32 = 4;
/// Section id: supervisor ledger (retries, failures, quarantine).
pub const SEC_STATS: u32 = 5;

/// Configuration of the resumable engine: where to checkpoint, how
/// often, and the supervision budget for failing workers.
#[derive(Debug, Clone)]
pub struct ResumeConfig {
    /// Snapshot path. The engine also writes `<path>.prev` (rotating
    /// last-good backup) and `<path>.tmp` (atomic-write staging).
    pub checkpoint_path: PathBuf,
    /// Slots per segment; a checkpoint is written after every segment.
    /// `0` disables checkpointing: the run executes as one segment and
    /// writes nothing (useful for A/B-ing the engines).
    pub checkpoint_every: usize,
    /// Retries per work-unit attempt budget: a unit gets `1 + retries`
    /// attempts per segment before it is charged a unit failure.
    pub worker_retries: u32,
    /// Unit failures before a work unit is quarantined for the rest of
    /// the campaign. `0` disables quarantine: the first exhausted unit
    /// fails the run with [`CampaignError::WorkerExhausted`].
    pub worker_quarantine_after: u32,
    /// Base backoff before a retry, milliseconds. `0` (the default, and
    /// what tests use) skips the sleep entirely; the backoff *schedule*
    /// stays deterministic either way.
    pub backoff_base_ms: u64,
    /// Upper bound on the exponential backoff, milliseconds.
    pub backoff_cap_ms: u64,
    /// Stop (successfully, with [`ResumeReport::completed`] `false`)
    /// after writing this many checkpoints. This is the in-process kill
    /// switch the chaos tests use to simulate a crash at an exact
    /// checkpoint boundary.
    pub stop_after_checkpoints: Option<usize>,
}

impl ResumeConfig {
    /// A resumable run checkpointing to `path` with the default cadence
    /// (240 slots — one hour of 15-second slots) and supervision budget
    /// (2 retries per attempt budget, quarantine after 3 unit failures,
    /// no backoff sleep).
    pub fn new(path: impl Into<PathBuf>) -> ResumeConfig {
        ResumeConfig {
            checkpoint_path: path.into(),
            checkpoint_every: 240,
            worker_retries: 2,
            worker_quarantine_after: 3,
            backoff_base_ms: 0,
            backoff_cap_ms: 1_000,
            stop_after_checkpoints: None,
        }
    }

    /// The deterministic backoff delay before retry `attempt` of `unit`:
    /// exponential in the attempt number, capped, plus a jitter drawn
    /// from a counter-based stream keyed by `(seed, unit, attempt)` —
    /// two runs of the same campaign back off identically. The value is
    /// defined (and tested) even when `backoff_base_ms == 0`, in which
    /// case the engine never sleeps at all.
    pub fn backoff_delay_ms(&self, seed: u64, unit: u64, attempt: u32) -> u64 {
        let base = self.backoff_base_ms.saturating_mul(1u64 << attempt.min(16));
        let capped = base.min(self.backoff_cap_ms.max(self.backoff_base_ms));
        let mut rng =
            FaultRng::from_salt(seed ^ unit.rotate_left(17) ^ (u64::from(attempt) << 1 | 1));
        capped.saturating_add(rng.below(self.backoff_base_ms.max(1)))
    }
}

/// What the resumable engine did, beyond the observations themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeReport {
    /// Slot offset a snapshot restored to, or `None` for a fresh start.
    pub resumed_at_slot: Option<usize>,
    /// Which file the restored snapshot came from.
    pub loaded_from: Option<LoadedFrom>,
    /// Snapshot files that existed but failed validation and were
    /// passed over (recovery fell back to the last good copy).
    pub corrupt_discarded: u32,
    /// Checkpoints written by this call.
    pub checkpoints_written: usize,
    /// Segments executed by this call.
    pub segments_run: usize,
    /// Whether the campaign ran to its final slot. `false` only when
    /// [`ResumeConfig::stop_after_checkpoints`] stopped it early.
    pub completed: bool,
}

/// FNV fingerprint of an observation stream's full bit pattern — every
/// field of every observation, floats by bit pattern. Two streams
/// fingerprint equal iff they are byte-identical under the snapshot
/// encoding, which is the equality the resume tests assert.
pub fn fingerprint_observations(obs: &[SlotObservation]) -> u64 {
    let mut w = ByteWriter::with_capacity(obs.len() * 64);
    for o in obs {
        encode_observation(&mut w, o);
    }
    fnv1a(&w.into_bytes())
}

/// Engine-owned mutable state: everything that must survive a crash.
struct EngineState {
    sched: Vec<TerminalSchedState>,
    dish: Vec<DishState>,
    prev: Vec<Option<SlotCapture>>,
    obs: Vec<SlotObservation>,
    done: usize,
    /// Worker attempts re-run by the supervisor (first tries excluded).
    retries: usize,
    /// Unit failures charged so far, per unit id.
    failures: BTreeMap<u64, u32>,
    /// Units quarantined for the rest of the campaign.
    quarantined: BTreeSet<u64>,
}

/// One supervised unit's outcome for a segment.
struct UnitRun<T> {
    /// `Some` iff an attempt completed; `None` means every attempt in
    /// the budget failed (or the unit was already quarantined).
    value: Option<Result<T, CampaignError>>,
    /// Attempts that failed before success or exhaustion.
    failed_attempts: u32,
    /// The last attempt's failure, when all attempts failed.
    last_failure: Option<ShardFailure>,
}

/// Observation-phase unit ids live in a disjoint range from schedule
/// shards: terminal `t` supervises as `2^32 + t`.
fn observe_unit_id(tid: usize) -> u64 {
    (1u64 << 32) | tid as u64
}

impl<'a> Campaign<'a> {
    /// Runs `slots` consecutive slots starting at the slot containing
    /// `from`, checkpointing to [`ResumeConfig::checkpoint_path`] every
    /// [`ResumeConfig::checkpoint_every`] slots and resuming from an
    /// existing snapshot when one validates. The returned observation
    /// stream is byte-identical to [`Campaign::run`] for a fault-free
    /// supervisor, and byte-identical across any kill/resume schedule
    /// at checkpoint boundaries — for every thread count, shard count,
    /// and cohort setting.
    pub fn run_resumable(
        &self,
        from: JulianDate,
        slots: usize,
        opts: &ResumeConfig,
    ) -> Result<(Vec<SlotObservation>, DegradationStats, ResumeReport), CampaignError> {
        let threads = self.worker_threads();
        let first_mid = slot_start(from).plus_seconds(SLOT_PERIOD_SECONDS / 2.0);
        let first_slot = slot_index(first_mid);
        let mids: Vec<JulianDate> =
            (0..slots).map(|k| first_mid.plus_seconds(k as f64 * SLOT_PERIOD_SECONDS)).collect();
        let fingerprint = self.config_fingerprint(first_slot, slots);

        // The fault schedule spans the whole campaign window and the
        // mask is indexed by campaign-global slot offset, so a segmented
        // replay consults exactly the bits one uninterrupted pass would.
        let schedule = self.config.faults.enabled().then(|| {
            let mut ids: Vec<u32> = self.constellation.sats().iter().map(|s| s.norad_id).collect();
            ids.sort_unstable();
            let schedule = PropagationSchedule::build(
                &self.config.faults,
                &ids,
                first_slot,
                slots,
                self.config.quarantine_after,
            );
            (schedule, ids)
        });

        let mut report = ResumeReport {
            resumed_at_slot: None,
            loaded_from: None,
            corrupt_discarded: 0,
            checkpoints_written: 0,
            segments_run: 0,
            completed: false,
        };

        // Resume if a snapshot validates; otherwise start fresh. A
        // snapshot for a *different* campaign (config, window, or seed)
        // is a hard error, not a silent restart — resuming someone
        // else's state would fabricate data.
        let mut state = match self.load_state(opts, fingerprint, slots, &mut report)? {
            Some(state) => state,
            None => self.fresh_state(),
        };

        while state.done < slots {
            let seg_len = match opts.checkpoint_every {
                0 => slots - state.done,
                n => n.min(slots - state.done),
            };
            self.run_segment(&mut state, &mids, seg_len, threads, schedule.as_ref(), opts)?;
            report.segments_run += 1;
            if opts.checkpoint_every > 0 {
                let snapshot = self.encode_state(&state, fingerprint, first_mid, slots)?;
                write_rotating(&opts.checkpoint_path, &snapshot)?;
                report.checkpoints_written += 1;
                if let Some(stop) = opts.stop_after_checkpoints {
                    if report.checkpoints_written >= stop && state.done < slots {
                        let stats = self.assemble_stats(&state, schedule.as_ref());
                        return Ok((state.obs, stats, report));
                    }
                }
            }
        }

        report.completed = true;
        let stats = self.assemble_stats(&state, schedule.as_ref());
        Ok((state.obs, stats, report))
    }

    /// Initial engine state: fresh per-terminal scheduler streams (the
    /// same `f(seed, terminal id)` initialization every shard scheduler
    /// derives), blank dishes, no baselines, no ledger.
    fn fresh_state(&self) -> EngineState {
        let sched =
            GlobalScheduler::new(self.config.policy.clone(), self.terminals.clone(), self.seed)
                .export_states();
        let dish =
            self.terminals.iter().map(|t| DishSimulator::new(t.location).export_state()).collect();
        EngineState {
            sched,
            dish,
            prev: self.terminals.iter().map(|_| None).collect(),
            obs: Vec::new(),
            done: 0,
            retries: 0,
            failures: BTreeMap::new(),
            quarantined: BTreeSet::new(),
        }
    }

    /// Folds the ledger and the fault schedule's quarantine counters
    /// into the observation tallies.
    fn assemble_stats(
        &self,
        state: &EngineState,
        schedule: Option<&(PropagationSchedule, Vec<u32>)>,
    ) -> DegradationStats {
        let mut stats = DegradationStats::collect(&state.obs);
        if let Some((schedule, _)) = schedule {
            stats.quarantined_sats = schedule.quarantined_count();
            stats.masked_propagations = schedule.masked_slot_count();
        }
        stats.worker_retries = state.retries;
        stats.quarantined_workers = state.quarantined.len();
        stats
    }

    /// Executes one segment — prepare, supervised schedule, supervised
    /// observe — and folds the results into `state`.
    fn run_segment(
        &self,
        state: &mut EngineState,
        mids: &[JulianDate],
        seg_len: usize,
        threads: usize,
        schedule: Option<&(PropagationSchedule, Vec<u32>)>,
        opts: &ResumeConfig,
    ) -> Result<(), CampaignError> {
        let done = state.done;
        let seg_mids = &mids[done..done + seg_len];
        let seg_first_slot = slot_index(seg_mids[0]);

        // Per-segment propagation table. Propagation is a pure function
        // of (catalog, epoch), so rebuilding per segment reproduces the
        // uninterrupted run's values bit for bit.
        let cache = PropagationCache::new(self.constellation);
        let starts: Vec<JulianDate> = seg_mids.iter().map(|&at| slot_start(at)).collect();
        let boundaries: Vec<JulianDate> = if self.config.identified {
            starts
                .iter()
                .flat_map(|&s| slot_boundary_epochs(s, CANDIDATE_SAMPLES_PER_SLOT))
                .collect()
        } else {
            Vec::new()
        };
        cache.prepare(&starts, &boundaries, threads);

        // ---- Supervised schedule phase (unit = shard) -------------------
        let ranges = crate::campaign::shard_ranges(self.terminals.len(), self.shard_count());
        let sched_states = &state.sched;
        let quarantined = &state.quarantined;
        let run_shard = |s: usize| -> UnitRun<(Vec<Vec<Allocation>>, Vec<TerminalSchedState>)> {
            let range = ranges[s].clone();
            let terminals = &self.terminals[range.clone()];
            let body = || {
                let mut scheduler =
                    GlobalScheduler::new(self.config.policy.clone(), terminals.to_vec(), self.seed);
                scheduler
                    .restore_states(&sched_states[range.clone()])
                    .map_err(|e| CheckpointError::Malformed { context: restore_context(e) })?;
                let columns = self.schedule_slots(
                    &mut scheduler,
                    terminals,
                    &cache,
                    seg_mids,
                    done,
                    schedule,
                );
                Ok::<_, CampaignError>((columns, scheduler.export_states()))
            };
            self.run_supervised(
                s as u64,
                seg_first_slot,
                quarantined.contains(&(s as u64)),
                opts,
                body,
            )
        };
        let shard_runs = parallel_units(ranges.len(), threads, &run_shard)?;

        // Sequential, unit-ordered merge: commit successful shards'
        // scheduler states and allocation columns, charge failures, and
        // mark failed shards' terminals for synthesized degradation.
        let mut per_terminal: Vec<Option<Vec<Allocation>>> =
            self.terminals.iter().map(|_| None).collect();
        let mut schedule_failed: Vec<bool> = self.terminals.iter().map(|_| false).collect();
        for (s, run) in shard_runs.into_iter().enumerate() {
            let range = ranges[s].clone();
            match self.settle_unit(state, s as u64, run, opts)? {
                Some((columns, new_states)) => {
                    for (offset, (column, st)) in columns.into_iter().zip(new_states).enumerate() {
                        per_terminal[range.start + offset] = Some(column);
                        state.sched[range.start + offset] = st;
                    }
                }
                None => {
                    for t in range {
                        schedule_failed[t] = true;
                    }
                }
            }
        }

        // ---- Supervised observation phase (unit = terminal) -------------
        let dish_states = &state.dish;
        let prev_caps = &state.prev;
        let quarantined = &state.quarantined;
        let run_terminal = |tid: usize| -> Option<
            UnitRun<(Vec<SlotObservation>, DishState, Option<SlotCapture>)>,
        > {
            let allocs = per_terminal[tid].as_ref()?;
            let body = || {
                let mut dish = DishSimulator::new(self.terminals[tid].location);
                dish.restore_state(dish_states[tid].clone());
                let mut prev = prev_caps[tid].clone();
                let obs = self.observe_terminal_segment(&cache, tid, &mut dish, &mut prev, allocs);
                Ok::<_, CampaignError>((obs, dish.export_state(), prev))
            };
            let unit = observe_unit_id(tid);
            Some(self.run_supervised(unit, seg_first_slot, quarantined.contains(&unit), opts, body))
        };
        let terminal_runs = parallel_units(self.terminals.len(), threads, &run_terminal)?;

        let mut columns: Vec<Vec<SlotObservation>> = Vec::with_capacity(self.terminals.len());
        for (tid, run) in terminal_runs.into_iter().enumerate() {
            let column = match run {
                // Schedule shard failed: the terminal has no allocations;
                // synthesize fully degraded observations straight from the
                // slot grid. Dish state is not advanced — deterministic,
                // and honest: no frame was ever painted.
                None => self.synthesize_scheduleless(tid, seg_mids),
                Some(run) => {
                    match self.settle_unit(state, observe_unit_id(tid), run, opts)? {
                        Some((obs, dish, prev)) => {
                            state.dish[tid] = dish;
                            state.prev[tid] = prev;
                            obs
                        }
                        // Observation unit failed: allocations exist, so
                        // keep the scheduler's truth but degrade the
                        // identification.
                        None => match per_terminal[tid].as_ref() {
                            Some(allocs) => self.synthesize_observeless(tid, allocs),
                            None => self.synthesize_scheduleless(tid, seg_mids),
                        },
                    }
                }
            };
            columns.push(column);
        }

        // Slot-major, terminal-minor merge, appended to the accumulated
        // stream — segments partition the slot axis, so concatenation
        // preserves the one-shot engine's global order.
        let mut iters: Vec<std::vec::IntoIter<SlotObservation>> =
            columns.into_iter().map(Vec::into_iter).collect();
        for _ in 0..seg_len {
            for it in &mut iters {
                if let Some(obs) = it.next() {
                    state.obs.push(obs);
                }
            }
        }
        state.done += seg_len;
        Ok(())
    }

    /// Runs one supervised unit: up to `1 + worker_retries` attempts,
    /// each preceded (after the first) by a deterministic bounded
    /// backoff, with injected faults drawn from the campaign's fault
    /// plan and real panics caught at the attempt boundary.
    fn run_supervised<T>(
        &self,
        unit: u64,
        seg_first_slot: i64,
        quarantined: bool,
        opts: &ResumeConfig,
        body: impl Fn() -> Result<T, CampaignError>,
    ) -> UnitRun<T> {
        if quarantined {
            return UnitRun { value: None, failed_attempts: 0, last_failure: None };
        }
        let mut last_failure = None;
        let mut failed = 0u32;
        for attempt in 0..=opts.worker_retries {
            if attempt > 0 && opts.backoff_base_ms > 0 {
                let delay = opts.backoff_delay_ms(self.seed, unit, attempt);
                std::thread::sleep(std::time::Duration::from_millis(delay));
            }
            let injected = self.config.faults.worker_fault(unit, seg_first_slot, attempt);
            let outcome = if injected == WorkerFault::Overrun {
                // A virtual deadline miss: the attempt is charged without
                // running (its work would have been discarded anyway).
                Err(ShardFailure::DeadlineOverrun)
            } else {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if injected == WorkerFault::Panic {
                        std::panic::panic_any(format!(
                            "injected worker panic: unit {unit}, segment slot {seg_first_slot}, attempt {attempt}"
                        ));
                    }
                    body()
                }))
                .map_err(|p| ShardFailure::Panicked { payload: payload_message(p.as_ref()) })
            };
            match outcome {
                Ok(v) => {
                    return UnitRun { value: Some(v), failed_attempts: failed, last_failure: None }
                }
                Err(f) => {
                    failed += 1;
                    last_failure = Some(f);
                }
            }
        }
        UnitRun { value: None, failed_attempts: failed, last_failure }
    }

    /// Settles a unit's segment outcome against the ledger: counts
    /// retries, charges unit failures, quarantines, and fails fast when
    /// quarantine is disabled. Returns the unit's value, or `None` when
    /// its slots must degrade.
    fn settle_unit<T>(
        &self,
        state: &mut EngineState,
        unit: u64,
        run: UnitRun<T>,
        opts: &ResumeConfig,
    ) -> Result<Option<T>, CampaignError> {
        match run.value {
            Some(Ok(v)) => {
                state.retries += run.failed_attempts as usize;
                Ok(Some(v))
            }
            // A typed error from the body (checkpoint decode, restore
            // mismatch) is a bug or config problem, not a worker fault —
            // no retry credit, no quarantine, just propagate.
            Some(Err(e)) => Err(e),
            None if run.failed_attempts == 0 => Ok(None), // already quarantined
            None => {
                // Budget exhausted: the final failed attempt is not a
                // retry (nothing followed it).
                state.retries += run.failed_attempts.saturating_sub(1) as usize;
                let failure = run.last_failure.unwrap_or(ShardFailure::DeadlineOverrun);
                if opts.worker_quarantine_after == 0 {
                    return Err(CampaignError::WorkerExhausted {
                        unit,
                        attempts: run.failed_attempts,
                        failure,
                    });
                }
                let count = state.failures.entry(unit).or_insert(0);
                *count += 1;
                if *count >= opts.worker_quarantine_after {
                    state.quarantined.insert(unit);
                }
                Ok(None)
            }
        }
    }

    /// Fully degraded observations for a terminal whose schedule shard
    /// failed: no allocation ever existed, so availability and truth are
    /// honestly empty.
    fn synthesize_scheduleless(&self, tid: usize, seg_mids: &[JulianDate]) -> Vec<SlotObservation> {
        let lon = self.terminals[tid].location.lon_deg;
        seg_mids
            .iter()
            .map(|&at| {
                let start = slot_start(at);
                SlotObservation {
                    terminal_id: tid,
                    slot: slot_index(at),
                    slot_start: start,
                    local_hour: start.local_solar_hour(lon),
                    available: Vec::new(),
                    chosen: None,
                    truth_id: None,
                    outcome: SlotOutcome::NoData(DegradeReason::WorkerFailed),
                }
            })
            .collect()
    }

    /// Degraded observations for a terminal whose observation unit
    /// failed after scheduling succeeded: the scheduler's availability
    /// and ground truth are kept, only the identification is lost.
    fn synthesize_observeless(&self, tid: usize, allocs: &[Allocation]) -> Vec<SlotObservation> {
        let lon = self.terminals[tid].location.lon_deg;
        allocs
            .iter()
            .map(|alloc| SlotObservation {
                terminal_id: tid,
                slot: alloc.slot,
                slot_start: alloc.slot_start,
                local_hour: alloc.slot_start.local_solar_hour(lon),
                available: alloc.available.iter().map(SatObs::from).collect(),
                chosen: None,
                truth_id: alloc.chosen_id(),
                outcome: SlotOutcome::NoData(DegradeReason::WorkerFailed),
            })
            .collect()
    }

    // ---- Fingerprint ----------------------------------------------------

    /// FNV fingerprint of everything that determines the campaign's
    /// output bits: policy weights, mode, fault plan, seed, terminals,
    /// and the slot window. Deliberately *excluded*: thread count, shard
    /// count, cohort flag, and every resume knob — those are execution
    /// choices the determinism contract ranges over, so a snapshot may
    /// be resumed under any of them.
    fn config_fingerprint(&self, first_slot: i64, total_slots: usize) -> u64 {
        let mut w = ByteWriter::with_capacity(256);
        w.put_u32(CAMPAIGN_STATE_VERSION);
        let p = &self.config.policy;
        w.put_f64_bits(p.min_elevation_deg);
        w.put_f64_bits(p.w_elevation);
        w.put_f64_bits(p.w_dark_low_elevation);
        w.put_f64_bits(p.w_age);
        w.put_f64_bits(p.w_sunlit);
        w.put_f64_bits(p.w_load);
        w.put_f64_bits(p.w_hysteresis);
        match p.gso_half_angle_deg {
            Some(v) => {
                w.put_bool(true);
                w.put_f64_bits(v);
            }
            None => w.put_bool(false),
        }
        w.put_f64_bits(p.w_gso_margin);
        w.put_f64_bits(p.temperature);
        w.put_f64_bits(p.max_age_days);
        w.put_bool(self.config.identified);
        w.put_f64_bits(self.config.min_margin);
        w.put_u32(self.config.frame_retries);
        w.put_u32(self.config.quarantine_after);
        w.put_u64(self.config.faults.seed());
        let r = self.config.faults.rates();
        w.put_f64_bits(r.frame_drop);
        w.put_f64_bits(r.frame_stale);
        w.put_f64_bits(r.frame_corrupt);
        w.put_f64_bits(r.tle_corrupt);
        w.put_f64_bits(r.propagation_fail);
        w.put_f64_bits(r.probe_burst);
        w.put_f64_bits(r.worker_panic);
        w.put_f64_bits(r.worker_overrun);
        w.put_u64(self.seed);
        w.put_usize(self.terminals.len());
        for t in &self.terminals {
            w.put_usize(t.id);
            w.put_str(&t.name);
            w.put_f64_bits(t.location.lat_deg);
            w.put_f64_bits(t.location.lon_deg);
            w.put_f64_bits(t.location.alt_km);
            w.put_f64_bits(t.mask.blocked_fraction());
        }
        w.put_i64(first_slot);
        w.put_usize(total_slots);
        fnv1a(&w.into_bytes())
    }

    // ---- Encode ---------------------------------------------------------

    /// Serializes the full engine state into a checkpoint snapshot.
    fn encode_state(
        &self,
        state: &EngineState,
        fingerprint: u64,
        first_mid: JulianDate,
        total_slots: usize,
    ) -> Result<Vec<u8>, CampaignError> {
        let mut meta = ByteWriter::with_capacity(64);
        meta.put_u32(CAMPAIGN_STATE_VERSION);
        meta.put_u64(fingerprint);
        meta.put_f64_bits(first_mid.0);
        meta.put_usize(total_slots);
        meta.put_usize(state.done);
        meta.put_usize(self.terminals.len());

        let mut sched = ByteWriter::with_capacity(state.sched.len() * 48);
        for s in &state.sched {
            sched.put_usize(s.terminal_id);
            for word in s.rng_state {
                sched.put_u64(word);
            }
            match s.previous {
                Some(id) => {
                    sched.put_bool(true);
                    sched.put_u32(id);
                }
                None => sched.put_bool(false),
            }
        }

        let mut dish = ByteWriter::with_capacity(state.dish.len() * 1100);
        for (d, prev) in state.dish.iter().zip(&state.prev) {
            encode_map(&mut dish, &d.map);
            dish.put_u32(d.slots_since_reset);
            dish.put_bool(d.reset_since_fetch);
            match prev {
                Some(cap) => {
                    dish.put_bool(true);
                    dish.put_i64(cap.slot);
                    dish.put_f64_bits(cap.slot_start.0);
                    encode_map(&mut dish, &cap.map);
                    dish.put_bool(cap.after_reset);
                }
                None => dish.put_bool(false),
            }
        }

        let mut obs = ByteWriter::with_capacity(state.obs.len() * 64 + 16);
        obs.put_usize(state.obs.len());
        for o in &state.obs {
            encode_observation(&mut obs, o);
        }

        let mut ledger = ByteWriter::with_capacity(64);
        ledger.put_usize(state.retries);
        ledger.put_usize(state.failures.len());
        for (unit, count) in &state.failures {
            ledger.put_u64(*unit);
            ledger.put_u32(*count);
        }
        ledger.put_usize(state.quarantined.len());
        for unit in &state.quarantined {
            ledger.put_u64(*unit);
        }

        let mut builder = SnapshotBuilder::new();
        builder.add_section(SEC_META, meta.into_bytes());
        builder.add_section(SEC_SCHED, sched.into_bytes());
        builder.add_section(SEC_DISH, dish.into_bytes());
        builder.add_section(SEC_OBS, obs.into_bytes());
        builder.add_section(SEC_STATS, ledger.into_bytes());
        Ok(builder.finish()?)
    }

    // ---- Decode ---------------------------------------------------------

    /// Loads and validates the newest snapshot, if any. `Ok(None)` means
    /// "start fresh" (no file, or only corrupt files — the corrupt count
    /// is reported either way). A snapshot whose fingerprint or window
    /// disagrees with this campaign is a hard error.
    fn load_state(
        &self,
        opts: &ResumeConfig,
        fingerprint: u64,
        total_slots: usize,
        report: &mut ResumeReport,
    ) -> Result<Option<EngineState>, CampaignError> {
        if opts.checkpoint_every == 0 {
            return Ok(None);
        }
        let outcome = load_latest(&opts.checkpoint_path)?;
        report.corrupt_discarded = outcome.corrupt_discarded;
        let (bytes, origin) = match outcome.snapshot {
            Some(found) => found,
            None => return Ok(None),
        };
        let snap = Snapshot::parse(&bytes)?;

        let mut meta = ByteReader::new(snap.require_section(SEC_META)?);
        let version = meta.get_u32("campaign state version")?;
        if version != CAMPAIGN_STATE_VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version }.into());
        }
        let stored_fp = meta.get_u64("config fingerprint")?;
        if stored_fp != fingerprint {
            return Err(CheckpointError::ConfigMismatch {
                expected: fingerprint,
                found: stored_fp,
            }
            .into());
        }
        let _first_mid = meta.get_f64_bits("first mid")?;
        let stored_total = meta.get_usize("total slots")?;
        let done = meta.get_usize("done slots")?;
        let n_terminals = meta.get_usize("terminal count")?;
        meta.expect_exhausted("meta section")?;
        if stored_total != total_slots || done > total_slots || n_terminals != self.terminals.len()
        {
            return Err(CheckpointError::Malformed { context: "campaign window mismatch" }.into());
        }

        let mut r = ByteReader::new(snap.require_section(SEC_SCHED)?);
        let mut sched = Vec::with_capacity(n_terminals);
        for _ in 0..n_terminals {
            let terminal_id = r.get_usize("sched terminal id")?;
            let mut rng_state = [0u64; 4];
            for word in &mut rng_state {
                *word = r.get_u64("sched rng word")?;
            }
            let previous = if r.get_bool("sched previous flag")? {
                Some(r.get_u32("sched previous id")?)
            } else {
                None
            };
            sched.push(TerminalSchedState { terminal_id, rng_state, previous });
        }
        r.expect_exhausted("sched section")?;

        let mut r = ByteReader::new(snap.require_section(SEC_DISH)?);
        let mut dish = Vec::with_capacity(n_terminals);
        let mut prev = Vec::with_capacity(n_terminals);
        for _ in 0..n_terminals {
            let map = decode_map(&mut r)?;
            let slots_since_reset = r.get_u32("dish slots since reset")?;
            let reset_since_fetch = r.get_bool("dish reset flag")?;
            dish.push(DishState { map, slots_since_reset, reset_since_fetch });
            prev.push(if r.get_bool("baseline flag")? {
                let slot = r.get_i64("baseline slot")?;
                let slot_start = JulianDate(r.get_f64_bits("baseline slot start")?);
                let map = decode_map(&mut r)?;
                let after_reset = r.get_bool("baseline after reset")?;
                Some(SlotCapture { slot, slot_start, map, after_reset })
            } else {
                None
            });
        }
        r.expect_exhausted("dish section")?;

        let mut r = ByteReader::new(snap.require_section(SEC_OBS)?);
        let count = r.get_usize("observation count")?;
        if count != done.saturating_mul(n_terminals) {
            return Err(CheckpointError::Malformed { context: "observation count" }.into());
        }
        let mut obs = Vec::with_capacity(count);
        for _ in 0..count {
            obs.push(decode_observation(&mut r)?);
        }
        r.expect_exhausted("observation section")?;

        let mut r = ByteReader::new(snap.require_section(SEC_STATS)?);
        let retries = r.get_usize("retry count")?;
        let n_failures = r.get_usize("failure count")?;
        let mut failures = BTreeMap::new();
        for _ in 0..n_failures {
            let unit = r.get_u64("failure unit")?;
            let count = r.get_u32("failure tally")?;
            failures.insert(unit, count);
        }
        let n_quarantined = r.get_usize("quarantine count")?;
        let mut quarantined = BTreeSet::new();
        for _ in 0..n_quarantined {
            quarantined.insert(r.get_u64("quarantined unit")?);
        }
        r.expect_exhausted("ledger section")?;

        report.resumed_at_slot = Some(done);
        report.loaded_from = Some(origin);
        Ok(Some(EngineState { sched, dish, prev, obs, done, retries, failures, quarantined }))
    }
}

/// Stable text for a scheduler state-restore rejection (the checkpoint
/// error payload is a `&'static str`).
fn restore_context(e: starsense_scheduler::StateRestoreError) -> &'static str {
    match e {
        starsense_scheduler::StateRestoreError::CountMismatch { .. } => {
            "scheduler state count mismatch"
        }
        starsense_scheduler::StateRestoreError::IdMismatch { .. } => {
            "scheduler state terminal-id mismatch"
        }
    }
}

/// Fans `run` over `0..count` with the campaign's interleaved-chunk
/// worker pattern; results are returned in index order. `run` must be a
/// pure function of its index (all supervision state is settled by the
/// sequential caller afterwards). Inline when `threads <= 1`.
fn parallel_units<T: Send>(
    count: usize,
    threads: usize,
    run: &(impl Fn(usize) -> T + Sync),
) -> Result<Vec<T>, CampaignError> {
    let threads = threads.min(count.max(1));
    if threads <= 1 {
        return Ok((0..count).map(run).collect());
    }
    let mut work: Vec<Option<usize>> = (0..count).map(Some).collect();
    let mut indexed: Vec<(usize, Result<T, CampaignError>)> = Vec::with_capacity(count);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for chunk in crate::campaign::chunk_interleaved(&mut work, threads) {
            let first = chunk.first().map(|(i, _)| *i).unwrap_or(0);
            handles.push((
                first,
                scope.spawn(move || {
                    chunk.into_iter().map(|(i, _)| (i, Ok(run(i)))).collect::<Vec<_>>()
                }),
            ));
        }
        for (first, handle) in handles {
            match handle.join() {
                Ok(part) => indexed.extend(part),
                // Unreachable in practice — every unit body is caught by
                // the supervisor — but a join failure still degrades into
                // the typed error rather than a panic.
                Err(p) => indexed.push((
                    first,
                    Err(CampaignError::WorkerPanicked {
                        shard: first,
                        payload: payload_message(p.as_ref()),
                    }),
                )),
            }
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, v)| v).collect()
}

// ---- Shared codecs ------------------------------------------------------

fn encode_map(w: &mut ByteWriter, map: &ObstructionMap) {
    for word in map.words() {
        w.put_u64(*word);
    }
}

fn decode_map(r: &mut ByteReader<'_>) -> Result<ObstructionMap, CampaignError> {
    let mut words = [0u64; ObstructionMap::WORD_COUNT];
    for word in &mut words {
        *word = r.get_u64("map word")?;
    }
    ObstructionMap::from_words(&words)
        .ok_or_else(|| CheckpointError::Malformed { context: "obstruction map tail bits" }.into())
}

fn encode_sat(w: &mut ByteWriter, s: &SatObs) {
    w.put_u32(s.norad_id);
    w.put_f64_bits(s.elevation_deg);
    w.put_f64_bits(s.azimuth_deg);
    w.put_f64_bits(s.age_days);
    w.put_bool(s.sunlit);
    w.put_i64(i64::from(s.launch_year));
    w.put_u32(s.launch_month);
}

fn decode_sat(r: &mut ByteReader<'_>) -> Result<SatObs, CampaignError> {
    let norad_id = r.get_u32("sat norad id")?;
    let elevation_deg = r.get_f64_bits("sat elevation")?;
    let azimuth_deg = r.get_f64_bits("sat azimuth")?;
    let age_days = r.get_f64_bits("sat age")?;
    let sunlit = r.get_bool("sat sunlit")?;
    let launch_year = decode_launch_year(r.get_i64("sat launch year")?)?;
    let launch_month = r.get_u32("sat launch month")?;
    Ok(SatObs { norad_id, elevation_deg, azimuth_deg, age_days, sunlit, launch_year, launch_month })
}

fn decode_launch_year(v: i64) -> Result<i32, CampaignError> {
    i32::try_from(v).map_err(|_| CheckpointError::Malformed { context: "launch year range" }.into())
}

const OUTCOME_OBSERVED: u8 = 0;
const OUTCOME_AMBIGUOUS: u8 = 1;
const OUTCOME_NO_DATA: u8 = 2;
const OUTCOME_UNRECORDED: u8 = 3;

fn encode_reason(w: &mut ByteWriter, reason: DegradeReason) {
    match reason {
        DegradeReason::Outage => w.put_u8(0),
        DegradeReason::FrameDropped { attempts } => {
            w.put_u8(1);
            w.put_u32(attempts);
        }
        DegradeReason::StaleFrame => w.put_u8(2),
        DegradeReason::AfterReset => w.put_u8(3),
        DegradeReason::MissingBaseline => w.put_u8(4),
        DegradeReason::EmptyTrail => w.put_u8(5),
        DegradeReason::TinyTrail => w.put_u8(6),
        DegradeReason::NoCandidates => w.put_u8(7),
        DegradeReason::UnmatchedIdentity => w.put_u8(8),
        DegradeReason::WorkerFailed => w.put_u8(9),
    }
}

fn decode_reason(r: &mut ByteReader<'_>) -> Result<DegradeReason, CampaignError> {
    Ok(match r.get_u8("degrade reason tag")? {
        0 => DegradeReason::Outage,
        1 => DegradeReason::FrameDropped { attempts: r.get_u32("frame drop attempts")? },
        2 => DegradeReason::StaleFrame,
        3 => DegradeReason::AfterReset,
        4 => DegradeReason::MissingBaseline,
        5 => DegradeReason::EmptyTrail,
        6 => DegradeReason::TinyTrail,
        7 => DegradeReason::NoCandidates,
        8 => DegradeReason::UnmatchedIdentity,
        9 => DegradeReason::WorkerFailed,
        _ => return Err(CheckpointError::Malformed { context: "degrade reason tag" }.into()),
    })
}

fn encode_observation(w: &mut ByteWriter, o: &SlotObservation) {
    w.put_usize(o.terminal_id);
    w.put_i64(o.slot);
    w.put_f64_bits(o.slot_start.0);
    w.put_f64_bits(o.local_hour);
    w.put_usize(o.available.len());
    for s in &o.available {
        encode_sat(w, s);
    }
    match &o.chosen {
        Some(s) => {
            w.put_bool(true);
            encode_sat(w, s);
        }
        None => w.put_bool(false),
    }
    match o.truth_id {
        Some(id) => {
            w.put_bool(true);
            w.put_u32(id);
        }
        None => w.put_bool(false),
    }
    match o.outcome {
        SlotOutcome::Observed { confidence } => {
            w.put_u8(OUTCOME_OBSERVED);
            w.put_f64_bits(confidence);
        }
        SlotOutcome::Ambiguous { margin } => {
            w.put_u8(OUTCOME_AMBIGUOUS);
            w.put_f64_bits(margin);
        }
        SlotOutcome::NoData(reason) => {
            w.put_u8(OUTCOME_NO_DATA);
            encode_reason(w, reason);
        }
        SlotOutcome::Unrecorded => w.put_u8(OUTCOME_UNRECORDED),
    }
}

fn decode_observation(r: &mut ByteReader<'_>) -> Result<SlotObservation, CampaignError> {
    let terminal_id = r.get_usize("obs terminal id")?;
    let slot = r.get_i64("obs slot")?;
    let slot_start = JulianDate(r.get_f64_bits("obs slot start")?);
    let local_hour = r.get_f64_bits("obs local hour")?;
    let n_available = r.get_usize("obs available count")?;
    let mut available = Vec::with_capacity(n_available.min(4096));
    for _ in 0..n_available {
        available.push(decode_sat(r)?);
    }
    let chosen = if r.get_bool("obs chosen flag")? { Some(decode_sat(r)?) } else { None };
    let truth_id =
        if r.get_bool("obs truth flag")? { Some(r.get_u32("obs truth id")?) } else { None };
    let outcome = match r.get_u8("obs outcome tag")? {
        OUTCOME_OBSERVED => SlotOutcome::Observed { confidence: r.get_f64_bits("obs confidence")? },
        OUTCOME_AMBIGUOUS => SlotOutcome::Ambiguous { margin: r.get_f64_bits("obs margin")? },
        OUTCOME_NO_DATA => SlotOutcome::NoData(decode_reason(r)?),
        OUTCOME_UNRECORDED => SlotOutcome::Unrecorded,
        _ => return Err(CheckpointError::Malformed { context: "obs outcome tag" }.into()),
    };
    Ok(SlotObservation {
        terminal_id,
        slot,
        slot_start,
        local_hour,
        available,
        chosen,
        truth_id,
        outcome,
    })
}
