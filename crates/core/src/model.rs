//! The §6 scheduler model: training, evaluation, explanation.
//!
//! Protocol, exactly as the paper describes it: 80% of the labeled slots
//! form the train/test pool for grid-searched five-fold cross-validation;
//! the held-out 20% measures robustness to over-fitting; top-k accuracy
//! (k = 1…9) is compared against the most-available-cluster baseline; gini
//! importances explain what the forest learned.

use crate::campaign::SlotObservation;
use crate::features::{ClusterVocabulary, FeatureExtractor};
use starsense_forest::{
    grid_search, top_k_accuracy, Dataset, ForestParams, MaxFeatures, RandomForest, TreeParams,
};

/// Everything the Figure 8 and feature-importance experiments need.
#[derive(Debug, Clone)]
pub struct ModelEvaluation {
    /// Terminal the model was trained for.
    pub terminal_id: usize,
    /// The k values evaluated (1..=9, Figure 8's x axis).
    pub k_values: Vec<usize>,
    /// Random-forest top-k accuracy on the holdout, per k.
    pub rf_top_k: Vec<f64>,
    /// Baseline top-k accuracy on the holdout, per k.
    pub baseline_top_k: Vec<f64>,
    /// Winning configuration's cross-validated (top-1) accuracy.
    pub cv_accuracy: f64,
    /// Holdout top-1 accuracy (the over-fitting check: close to CV).
    pub holdout_accuracy: f64,
    /// Out-of-bag accuracy of the final forest (a second, holdout-free
    /// over-fitting check).
    pub oob_accuracy: Option<f64>,
    /// `(feature name, gini importance)` sorted descending.
    pub importances: Vec<(String, f64)>,
    /// Labeled rows used for training (the 80% pool).
    pub n_train: usize,
    /// Labeled rows held out (the 20%).
    pub n_holdout: usize,
    /// Number of cluster classes.
    pub n_classes: usize,
}

/// The default hyper-parameter grid (small but meaningfully varied; the
/// experiment binaries can pass their own).
pub fn default_grid() -> Vec<ForestParams> {
    let mut grid = Vec::new();
    for &max_depth in &[8, 14] {
        for &min_samples_split in &[2, 8] {
            grid.push(ForestParams {
                n_trees: 60,
                tree: TreeParams {
                    max_depth,
                    min_samples_split,
                    min_samples_leaf: 1,
                    max_features: MaxFeatures::Sqrt,
                },
                bootstrap: true,
            });
        }
    }
    grid
}

/// Builds the dataset for one terminal from campaign observations.
///
/// Returns the extractor plus `(rows, labels)`; slots without a usable
/// label (outage or unseen cluster) are dropped, as in the paper.
pub fn build_dataset(
    observations: &[SlotObservation],
    terminal_id: usize,
) -> (FeatureExtractor, Dataset) {
    let mine: Vec<&SlotObservation> =
        observations.iter().filter(|o| o.terminal_id == terminal_id).collect();
    let owned: Vec<SlotObservation> = mine.iter().map(|o| (*o).clone()).collect();
    let vocab = ClusterVocabulary::build(&owned);
    let fx = FeatureExtractor::new(vocab);

    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for o in &owned {
        if let Some(label) = fx.label(o) {
            rows.push(fx.features(o));
            labels.push(label);
        }
    }
    let n_classes = fx.vocabulary().len().max(1);
    let data = Dataset::new(rows, labels, n_classes, fx.feature_names());
    (fx, data)
}

/// Trains and evaluates the §6 model for one terminal.
///
/// # Panics
///
/// Panics when fewer than 50 labeled slots are available — the protocol
/// (80/20 split + 5-fold CV) is meaningless below that.
pub fn train_and_evaluate(
    observations: &[SlotObservation],
    terminal_id: usize,
    grid: &[ForestParams],
    seed: u64,
) -> ModelEvaluation {
    let (fx, data) = build_dataset(observations, terminal_id);
    assert!(data.len() >= 50, "need at least 50 labeled slots, got {}", data.len());

    let (train, holdout) = data.split(0.8, seed);

    let ranked = grid_search(&train, grid, 5, seed);
    let best = &ranked[0];
    let forest = RandomForest::fit(&train, &best.params, seed ^ 0xF0F0);

    let k_values: Vec<usize> = (1..=9).collect();
    let truth: Vec<usize> = holdout.labels().to_vec();

    let rf_ranked: Vec<Vec<usize>> =
        (0..holdout.len()).map(|i| forest.predict_top_k(holdout.row(i).0, 9)).collect();
    let baseline_ranked: Vec<Vec<usize>> =
        (0..holdout.len()).map(|i| fx.baseline_ranking(holdout.row(i).0)).collect();

    let rf_top_k: Vec<f64> =
        k_values.iter().map(|&k| top_k_accuracy(&rf_ranked, &truth, k)).collect();
    let baseline_top_k: Vec<f64> =
        k_values.iter().map(|&k| top_k_accuracy(&baseline_ranked, &truth, k)).collect();

    ModelEvaluation {
        terminal_id,
        holdout_accuracy: rf_top_k[0],
        oob_accuracy: forest.oob_accuracy(),
        rf_top_k,
        baseline_top_k,
        cv_accuracy: best.cv_accuracy,
        importances: forest.ranked_importances(),
        n_train: train.len(),
        n_holdout: holdout.len(),
        n_classes: data.n_classes(),
        k_values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};
    use crate::vantage::paper_terminals;
    use starsense_astro::time::JulianDate;
    use starsense_constellation::ConstellationBuilder;

    fn observations() -> &'static [SlotObservation] {
        use std::sync::OnceLock;
        static OBS: OnceLock<Vec<SlotObservation>> = OnceLock::new();
        OBS.get_or_init(|| {
            let c = Box::leak(Box::new(ConstellationBuilder::starlink_gen1().seed(19).build()));
            let terminals = vec![paper_terminals().swap_remove(0)];
            let campaign = Campaign::oracle(c, terminals, CampaignConfig::default(), 19);
            // Five hours of slots: the cluster label space has ~200 classes,
            // so the model needs a few thousand rows to pull ahead of the
            // baseline the way Figure 8 shows.
            campaign.run(JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0), 1200)
        })
    }

    #[test]
    fn dataset_has_one_row_per_labeled_slot() {
        let (fx, data) = build_dataset(observations(), 0);
        assert!(data.len() > 500, "rows {}", data.len());
        assert_eq!(data.width(), 1 + fx.vocabulary().len());
        assert_eq!(data.n_classes(), fx.vocabulary().len());
    }

    #[test]
    fn model_beats_baseline_and_is_monotone_in_k() {
        // A deliberately small grid keeps the test quick.
        let grid = vec![ForestParams {
            n_trees: 25,
            tree: TreeParams {
                max_depth: 12,
                min_samples_split: 4,
                min_samples_leaf: 1,
                max_features: MaxFeatures::Sqrt,
            },
            bootstrap: true,
        }];
        let eval = train_and_evaluate(observations(), 0, &grid, 5);

        assert_eq!(eval.k_values, (1..=9).collect::<Vec<_>>());
        for w in eval.rf_top_k.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "top-k must be nondecreasing");
        }
        // The paper's headline: the model far outperforms the baseline at
        // mid k. Shape check: strictly better at k=5.
        assert!(
            eval.rf_top_k[4] > eval.baseline_top_k[4] + 0.1,
            "k=5: rf {:.3} vs baseline {:.3}",
            eval.rf_top_k[4],
            eval.baseline_top_k[4]
        );
        assert!(eval.n_train > eval.n_holdout);
        assert_eq!(eval.importances.len(), 1 + eval.n_classes);
        // Importances are sorted descending and normalized.
        let total: f64 = eval.importances.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-6);
        for w in eval.importances.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn holdout_accuracy_is_not_wildly_off_cv() {
        // The paper's robustness-to-over-fitting check.
        let grid = vec![ForestParams {
            n_trees: 25,
            tree: TreeParams {
                max_depth: 10,
                min_samples_split: 4,
                min_samples_leaf: 1,
                max_features: MaxFeatures::Sqrt,
            },
            bootstrap: true,
        }];
        let eval = train_and_evaluate(observations(), 0, &grid, 5);
        assert!(
            (eval.holdout_accuracy - eval.cv_accuracy).abs() < 0.25,
            "holdout {:.3} vs cv {:.3}",
            eval.holdout_accuracy,
            eval.cv_accuracy
        );
    }

    #[test]
    #[should_panic(expected = "at least 50 labeled slots")]
    fn tiny_campaign_panics() {
        let obs: Vec<SlotObservation> = observations().iter().take(10).cloned().collect();
        let _ = train_and_evaluate(&obs, 0, &default_grid(), 1);
    }
}
