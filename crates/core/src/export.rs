//! Campaign dataset export/import ("Model release", §6: "our model and
//! data is available at this link").
//!
//! The released artifact is the per-slot observation table: one row per
//! (terminal, slot, satellite) with the satellite's observed state and a
//! flag marking the chosen one. The format round-trips losslessly enough
//! to retrain the §6 model from a file instead of a live campaign.

use crate::campaign::{SatObs, SlotObservation};
use starsense_astro::time::JulianDate;
use std::fmt::Write as _;

/// CSV header of the released dataset.
pub const DATASET_HEADER: &str = "terminal_id,slot,slot_start_jd,local_hour,norad_id,elevation_deg,azimuth_deg,age_days,sunlit,launch_year,launch_month,chosen,truth";

/// Serializes observations to the release CSV format.
pub fn to_csv(observations: &[SlotObservation]) -> String {
    let mut out = String::new();
    out.push_str(DATASET_HEADER);
    out.push('\n');
    for o in observations {
        let chosen_id = o.chosen.as_ref().map(|c| c.norad_id);
        for s in &o.available {
            let _ = writeln!(
                out,
                "{},{},{:.9},{:.6},{},{:.4},{:.4},{:.3},{},{},{},{},{}",
                o.terminal_id,
                o.slot,
                o.slot_start.0,
                o.local_hour,
                s.norad_id,
                s.elevation_deg,
                s.azimuth_deg,
                s.age_days,
                u8::from(s.sunlit),
                s.launch_year,
                s.launch_month,
                u8::from(chosen_id == Some(s.norad_id)),
                o.truth_id.map(|t| t.to_string()).unwrap_or_default(),
            );
        }
    }
    out
}

/// Errors from dataset parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetError {
    /// The header line is missing or wrong.
    BadHeader,
    /// A data row failed to parse.
    BadRow {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::BadHeader => write!(f, "missing or malformed dataset header"),
            DatasetError::BadRow { line } => write!(f, "malformed dataset row at line {line}"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// Parses the release CSV back into observations.
///
/// Rows are grouped by (terminal, slot) in file order; the `chosen` flag
/// reconstructs the pick.
pub fn from_csv(text: &str) -> Result<Vec<SlotObservation>, DatasetError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == DATASET_HEADER => {}
        _ => return Err(DatasetError::BadHeader),
    }

    let mut out: Vec<SlotObservation> = Vec::new();
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 13 {
            return Err(DatasetError::BadRow { line: idx + 1 });
        }
        let bad = || DatasetError::BadRow { line: idx + 1 };
        let terminal_id: usize = f[0].parse().map_err(|_| bad())?;
        let slot: i64 = f[1].parse().map_err(|_| bad())?;
        let slot_start = JulianDate(f[2].parse().map_err(|_| bad())?);
        let local_hour: f64 = f[3].parse().map_err(|_| bad())?;
        let sat = SatObs {
            norad_id: f[4].parse().map_err(|_| bad())?,
            elevation_deg: f[5].parse().map_err(|_| bad())?,
            azimuth_deg: f[6].parse().map_err(|_| bad())?,
            age_days: f[7].parse().map_err(|_| bad())?,
            sunlit: f[8] == "1",
            launch_year: f[9].parse().map_err(|_| bad())?,
            launch_month: f[10].parse().map_err(|_| bad())?,
        };
        let chosen = f[11] == "1";
        let truth_id: Option<u32> =
            if f[12].is_empty() { None } else { Some(f[12].parse().map_err(|_| bad())?) };

        let need_new = out
            .last()
            .map(|o: &SlotObservation| o.terminal_id != terminal_id || o.slot != slot)
            .unwrap_or(true);
        if need_new {
            out.push(SlotObservation {
                terminal_id,
                slot,
                slot_start,
                local_hour,
                available: Vec::new(),
                chosen: None,
                truth_id,
                // The CSV schema predates the outcome taxonomy and does
                // not carry it; imports are explicitly unrecorded.
                outcome: crate::degrade::SlotOutcome::Unrecorded,
            });
        }
        // `out` is non-empty here (pushed above when needed); stay total
        // rather than panicking on the impossible branch.
        if let Some(obs) = out.last_mut() {
            if chosen {
                obs.chosen = Some(sat.clone());
            }
            obs.available.push(sat);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};
    use crate::vantage::paper_terminals;
    use starsense_constellation::ConstellationBuilder;

    fn small_obs() -> Vec<SlotObservation> {
        let c = ConstellationBuilder::starlink_mini().seed(8).build();
        let campaign = Campaign::oracle(&c, paper_terminals(), CampaignConfig::default(), 8);
        campaign.run(JulianDate::from_ymd_hms(2023, 6, 1, 9, 0, 0.0), 6)
    }

    #[test]
    fn csv_round_trips_observations() {
        let obs = small_obs();
        let text = to_csv(&obs);
        let back = from_csv(&text).expect("round trip");

        // Slots without any visible satellite produce no rows, so compare
        // against the non-empty originals.
        let nonempty: Vec<&SlotObservation> =
            obs.iter().filter(|o| !o.available.is_empty()).collect();
        assert_eq!(back.len(), nonempty.len());
        for (a, b) in nonempty.iter().zip(&back) {
            assert_eq!(a.terminal_id, b.terminal_id);
            assert_eq!(a.slot, b.slot);
            assert_eq!(a.available.len(), b.available.len());
            assert_eq!(
                a.chosen.as_ref().map(|c| c.norad_id),
                b.chosen.as_ref().map(|c| c.norad_id)
            );
            assert_eq!(a.truth_id, b.truth_id);
            assert!((a.local_hour - b.local_hour).abs() < 1e-5);
            for (x, y) in a.available.iter().zip(&b.available) {
                assert_eq!(x.norad_id, y.norad_id);
                assert!((x.elevation_deg - y.elevation_deg).abs() < 1e-3);
                assert_eq!(x.sunlit, y.sunlit);
                assert_eq!((x.launch_year, x.launch_month), (y.launch_year, y.launch_month));
            }
        }
    }

    #[test]
    fn retraining_from_export_matches_original_features() {
        use crate::model::build_dataset;
        let obs = small_obs();
        let back = from_csv(&to_csv(&obs)).unwrap();
        let (_, original) = build_dataset(&obs, 0);
        let (_, reloaded) = build_dataset(&back, 0);
        assert_eq!(original.len(), reloaded.len());
        assert_eq!(original.n_classes(), reloaded.n_classes());
        assert_eq!(original.labels(), reloaded.labels());
    }

    #[test]
    fn bad_header_is_rejected() {
        assert!(matches!(from_csv("nope\n1,2,3"), Err(DatasetError::BadHeader)));
        assert!(matches!(from_csv(""), Err(DatasetError::BadHeader)));
    }

    #[test]
    fn bad_row_is_rejected_with_line_number() {
        let text = format!("{DATASET_HEADER}\ngarbage,row\n");
        assert!(matches!(from_csv(&text), Err(DatasetError::BadRow { line: 2 })));
    }

    #[test]
    fn errors_render() {
        assert!(!DatasetError::BadHeader.to_string().is_empty());
        assert!(DatasetError::BadRow { line: 7 }.to_string().contains('7'));
    }
}
