//! Plain-text table and CSV rendering for the experiment binaries.

/// Builds an aligned plain-text table from a header and rows.
///
/// # Panics
///
/// Panics when a row's width differs from the header's.
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), header.len(), "row width mismatch");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r, &widths));
        out.push('\n');
    }
    out
}

/// Builds a CSV string (RFC-4180-style quoting for cells containing
/// commas, quotes or newlines).
pub fn csv(header: &[&str], rows: &[Vec<String>]) -> String {
    fn escape(cell: &str) -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(&header.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for r in rows {
        out.push_str(&r.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage with one decimal, `"12.3%"`.
pub fn pct(x: f64) -> String {
    if x.is_nan() {
        return "n/a".to_string();
    }
    format!("{:.1}%", 100.0 * x)
}

/// Formats a float with the given number of decimals, mapping NaN to "n/a".
pub fn num(x: f64, decimals: usize) -> String {
    if x.is_nan() {
        return "n/a".to_string();
    }
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = text_table(
            &["k", "accuracy"],
            &[vec!["1".into(), "0.30".into()], vec!["10".into(), "0.95".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('k') && lines[0].contains("accuracy"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned columns: equal line lengths.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_table_panics() {
        let _ = text_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let s = csv(&["name", "value"], &[vec!["a,b".into(), "say \"hi\"".into()]]);
        assert_eq!(s, "name,value\n\"a,b\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn pct_and_num_formatting() {
        assert_eq!(pct(0.723), "72.3%");
        assert_eq!(pct(f64::NAN), "n/a");
        assert_eq!(num(3.14159, 2), "3.14");
        assert_eq!(num(f64::NAN, 1), "n/a");
    }
}
