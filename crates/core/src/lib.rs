//! `starsense-core`: the paper's analyses, end to end.
//!
//! This crate sits on top of every substrate and implements the study
//! itself:
//!
//! * [`vantage`] — the four measurement sites (Iowa, Ithaca NY, Madrid,
//!   Seattle WA) with Ithaca's tree-obstructed north-west sky,
//! * [`campaign`] — running a measurement campaign against the hidden
//!   scheduler, either with oracle ground truth or through the §4
//!   obstruction-map identification pipeline,
//! * [`characterize`] — the §5 analyses: angle-of-elevation (Figure 4),
//!   azimuth (Figure 5), launch date (Figure 6), sunlit status (Figure 7),
//! * [`features`] + [`model`] — the §6 scheduler model: z-score cluster
//!   features, random-forest training with grid search and 5-fold CV, the
//!   most-available-cluster baseline, and top-k evaluation (Figure 8),
//! * [`report`] — plain-text/CSV table rendering shared by the experiment
//!   binaries.
//!
//! # Quickstart
//!
//! ```no_run
//! use starsense_core::campaign::{Campaign, CampaignConfig};
//! use starsense_core::vantage::paper_terminals;
//! use starsense_core::characterize::aoe_analysis;
//! use starsense_constellation::ConstellationBuilder;
//! use starsense_astro::time::JulianDate;
//!
//! let constellation = ConstellationBuilder::starlink_gen1().seed(1).build();
//! let campaign = Campaign::oracle(&constellation, paper_terminals(), CampaignConfig::default(), 1);
//! let from = JulianDate::from_ymd_hms(2023, 6, 1, 0, 0, 0.0);
//! let observations = campaign.run(from, 240);
//! let fig4 = aoe_analysis(&observations, 0);
//! println!("median chosen AOE: {:.1}°", fig4.chosen_median_deg);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod characterize;
pub mod degrade;
pub mod export;
pub mod features;
pub mod model;
pub mod report;
pub mod resume;
pub mod vantage;

pub use campaign::{
    Campaign, CampaignConfig, CampaignError, SatObs, ShardFailure, SlotObservation,
};
pub use degrade::{DegradationStats, DegradeReason, SlotOutcome};
pub use features::{ClusterKey, ClusterVocabulary, FeatureExtractor};
pub use model::{train_and_evaluate, ModelEvaluation};
pub use resume::{fingerprint_observations, ResumeConfig, ResumeReport};
pub use vantage::paper_terminals;
