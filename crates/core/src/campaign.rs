//! Measurement campaigns against the hidden scheduler.
//!
//! A campaign replays the global scheduler over a span of 15-second slots
//! for the study's terminals and records, per slot and terminal, the
//! *available* satellites and the *chosen* one — the exact data §5 and §6
//! of the paper are built on.
//!
//! Two observation modes mirror what the paper could and could not see:
//!
//! * **Oracle** — the chosen satellite is read straight from the hidden
//!   scheduler (the reproduction's privilege; the fast path for large
//!   campaigns).
//! * **Identified** — the chosen satellite is recovered through the §4
//!   obstruction-map pipeline (XOR → DTW), complete with its occasional
//!   misidentifications and skipped slots. This is what the authors
//!   actually had, so experiments that quote the paper's numbers run in
//!   this mode.
//!
//! # Execution model
//!
//! A campaign runs in three phases around a shared
//! [`PropagationCache`]:
//!
//! 1. **Prepare** (parallel) — every epoch the run will touch at full
//!    catalog width (each slot's truth snapshot, plus — in identified
//!    mode — each slot's two published-TLE boundary rows) is batch-
//!    propagated once into the cache's immutable epoch table. Every later
//!    read of those epochs is a lock-free binary search;
//! 2. **Schedule** (sharded, parallel) — the terminals are split into
//!    contiguous shards (see [`CampaignConfig::shards`]) and each worker
//!    replays the hidden scheduler over just its shard's terminals,
//!    deriving fields of view (through the terminal-cohort fast path by
//!    default — see [`CampaignConfig::cohorts`]), applying the fault
//!    mask, and allocating slot by slot. Per-terminal RNG streams and
//!    hysteresis keys make a
//!    terminal's allocation a function of `(seed, terminal id, sky)`
//!    alone, so the merged shard outputs are bit-identical to one
//!    monolithic scheduler walking all terminals;
//! 3. **Observe** (parallel) — each terminal independently replays its
//!    allocations: dish painting, XOR isolation, and DTW identification,
//!    with published-TLE propagation read through the prepared table and
//!    a per-worker sparse memo — no locks on the hot path.
//!
//! The phase split is bit-transparent: every phase consumes exactly the
//! inputs the old slot-by-slot loop produced, so observations are
//! byte-identical for any worker-thread count and any shard count (see
//! [`CampaignConfig::threads`]), and the determinism tests hold
//! multi-threaded, multi-shard runs to the single-threaded stream field
//! by field.

use crate::degrade::{DegradationStats, DegradeReason, SlotOutcome};
use crate::vantage;
use starsense_astro::time::JulianDate;
use starsense_constellation::{Constellation, PropagationCache, VisibleSat};
use starsense_faults::{FaultPlan, PropagationSchedule};
use starsense_ident::{
    slot_boundary_epochs, verdict_slot_tracked, DishSimulator, FrameStatus, IdentVerdict,
    NoDataReason, SlotCapture, TrackCache, CANDIDATE_SAMPLES_PER_SLOT, MIN_CANDIDATE_ELEVATION_DEG,
};
use starsense_scheduler::slots::{slot_index, slot_start, SLOT_PERIOD_SECONDS};
use starsense_scheduler::{Allocation, GlobalScheduler, SchedulerPolicy, Terminal};

/// How one supervised (or plain parallel-phase) worker attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardFailure {
    /// The worker panicked; the payload is carried as text.
    Panicked {
        /// Stringified panic payload.
        payload: String,
    },
    /// The worker exceeded its (virtual) deadline budget. No wall clock
    /// is involved: overruns are reported by the deterministic fault
    /// plan, so chaos campaigns stay bit-reproducible.
    DeadlineOverrun,
}

impl std::fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardFailure::Panicked { payload } => write!(f, "panicked: {payload}"),
            ShardFailure::DeadlineOverrun => write!(f, "deadline overrun"),
        }
    }
}

/// Typed campaign failure — what [`Campaign::try_run_with_stats`] and the
/// resumable engine report instead of propagating worker panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// A parallel-phase worker panicked. `shard` is the scheduling-shard
    /// index in the schedule phase and the terminal id in the observation
    /// phase.
    WorkerPanicked {
        /// Failing work-unit index.
        shard: usize,
        /// Stringified panic payload.
        payload: String,
    },
    /// A supervised work unit exhausted its retry budget while quarantine
    /// was disabled (`worker_quarantine_after == 0`), so the resumable
    /// engine failed fast instead of degrading the unit's slots.
    WorkerExhausted {
        /// Failing work-unit id (scheduling shards count from 0;
        /// observation terminals are offset by `2^32` — see
        /// `resume::observe_unit_id`).
        unit: u64,
        /// Attempts made, first try included.
        attempts: u32,
        /// The final attempt's failure.
        failure: ShardFailure,
    },
    /// Writing or reading a checkpoint snapshot failed.
    Checkpoint(starsense_checkpoint::CheckpointError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::WorkerPanicked { shard, payload } => {
                write!(f, "campaign worker for unit {shard} panicked: {payload}")
            }
            CampaignError::WorkerExhausted { unit, attempts, failure } => {
                write!(f, "work unit {unit} failed {attempts} attempts; last: {failure}")
            }
            CampaignError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<starsense_checkpoint::CheckpointError> for CampaignError {
    fn from(e: starsense_checkpoint::CheckpointError) -> Self {
        CampaignError::Checkpoint(e)
    }
}

/// Renders a panic payload as text for [`CampaignError`] /
/// [`ShardFailure`]. `&str` and `String` payloads (everything `panic!`
/// and `panic_any` produce in this workspace) pass through verbatim.
pub(crate) fn payload_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A satellite as observed during one slot from one terminal.
#[derive(Debug, Clone, PartialEq)]
pub struct SatObs {
    /// Catalog number.
    pub norad_id: u32,
    /// Angle of elevation, degrees.
    pub elevation_deg: f64,
    /// Azimuth, degrees clockwise from north.
    pub azimuth_deg: f64,
    /// Days since launch.
    pub age_days: f64,
    /// Sunlit status.
    pub sunlit: bool,
    /// Launch year (for §5.2 binning).
    pub launch_year: i32,
    /// Launch month.
    pub launch_month: u32,
}

impl From<&VisibleSat> for SatObs {
    fn from(v: &VisibleSat) -> SatObs {
        SatObs {
            norad_id: v.norad_id,
            elevation_deg: v.look.elevation_deg,
            azimuth_deg: v.look.azimuth_deg,
            age_days: v.age_days,
            sunlit: v.sunlit,
            launch_year: v.launch.year,
            launch_month: v.launch.month,
        }
    }
}

/// One slot's observation from one terminal.
#[derive(Debug, Clone)]
pub struct SlotObservation {
    /// Terminal id (index into [`vantage::paper_terminals`]-style lists).
    pub terminal_id: usize,
    /// Global slot index.
    pub slot: i64,
    /// Slot start.
    pub slot_start: JulianDate,
    /// Local mean solar hour at the terminal (the §6 `local_hour` feature).
    pub local_hour: f64,
    /// Satellites above the minimum elevation.
    pub available: Vec<SatObs>,
    /// The satellite believed to serve this slot (mode-dependent).
    pub chosen: Option<SatObs>,
    /// Ground truth (always the scheduler's real pick; equals `chosen` in
    /// oracle mode).
    pub truth_id: Option<u32>,
    /// How the observation resolved — identification, ambiguity, or the
    /// degradation cause. `chosen.is_some()` exactly when this is
    /// [`SlotOutcome::Observed`].
    pub outcome: SlotOutcome,
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The hidden scheduler's policy.
    pub policy: SchedulerPolicy,
    /// Observe through the §4 identification pipeline instead of reading
    /// the scheduler directly.
    pub identified: bool,
    /// Worker threads for the parallel phases (epoch preparation, sharded
    /// scheduling, and per-terminal observation). `0` means auto-detect
    /// from the host; `1` runs everything inline with no threads spawned.
    /// Results are byte-identical for every value.
    pub threads: usize,
    /// Terminal shards for the scheduling phase. Each shard owns a
    /// contiguous run of terminals and replays the hidden scheduler over
    /// just those; per-terminal RNG streams and hysteresis keys make the
    /// merged output bit-identical for every shard count. `0` derives the
    /// shard count from the worker-thread count.
    pub shards: usize,
    /// Share visibility work across terminals that fall in the same
    /// visibility-index grid cell (the cohort fast path,
    /// [`GlobalScheduler::fields_of_view_cohort`]). Candidate sharing is a
    /// provable superset construction and every terminal still runs the
    /// exact per-terminal elevation test, so the observation stream is
    /// byte-identical with the flag on or off — `false` exists for A/B
    /// measurement and the invariance tests, not for correctness.
    pub cohorts: bool,
    /// Deterministic fault-injection plan. The default
    /// ([`FaultPlan::none`]) keeps every output bit-identical to a
    /// fault-unaware campaign: fault decisions are counter-based hashes
    /// and never touch the scheduler's or dish's randomness.
    pub faults: FaultPlan,
    /// Minimum DTW margin for a match to count as identified rather than
    /// [`SlotOutcome::Ambiguous`]. The default `0.0` reproduces the
    /// legacy always-report-the-best behaviour bit for bit; chaos runs
    /// use [`starsense_ident::DEFAULT_MIN_MARGIN`].
    pub min_margin: f64,
    /// Obstruction-frame fetch retries after a dropped frame (identified
    /// mode only).
    pub frame_retries: u32,
    /// Quarantine a satellite for the rest of the campaign once this many
    /// of its slot propagations have failed. `0` disables quarantine.
    pub quarantine_after: u32,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            policy: SchedulerPolicy::default(),
            identified: false,
            threads: 0,
            shards: 0,
            cohorts: true,
            faults: FaultPlan::none(),
            min_margin: 0.0,
            frame_retries: 2,
            quarantine_after: 0,
        }
    }
}

/// A runnable campaign.
pub struct Campaign<'a> {
    pub(crate) constellation: &'a Constellation,
    pub(crate) terminals: Vec<Terminal>,
    pub(crate) config: CampaignConfig,
    pub(crate) seed: u64,
}

impl<'a> Campaign<'a> {
    /// Oracle-mode campaign.
    pub fn oracle(
        constellation: &'a Constellation,
        terminals: Vec<Terminal>,
        config: CampaignConfig,
        seed: u64,
    ) -> Campaign<'a> {
        Campaign {
            constellation,
            terminals,
            config: CampaignConfig { identified: false, ..config },
            seed,
        }
    }

    /// Identified-mode campaign (through the obstruction-map pipeline).
    pub fn identified(
        constellation: &'a Constellation,
        terminals: Vec<Terminal>,
        config: CampaignConfig,
        seed: u64,
    ) -> Campaign<'a> {
        Campaign {
            constellation,
            terminals,
            config: CampaignConfig { identified: true, ..config },
            seed,
        }
    }

    /// The terminals under measurement.
    pub fn terminals(&self) -> &[Terminal] {
        &self.terminals
    }

    /// Worker count for the parallel phases, resolved from the config.
    /// When this resolves to 1 — an explicit `threads: 1` or a single-CPU
    /// host under auto-detect — both parallel phases take their inline
    /// branch and no scoped thread (or any thread machinery at all) is
    /// ever set up, so the parallel entry point can never underperform
    /// the serial engine.
    pub(crate) fn worker_threads(&self) -> usize {
        match self.config.threads {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        }
    }

    /// Shard count for the scheduling phase, resolved from the config:
    /// explicit counts are clamped to the terminal count, and the `0`
    /// default gives each worker thread one shard.
    pub(crate) fn shard_count(&self) -> usize {
        let terminals = self.terminals.len().max(1);
        match self.config.shards {
            0 => self.worker_threads().min(terminals),
            n => n.min(terminals),
        }
    }

    /// Runs `slots` consecutive slots starting at the slot containing
    /// `from`. Returns observations slot-major, terminal-minor.
    ///
    /// Observations are byte-identical for any [`CampaignConfig::threads`]
    /// value: the stateful scheduler pass is serial either way, and the
    /// parallel phases compute pure per-slot / per-terminal functions whose
    /// results are merged back in slot-major, terminal-minor order.
    pub fn run(&self, from: JulianDate, slots: usize) -> Vec<SlotObservation> {
        self.run_with_stats(from, slots).0
    }

    /// [`Campaign::run`] with worker panics surfaced as a typed
    /// [`CampaignError`] instead of unwinding through the thread joins.
    pub fn try_run(
        &self,
        from: JulianDate,
        slots: usize,
    ) -> Result<Vec<SlotObservation>, CampaignError> {
        Ok(self.try_run_with_stats(from, slots)?.0)
    }

    /// [`Campaign::run`] plus the run's [`DegradationStats`] — outcome
    /// tallies from the observation stream and the fault schedule's
    /// quarantine counters.
    pub fn run_with_stats(
        &self,
        from: JulianDate,
        slots: usize,
    ) -> (Vec<SlotObservation>, DegradationStats) {
        match self.try_run_with_stats(from, slots) {
            Ok(out) => out,
            // Legacy contract: a worker panic propagates to the caller as
            // a panic carrying the original payload text.
            Err(CampaignError::WorkerPanicked { payload, .. }) => {
                std::panic::resume_unwind(Box::new(payload))
            }
            Err(other) => std::panic::resume_unwind(Box::new(other.to_string())),
        }
    }

    /// [`Campaign::run_with_stats`] with worker panics mapped to
    /// [`CampaignError::WorkerPanicked`]: the panic is caught at the
    /// work-unit boundary, stringified, and returned — nothing unwinds
    /// through the scoped thread joins.
    pub fn try_run_with_stats(
        &self,
        from: JulianDate,
        slots: usize,
    ) -> Result<(Vec<SlotObservation>, DegradationStats), CampaignError> {
        let threads = self.worker_threads();
        let cache = PropagationCache::new(self.constellation);

        // Query each slot at its midpoint: slot boundaries are derived from
        // the instant, and a midpoint query can never fall on the wrong
        // side of a boundary through float rounding.
        let first_mid = slot_start(from).plus_seconds(SLOT_PERIOD_SECONDS / 2.0);
        let mids: Vec<JulianDate> =
            (0..slots).map(|k| first_mid.plus_seconds(k as f64 * SLOT_PERIOD_SECONDS)).collect();

        // Injected propagation failures (and their quarantine closure) are
        // precomputed serially into a bitset so the parallel visibility
        // phase can consult them without any ordering dependence.
        let schedule = self.config.faults.enabled().then(|| {
            let mut ids: Vec<u32> = self.constellation.sats().iter().map(|s| s.norad_id).collect();
            ids.sort_unstable();
            let first_slot = slot_index(first_mid);
            let schedule = PropagationSchedule::build(
                &self.config.faults,
                &ids,
                first_slot,
                slots,
                self.config.quarantine_after,
            );
            (schedule, ids)
        });

        // Phase 1 (parallel): batch-propagate every full-width epoch the
        // run will touch into the cache's immutable table — each slot's
        // truth snapshot, and in identified mode each slot's two published
        // boundary rows. Everything after this reads lock-free.
        let starts: Vec<JulianDate> = mids.iter().map(|&at| slot_start(at)).collect();
        let boundaries: Vec<JulianDate> = if self.config.identified {
            starts
                .iter()
                .flat_map(|&s| slot_boundary_epochs(s, CANDIDATE_SAMPLES_PER_SLOT))
                .collect()
        } else {
            Vec::new()
        };
        cache.prepare(&starts, &boundaries, threads);

        // Phase 2 (sharded, parallel): each shard's worker owns a
        // sub-scheduler over a contiguous run of terminals and replays it
        // slot by slot. Hysteresis and the allocation RNG are per-terminal
        // state, so the shard outputs merge bit-identically to one
        // monolithic scheduler walking all terminals in slot order.
        let per_terminal = self.schedule_phase(&cache, &mids, threads, schedule.as_ref())?;

        // Phase 3 (parallel): each terminal replays its own allocation
        // stream — dish painting and DTW identification are per-terminal
        // state machines with no cross-terminal coupling.
        let per_terminal_obs = self.observation_phase(&cache, per_terminal, threads)?;

        // Merge back to the slot-major, terminal-minor order the serial
        // loop used to produce.
        let mut columns: Vec<std::vec::IntoIter<SlotObservation>> =
            per_terminal_obs.into_iter().map(Vec::into_iter).collect();
        let mut out = Vec::with_capacity(slots * self.terminals.len());
        for _ in 0..slots {
            for column in &mut columns {
                if let Some(obs) = column.next() {
                    out.push(obs);
                }
            }
        }

        let mut stats = DegradationStats::collect(&out);
        if let Some((schedule, _)) = &schedule {
            stats.quarantined_sats = schedule.quarantined_count();
            stats.masked_propagations = schedule.masked_slot_count();
        }
        Ok((out, stats))
    }

    /// Phase 2: sharded visibility + scheduling. The terminals are split
    /// into [`Campaign::shard_count`] contiguous shards; each shard's
    /// worker builds a sub-[`GlobalScheduler`] over just its terminals
    /// and replays the slots in order — fields of view from the prepared
    /// snapshot table, the fault-mask bitset, then allocation. Shards are
    /// fanned over `threads` scoped workers (inline when either count is
    /// 1) and reassembled in shard order, so the returned per-terminal
    /// columns are independent of scheduling *and* of the shard count:
    /// a terminal's allocation stream depends only on `(seed, terminal
    /// id, sky)`.
    fn schedule_phase(
        &self,
        cache: &PropagationCache<'_>,
        mids: &[JulianDate],
        threads: usize,
        schedule: Option<&(PropagationSchedule, Vec<u32>)>,
    ) -> Result<Vec<Vec<Allocation>>, CampaignError> {
        let ranges = shard_ranges(self.terminals.len(), self.shard_count());
        // Panics are caught at the shard boundary, so a poisoned worker
        // surfaces as a typed error instead of unwinding through the
        // scoped-thread joins.
        let run_shard = |s: usize,
                         range: std::ops::Range<usize>|
         -> Result<Vec<Vec<Allocation>>, CampaignError> {
            let terminals = &self.terminals[range];
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut scheduler =
                    GlobalScheduler::new(self.config.policy.clone(), terminals.to_vec(), self.seed);
                self.schedule_slots(&mut scheduler, terminals, cache, mids, 0, schedule)
            }))
            .map_err(|p| CampaignError::WorkerPanicked {
                shard: s,
                payload: payload_message(p.as_ref()),
            })
        };
        let workers = threads.min(ranges.len()).max(1);
        if workers <= 1 {
            let mut out = Vec::with_capacity(self.terminals.len());
            for (s, r) in ranges.into_iter().enumerate() {
                out.extend(run_shard(s, r)?);
            }
            return Ok(out);
        }
        let mut work: Vec<Option<std::ops::Range<usize>>> = ranges.into_iter().map(Some).collect();
        let mut indexed: Vec<(usize, Result<Vec<Vec<Allocation>>, CampaignError>)> =
            Vec::with_capacity(work.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for chunk in chunk_interleaved(&mut work, workers) {
                let first = chunk.first().map(|(s, _)| *s).unwrap_or(0);
                let run_shard = &run_shard;
                handles.push((
                    first,
                    scope.spawn(move || {
                        chunk
                            .into_iter()
                            .map(|(s, range)| (s, run_shard(s, range)))
                            .collect::<Vec<_>>()
                    }),
                ));
            }
            for (first, handle) in handles {
                match handle.join() {
                    Ok(part) => indexed.extend(part),
                    // Unreachable in practice (every shard body is caught
                    // above), but a join failure still degrades into the
                    // typed error rather than a panic.
                    Err(p) => indexed.push((
                        first,
                        Err(CampaignError::WorkerPanicked {
                            shard: first,
                            payload: payload_message(p.as_ref()),
                        }),
                    )),
                }
            }
        });
        indexed.sort_by_key(|(s, _)| *s);
        let mut out = Vec::with_capacity(self.terminals.len());
        for (_, part) in indexed {
            out.extend(part?);
        }
        Ok(out)
    }

    /// The scheduling inner loop shared by the one-shot and resumable
    /// engines: replays `scheduler` (owning exactly `terminals`) over
    /// `mids`, whose first slot sits `k0` slots after the start of the
    /// fault schedule's campaign window. Returns per-terminal allocation
    /// columns in `terminals` order.
    pub(crate) fn schedule_slots(
        &self,
        scheduler: &mut GlobalScheduler,
        terminals: &[Terminal],
        cache: &PropagationCache<'_>,
        mids: &[JulianDate],
        k0: usize,
        schedule: Option<&(PropagationSchedule, Vec<u32>)>,
    ) -> Vec<Vec<Allocation>> {
        // Keyed lookup only (never iterated), so the map is exempt
        // from the hash-order determinism rules.
        let column_of: std::collections::HashMap<usize, usize> =
            terminals.iter().enumerate().map(|(j, t)| (t.id, j)).collect();
        let mut columns: Vec<Vec<Allocation>> =
            terminals.iter().map(|_| Vec::with_capacity(mids.len())).collect();
        for (k, &at) in mids.iter().enumerate() {
            let snapshot = cache.snapshot(slot_start(at));
            // Cohort sharing is per shard: terminals that land in the
            // same grid cell within this shard pool their candidate
            // fetch. The partition (and the flag itself) only changes
            // how candidates are gathered, never which satellites pass
            // the exact elevation test, so both paths and every shard
            // split produce the same fields of view bit for bit.
            let mut fov = if self.config.cohorts {
                scheduler.fields_of_view_cohort(self.constellation, &snapshot)
            } else {
                scheduler.fields_of_view(self.constellation, &snapshot)
            };
            // A satellite whose propagation failed this slot (or that
            // is quarantined) is invisible to the whole pipeline: the
            // bitset is pure data, so filtering here is invariant to
            // thread and shard scheduling. The mask is indexed by the
            // campaign-global slot offset, so segmented replays see the
            // same fault pattern as one uninterrupted pass.
            if let Some((schedule, ids)) = schedule {
                for list in &mut fov {
                    list.retain(|v| match ids.binary_search(&v.norad_id) {
                        Ok(sat) => !schedule.masked(sat, k0 + k),
                        Err(_) => true,
                    });
                }
            }
            for alloc in scheduler.allocate_from_available(at, fov) {
                columns[column_of[&alloc.terminal_id]].push(alloc);
            }
        }
        columns
    }

    /// Phase 3: per-terminal observation streams, fanned over `threads`
    /// scoped workers (inline when `threads <= 1`). Terminals are
    /// interleaved across workers and reassembled in terminal order.
    fn observation_phase(
        &self,
        cache: &PropagationCache<'_>,
        per_terminal: Vec<Vec<Allocation>>,
        threads: usize,
    ) -> Result<Vec<Vec<SlotObservation>>, CampaignError> {
        // As in the schedule phase, panics are caught per work unit (here
        // one terminal) and carried out as typed errors.
        let observe =
            |tid: usize, allocs: Vec<Allocation>| -> Result<Vec<SlotObservation>, CampaignError> {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.observe_terminal(cache, tid, allocs)
                }))
                .map_err(|p| CampaignError::WorkerPanicked {
                    shard: tid,
                    payload: payload_message(p.as_ref()),
                })
            };
        let threads = threads.min(per_terminal.len().max(1));
        if threads <= 1 {
            return per_terminal
                .into_iter()
                .enumerate()
                .map(|(tid, allocs)| observe(tid, allocs))
                .collect();
        }
        let mut work: Vec<Option<Vec<Allocation>>> = per_terminal.into_iter().map(Some).collect();
        let mut indexed: Vec<(usize, Result<Vec<SlotObservation>, CampaignError>)> =
            Vec::with_capacity(work.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for chunk in chunk_interleaved(&mut work, threads) {
                let first = chunk.first().map(|(tid, _)| *tid).unwrap_or(0);
                let observe = &observe;
                handles.push((
                    first,
                    scope.spawn(move || {
                        chunk
                            .into_iter()
                            .map(|(tid, allocs)| (tid, observe(tid, allocs)))
                            .collect::<Vec<_>>()
                    }),
                ));
            }
            for (first, handle) in handles {
                match handle.join() {
                    Ok(part) => indexed.extend(part),
                    Err(p) => indexed.push((
                        first,
                        Err(CampaignError::WorkerPanicked {
                            shard: first,
                            payload: payload_message(p.as_ref()),
                        }),
                    )),
                }
            }
        });
        indexed.sort_by_key(|(tid, _)| *tid);
        indexed.into_iter().map(|(_, v)| v).collect()
    }

    /// One terminal's full observation stream, in slot order. Pure given
    /// (cache catalog, terminal, allocations) — the worker owns the dish
    /// state machine, so runs are identical no matter which thread or how
    /// many siblings execute this.
    fn observe_terminal(
        &self,
        cache: &PropagationCache<'_>,
        tid: usize,
        allocs: Vec<Allocation>,
    ) -> Vec<SlotObservation> {
        let mut dish = DishSimulator::new(self.terminals[tid].location);
        let mut prev_cap: Option<SlotCapture> = None;
        self.observe_terminal_segment(cache, tid, &mut dish, &mut prev_cap, &allocs)
    }

    /// One *segment* of a terminal's observation stream, continuing from
    /// (and advancing) the caller-owned dish state machine and baseline
    /// capture. The one-shot engine calls this once with fresh state for
    /// the whole run; the resumable engine calls it per segment with
    /// state persisted (and checkpointed) between calls. The track cache
    /// is recreated per call — it is a pure cache whose output is
    /// bit-identical to the uncached path, so segmentation cannot move a
    /// bit.
    pub(crate) fn observe_terminal_segment(
        &self,
        cache: &PropagationCache<'_>,
        tid: usize,
        dish: &mut DishSimulator,
        prev_cap: &mut Option<SlotCapture>,
        allocs: &[Allocation],
    ) -> Vec<SlotObservation> {
        let location = self.terminals[tid].location;
        // The terminal replays its slots in order, which is exactly the
        // access pattern the track cache's boundary reuse and elevation
        // prefilter are built for; its output is bit-identical to the
        // uncached `identify_slot_through` path.
        let mut tracks = self.config.identified.then(|| {
            TrackCache::new(
                cache,
                location,
                MIN_CANDIDATE_ELEVATION_DEG,
                CANDIDATE_SAMPLES_PER_SLOT,
            )
        });
        let mut out = Vec::with_capacity(allocs.len());
        for alloc in allocs {
            let truth_id = alloc.chosen_id();
            let (chosen, outcome) = if let Some(tracks) = tracks.as_mut() {
                let fetch = dish.play_slot_faulted(
                    self.constellation,
                    alloc.slot,
                    alloc.slot_start,
                    truth_id,
                    &self.config.faults,
                    tid as u64,
                    self.config.frame_retries,
                );
                match fetch.capture {
                    None => {
                        // Every attempt failed: nothing to difference, and
                        // the next successful frame has no baseline either.
                        *prev_cap = None;
                        let reason = DegradeReason::FrameDropped { attempts: fetch.attempts };
                        (None, SlotOutcome::NoData(reason))
                    }
                    Some(capture) => {
                        let usable_prev =
                            if capture.after_reset { None } else { prev_cap.as_ref() };
                        let resolved = match usable_prev {
                            None => {
                                let reason = if capture.after_reset {
                                    DegradeReason::AfterReset
                                } else {
                                    DegradeReason::MissingBaseline
                                };
                                (None, SlotOutcome::NoData(reason))
                            }
                            Some(prev) => self.resolve_verdict(
                                tracks,
                                &prev.map,
                                &capture.map,
                                alloc,
                                fetch.status,
                                truth_id,
                            ),
                        };
                        *prev_cap = Some(capture);
                        resolved
                    }
                }
            } else {
                match alloc.chosen.as_ref() {
                    Some(chosen) => {
                        (Some(SatObs::from(chosen)), SlotOutcome::Observed { confidence: 1.0 })
                    }
                    None => (None, SlotOutcome::NoData(DegradeReason::Outage)),
                }
            };

            out.push(SlotObservation {
                terminal_id: tid,
                slot: alloc.slot,
                slot_start: alloc.slot_start,
                local_hour: alloc.slot_start.local_solar_hour(location.lon_deg),
                available: alloc.available.iter().map(SatObs::from).collect(),
                chosen,
                truth_id,
                outcome,
            });
        }
        out
    }

    /// Runs the §4 identification on one differenced frame pair and folds
    /// the verdict into the observation's `(chosen, outcome)` pair,
    /// attributing empty trails to their upstream cause (stale frame,
    /// scheduler outage) when one is known.
    fn resolve_verdict(
        &self,
        tracks: &mut TrackCache<'_, '_>,
        prev: &starsense_obstruction::ObstructionMap,
        curr: &starsense_obstruction::ObstructionMap,
        alloc: &Allocation,
        status: FrameStatus,
        truth_id: Option<u32>,
    ) -> (Option<SatObs>, SlotOutcome) {
        match verdict_slot_tracked(tracks, prev, curr, alloc.slot_start, self.config.min_margin) {
            IdentVerdict::Identified { sat, confidence } => {
                // Report the identified satellite's observed state, taken
                // from the available list (all satellites in view, so a
                // correct match is always present).
                match alloc.available.iter().find(|v| v.norad_id == sat.norad_id) {
                    Some(v) => (Some(SatObs::from(v)), SlotOutcome::Observed { confidence }),
                    None => (None, SlotOutcome::NoData(DegradeReason::UnmatchedIdentity)),
                }
            }
            IdentVerdict::Ambiguous { best } => {
                (None, SlotOutcome::Ambiguous { margin: best.margin() })
            }
            IdentVerdict::NoData(reason) => {
                let reason = match reason {
                    NoDataReason::EmptyTrail if status == FrameStatus::Stale => {
                        DegradeReason::StaleFrame
                    }
                    NoDataReason::EmptyTrail if truth_id.is_none() => DegradeReason::Outage,
                    NoDataReason::EmptyTrail => DegradeReason::EmptyTrail,
                    NoDataReason::TinyTrail => DegradeReason::TinyTrail,
                    NoDataReason::NoCandidates => DegradeReason::NoCandidates,
                };
                (None, SlotOutcome::NoData(reason))
            }
        }
    }
}

/// Splits `0..len` into `shards` contiguous ranges whose lengths differ
/// by at most one (the first `len % shards` ranges take the extra
/// element). Contiguity keeps the concatenation of shard outputs in
/// global terminal order with no re-sorting.
pub(crate) fn shard_ranges(len: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    let shards = shards.clamp(1, len.max(1));
    let base = len / shards;
    let extra = len % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let size = base + usize::from(s < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Splits `work` into `threads` interleaved (index, item) chunks, taking
/// the items out of their slots. Interleaving balances load when cost
/// varies smoothly across indices.
pub(crate) fn chunk_interleaved<T>(work: &mut [Option<T>], threads: usize) -> Vec<Vec<(usize, T)>> {
    let mut chunks: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, slot) in work.iter_mut().enumerate() {
        if let Some(item) = slot.take() {
            chunks[i % threads].push((i, item));
        }
    }
    chunks
}

/// Convenience: observations of one terminal only.
pub fn for_terminal(obs: &[SlotObservation], terminal_id: usize) -> Vec<&SlotObservation> {
    obs.iter().filter(|o| o.terminal_id == terminal_id).collect()
}

/// Convenience: the standard four-terminal oracle campaign of the paper.
pub fn paper_campaign(constellation: &Constellation, seed: u64) -> Campaign<'_> {
    Campaign::oracle(constellation, vantage::paper_terminals(), CampaignConfig::default(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use starsense_astro::frames::Geodetic;
    use starsense_constellation::ConstellationBuilder;

    fn small_run(identified: bool) -> Vec<SlotObservation> {
        let c = ConstellationBuilder::starlink_gen1().seed(33).build();
        let terminals = vec![Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2))];
        let config = CampaignConfig::default();
        let campaign = if identified {
            Campaign::identified(&c, terminals, config, 33)
        } else {
            Campaign::oracle(&c, terminals, config, 33)
        };
        campaign.run(JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0), 25)
    }

    #[test]
    fn oracle_campaign_records_every_slot() {
        let obs = small_run(false);
        assert_eq!(obs.len(), 25);
        for o in &obs {
            assert!(!o.available.is_empty());
            assert_eq!(o.chosen.as_ref().map(|c| c.norad_id), o.truth_id);
            assert!((0.0..24.0).contains(&o.local_hour));
        }
        // Slots are consecutive.
        for w in obs.windows(2) {
            assert_eq!(w[1].slot, w[0].slot + 1);
        }
    }

    #[test]
    fn oracle_chosen_is_among_available() {
        let obs = small_run(false);
        for o in &obs {
            if let Some(ch) = &o.chosen {
                assert!(o.available.iter().any(|a| a.norad_id == ch.norad_id));
            }
        }
    }

    #[test]
    fn identified_campaign_mostly_matches_truth() {
        let obs = small_run(true);
        let attempted: Vec<&SlotObservation> =
            obs.iter().filter(|o| o.chosen.is_some() && o.truth_id.is_some()).collect();
        assert!(attempted.len() >= 15, "attempted {}", attempted.len());
        let correct = attempted
            .iter()
            .filter(|o| o.chosen.as_ref().map(|c| c.norad_id) == o.truth_id)
            .count();
        assert!(
            correct * 10 >= attempted.len() * 8,
            "identified accuracy {correct}/{}",
            attempted.len()
        );
    }

    /// Field-by-field equality of two observation streams, with float
    /// fields compared by bit pattern: "byte-identical" is the contract,
    /// not "approximately equal".
    fn assert_streams_identical(a: &[SlotObservation], b: &[SlotObservation]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.terminal_id, y.terminal_id);
            assert_eq!(x.slot, y.slot);
            assert_eq!(x.slot_start.0.to_bits(), y.slot_start.0.to_bits());
            assert_eq!(x.local_hour.to_bits(), y.local_hour.to_bits());
            assert_eq!(x.truth_id, y.truth_id);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.chosen.as_ref().map(sat_bits), y.chosen.as_ref().map(sat_bits));
            assert_eq!(x.available.len(), y.available.len());
            for (sa, sb) in x.available.iter().zip(&y.available) {
                assert_eq!(sat_bits(sa), sat_bits(sb));
            }
        }
    }

    fn sat_bits(s: &SatObs) -> (u32, u64, u64, u64, bool, i32, u32) {
        (
            s.norad_id,
            s.elevation_deg.to_bits(),
            s.azimuth_deg.to_bits(),
            s.age_days.to_bits(),
            s.sunlit,
            s.launch_year,
            s.launch_month,
        )
    }

    fn threaded_run(identified: bool, threads: usize, shards: usize) -> Vec<SlotObservation> {
        matrix_run(identified, threads, shards, true)
    }

    fn matrix_run(
        identified: bool,
        threads: usize,
        shards: usize,
        cohorts: bool,
    ) -> Vec<SlotObservation> {
        let c = ConstellationBuilder::starlink_gen1().seed(33).build();
        // Iowa and Cedar Rapids are ~30 km apart and land in the same
        // visibility-index cell, so the cohort path genuinely shares
        // candidates in this fixture instead of degenerating to singletons.
        let terminals = vec![
            Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2)),
            Terminal::new(1, "Seattle", Geodetic::new(47.61, -122.33, 0.1)),
            Terminal::new(2, "Austin", Geodetic::new(30.27, -97.74, 0.15)),
            Terminal::new(3, "Cedar Rapids", Geodetic::new(41.98, -91.67, 0.25)),
        ];
        let config = CampaignConfig { threads, shards, cohorts, ..CampaignConfig::default() };
        let campaign = if identified {
            Campaign::identified(&c, terminals, config, 33)
        } else {
            Campaign::oracle(&c, terminals, config, 33)
        };
        campaign.run(JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0), 20)
    }

    #[test]
    fn oracle_campaign_is_thread_count_invariant() {
        let serial = threaded_run(false, 1, 1);
        assert_streams_identical(&serial, &threaded_run(false, 4, 1));
        assert_streams_identical(&serial, &threaded_run(false, 0, 1));
    }

    #[test]
    fn identified_campaign_is_thread_count_invariant() {
        let serial = threaded_run(true, 1, 1);
        assert_streams_identical(&serial, &threaded_run(true, 4, 1));
        assert_streams_identical(&serial, &threaded_run(true, 0, 1));
    }

    #[test]
    fn oracle_campaign_is_shard_count_invariant() {
        // The full matrix: every (threads, shards) combination — including
        // auto-detect on both axes and shard counts past the terminal
        // count — must reproduce the single-thread single-shard stream
        // bit for bit.
        let serial = threaded_run(false, 1, 1);
        for threads in [1, 2, 4, 0] {
            for shards in [1, 2, 3, 5, 0] {
                assert_streams_identical(&serial, &threaded_run(false, threads, shards));
            }
        }
    }

    #[test]
    fn identified_campaign_is_shard_count_invariant() {
        let serial = threaded_run(true, 1, 1);
        for (threads, shards) in [(1, 2), (2, 3), (4, 5), (0, 0), (2, 1)] {
            assert_streams_identical(&serial, &threaded_run(true, threads, shards));
        }
    }

    #[test]
    fn oracle_campaign_is_cohort_mode_invariant() {
        // The full matrix with the cohort axis: every (threads, shards,
        // cohorts) combination must reproduce the per-terminal
        // single-thread single-shard stream bit for bit. This is the
        // strongest statement of the cohort contract — shared candidate
        // supersets and the per-slot score table change where the numbers
        // come from, never what they are.
        let reference = matrix_run(false, 1, 1, false);
        for threads in [1, 2, 4] {
            for shards in [1, 3, 0] {
                for cohorts in [false, true] {
                    assert_streams_identical(
                        &reference,
                        &matrix_run(false, threads, shards, cohorts),
                    );
                }
            }
        }
    }

    #[test]
    fn identified_campaign_is_cohort_mode_invariant() {
        let reference = matrix_run(true, 1, 1, false);
        for (threads, shards, cohorts) in [(1, 1, true), (2, 3, true), (4, 0, true), (2, 2, false)]
        {
            assert_streams_identical(&reference, &matrix_run(true, threads, shards, cohorts));
        }
    }

    #[test]
    fn faulted_campaign_is_shard_count_invariant() {
        // The fault mask is applied inside each shard worker; the bitset
        // is pure data, so degradation patterns must not move with the
        // partition either. The cohort axis rides along: the mask is
        // applied to the finished fields of view, downstream of candidate
        // gathering, so faulted runs are cohort-mode invariant too.
        use starsense_faults::FaultRates;
        let rates = FaultRates { frame_drop: 0.15, propagation_fail: 0.2, ..FaultRates::none() };
        let run = |threads: usize, shards: usize, cohorts: bool| {
            let c = ConstellationBuilder::starlink_mini().seed(33).build();
            let terminals = vec![
                Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2)),
                Terminal::new(1, "Seattle", Geodetic::new(47.61, -122.33, 0.1)),
            ];
            let config = CampaignConfig {
                threads,
                shards,
                cohorts,
                faults: FaultPlan::new(5, rates),
                quarantine_after: 2,
                ..CampaignConfig::default()
            };
            Campaign::identified(&c, terminals, config, 33)
                .run(JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0), 25)
        };
        let serial = run(1, 1, true);
        assert_streams_identical(&serial, &run(2, 2, true));
        assert_streams_identical(&serial, &run(4, 0, true));
        assert_streams_identical(&serial, &run(1, 1, false));
        assert_streams_identical(&serial, &run(2, 2, false));
    }

    #[test]
    fn shard_ranges_partition_contiguously() {
        for len in [0usize, 1, 2, 3, 7, 10, 64] {
            for shards in [0usize, 1, 2, 3, 5, 64, 100] {
                let ranges = shard_ranges(len, shards);
                assert!(!ranges.is_empty());
                // Contiguous cover of 0..len with near-equal sizes.
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, len);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                let sizes: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "len {len} shards {shards}: sizes {sizes:?}");
            }
        }
    }

    #[test]
    fn chunk_interleaved_empty_work_yields_empty_chunks() {
        let mut work: Vec<Option<u32>> = Vec::new();
        let chunks = chunk_interleaved(&mut work, 4);
        assert_eq!(chunks.len(), 4);
        assert!(chunks.iter().all(Vec::is_empty));
    }

    #[test]
    fn chunk_interleaved_with_more_threads_than_items() {
        let mut work: Vec<Option<&str>> = vec![Some("a"), Some("b")];
        let chunks = chunk_interleaved(&mut work, 5);
        assert_eq!(chunks.len(), 5);
        assert_eq!(chunks[0], vec![(0, "a")]);
        assert_eq!(chunks[1], vec![(1, "b")]);
        assert!(chunks[2..].iter().all(Vec::is_empty));
        assert!(work.iter().all(Option::is_none), "items must be moved out");
    }

    #[test]
    fn chunk_interleaved_skips_empty_slots() {
        let mut work = vec![Some(10), None, Some(30), None, Some(50)];
        let chunks = chunk_interleaved(&mut work, 2);
        // Chunk membership follows the original index, not a compacted one.
        assert_eq!(chunks[0], vec![(0, 10), (2, 30), (4, 50)]);
        assert!(chunks[1].is_empty());
    }

    proptest::proptest! {
        #[test]
        fn chunk_interleaved_partitions_every_index_exactly_once(
            len in 0usize..80,
            threads in 1usize..12,
        ) {
            let mut work: Vec<Option<usize>> = (0..len).map(Some).collect();
            let chunks = chunk_interleaved(&mut work, threads);
            proptest::prop_assert_eq!(chunks.len(), threads);
            let mut seen: Vec<(usize, usize)> =
                chunks.into_iter().flatten().collect();
            seen.sort_by_key(|(i, _)| *i);
            // Every index appears exactly once, paired with its own item.
            proptest::prop_assert_eq!(seen.len(), len);
            for (k, (i, item)) in seen.iter().enumerate() {
                proptest::prop_assert_eq!(k, *i);
                proptest::prop_assert_eq!(i, item);
            }
        }
    }

    #[test]
    fn worker_threads_resolves_zero_to_at_least_one() {
        let c = ConstellationBuilder::starlink_mini().seed(1).build();
        let terminals = vec![Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2))];
        let auto = Campaign::oracle(&c, terminals.clone(), CampaignConfig::default(), 1);
        // Auto-detect can never resolve to zero workers, even on a
        // single-CPU host where available_parallelism() returns 1.
        assert!(auto.worker_threads() >= 1);
        let config = CampaignConfig { threads: 7, ..CampaignConfig::default() };
        let explicit = Campaign::oracle(&c, terminals, config, 1);
        assert_eq!(explicit.worker_threads(), 7);
    }

    #[test]
    fn shard_count_clamps_to_terminals() {
        let c = ConstellationBuilder::starlink_mini().seed(1).build();
        let terminals = vec![
            Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2)),
            Terminal::new(1, "Seattle", Geodetic::new(47.61, -122.33, 0.1)),
        ];
        let config = CampaignConfig { shards: 100, ..CampaignConfig::default() };
        let campaign = Campaign::oracle(&c, terminals.clone(), config, 1);
        assert_eq!(campaign.shard_count(), 2);
        let config = CampaignConfig { threads: 3, shards: 0, ..CampaignConfig::default() };
        let auto = Campaign::oracle(&c, terminals, config, 1);
        assert_eq!(auto.shard_count(), 2, "auto shards follow threads, clamped to terminals");
    }

    #[test]
    fn outcomes_partition_every_slot() {
        // Oracle: every slot is Observed (confidence 1) or an Outage.
        for obs in &small_run(false) {
            match obs.outcome {
                SlotOutcome::Observed { confidence } => {
                    assert_eq!(confidence, 1.0);
                    assert!(obs.chosen.is_some());
                }
                SlotOutcome::NoData(DegradeReason::Outage) => assert!(obs.chosen.is_none()),
                other => panic!("oracle slot resolved as {other:?}"),
            }
        }
        // Identified: chosen is Some exactly on Observed outcomes.
        let obs = small_run(true);
        for o in &obs {
            assert_eq!(o.chosen.is_some(), o.outcome.is_observed(), "slot {}", o.slot);
        }
        assert!(obs.iter().filter(|o| o.outcome.is_observed()).count() >= 15);
    }

    fn faulted_run(rates: starsense_faults::FaultRates, seed: u64) -> Vec<SlotObservation> {
        let c = ConstellationBuilder::starlink_mini().seed(33).build();
        let terminals = vec![Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2))];
        let config = CampaignConfig {
            faults: FaultPlan::new(seed, rates),
            min_margin: starsense_ident::DEFAULT_MIN_MARGIN,
            quarantine_after: 2,
            ..CampaignConfig::default()
        };
        Campaign::identified(&c, terminals, config, 33)
            .run(JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0), 25)
    }

    #[test]
    fn faulted_campaign_degrades_gracefully_and_deterministically() {
        use starsense_faults::FaultRates;
        let rates = FaultRates {
            frame_drop: 0.15,
            frame_stale: 0.1,
            frame_corrupt: 0.1,
            propagation_fail: 0.1,
            ..FaultRates::none()
        };
        let obs = faulted_run(rates, 5);
        assert_eq!(obs.len(), 25, "faults must never lose slots");
        let stats = DegradationStats::collect(&obs);
        assert_eq!(stats.observed + stats.ambiguous + stats.no_data, 25);
        assert!(stats.no_data > 0, "15% frame drops over 25 slots should surface");
        for o in &obs {
            assert_eq!(o.chosen.is_some(), o.outcome.is_observed());
            // Slot times stay monotone even across dropped frames.
        }
        for w in obs.windows(2) {
            assert!(w[1].slot == w[0].slot + 1);
        }
        // Bit-for-bit reproducible under the same plan.
        assert_streams_identical(&obs, &faulted_run(rates, 5));
        // A different fault seed gives a different degradation pattern.
        let other = faulted_run(rates, 6);
        let outcomes = |os: &[SlotObservation]| -> Vec<bool> {
            os.iter().map(|o| o.outcome.is_observed()).collect::<Vec<_>>()
        };
        assert_ne!(outcomes(&obs), outcomes(&other), "fault seed had no effect");
    }

    #[test]
    fn fault_free_plan_is_bit_identical_to_default_config() {
        let c = ConstellationBuilder::starlink_gen1().seed(33).build();
        let terminals = vec![Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2))];
        let from = JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0);
        let plain = Campaign::identified(&c, terminals.clone(), CampaignConfig::default(), 33)
            .run(from, 20);
        // A seeded all-zero plan (plus retry/quarantine knobs that only
        // matter under faults) must not move a single bit.
        let config = CampaignConfig {
            faults: FaultPlan::new(987, starsense_faults::FaultRates::none()),
            frame_retries: 5,
            quarantine_after: 3,
            ..CampaignConfig::default()
        };
        let faulted = Campaign::identified(&c, terminals, config, 33).run(from, 20);
        assert_streams_identical(&plain, &faulted);
    }

    #[test]
    fn propagation_faults_quarantine_and_shrink_visibility() {
        use starsense_faults::FaultRates;
        let c = ConstellationBuilder::starlink_mini().seed(33).build();
        let terminals = vec![Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2))];
        let from = JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0);
        let run = |rate: f64, quarantine_after: u32| {
            let config = CampaignConfig {
                faults: FaultPlan::new(
                    11,
                    FaultRates { propagation_fail: rate, ..FaultRates::none() },
                ),
                quarantine_after,
                ..CampaignConfig::default()
            };
            Campaign::oracle(&c, terminals.clone(), config, 33).run_with_stats(from, 25)
        };
        let (clean_obs, clean_stats) = run(0.0, 2);
        assert_eq!(clean_stats.quarantined_sats, 0);
        assert_eq!(clean_stats.masked_propagations, 0);

        let (faulty_obs, faulty_stats) = run(0.4, 2);
        assert!(faulty_stats.quarantined_sats > 0, "40% failure rate must quarantine");
        assert!(faulty_stats.masked_propagations > 0);
        let visible =
            |os: &[SlotObservation]| -> usize { os.iter().map(|o| o.available.len()).sum() };
        assert!(
            visible(&faulty_obs) < visible(&clean_obs),
            "masked propagations should shrink the available lists"
        );
        // Every satellite the campaign still reports was actually usable.
        for o in &faulty_obs {
            if let Some(ch) = &o.chosen {
                assert!(o.available.iter().any(|a| a.norad_id == ch.norad_id));
            }
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = small_run(false);
        let b = small_run(false);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.truth_id, y.truth_id);
        }
    }

    #[test]
    fn for_terminal_filters() {
        let c = ConstellationBuilder::starlink_gen1().seed(33).build();
        let campaign = paper_campaign(&c, 7);
        let obs = campaign.run(JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0), 3);
        assert_eq!(obs.len(), 12);
        assert_eq!(for_terminal(&obs, 2).len(), 3);
        assert!(for_terminal(&obs, 2).iter().all(|o| o.terminal_id == 2));
    }
}
