//! Measurement campaigns against the hidden scheduler.
//!
//! A campaign replays the global scheduler over a span of 15-second slots
//! for the study's terminals and records, per slot and terminal, the
//! *available* satellites and the *chosen* one — the exact data §5 and §6
//! of the paper are built on.
//!
//! Two observation modes mirror what the paper could and could not see:
//!
//! * **Oracle** — the chosen satellite is read straight from the hidden
//!   scheduler (the reproduction's privilege; the fast path for large
//!   campaigns).
//! * **Identified** — the chosen satellite is recovered through the §4
//!   obstruction-map pipeline (XOR → DTW), complete with its occasional
//!   misidentifications and skipped slots. This is what the authors
//!   actually had, so experiments that quote the paper's numbers run in
//!   this mode.
//!
//! # Execution model
//!
//! A campaign runs in three phases around a shared
//! [`PropagationCache`]:
//!
//! 1. **Propagate + visibility** (parallel) — every slot epoch is
//!    SGP4-propagated once into the cache and each terminal's
//!    field-of-view list is derived from the cached snapshot;
//! 2. **Schedule** (serial) — the hidden scheduler consumes the
//!    precomputed visibility slot by slot. This phase is stateful
//!    (hysteresis and the allocation RNG depend on slot order) and stays
//!    serial by design;
//! 3. **Observe** (parallel) — each terminal independently replays its
//!    allocations: dish painting, XOR isolation, and DTW identification,
//!    with published-TLE propagation read through the same cache.
//!
//! The phase split is bit-transparent: every phase consumes exactly the
//! inputs the old slot-by-slot loop produced, so observations are
//! byte-identical for any worker-thread count (see
//! [`CampaignConfig::threads`]), and the determinism tests hold a
//! multi-threaded run to the single-threaded stream field by field.

use crate::degrade::{DegradationStats, DegradeReason, SlotOutcome};
use crate::vantage;
use starsense_astro::time::JulianDate;
use starsense_constellation::{Constellation, PropagationCache, VisibleSat};
use starsense_faults::{FaultPlan, PropagationSchedule};
use starsense_ident::{
    verdict_slot_tracked, DishSimulator, FrameStatus, IdentVerdict, NoDataReason, SlotCapture,
    TrackCache, CANDIDATE_SAMPLES_PER_SLOT, MIN_CANDIDATE_ELEVATION_DEG,
};
use starsense_scheduler::slots::{slot_index, slot_start, SLOT_PERIOD_SECONDS};
use starsense_scheduler::{Allocation, GlobalScheduler, SchedulerPolicy, Terminal};

/// A satellite as observed during one slot from one terminal.
#[derive(Debug, Clone, PartialEq)]
pub struct SatObs {
    /// Catalog number.
    pub norad_id: u32,
    /// Angle of elevation, degrees.
    pub elevation_deg: f64,
    /// Azimuth, degrees clockwise from north.
    pub azimuth_deg: f64,
    /// Days since launch.
    pub age_days: f64,
    /// Sunlit status.
    pub sunlit: bool,
    /// Launch year (for §5.2 binning).
    pub launch_year: i32,
    /// Launch month.
    pub launch_month: u32,
}

impl From<&VisibleSat> for SatObs {
    fn from(v: &VisibleSat) -> SatObs {
        SatObs {
            norad_id: v.norad_id,
            elevation_deg: v.look.elevation_deg,
            azimuth_deg: v.look.azimuth_deg,
            age_days: v.age_days,
            sunlit: v.sunlit,
            launch_year: v.launch.year,
            launch_month: v.launch.month,
        }
    }
}

/// One slot's observation from one terminal.
#[derive(Debug, Clone)]
pub struct SlotObservation {
    /// Terminal id (index into [`vantage::paper_terminals`]-style lists).
    pub terminal_id: usize,
    /// Global slot index.
    pub slot: i64,
    /// Slot start.
    pub slot_start: JulianDate,
    /// Local mean solar hour at the terminal (the §6 `local_hour` feature).
    pub local_hour: f64,
    /// Satellites above the minimum elevation.
    pub available: Vec<SatObs>,
    /// The satellite believed to serve this slot (mode-dependent).
    pub chosen: Option<SatObs>,
    /// Ground truth (always the scheduler's real pick; equals `chosen` in
    /// oracle mode).
    pub truth_id: Option<u32>,
    /// How the observation resolved — identification, ambiguity, or the
    /// degradation cause. `chosen.is_some()` exactly when this is
    /// [`SlotOutcome::Observed`].
    pub outcome: SlotOutcome,
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The hidden scheduler's policy.
    pub policy: SchedulerPolicy,
    /// Observe through the §4 identification pipeline instead of reading
    /// the scheduler directly.
    pub identified: bool,
    /// Worker threads for the parallel phases (propagation/visibility and
    /// per-terminal observation). `0` means auto-detect from the host;
    /// `1` runs everything inline with no threads spawned. Results are
    /// byte-identical for every value.
    pub threads: usize,
    /// Deterministic fault-injection plan. The default
    /// ([`FaultPlan::none`]) keeps every output bit-identical to a
    /// fault-unaware campaign: fault decisions are counter-based hashes
    /// and never touch the scheduler's or dish's randomness.
    pub faults: FaultPlan,
    /// Minimum DTW margin for a match to count as identified rather than
    /// [`SlotOutcome::Ambiguous`]. The default `0.0` reproduces the
    /// legacy always-report-the-best behaviour bit for bit; chaos runs
    /// use [`starsense_ident::DEFAULT_MIN_MARGIN`].
    pub min_margin: f64,
    /// Obstruction-frame fetch retries after a dropped frame (identified
    /// mode only).
    pub frame_retries: u32,
    /// Quarantine a satellite for the rest of the campaign once this many
    /// of its slot propagations have failed. `0` disables quarantine.
    pub quarantine_after: u32,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            policy: SchedulerPolicy::default(),
            identified: false,
            threads: 0,
            faults: FaultPlan::none(),
            min_margin: 0.0,
            frame_retries: 2,
            quarantine_after: 0,
        }
    }
}

/// A runnable campaign.
pub struct Campaign<'a> {
    constellation: &'a Constellation,
    terminals: Vec<Terminal>,
    config: CampaignConfig,
    seed: u64,
}

impl<'a> Campaign<'a> {
    /// Oracle-mode campaign.
    pub fn oracle(
        constellation: &'a Constellation,
        terminals: Vec<Terminal>,
        config: CampaignConfig,
        seed: u64,
    ) -> Campaign<'a> {
        Campaign {
            constellation,
            terminals,
            config: CampaignConfig { identified: false, ..config },
            seed,
        }
    }

    /// Identified-mode campaign (through the obstruction-map pipeline).
    pub fn identified(
        constellation: &'a Constellation,
        terminals: Vec<Terminal>,
        config: CampaignConfig,
        seed: u64,
    ) -> Campaign<'a> {
        Campaign {
            constellation,
            terminals,
            config: CampaignConfig { identified: true, ..config },
            seed,
        }
    }

    /// The terminals under measurement.
    pub fn terminals(&self) -> &[Terminal] {
        &self.terminals
    }

    /// Worker count for the parallel phases, resolved from the config.
    /// When this resolves to 1 — an explicit `threads: 1` or a single-CPU
    /// host under auto-detect — both parallel phases take their inline
    /// branch and no scoped thread (or any thread machinery at all) is
    /// ever set up, so the parallel entry point can never underperform
    /// the serial engine.
    fn worker_threads(&self) -> usize {
        match self.config.threads {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        }
    }

    /// Runs `slots` consecutive slots starting at the slot containing
    /// `from`. Returns observations slot-major, terminal-minor.
    ///
    /// Observations are byte-identical for any [`CampaignConfig::threads`]
    /// value: the stateful scheduler pass is serial either way, and the
    /// parallel phases compute pure per-slot / per-terminal functions whose
    /// results are merged back in slot-major, terminal-minor order.
    pub fn run(&self, from: JulianDate, slots: usize) -> Vec<SlotObservation> {
        self.run_with_stats(from, slots).0
    }

    /// [`Campaign::run`] plus the run's [`DegradationStats`] — outcome
    /// tallies from the observation stream and the fault schedule's
    /// quarantine counters.
    pub fn run_with_stats(
        &self,
        from: JulianDate,
        slots: usize,
    ) -> (Vec<SlotObservation>, DegradationStats) {
        let mut scheduler =
            GlobalScheduler::new(self.config.policy.clone(), self.terminals.clone(), self.seed);
        let threads = self.worker_threads();
        let cache = PropagationCache::new(self.constellation);

        // Query each slot at its midpoint: slot boundaries are derived from
        // the instant, and a midpoint query can never fall on the wrong
        // side of a boundary through float rounding.
        let first_mid = slot_start(from).plus_seconds(SLOT_PERIOD_SECONDS / 2.0);
        let mids: Vec<JulianDate> =
            (0..slots).map(|k| first_mid.plus_seconds(k as f64 * SLOT_PERIOD_SECONDS)).collect();

        // Injected propagation failures (and their quarantine closure) are
        // precomputed serially into a bitset so the parallel visibility
        // phase can consult them without any ordering dependence.
        let schedule = self.config.faults.enabled().then(|| {
            let mut ids: Vec<u32> = self.constellation.sats().iter().map(|s| s.norad_id).collect();
            ids.sort_unstable();
            let first_slot = slot_index(first_mid);
            let schedule = PropagationSchedule::build(
                &self.config.faults,
                &ids,
                first_slot,
                slots,
                self.config.quarantine_after,
            );
            (schedule, ids)
        });

        // Phase 1 (parallel): propagate each slot epoch once into the
        // shared cache and derive every terminal's visibility list from the
        // cached snapshot.
        let availability =
            self.visibility_phase(&scheduler, &cache, &mids, threads, schedule.as_ref());

        // Phase 2 (serial): the hidden scheduler walks the slots in order —
        // hysteresis and its allocation RNG make this pass order-dependent,
        // so it is the one part that must not be parallelized.
        let mut per_terminal: Vec<Vec<Allocation>> =
            (0..self.terminals.len()).map(|_| Vec::with_capacity(slots)).collect();
        for (&at, available) in mids.iter().zip(availability) {
            for alloc in scheduler.allocate_from_available(at, available) {
                per_terminal[alloc.terminal_id].push(alloc);
            }
        }

        // Phase 3 (parallel): each terminal replays its own allocation
        // stream — dish painting and DTW identification are per-terminal
        // state machines with no cross-terminal coupling.
        let per_terminal_obs = self.observation_phase(&cache, per_terminal, threads);

        // Merge back to the slot-major, terminal-minor order the serial
        // loop used to produce.
        let mut columns: Vec<std::vec::IntoIter<SlotObservation>> =
            per_terminal_obs.into_iter().map(Vec::into_iter).collect();
        let mut out = Vec::with_capacity(slots * self.terminals.len());
        for _ in 0..slots {
            for column in &mut columns {
                if let Some(obs) = column.next() {
                    out.push(obs);
                }
            }
        }

        let mut stats = DegradationStats::collect(&out);
        if let Some((schedule, _)) = &schedule {
            stats.quarantined_sats = schedule.quarantined_count();
            stats.masked_propagations = schedule.masked_slot_count();
        }
        (out, stats)
    }

    /// Phase 1: per-slot snapshots and per-terminal visibility, fanned over
    /// `threads` scoped workers (inline when `threads <= 1`). Slot indices
    /// are interleaved across workers; results are reassembled in slot
    /// order, so the output is independent of scheduling.
    fn visibility_phase(
        &self,
        scheduler: &GlobalScheduler,
        cache: &PropagationCache<'_>,
        mids: &[JulianDate],
        threads: usize,
        schedule: Option<&(PropagationSchedule, Vec<u32>)>,
    ) -> Vec<Vec<Vec<VisibleSat>>> {
        let per_slot = |k: usize, &at: &JulianDate| {
            let snapshot = cache.snapshot(slot_start(at));
            let mut fov = scheduler.fields_of_view(self.constellation, &snapshot);
            // A satellite whose propagation failed this slot (or that is
            // quarantined) is invisible to the whole pipeline: the bitset
            // is pure data, so filtering here is thread-order invariant.
            if let Some((schedule, ids)) = schedule {
                for list in &mut fov {
                    list.retain(|v| match ids.binary_search(&v.norad_id) {
                        Ok(sat) => !schedule.masked(sat, k),
                        Err(_) => true,
                    });
                }
            }
            fov
        };
        let threads = threads.min(mids.len().max(1));
        if threads <= 1 {
            return mids.iter().enumerate().map(|(k, at)| per_slot(k, at)).collect();
        }
        let mut indexed: Vec<(usize, Vec<Vec<VisibleSat>>)> = Vec::with_capacity(mids.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for worker in 0..threads {
                let per_slot = &per_slot;
                handles.push(scope.spawn(move || {
                    mids.iter()
                        .enumerate()
                        .skip(worker)
                        .step_by(threads)
                        .map(|(k, at)| (k, per_slot(k, at)))
                        .collect::<Vec<_>>()
                }));
            }
            for handle in handles {
                let part = handle.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
                indexed.extend(part);
            }
        });
        indexed.sort_by_key(|(k, _)| *k);
        indexed.into_iter().map(|(_, v)| v).collect()
    }

    /// Phase 3: per-terminal observation streams, fanned over `threads`
    /// scoped workers (inline when `threads <= 1`). Terminals are
    /// interleaved across workers and reassembled in terminal order.
    fn observation_phase(
        &self,
        cache: &PropagationCache<'_>,
        per_terminal: Vec<Vec<Allocation>>,
        threads: usize,
    ) -> Vec<Vec<SlotObservation>> {
        let threads = threads.min(per_terminal.len().max(1));
        if threads <= 1 {
            return per_terminal
                .into_iter()
                .enumerate()
                .map(|(tid, allocs)| self.observe_terminal(cache, tid, allocs))
                .collect();
        }
        let mut work: Vec<Option<Vec<Allocation>>> = per_terminal.into_iter().map(Some).collect();
        let mut indexed: Vec<(usize, Vec<SlotObservation>)> = Vec::with_capacity(work.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for chunk in chunk_interleaved(&mut work, threads) {
                handles.push(scope.spawn(move || {
                    chunk
                        .into_iter()
                        .map(|(tid, allocs)| (tid, self.observe_terminal(cache, tid, allocs)))
                        .collect::<Vec<_>>()
                }));
            }
            for handle in handles {
                let part = handle.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
                indexed.extend(part);
            }
        });
        indexed.sort_by_key(|(tid, _)| *tid);
        indexed.into_iter().map(|(_, v)| v).collect()
    }

    /// One terminal's full observation stream, in slot order. Pure given
    /// (cache catalog, terminal, allocations) — the worker owns the dish
    /// state machine, so runs are identical no matter which thread or how
    /// many siblings execute this.
    fn observe_terminal(
        &self,
        cache: &PropagationCache<'_>,
        tid: usize,
        allocs: Vec<Allocation>,
    ) -> Vec<SlotObservation> {
        let location = self.terminals[tid].location;
        let mut dish = DishSimulator::new(location);
        // The terminal replays its slots in order, which is exactly the
        // access pattern the track cache's boundary reuse and elevation
        // prefilter are built for; its output is bit-identical to the
        // uncached `identify_slot_through` path.
        let mut tracks = self.config.identified.then(|| {
            TrackCache::new(
                cache,
                location,
                MIN_CANDIDATE_ELEVATION_DEG,
                CANDIDATE_SAMPLES_PER_SLOT,
            )
        });
        let mut prev_cap: Option<SlotCapture> = None;
        let mut out = Vec::with_capacity(allocs.len());
        for alloc in allocs {
            let truth_id = alloc.chosen_id();
            let (chosen, outcome) = if let Some(tracks) = tracks.as_mut() {
                let fetch = dish.play_slot_faulted(
                    self.constellation,
                    alloc.slot,
                    alloc.slot_start,
                    truth_id,
                    &self.config.faults,
                    tid as u64,
                    self.config.frame_retries,
                );
                match fetch.capture {
                    None => {
                        // Every attempt failed: nothing to difference, and
                        // the next successful frame has no baseline either.
                        prev_cap = None;
                        let reason = DegradeReason::FrameDropped { attempts: fetch.attempts };
                        (None, SlotOutcome::NoData(reason))
                    }
                    Some(capture) => {
                        let usable_prev =
                            if capture.after_reset { None } else { prev_cap.as_ref() };
                        let resolved = match usable_prev {
                            None => {
                                let reason = if capture.after_reset {
                                    DegradeReason::AfterReset
                                } else {
                                    DegradeReason::MissingBaseline
                                };
                                (None, SlotOutcome::NoData(reason))
                            }
                            Some(prev) => self.resolve_verdict(
                                tracks,
                                &prev.map,
                                &capture.map,
                                &alloc,
                                fetch.status,
                                truth_id,
                            ),
                        };
                        prev_cap = Some(capture);
                        resolved
                    }
                }
            } else {
                match alloc.chosen.as_ref() {
                    Some(chosen) => {
                        (Some(SatObs::from(chosen)), SlotOutcome::Observed { confidence: 1.0 })
                    }
                    None => (None, SlotOutcome::NoData(DegradeReason::Outage)),
                }
            };

            out.push(SlotObservation {
                terminal_id: tid,
                slot: alloc.slot,
                slot_start: alloc.slot_start,
                local_hour: alloc.slot_start.local_solar_hour(location.lon_deg),
                available: alloc.available.iter().map(SatObs::from).collect(),
                chosen,
                truth_id,
                outcome,
            });
        }
        out
    }

    /// Runs the §4 identification on one differenced frame pair and folds
    /// the verdict into the observation's `(chosen, outcome)` pair,
    /// attributing empty trails to their upstream cause (stale frame,
    /// scheduler outage) when one is known.
    fn resolve_verdict(
        &self,
        tracks: &mut TrackCache<'_, '_>,
        prev: &starsense_obstruction::ObstructionMap,
        curr: &starsense_obstruction::ObstructionMap,
        alloc: &Allocation,
        status: FrameStatus,
        truth_id: Option<u32>,
    ) -> (Option<SatObs>, SlotOutcome) {
        match verdict_slot_tracked(tracks, prev, curr, alloc.slot_start, self.config.min_margin) {
            IdentVerdict::Identified { sat, confidence } => {
                // Report the identified satellite's observed state, taken
                // from the available list (all satellites in view, so a
                // correct match is always present).
                match alloc.available.iter().find(|v| v.norad_id == sat.norad_id) {
                    Some(v) => (Some(SatObs::from(v)), SlotOutcome::Observed { confidence }),
                    None => (None, SlotOutcome::NoData(DegradeReason::UnmatchedIdentity)),
                }
            }
            IdentVerdict::Ambiguous { best } => {
                (None, SlotOutcome::Ambiguous { margin: best.margin() })
            }
            IdentVerdict::NoData(reason) => {
                let reason = match reason {
                    NoDataReason::EmptyTrail if status == FrameStatus::Stale => {
                        DegradeReason::StaleFrame
                    }
                    NoDataReason::EmptyTrail if truth_id.is_none() => DegradeReason::Outage,
                    NoDataReason::EmptyTrail => DegradeReason::EmptyTrail,
                    NoDataReason::TinyTrail => DegradeReason::TinyTrail,
                    NoDataReason::NoCandidates => DegradeReason::NoCandidates,
                };
                (None, SlotOutcome::NoData(reason))
            }
        }
    }
}

/// Splits `work` into `threads` interleaved (index, item) chunks, taking
/// the items out of their slots. Interleaving balances load when cost
/// varies smoothly across indices.
fn chunk_interleaved<T>(work: &mut [Option<T>], threads: usize) -> Vec<Vec<(usize, T)>> {
    let mut chunks: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, slot) in work.iter_mut().enumerate() {
        if let Some(item) = slot.take() {
            chunks[i % threads].push((i, item));
        }
    }
    chunks
}

/// Convenience: observations of one terminal only.
pub fn for_terminal(obs: &[SlotObservation], terminal_id: usize) -> Vec<&SlotObservation> {
    obs.iter().filter(|o| o.terminal_id == terminal_id).collect()
}

/// Convenience: the standard four-terminal oracle campaign of the paper.
pub fn paper_campaign(constellation: &Constellation, seed: u64) -> Campaign<'_> {
    Campaign::oracle(constellation, vantage::paper_terminals(), CampaignConfig::default(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use starsense_astro::frames::Geodetic;
    use starsense_constellation::ConstellationBuilder;

    fn small_run(identified: bool) -> Vec<SlotObservation> {
        let c = ConstellationBuilder::starlink_gen1().seed(33).build();
        let terminals = vec![Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2))];
        let config = CampaignConfig::default();
        let campaign = if identified {
            Campaign::identified(&c, terminals, config, 33)
        } else {
            Campaign::oracle(&c, terminals, config, 33)
        };
        campaign.run(JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0), 25)
    }

    #[test]
    fn oracle_campaign_records_every_slot() {
        let obs = small_run(false);
        assert_eq!(obs.len(), 25);
        for o in &obs {
            assert!(!o.available.is_empty());
            assert_eq!(o.chosen.as_ref().map(|c| c.norad_id), o.truth_id);
            assert!((0.0..24.0).contains(&o.local_hour));
        }
        // Slots are consecutive.
        for w in obs.windows(2) {
            assert_eq!(w[1].slot, w[0].slot + 1);
        }
    }

    #[test]
    fn oracle_chosen_is_among_available() {
        let obs = small_run(false);
        for o in &obs {
            if let Some(ch) = &o.chosen {
                assert!(o.available.iter().any(|a| a.norad_id == ch.norad_id));
            }
        }
    }

    #[test]
    fn identified_campaign_mostly_matches_truth() {
        let obs = small_run(true);
        let attempted: Vec<&SlotObservation> =
            obs.iter().filter(|o| o.chosen.is_some() && o.truth_id.is_some()).collect();
        assert!(attempted.len() >= 15, "attempted {}", attempted.len());
        let correct = attempted
            .iter()
            .filter(|o| o.chosen.as_ref().map(|c| c.norad_id) == o.truth_id)
            .count();
        assert!(
            correct * 10 >= attempted.len() * 8,
            "identified accuracy {correct}/{}",
            attempted.len()
        );
    }

    /// Field-by-field equality of two observation streams, with float
    /// fields compared by bit pattern: "byte-identical" is the contract,
    /// not "approximately equal".
    fn assert_streams_identical(a: &[SlotObservation], b: &[SlotObservation]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.terminal_id, y.terminal_id);
            assert_eq!(x.slot, y.slot);
            assert_eq!(x.slot_start.0.to_bits(), y.slot_start.0.to_bits());
            assert_eq!(x.local_hour.to_bits(), y.local_hour.to_bits());
            assert_eq!(x.truth_id, y.truth_id);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.chosen.as_ref().map(sat_bits), y.chosen.as_ref().map(sat_bits));
            assert_eq!(x.available.len(), y.available.len());
            for (sa, sb) in x.available.iter().zip(&y.available) {
                assert_eq!(sat_bits(sa), sat_bits(sb));
            }
        }
    }

    fn sat_bits(s: &SatObs) -> (u32, u64, u64, u64, bool, i32, u32) {
        (
            s.norad_id,
            s.elevation_deg.to_bits(),
            s.azimuth_deg.to_bits(),
            s.age_days.to_bits(),
            s.sunlit,
            s.launch_year,
            s.launch_month,
        )
    }

    fn threaded_run(identified: bool, threads: usize) -> Vec<SlotObservation> {
        let c = ConstellationBuilder::starlink_gen1().seed(33).build();
        let terminals = vec![
            Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2)),
            Terminal::new(1, "Seattle", Geodetic::new(47.61, -122.33, 0.1)),
        ];
        let config = CampaignConfig { threads, ..CampaignConfig::default() };
        let campaign = if identified {
            Campaign::identified(&c, terminals, config, 33)
        } else {
            Campaign::oracle(&c, terminals, config, 33)
        };
        campaign.run(JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0), 20)
    }

    #[test]
    fn oracle_campaign_is_thread_count_invariant() {
        let serial = threaded_run(false, 1);
        assert_streams_identical(&serial, &threaded_run(false, 4));
        assert_streams_identical(&serial, &threaded_run(false, 0));
    }

    #[test]
    fn identified_campaign_is_thread_count_invariant() {
        let serial = threaded_run(true, 1);
        assert_streams_identical(&serial, &threaded_run(true, 4));
        assert_streams_identical(&serial, &threaded_run(true, 0));
    }

    #[test]
    fn outcomes_partition_every_slot() {
        // Oracle: every slot is Observed (confidence 1) or an Outage.
        for obs in &small_run(false) {
            match obs.outcome {
                SlotOutcome::Observed { confidence } => {
                    assert_eq!(confidence, 1.0);
                    assert!(obs.chosen.is_some());
                }
                SlotOutcome::NoData(DegradeReason::Outage) => assert!(obs.chosen.is_none()),
                other => panic!("oracle slot resolved as {other:?}"),
            }
        }
        // Identified: chosen is Some exactly on Observed outcomes.
        let obs = small_run(true);
        for o in &obs {
            assert_eq!(o.chosen.is_some(), o.outcome.is_observed(), "slot {}", o.slot);
        }
        assert!(obs.iter().filter(|o| o.outcome.is_observed()).count() >= 15);
    }

    fn faulted_run(rates: starsense_faults::FaultRates, seed: u64) -> Vec<SlotObservation> {
        let c = ConstellationBuilder::starlink_mini().seed(33).build();
        let terminals = vec![Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2))];
        let config = CampaignConfig {
            faults: FaultPlan::new(seed, rates),
            min_margin: starsense_ident::DEFAULT_MIN_MARGIN,
            quarantine_after: 2,
            ..CampaignConfig::default()
        };
        Campaign::identified(&c, terminals, config, 33)
            .run(JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0), 25)
    }

    #[test]
    fn faulted_campaign_degrades_gracefully_and_deterministically() {
        use starsense_faults::FaultRates;
        let rates = FaultRates {
            frame_drop: 0.15,
            frame_stale: 0.1,
            frame_corrupt: 0.1,
            propagation_fail: 0.1,
            ..FaultRates::none()
        };
        let obs = faulted_run(rates, 5);
        assert_eq!(obs.len(), 25, "faults must never lose slots");
        let stats = DegradationStats::collect(&obs);
        assert_eq!(stats.observed + stats.ambiguous + stats.no_data, 25);
        assert!(stats.no_data > 0, "15% frame drops over 25 slots should surface");
        for o in &obs {
            assert_eq!(o.chosen.is_some(), o.outcome.is_observed());
            // Slot times stay monotone even across dropped frames.
        }
        for w in obs.windows(2) {
            assert!(w[1].slot == w[0].slot + 1);
        }
        // Bit-for-bit reproducible under the same plan.
        assert_streams_identical(&obs, &faulted_run(rates, 5));
        // A different fault seed gives a different degradation pattern.
        let other = faulted_run(rates, 6);
        let outcomes = |os: &[SlotObservation]| -> Vec<bool> {
            os.iter().map(|o| o.outcome.is_observed()).collect::<Vec<_>>()
        };
        assert_ne!(outcomes(&obs), outcomes(&other), "fault seed had no effect");
    }

    #[test]
    fn fault_free_plan_is_bit_identical_to_default_config() {
        let c = ConstellationBuilder::starlink_gen1().seed(33).build();
        let terminals = vec![Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2))];
        let from = JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0);
        let plain = Campaign::identified(&c, terminals.clone(), CampaignConfig::default(), 33)
            .run(from, 20);
        // A seeded all-zero plan (plus retry/quarantine knobs that only
        // matter under faults) must not move a single bit.
        let config = CampaignConfig {
            faults: FaultPlan::new(987, starsense_faults::FaultRates::none()),
            frame_retries: 5,
            quarantine_after: 3,
            ..CampaignConfig::default()
        };
        let faulted = Campaign::identified(&c, terminals, config, 33).run(from, 20);
        assert_streams_identical(&plain, &faulted);
    }

    #[test]
    fn propagation_faults_quarantine_and_shrink_visibility() {
        use starsense_faults::FaultRates;
        let c = ConstellationBuilder::starlink_mini().seed(33).build();
        let terminals = vec![Terminal::new(0, "Iowa", Geodetic::new(41.66, -91.53, 0.2))];
        let from = JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0);
        let run = |rate: f64, quarantine_after: u32| {
            let config = CampaignConfig {
                faults: FaultPlan::new(
                    11,
                    FaultRates { propagation_fail: rate, ..FaultRates::none() },
                ),
                quarantine_after,
                ..CampaignConfig::default()
            };
            Campaign::oracle(&c, terminals.clone(), config, 33).run_with_stats(from, 25)
        };
        let (clean_obs, clean_stats) = run(0.0, 2);
        assert_eq!(clean_stats.quarantined_sats, 0);
        assert_eq!(clean_stats.masked_propagations, 0);

        let (faulty_obs, faulty_stats) = run(0.4, 2);
        assert!(faulty_stats.quarantined_sats > 0, "40% failure rate must quarantine");
        assert!(faulty_stats.masked_propagations > 0);
        let visible =
            |os: &[SlotObservation]| -> usize { os.iter().map(|o| o.available.len()).sum() };
        assert!(
            visible(&faulty_obs) < visible(&clean_obs),
            "masked propagations should shrink the available lists"
        );
        // Every satellite the campaign still reports was actually usable.
        for o in &faulty_obs {
            if let Some(ch) = &o.chosen {
                assert!(o.available.iter().any(|a| a.norad_id == ch.norad_id));
            }
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = small_run(false);
        let b = small_run(false);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.truth_id, y.truth_id);
        }
    }

    #[test]
    fn for_terminal_filters() {
        let c = ConstellationBuilder::starlink_gen1().seed(33).build();
        let campaign = paper_campaign(&c, 7);
        let obs = campaign.run(JulianDate::from_ymd_hms(2023, 6, 1, 16, 0, 0.0), 3);
        assert_eq!(obs.len(), 12);
        assert_eq!(for_terminal(&obs, 2).len(), 3);
        assert!(for_terminal(&obs, 2).iter().all(|o| o.terminal_id == 2));
    }
}
